file(REMOVE_RECURSE
  "liblipstick_workflow.a"
)

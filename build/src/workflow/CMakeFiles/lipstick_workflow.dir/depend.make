# Empty dependencies file for lipstick_workflow.
# This may be replaced when dependencies are built.

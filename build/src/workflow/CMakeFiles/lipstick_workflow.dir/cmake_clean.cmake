file(REMOVE_RECURSE
  "CMakeFiles/lipstick_workflow.dir/executor.cc.o"
  "CMakeFiles/lipstick_workflow.dir/executor.cc.o.d"
  "CMakeFiles/lipstick_workflow.dir/module.cc.o"
  "CMakeFiles/lipstick_workflow.dir/module.cc.o.d"
  "CMakeFiles/lipstick_workflow.dir/wfdsl.cc.o"
  "CMakeFiles/lipstick_workflow.dir/wfdsl.cc.o.d"
  "CMakeFiles/lipstick_workflow.dir/workflow.cc.o"
  "CMakeFiles/lipstick_workflow.dir/workflow.cc.o.d"
  "liblipstick_workflow.a"
  "liblipstick_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipstick_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

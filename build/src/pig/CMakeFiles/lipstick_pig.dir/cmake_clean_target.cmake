file(REMOVE_RECURSE
  "liblipstick_pig.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lipstick_pig.dir/ast.cc.o"
  "CMakeFiles/lipstick_pig.dir/ast.cc.o.d"
  "CMakeFiles/lipstick_pig.dir/interpreter.cc.o"
  "CMakeFiles/lipstick_pig.dir/interpreter.cc.o.d"
  "CMakeFiles/lipstick_pig.dir/lexer.cc.o"
  "CMakeFiles/lipstick_pig.dir/lexer.cc.o.d"
  "CMakeFiles/lipstick_pig.dir/parser.cc.o"
  "CMakeFiles/lipstick_pig.dir/parser.cc.o.d"
  "CMakeFiles/lipstick_pig.dir/udf.cc.o"
  "CMakeFiles/lipstick_pig.dir/udf.cc.o.d"
  "liblipstick_pig.a"
  "liblipstick_pig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipstick_pig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pig/ast.cc" "src/pig/CMakeFiles/lipstick_pig.dir/ast.cc.o" "gcc" "src/pig/CMakeFiles/lipstick_pig.dir/ast.cc.o.d"
  "/root/repo/src/pig/interpreter.cc" "src/pig/CMakeFiles/lipstick_pig.dir/interpreter.cc.o" "gcc" "src/pig/CMakeFiles/lipstick_pig.dir/interpreter.cc.o.d"
  "/root/repo/src/pig/lexer.cc" "src/pig/CMakeFiles/lipstick_pig.dir/lexer.cc.o" "gcc" "src/pig/CMakeFiles/lipstick_pig.dir/lexer.cc.o.d"
  "/root/repo/src/pig/parser.cc" "src/pig/CMakeFiles/lipstick_pig.dir/parser.cc.o" "gcc" "src/pig/CMakeFiles/lipstick_pig.dir/parser.cc.o.d"
  "/root/repo/src/pig/udf.cc" "src/pig/CMakeFiles/lipstick_pig.dir/udf.cc.o" "gcc" "src/pig/CMakeFiles/lipstick_pig.dir/udf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/lipstick_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/lipstick_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lipstick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

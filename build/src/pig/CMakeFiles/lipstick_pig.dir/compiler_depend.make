# Empty compiler generated dependencies file for lipstick_pig.
# This may be replaced when dependencies are built.

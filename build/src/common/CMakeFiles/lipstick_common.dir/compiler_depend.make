# Empty compiler generated dependencies file for lipstick_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lipstick_common.dir/status.cc.o"
  "CMakeFiles/lipstick_common.dir/status.cc.o.d"
  "CMakeFiles/lipstick_common.dir/str_util.cc.o"
  "CMakeFiles/lipstick_common.dir/str_util.cc.o.d"
  "liblipstick_common.a"
  "liblipstick_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipstick_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

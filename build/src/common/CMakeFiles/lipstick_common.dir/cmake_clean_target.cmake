file(REMOVE_RECURSE
  "liblipstick_common.a"
)

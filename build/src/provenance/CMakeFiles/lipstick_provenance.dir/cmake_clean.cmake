file(REMOVE_RECURSE
  "CMakeFiles/lipstick_provenance.dir/deletion.cc.o"
  "CMakeFiles/lipstick_provenance.dir/deletion.cc.o.d"
  "CMakeFiles/lipstick_provenance.dir/dot.cc.o"
  "CMakeFiles/lipstick_provenance.dir/dot.cc.o.d"
  "CMakeFiles/lipstick_provenance.dir/graph.cc.o"
  "CMakeFiles/lipstick_provenance.dir/graph.cc.o.d"
  "CMakeFiles/lipstick_provenance.dir/opm.cc.o"
  "CMakeFiles/lipstick_provenance.dir/opm.cc.o.d"
  "CMakeFiles/lipstick_provenance.dir/provio.cc.o"
  "CMakeFiles/lipstick_provenance.dir/provio.cc.o.d"
  "CMakeFiles/lipstick_provenance.dir/query.cc.o"
  "CMakeFiles/lipstick_provenance.dir/query.cc.o.d"
  "CMakeFiles/lipstick_provenance.dir/semiring.cc.o"
  "CMakeFiles/lipstick_provenance.dir/semiring.cc.o.d"
  "CMakeFiles/lipstick_provenance.dir/subgraph.cc.o"
  "CMakeFiles/lipstick_provenance.dir/subgraph.cc.o.d"
  "CMakeFiles/lipstick_provenance.dir/zoom.cc.o"
  "CMakeFiles/lipstick_provenance.dir/zoom.cc.o.d"
  "liblipstick_provenance.a"
  "liblipstick_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipstick_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

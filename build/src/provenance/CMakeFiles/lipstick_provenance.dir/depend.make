# Empty dependencies file for lipstick_provenance.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provenance/deletion.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/deletion.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/deletion.cc.o.d"
  "/root/repo/src/provenance/dot.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/dot.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/dot.cc.o.d"
  "/root/repo/src/provenance/graph.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/graph.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/graph.cc.o.d"
  "/root/repo/src/provenance/opm.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/opm.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/opm.cc.o.d"
  "/root/repo/src/provenance/provio.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/provio.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/provio.cc.o.d"
  "/root/repo/src/provenance/query.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/query.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/query.cc.o.d"
  "/root/repo/src/provenance/semiring.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/semiring.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/semiring.cc.o.d"
  "/root/repo/src/provenance/subgraph.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/subgraph.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/subgraph.cc.o.d"
  "/root/repo/src/provenance/zoom.cc" "src/provenance/CMakeFiles/lipstick_provenance.dir/zoom.cc.o" "gcc" "src/provenance/CMakeFiles/lipstick_provenance.dir/zoom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/lipstick_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lipstick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

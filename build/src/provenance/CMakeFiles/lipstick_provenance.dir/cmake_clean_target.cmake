file(REMOVE_RECURSE
  "liblipstick_provenance.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lipstick_relational.dir/csv.cc.o"
  "CMakeFiles/lipstick_relational.dir/csv.cc.o.d"
  "CMakeFiles/lipstick_relational.dir/schema.cc.o"
  "CMakeFiles/lipstick_relational.dir/schema.cc.o.d"
  "CMakeFiles/lipstick_relational.dir/value.cc.o"
  "CMakeFiles/lipstick_relational.dir/value.cc.o.d"
  "liblipstick_relational.a"
  "liblipstick_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipstick_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

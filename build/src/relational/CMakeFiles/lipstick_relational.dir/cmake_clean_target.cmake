file(REMOVE_RECURSE
  "liblipstick_relational.a"
)

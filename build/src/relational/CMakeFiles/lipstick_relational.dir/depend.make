# Empty dependencies file for lipstick_relational.
# This may be replaced when dependencies are built.

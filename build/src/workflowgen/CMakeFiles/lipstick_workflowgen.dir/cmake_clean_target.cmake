file(REMOVE_RECURSE
  "liblipstick_workflowgen.a"
)

# Empty compiler generated dependencies file for lipstick_workflowgen.
# This may be replaced when dependencies are built.

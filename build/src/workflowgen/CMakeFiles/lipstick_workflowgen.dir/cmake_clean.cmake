file(REMOVE_RECURSE
  "CMakeFiles/lipstick_workflowgen.dir/arctic.cc.o"
  "CMakeFiles/lipstick_workflowgen.dir/arctic.cc.o.d"
  "CMakeFiles/lipstick_workflowgen.dir/dealership.cc.o"
  "CMakeFiles/lipstick_workflowgen.dir/dealership.cc.o.d"
  "liblipstick_workflowgen.a"
  "liblipstick_workflowgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipstick_workflowgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for trust_assessment.
# This may be replaced when dependencies are built.

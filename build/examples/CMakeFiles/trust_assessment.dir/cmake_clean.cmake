file(REMOVE_RECURSE
  "CMakeFiles/trust_assessment.dir/trust_assessment.cpp.o"
  "CMakeFiles/trust_assessment.dir/trust_assessment.cpp.o.d"
  "trust_assessment"
  "trust_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trust_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for arctic_stations.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/arctic_stations.dir/arctic_stations.cpp.o"
  "CMakeFiles/arctic_stations.dir/arctic_stations.cpp.o.d"
  "arctic_stations"
  "arctic_stations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arctic_stations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

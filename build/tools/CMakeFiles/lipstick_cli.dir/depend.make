# Empty dependencies file for lipstick_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lipstick_cli.dir/lipstick_cli.cc.o"
  "CMakeFiles/lipstick_cli.dir/lipstick_cli.cc.o.d"
  "lipstick"
  "lipstick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lipstick_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_prov_size.dir/bench_prov_size.cc.o"
  "CMakeFiles/bench_prov_size.dir/bench_prov_size.cc.o.d"
  "bench_prov_size"
  "bench_prov_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prov_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

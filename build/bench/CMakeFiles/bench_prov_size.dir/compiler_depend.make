# Empty compiler generated dependencies file for bench_prov_size.
# This may be replaced when dependencies are built.

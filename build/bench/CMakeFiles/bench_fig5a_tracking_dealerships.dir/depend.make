# Empty dependencies file for bench_fig5a_tracking_dealerships.
# This may be replaced when dependencies are built.

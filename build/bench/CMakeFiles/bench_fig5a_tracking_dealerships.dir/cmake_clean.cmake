file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_tracking_dealerships.dir/bench_fig5a_tracking_dealerships.cc.o"
  "CMakeFiles/bench_fig5a_tracking_dealerships.dir/bench_fig5a_tracking_dealerships.cc.o.d"
  "bench_fig5a_tracking_dealerships"
  "bench_fig5a_tracking_dealerships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_tracking_dealerships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_subgraph_dealerships.dir/bench_fig7b_subgraph_dealerships.cc.o"
  "CMakeFiles/bench_fig7b_subgraph_dealerships.dir/bench_fig7b_subgraph_dealerships.cc.o.d"
  "bench_fig7b_subgraph_dealerships"
  "bench_fig7b_subgraph_dealerships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_subgraph_dealerships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

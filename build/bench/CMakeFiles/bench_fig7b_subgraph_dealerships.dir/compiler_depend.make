# Empty compiler generated dependencies file for bench_fig7b_subgraph_dealerships.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig6b_graph_build_arctic_modules.
# This may be replaced when dependencies are built.

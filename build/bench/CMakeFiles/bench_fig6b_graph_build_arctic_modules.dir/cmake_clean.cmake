file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_graph_build_arctic_modules.dir/bench_fig6b_graph_build_arctic_modules.cc.o"
  "CMakeFiles/bench_fig6b_graph_build_arctic_modules.dir/bench_fig6b_graph_build_arctic_modules.cc.o.d"
  "bench_fig6b_graph_build_arctic_modules"
  "bench_fig6b_graph_build_arctic_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_graph_build_arctic_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

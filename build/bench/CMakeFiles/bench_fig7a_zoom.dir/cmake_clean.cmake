file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_zoom.dir/bench_fig7a_zoom.cc.o"
  "CMakeFiles/bench_fig7a_zoom.dir/bench_fig7a_zoom.cc.o.d"
  "bench_fig7a_zoom"
  "bench_fig7a_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

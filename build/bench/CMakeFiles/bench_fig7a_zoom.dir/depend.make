# Empty dependencies file for bench_fig7a_zoom.
# This may be replaced when dependencies are built.

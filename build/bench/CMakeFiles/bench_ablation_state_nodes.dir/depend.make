# Empty dependencies file for bench_ablation_state_nodes.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig5b_tracking_arctic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_tracking_arctic.dir/bench_fig5b_tracking_arctic.cc.o"
  "CMakeFiles/bench_fig5b_tracking_arctic.dir/bench_fig5b_tracking_arctic.cc.o.d"
  "bench_fig5b_tracking_arctic"
  "bench_fig5b_tracking_arctic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_tracking_arctic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

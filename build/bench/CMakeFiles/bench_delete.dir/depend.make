# Empty dependencies file for bench_delete.
# This may be replaced when dependencies are built.

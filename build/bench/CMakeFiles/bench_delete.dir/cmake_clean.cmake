file(REMOVE_RECURSE
  "CMakeFiles/bench_delete.dir/bench_delete.cc.o"
  "CMakeFiles/bench_delete.dir/bench_delete.cc.o.d"
  "bench_delete"
  "bench_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_graph_build_dealerships.dir/bench_fig6a_graph_build_dealerships.cc.o"
  "CMakeFiles/bench_fig6a_graph_build_dealerships.dir/bench_fig6a_graph_build_dealerships.cc.o.d"
  "bench_fig6a_graph_build_dealerships"
  "bench_fig6a_graph_build_dealerships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_graph_build_dealerships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

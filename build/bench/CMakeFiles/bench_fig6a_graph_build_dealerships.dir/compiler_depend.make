# Empty compiler generated dependencies file for bench_fig6a_graph_build_dealerships.
# This may be replaced when dependencies are built.

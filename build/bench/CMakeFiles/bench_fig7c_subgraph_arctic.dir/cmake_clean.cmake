file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7c_subgraph_arctic.dir/bench_fig7c_subgraph_arctic.cc.o"
  "CMakeFiles/bench_fig7c_subgraph_arctic.dir/bench_fig7c_subgraph_arctic.cc.o.d"
  "bench_fig7c_subgraph_arctic"
  "bench_fig7c_subgraph_arctic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_subgraph_arctic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7c_subgraph_arctic.cc" "bench/CMakeFiles/bench_fig7c_subgraph_arctic.dir/bench_fig7c_subgraph_arctic.cc.o" "gcc" "bench/CMakeFiles/bench_fig7c_subgraph_arctic.dir/bench_fig7c_subgraph_arctic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflowgen/CMakeFiles/lipstick_workflowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/lipstick_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/pig/CMakeFiles/lipstick_pig.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/lipstick_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/lipstick_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lipstick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bench_fig7c_subgraph_arctic.
# This may be replaced when dependencies are built.

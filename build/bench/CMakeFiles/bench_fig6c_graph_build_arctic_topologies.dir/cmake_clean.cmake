file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_graph_build_arctic_topologies.dir/bench_fig6c_graph_build_arctic_topologies.cc.o"
  "CMakeFiles/bench_fig6c_graph_build_arctic_topologies.dir/bench_fig6c_graph_build_arctic_topologies.cc.o.d"
  "bench_fig6c_graph_build_arctic_topologies"
  "bench_fig6c_graph_build_arctic_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_graph_build_arctic_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6c_graph_build_arctic_topologies.
# This may be replaced when dependencies are built.

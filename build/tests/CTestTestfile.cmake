# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(relational_test "/root/repo/build/tests/relational_test")
set_tests_properties(relational_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pig_parser_test "/root/repo/build/tests/pig_parser_test")
set_tests_properties(pig_parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pig_eval_test "/root/repo/build/tests/pig_eval_test")
set_tests_properties(pig_eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(provenance_test "/root/repo/build/tests/provenance_test")
set_tests_properties(provenance_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(provenance_ops_test "/root/repo/build/tests/provenance_ops_test")
set_tests_properties(provenance_ops_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workflow_test "/root/repo/build/tests/workflow_test")
set_tests_properties(workflow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workflowgen_test "/root/repo/build/tests/workflowgen_test")
set_tests_properties(workflowgen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(io_test "/root/repo/build/tests/io_test")
set_tests_properties(io_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")

# Empty compiler generated dependencies file for workflowgen_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/workflowgen_test.dir/workflowgen_test.cc.o"
  "CMakeFiles/workflowgen_test.dir/workflowgen_test.cc.o.d"
  "workflowgen_test"
  "workflowgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflowgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

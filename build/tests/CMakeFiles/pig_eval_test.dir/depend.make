# Empty dependencies file for pig_eval_test.
# This may be replaced when dependencies are built.

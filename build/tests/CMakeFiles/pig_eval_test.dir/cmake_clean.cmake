file(REMOVE_RECURSE
  "CMakeFiles/pig_eval_test.dir/pig_eval_test.cc.o"
  "CMakeFiles/pig_eval_test.dir/pig_eval_test.cc.o.d"
  "pig_eval_test"
  "pig_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pig_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

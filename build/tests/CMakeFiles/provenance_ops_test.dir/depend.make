# Empty dependencies file for provenance_ops_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/provenance_ops_test.dir/provenance_ops_test.cc.o"
  "CMakeFiles/provenance_ops_test.dir/provenance_ops_test.cc.o.d"
  "provenance_ops_test"
  "provenance_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pig_parser_test.dir/pig_parser_test.cc.o"
  "CMakeFiles/pig_parser_test.dir/pig_parser_test.cc.o.d"
  "pig_parser_test"
  "pig_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pig_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pig_parser_test.
# This may be replaced when dependencies are built.

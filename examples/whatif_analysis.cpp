// What-if analytics via deletion propagation (Section 4.2): "What would
// have been the bid by dealer 1 in response to a particular request if car
// C2 were not present in the dealer's lot?"
//
// This example reproduces Figure 3's scenario directly on a tracked
// dealership bid computation: delete a car's provenance node, propagate,
// and observe which parts of the derivation survive. It also demonstrates
// saving the graph to disk and querying it after reloading — the paper's
// Provenance Tracker / Query Processor architecture.

#include <cstdio>

#include "provenance/deletion.h"
#include "provenance/provio.h"
#include "provenance/semiring.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using workflowgen::DealershipConfig;
using workflowgen::DealershipWorkflow;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  DealershipConfig config;
  config.num_cars = 48;  // small lot so the printout stays readable
  config.num_executions = 1;
  config.seed = 21;
  auto wf = DealershipWorkflow::Create(config);
  Check(wf.status());

  ProvenanceGraph graph;
  auto outputs = (*wf)->ExecuteOnce(1, &graph);
  Check(outputs.status());
  const Relation& best = outputs->at("agg").at("BestBid");
  if (best.bag.empty()) {
    std::printf("no dealer had a %s in stock\n", (*wf)->buyer_model().c_str());
    return 0;
  }
  NodeId bid = best.bag.at(0).annot;
  std::printf("best bid for the %s: $%.0f\n", (*wf)->buyer_model().c_str(),
              best.bag.at(0).tuple.at(3).AsDouble());

  // The Tracker -> file -> Query Processor handoff (Section 5.1).
  std::string path = "/tmp/lipstick_whatif_graph.txt";
  Check(SaveGraphToFile(graph, path));
  auto loaded = LoadGraphFromFile(path);
  Check(loaded.status());
  loaded->Seal();
  std::printf("graph saved and reloaded: %zu nodes\n\n",
              loaded->num_alive());

  // Enumerate the cars whose tokens entered the graph and test, car by
  // car, whether removing that one car would remove the winning bid.
  int survives = 0, kills = 0, independent = 0;
  loaded->ForEachAliveNode([&](NodeId id) {
    NodeView n = loaded->node(id);
    if (n.role() != NodeRole::kStateBase ||
        n.payload().find(".Cars[") == std::string_view::npos) {
      return;
    }
    if (!*DependsOn(*loaded, bid, id)) {
      // Most cars: the bid does not depend on them at all, or the COUNT
      // aggregate survives on the remaining cars (paper Example 4.3).
      bool in_derivation = !loaded->ChildrenOf(id).empty();
      in_derivation ? ++survives : ++independent;
    } else {
      ++kills;
    }
  });
  std::printf("what-if over every car in every lot:\n");
  std::printf("  %3d cars never entered the bid derivation\n", independent);
  std::printf(
      "  %3d cars contributed, but the bid survives their deletion\n",
      survives);
  std::printf("  %3d cars are essential to the bid\n", kills);

  // Deleting the bid request itself erases the derivation (Example 4.4).
  NodeId request = kInvalidNode;
  loaded->ForEachAliveNode([&](NodeId id) {
    if (request == kInvalidNode &&
        loaded->node(id).role() == NodeRole::kWorkflowInput) {
      request = id;
    }
  });
  size_t before = loaded->num_alive();
  auto dead = *ComputeDeletionSet(*loaded, {request});
  std::printf(
      "\ndeleting the bid request would remove %zu of %zu nodes "
      "(everything except state tuples and module invocations)\n",
      dead.size(), before);
  std::printf("bid removed too: %s\n", dead.count(bid) ? "yes" : "no");
  return 0;
}

// The paper's running example (Figure 1 / Examples 2.1-2.3): a buyer
// requests bids for a car model from four dealerships; each dealership
// consults its inventory, sale history, and prior bids; an aggregator picks
// the minimum bid; on acceptance the winning dealership records the sale.
//
// This example runs the full workflow with provenance tracking and then
// answers the Introduction's analytics questions:
//   "Which cars affected the computation of this winning bid?"
//   "Was the sale affected by the presence of some other car?"

#include <cstdio>
#include <string>

#include "provenance/deletion.h"
#include "provenance/subgraph.h"
#include "provenance/zoom.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using workflowgen::DealershipConfig;
using workflowgen::DealershipWorkflow;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  DealershipConfig config;
  config.num_cars = 240;       // 60 cars per dealership
  config.num_executions = 25;  // bid rounds before the buyer gives up
  config.seed = 3;

  auto wf = DealershipWorkflow::Create(config);
  Check(wf.status());
  std::printf("buyer wants a %s\n", (*wf)->buyer_model().c_str());

  ProvenanceGraph graph;
  auto stats = (*wf)->Run(&graph);
  Check(stats.status());
  std::printf("run finished after %d execution(s); best bid $%.0f; %s\n",
              stats->executions, stats->best_bid,
              stats->purchased ? "car purchased" : "no purchase");
  graph.Seal();
  std::printf("provenance graph: %zu nodes, %zu edges, %zu invocations\n\n",
              graph.num_alive(), graph.num_edges(),
              graph.invocations().size());

  // --- Which cars affected the winning bid? ---
  // The sold-car output of the car module is the final data product; its
  // ancestor set contains exactly the state tuples (cars, bids) that the
  // fine-grained derivation touched.
  NodeId sale = kInvalidNode;
  for (const InvocationInfo& inv : graph.invocations()) {
    if (graph.str(inv.module_name) == "car" && !inv.output_nodes.empty()) {
      sale = inv.output_nodes.back();
    }
  }
  if (sale == kInvalidNode) {
    std::printf("no sale happened; nothing to analyze\n");
    return 0;
  }
  auto ancestors = Ancestors(graph, sale);
  size_t cars_used = 0, state_total = 0;
  graph.ForEachAliveNode([&](NodeId id) {
    if (graph.node(id).role() != NodeRole::kStateBase) return;
    ++state_total;
    if (ancestors.count(id)) ++cars_used;
  });
  std::printf("the sale derives from %zu of %zu state tuples (%.1f%%)\n",
              cars_used, state_total, 100.0 * cars_used / state_total);
  std::printf("coarse-grained provenance would have claimed 100%%\n\n");

  // --- Was the sale affected by a specific other car? ---
  // Take one state tuple inside and one outside the ancestry and ask the
  // dependency query of Section 4.3.
  NodeId used = kInvalidNode, unused = kInvalidNode;
  graph.ForEachAliveNode([&](NodeId id) {
    if (graph.node(id).role() != NodeRole::kStateBase) return;
    if (ancestors.count(id) && used == kInvalidNode) used = id;
    if (!ancestors.count(id) && unused == kInvalidNode) unused = id;
  });
  if (used != kInvalidNode) {
    std::printf("car %s entered the sale's derivation: yes\n",
                std::string(graph.node(used).payload()).c_str());
    // Existence dependency is stricter: the sale tuple survives the
    // deletion of any single car because the dealership's aggregates can
    // be re-derived from the remaining inventory (paper Example 4.3).
    std::printf("  ... but the sale's existence depends on it: %s\n",
                *DependsOn(graph, sale, used) ? "yes" : "no");
  }
  if (unused != kInvalidNode) {
    std::printf("car %s entered the sale's derivation: no\n",
                std::string(graph.node(unused).payload()).c_str());
  }
  // The accepted bid request, in contrast, is existence-critical
  // (Example 4.4): without it, the whole purchase derivation vanishes.
  NodeId last_request = kInvalidNode;
  graph.ForEachAliveNode([&](NodeId id) {
    if (graph.node(id).role() == NodeRole::kWorkflowInput &&
        graph.node(id).payload().find("BuyerRequests") !=
            std::string_view::npos) {
      last_request = id;  // keep the latest (the accepted round's request)
    }
  });
  if (last_request != kInvalidNode) {
    std::printf("the sale's existence depends on the accepted request: %s\n",
                *DependsOn(graph, sale, last_request) ? "yes" : "no");
  }

  // --- Flexible granularity ---
  // Zoom out of everything except the aggregator: an analyst studying how
  // the best bid was computed keeps Magg fine-grained and views the rest
  // coarsely.
  Zoomer zoomer(&graph);
  Check(zoomer.ZoomOut({"dealer", "request", "choice", "and", "xor", "car"}));
  std::printf(
      "\nzoomed out of everything but the aggregator: %zu nodes remain\n",
      graph.num_alive());
  Check(zoomer.ZoomIn({"dealer"}));
  std::printf("zoomed back into the dealerships: %zu nodes\n",
              graph.num_alive());
  return 0;
}

// Arctic-stations example (Section 5.2): a dense network of meteorological
// stations computes the lowest air temperature observed under a query
// selectivity; minima flow along the station network to the output module.
//
// Demonstrates: workflow families with configurable topology, module state
// that grows with every execution (new measurements), and provenance-size
// behaviour under different selectivities.

#include <cstdio>

#include "provenance/subgraph.h"
#include "workflowgen/arctic.h"

using namespace lipstick;
using namespace lipstick::workflowgen;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  ArcticConfig config;
  config.topology = ArcticTopology::kDense;
  config.num_stations = 9;
  config.fan_out = 3;
  config.selectivity = Selectivity::kMonth;
  config.history_years = 10;
  config.seed = 42;

  auto wf = ArcticWorkflow::Create(config);
  Check(wf.status());
  std::printf("built %s workflow: %zu nodes, %zu edges\n",
              ArcticTopologyName(config.topology),
              (*wf)->workflow().nodes().size(),
              (*wf)->workflow().edges().size());

  // Run six monthly queries with provenance tracking.
  ProvenanceGraph graph;
  for (int e = 0; e < 6; ++e) {
    auto outputs = (*wf)->ExecuteOnce(&graph);
    Check(outputs.status());
    const Relation& result = outputs->at("out").at("GlobalMin");
    std::printf("month %d: global minimum temperature %.2f C\n", e + 1,
                result.bag.at(0).tuple.at(0).AsDouble());
  }
  graph.Seal();
  std::printf("\nprovenance graph after 6 executions: %zu nodes, %zu edges\n",
              graph.num_alive(), graph.num_edges());

  // How fine-grained is the provenance? The global minimum's ancestry
  // covers only the observations matching the selectivity, not the whole
  // 120-month history of every station.
  NodeId global_min = kInvalidNode;
  for (const InvocationInfo& inv : graph.invocations()) {
    if (graph.str(inv.module_name) == "arctic_out" &&
        !inv.output_nodes.empty()) {
      global_min = inv.output_nodes.back();
    }
  }
  auto ancestors = Ancestors(graph, global_min);
  size_t used = 0, total = 0;
  graph.ForEachAliveNode([&](NodeId id) {
    if (graph.node(id).role() != NodeRole::kStateBase) return;
    ++total;
    used += ancestors.count(id) ? 1 : 0;
  });
  std::printf(
      "the last global minimum depends on %zu of %zu stored observations "
      "(%.1f%%; selectivity=%s)\n",
      used, total, 100.0 * used / total,
      SelectivityName(config.selectivity));

  // Compare provenance sizes across selectivities (Figure 6's effect).
  std::printf("\nprovenance graph size by selectivity (3 executions):\n");
  for (Selectivity sel : {Selectivity::kYear, Selectivity::kMonth,
                          Selectivity::kSeason, Selectivity::kAll}) {
    ArcticConfig c = config;
    c.selectivity = sel;
    auto wf2 = ArcticWorkflow::Create(c);
    Check(wf2.status());
    ProvenanceGraph g2;
    Check((*wf2)->RunSeries(3, &g2).status());
    std::printf("  %-7s %zu nodes\n", SelectivityName(sel), g2.num_nodes());
  }
  return 0;
}

// Quickstart: build a tiny two-module workflow, execute it with
// fine-grained provenance tracking, and ask provenance questions.
//
// The workflow:   source ──Out→In── stats
// `stats` keeps every number it ever saw in its state and reports the
// running sum, so repeated executions demonstrate module state.

#include <cstdio>

#include "provenance/deletion.h"
#include "provenance/semiring.h"
#include "provenance/subgraph.h"
#include "provenance/zoom.h"
#include "workflow/executor.h"
#include "workflow/module.h"
#include "workflow/workflow.h"

using namespace lipstick;

namespace {

SchemaPtr NumSchema() {
  return Schema::Make({Field("x", FieldType::Int())});
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. Define the modules with Pig Latin queries.
  Workflow workflow;
  auto source = MakeModule(
      "source", {{"Ext", NumSchema()}}, {}, {{"Out", NumSchema()}},
      /*qstate=*/"",
      /*qout=*/"Out = FOREACH Ext GENERATE x;");
  Check(source.status());
  Check(workflow.AddModule(std::move(*source)));

  auto stats = MakeModule(
      "stats", {{"In", NumSchema()}}, {{"Seen", NumSchema()}},
      {{"Total", Schema::Make({Field("t", FieldType::Int())})}},
      /*qstate=*/"Seen = UNION Seen, In;",
      /*qout=*/
      "G = GROUP Seen ALL;\n"
      "Total = FOREACH G GENERATE SUM(Seen.x) AS t;");
  Check(stats.status());
  Check(workflow.AddModule(std::move(*stats)));

  // 2. Wire the DAG.
  Check(workflow.AddNode("in", "source"));
  Check(workflow.AddNode("stats", "stats"));
  Check(workflow.AddEdge("in", "stats", {EdgeRelation{"Out", "In"}}));

  // 3. Execute three times with provenance tracking.
  WorkflowExecutor executor(&workflow, nullptr);
  Check(executor.Initialize());
  ProvenanceGraph graph;
  NodeId last_total = kInvalidNode;
  for (int e = 1; e <= 3; ++e) {
    WorkflowInputs inputs;
    Bag ext;
    ext.Add(Tuple({Value::Int(e * 10)}));
    inputs["in"]["Ext"] = std::move(ext);
    auto outputs = executor.Execute(inputs, &graph);
    Check(outputs.status());
    const Relation& total = outputs->at("stats").at("Total");
    std::printf("execution %d: running total = %lld\n", e,
                (long long)total.bag.at(0).tuple.at(0).int_value());
    last_total = total.bag.at(0).annot;
  }

  // 4. Inspect the provenance graph.
  graph.Seal();
  std::printf("\nprovenance graph: %zu nodes, %zu edges, %zu invocations\n",
              graph.num_alive(), graph.num_edges(),
              graph.invocations().size());
  std::printf("provenance of the last total:\n  %s\n",
              ProvExpressionString(graph, last_total, 6).c_str());

  // 5. What-if: delete the first execution's input. Two different
  //    questions (Section 4):
  //    - value dependency: is the input in the total's derivation? (yes —
  //      its value is folded into the SUM through a ⊗ pair)
  //    - existence dependency: would the total tuple disappear? (no — the
  //      SUM survives on the remaining inputs, like the COUNT in the
  //      paper's Example 4.3)
  NodeId first_input = kInvalidNode;
  graph.ForEachNode([&](NodeId id) {
    if (first_input == kInvalidNode &&
        graph.node(id).role() == NodeRole::kWorkflowInput) {
      first_input = id;
    }
  });
  auto ancestry = Ancestors(graph, last_total);
  std::printf("\nfirst input is in the last total's derivation: %s\n",
              ancestry.count(first_input) ? "yes" : "no");
  std::printf("last total's existence depends on it: %s\n",
              *DependsOn(graph, last_total, first_input) ? "yes" : "no");

  // 6. ZoomOut hides the stats module's internals; ZoomIn restores them.
  Zoomer zoomer(&graph);
  size_t fine = graph.num_alive();
  Check(zoomer.ZoomOut({"stats"}));
  std::printf("zoom-out on 'stats': %zu -> %zu alive nodes\n", fine,
              graph.num_alive());
  Check(zoomer.ZoomIn({"stats"}));
  std::printf("zoom-in restores %zu nodes\n", graph.num_alive());
  return 0;
}

// Trust assessment over workflow provenance — one of the semiring
// applications the paper cites as motivation for building fine-grained
// workflow provenance on the foundations of Green et al. [17].
//
// Scenario: the dealerships' inventory databases are not equally reliable.
// Each state tuple (car record) gets a trust score; evaluating the
// provenance graph in the trust semiring ([0,1], max, min) propagates
// those scores through the entire derivation, yielding the trust of every
// bid — with zero changes to the engine, because provenance evaluation is
// generic in the semiring.

#include <cstdio>
#include <unordered_map>

#include "provenance/query.h"
#include "provenance/semiring.h"
#include "workflowgen/dealership.h"

using namespace lipstick;
using workflowgen::DealershipConfig;
using workflowgen::DealershipWorkflow;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  DealershipConfig config;
  config.num_cars = 240;
  config.num_executions = 1;
  config.seed = 5;
  auto wf = DealershipWorkflow::Create(config);
  Check(wf.status());

  ProvenanceGraph graph;
  auto outputs = (*wf)->ExecuteOnce(1, &graph);
  Check(outputs.status());
  graph.Seal();

  const Relation& best = outputs->at("agg").at("BestBid");
  if (best.bag.empty()) {
    std::printf("no bids for the %s\n", (*wf)->buyer_model().c_str());
    return 0;
  }

  // Assign trust: dealer1/dealer3 run audited inventory systems (0.95),
  // dealer2 is mostly reliable (0.7), dealer4's records are stale (0.3).
  // Workflow inputs are fully trusted (1.0 by default).
  std::unordered_map<NodeId, double> trust;
  const double kDealerTrust[] = {0.95, 0.7, 0.95, 0.3};
  for (NodeId id : FindNodes(graph, ByRole(NodeRole::kStateBase))) {
    std::string payload(graph.node(id).payload());
    for (int k = 1; k <= 4; ++k) {
      if (payload.rfind("dealer" + std::to_string(k) + ".", 0) == 0) {
        trust[id] = kDealerTrust[k - 1];
      }
    }
  }
  GraphEvaluator<TrustSemiring> eval(graph, std::move(trust));

  std::printf("buyer wants a %s; per-dealer bid trust:\n",
              (*wf)->buyer_model().c_str());
  for (int k = 1; k <= 4; ++k) {
    const Relation& bids =
        outputs->at("dealer_bid_" + std::to_string(k)).at("Bids");
    for (const AnnotatedTuple& t : bids.bag) {
      std::printf("  dealer%d bids $%-8.0f trust %.2f (inventory trust "
                  "%.2f)\n",
                  k, t.tuple.at(3).AsDouble(), eval.Eval(t.annot),
                  kDealerTrust[k - 1]);
    }
  }
  const AnnotatedTuple& winner = best.bag.at(0);
  std::printf(
      "\nwinning bid: $%.0f from dealer %lld — trust of the aggregated "
      "best-bid tuple: %.2f\n",
      winner.tuple.at(3).AsDouble(),
      (long long)winner.tuple.at(0).int_value(), eval.Eval(winner.annot));
  std::printf(
      "(each bid's trust is the minimum over the inventory records that\n"
      "jointly derived it; the aggregated tuple takes the best surviving\n"
      "witness — had only dealer4 stocked the model, the best bid's trust\n"
      "would drop to 0.30. Fine-grained provenance makes this computable;\n"
      "a black-box model could only guess.)\n");
  return 0;
}

#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"

namespace lipstick::obs {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  if (!std::isfinite(d)) return "0";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 6; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
    if (std::strtod(shorter, nullptr) == d) return shorter;
  }
  return buf;
}

void SerializeInto(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.bool_value() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      *out += JsonNumber(v.number());
      return;
    case JsonValue::Kind::kString:
      *out += '"';
      *out += JsonEscape(v.str());
      *out += '"';
      return;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& e : v.array()) {
        if (!first) *out += ',';
        first = false;
        SerializeInto(e, out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, e] : v.members()) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(k);
        *out += "\":";
        SerializeInto(e, out);
      }
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeInto(*this, &out);
  return out;
}

bool JsonValue::Equals(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray: {
      if (array_.size() != other.array_.size()) return false;
      for (size_t i = 0; i < array_.size(); ++i) {
        if (!array_[i].Equals(other.array_[i])) return false;
      }
      return true;
    }
    case Kind::kObject: {
      if (members_.size() != other.members_.size()) return false;
      for (const auto& [k, v] : members_) {
        const JsonValue* o = other.Find(k);
        if (o == nullptr || !v.Equals(*o)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

/// Recursive-descent parser over the input view; `pos` advances as tokens
/// are consumed. Depth is bounded so corrupt input cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    LIPSTICK_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrCat("json: ", msg, " at offset ", pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Err("bad \\u escape");
          }
          // UTF-8 encode (surrogate pairs are not combined: the exporters
          // never emit them, and lone surrogates round-trip as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Err("bad escape character");
      }
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      JsonValue obj = JsonValue::Object();
      SkipWhitespace();
      if (Consume('}')) return obj;
      while (true) {
        SkipWhitespace();
        LIPSTICK_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWhitespace();
        if (!Consume(':')) return Err("expected ':'");
        LIPSTICK_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
        obj.Set(std::move(key), std::move(v));
        SkipWhitespace();
        if (Consume('}')) return obj;
        if (!Consume(',')) return Err("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      JsonValue arr = JsonValue::Array();
      SkipWhitespace();
      if (Consume(']')) return arr;
      while (true) {
        LIPSTICK_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
        arr.Push(std::move(v));
        SkipWhitespace();
        if (Consume(']')) return arr;
        if (!Consume(',')) return Err("expected ',' or ']'");
      }
    }
    if (c == '"') {
      LIPSTICK_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::Str(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue::Null();
    if (c == '-' || (c >= '0' && c <= '9')) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E' ||
              (text_[pos_] >= '0' && text_[pos_] <= '9'))) {
        ++pos_;
      }
      std::string token(text_.substr(start, pos_ - start));
      char* end = nullptr;
      double d = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') return Err("bad number");
      return JsonValue::Number(d);
    }
    return Err("unexpected character");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace lipstick::obs

#ifndef LIPSTICK_OBS_JSON_H_
#define LIPSTICK_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lipstick::obs {

/// Minimal JSON document model used by the observability layer: the trace
/// and metrics exporters emit JSON, and the test suite (plus tools that
/// ingest exported files) must be able to parse it back and compare
/// round-trips without an external dependency. Numbers are kept as
/// doubles; object member order is preserved so serialization is stable.
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  std::vector<JsonValue>& array() { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  void Push(JsonValue v) { array_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// Serializes back to JSON text (no insignificant whitespace). Numbers
  /// that are integral print without a decimal point, so round-trips of
  /// exported files are textually stable.
  std::string Serialize() const;

  /// Deep structural equality (object member *order* is ignored).
  bool Equals(const JsonValue& other) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

/// Formats a double the way the obs exporters do: integral values without
/// a decimal point, everything else with enough digits to round-trip.
std::string JsonNumber(double d);

}  // namespace lipstick::obs

#endif  // LIPSTICK_OBS_JSON_H_

#ifndef LIPSTICK_OBS_TRACE_H_
#define LIPSTICK_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace lipstick::obs {

/// One recorded span, stored per-thread until export. Timestamps are
/// microseconds since Tracer::Start().
struct TraceEvent {
  std::string name;  // e.g. the workflow node id or Pig statement target
  const char* category = "";  // static string: "executor", "pig", "query"...
  double ts_us = 0;
  double dur_us = 0;
  uint32_t tid = 0;
  uint64_t id = 0;      // span id, unique within one trace
  uint64_t parent = 0;  // parent span id; 0 = root
  // Pre-rendered args: value is raw JSON when quoted == false, else a
  // string literal body still needing escaping.
  struct Arg {
    std::string key;
    std::string value;
    bool quoted = true;
  };
  std::vector<Arg> args;
};

struct ThreadEventBuffer;

/// Process-wide span tracer producing Chrome trace_event JSON (the
/// "traceEvents" array format), loadable in about:tracing and Perfetto.
///
/// Recording mirrors the metrics registry's sharding: each thread appends
/// to a private event buffer acquired on first use and recycled on thread
/// exit, so worker threads never contend. Spans nest per-thread through a
/// thread-local current-span id; cross-thread parent/child links (the
/// executor's worker spans under the main thread's execute span) are made
/// explicit by passing the parent span id to the child ObsSpan.
///
/// Disarmed (the default), span construction is one relaxed atomic load.
/// Export is valid once recording threads have quiesced (the executor
/// joins its workers before returning, so "after Execute" is safe).
class Tracer {
 public:
  static Tracer& Global();

  static bool Enabled() {
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  /// Clears previously recorded events, re-zeroes the clock, and arms.
  void Start();
  /// Disarms; recorded events remain available for export.
  void Stop();

  /// Microseconds since Start() (0 if never started).
  double NowUs() const { return clock_.ElapsedSeconds() * 1e6; }

  /// Exports all recorded events as a Chrome trace JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}. Spans become complete
  /// ("ph":"X") events; process/thread metadata events are included.
  std::string ExportJson() const;
  Status WriteJsonToFile(const std::string& path) const;

  size_t num_events() const;

  /// Next unique span id (>= 1).
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The calling thread's event buffer (internal; used by ObsSpan).
  ThreadEventBuffer* LocalBuffer();
  void ReleaseBuffer(ThreadEventBuffer* buffer);

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{0};
  WallTimer clock_;

  mutable std::mutex mu_;  // guards buffer bookkeeping
  std::vector<std::unique_ptr<ThreadEventBuffer>> buffers_;
  std::vector<ThreadEventBuffer*> free_buffers_;
};

/// Event storage owned by one thread at a time. Appends are lock-free
/// (exclusive ownership); the tracer aggregates at export.
struct ThreadEventBuffer {
  std::vector<TraceEvent> events;
};

/// Scoped span: records a complete trace event for its lifetime.
///
///   obs::ObsSpan span("executor", node_id);        // parent = innermost
///   obs::ObsSpan span("executor", node_id, pid);   // explicit parent id
///
/// When the tracer is disarmed the constructor returns immediately — the
/// name is never copied and no thread-local state is touched. Args are
/// attached lazily and dropped when inactive.
class ObsSpan {
 public:
  /// `category` must be a string literal (stored unowned). `name` is
  /// copied only when the tracer is armed. `parent` = 0 inherits the
  /// calling thread's innermost active span.
  ObsSpan(const char* category, std::string_view name, uint64_t parent = 0);
  ~ObsSpan() { End(); }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Finishes the span early (idempotent; also called by the destructor).
  void End();

  bool active() const { return active_; }
  /// This span's id (0 when the tracer was disarmed at construction).
  uint64_t id() const { return id_; }

  /// The calling thread's innermost active span id (0 = none). Pass to a
  /// child ObsSpan on another thread to parent across threads.
  static uint64_t Current();

  void Arg(const char* key, std::string_view value);
  void Arg(const char* key, int64_t value);
  void Arg(const char* key, uint64_t value);
  void Arg(const char* key, double value);

 private:
  bool active_ = false;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t prev_current_ = 0;
  double start_us_ = 0;
  const char* category_ = "";
  std::string name_;
  std::vector<TraceEvent::Arg> args_;
};

}  // namespace lipstick::obs

#endif  // LIPSTICK_OBS_TRACE_H_

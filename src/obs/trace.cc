#include "obs/trace.h"

#include <cstdio>

#include "common/str_util.h"
#include "obs/json.h"

namespace lipstick::obs {

namespace {

/// Dense per-thread ids for the trace "tid" field (std::thread::id is
/// opaque and unstable across runs).
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Innermost active span of the calling thread.
thread_local uint64_t t_current_span = 0;

/// Thread-exit hook returning the event buffer to the tracer's free list.
/// Recorded events are kept — they belong to the trace, and each event
/// carries the tid it was recorded under, so buffer recycling across
/// threads cannot mix attribution.
struct BufferRef {
  ThreadEventBuffer* buffer = nullptr;
  ~BufferRef() {
    if (buffer != nullptr) Tracer::Global().ReleaseBuffer(buffer);
  }
};

thread_local BufferRef t_buffer;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

ThreadEventBuffer* Tracer::LocalBuffer() {
  if (t_buffer.buffer != nullptr) return t_buffer.buffer;
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_buffers_.empty()) {
    t_buffer.buffer = free_buffers_.back();
    free_buffers_.pop_back();
  } else {
    buffers_.push_back(std::make_unique<ThreadEventBuffer>());
    t_buffer.buffer = buffers_.back().get();
  }
  return t_buffer.buffer;
}

void Tracer::ReleaseBuffer(ThreadEventBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  free_buffers_.push_back(buffer);
}

void Tracer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buffer : buffers_) buffer->events.clear();
  next_span_id_.store(0, std::memory_order_relaxed);
  clock_.Restart();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

std::string Tracer::ExportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"lipstick\"}}";
  char buf[128];
  for (const auto& buffer : buffers_) {
    for (const TraceEvent& e : buffer->events) {
      out += ",{\"name\":\"";
      out += JsonEscape(e.name);
      out += "\",\"cat\":\"";
      out += JsonEscape(e.category);
      out += "\",\"ph\":\"X\",\"pid\":1";
      std::snprintf(buf, sizeof(buf), ",\"tid\":%u,\"ts\":%s", e.tid,
                    JsonNumber(e.ts_us).c_str());
      out += buf;
      out += ",\"dur\":";
      out += JsonNumber(e.dur_us);
      out += ",\"args\":{\"span\":";
      out += JsonNumber(static_cast<double>(e.id));
      out += ",\"parent\":";
      out += JsonNumber(static_cast<double>(e.parent));
      for (const TraceEvent::Arg& arg : e.args) {
        out += ",\"";
        out += JsonEscape(arg.key);
        out += "\":";
        if (arg.quoted) {
          out += '"';
          out += JsonEscape(arg.value);
          out += '"';
        } else {
          out += arg.value;
        }
      }
      out += "}}";
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteJsonToFile(const std::string& path) const {
  std::string json = ExportJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(StrCat("cannot open '", path, "' for writing"));
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  if (written != json.size() || rc != 0) {
    return Status::IOError(StrCat("short write to '", path, "'"));
  }
  return Status::OK();
}

ObsSpan::ObsSpan(const char* category, std::string_view name,
                 uint64_t parent) {
  if (!Tracer::Enabled()) return;
  Tracer& tracer = Tracer::Global();
  active_ = true;
  id_ = tracer.NextSpanId();
  prev_current_ = t_current_span;
  parent_ = parent != 0 ? parent : t_current_span;
  t_current_span = id_;
  start_us_ = tracer.NowUs();
  category_ = category;
  name_.assign(name);
}

uint64_t ObsSpan::Current() { return t_current_span; }

void ObsSpan::End() {
  if (!active_) return;
  active_ = false;
  Tracer& tracer = Tracer::Global();
  t_current_span = prev_current_;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.ts_us = start_us_;
  event.dur_us = tracer.NowUs() - start_us_;
  event.tid = CurrentTid();
  event.id = id_;
  event.parent = parent_;
  event.args = std::move(args_);
  tracer.LocalBuffer()->events.push_back(std::move(event));
}

void ObsSpan::Arg(const char* key, std::string_view value) {
  if (!active_) return;
  args_.push_back({key, std::string(value), /*quoted=*/true});
}

void ObsSpan::Arg(const char* key, int64_t value) {
  if (!active_) return;
  args_.push_back({key, StrCat(value), /*quoted=*/false});
}

void ObsSpan::Arg(const char* key, uint64_t value) {
  if (!active_) return;
  args_.push_back({key, StrCat(value), /*quoted=*/false});
}

void ObsSpan::Arg(const char* key, double value) {
  if (!active_) return;
  args_.push_back({key, JsonNumber(value), /*quoted=*/false});
}

}  // namespace lipstick::obs

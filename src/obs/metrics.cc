#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/str_util.h"
#include "obs/json.h"

namespace lipstick::obs {

namespace {

inline double FromBits(uint64_t bits) { return std::bit_cast<double>(bits); }
inline uint64_t ToBits(double d) { return std::bit_cast<uint64_t>(d); }

/// Bucket index for a histogram value: floor(log2(v)) clamped to range.
size_t BucketFor(double value) {
  if (value < 1.0) return 0;
  int exp = std::min<int>(static_cast<int>(std::log2(value)),
                          MetricsRegistry::kHistBuckets - 1);
  return static_cast<size_t>(std::max(exp, 0));
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

/// Thread-exit hook: returns the thread's slab to the registry free list
/// so worker pools (the executor spawns threads per Execute) recycle slabs
/// instead of growing the registry without bound. Values are preserved —
/// a recycled slab keeps accumulating into the same aggregate.
struct SlabRef {
  MetricsRegistry::Slab* slab = nullptr;
  ~SlabRef() {
    if (slab != nullptr) MetricsRegistry::Global().ReleaseSlab(slab);
  }
};

namespace {
thread_local SlabRef t_slab;
}  // namespace

MetricsRegistry::Slab* MetricsRegistry::LocalSlab() {
  if (t_slab.slab != nullptr) return t_slab.slab;
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_slabs_.empty()) {
    t_slab.slab = free_slabs_.back();
    free_slabs_.pop_back();
  } else {
    slabs_.push_back(std::make_unique<Slab>());
    t_slab.slab = slabs_.back().get();
  }
  return t_slab.slab;
}

void MetricsRegistry::ReleaseSlab(Slab* slab) {
  std::lock_guard<std::mutex> lock(mu_);
  free_slabs_.push_back(slab);
}

MetricId MetricsRegistry::RegisterNamed(std::vector<std::string>* names,
                                        size_t limit, const char* kind,
                                        std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < names->size(); ++i) {
    if ((*names)[i] == name) return static_cast<MetricId>(i);
  }
  LIPSTICK_CHECK(names->size() < limit, "too many registered metrics");
  (void)kind;
  names->emplace_back(name);
  return static_cast<MetricId>(names->size() - 1);
}

MetricId MetricsRegistry::RegisterCounter(std::string_view name) {
  return RegisterNamed(&counter_names_, kMaxCounters, "counter", name);
}

MetricId MetricsRegistry::RegisterGauge(std::string_view name) {
  return RegisterNamed(&gauge_names_, kMaxGauges, "gauge", name);
}

MetricId MetricsRegistry::RegisterHistogram(std::string_view name) {
  return RegisterNamed(&histogram_names_, kMaxHistograms, "histogram", name);
}

void MetricsRegistry::Observe(MetricId id, double value) {
  if (!Enabled()) return;
  HistSlot& h = LocalSlab()->histograms[id];
  // Single-writer slots: load/modify/store with relaxed ordering is safe
  // because only the owning thread writes, and the aggregator tolerates
  // tearing-free (atomic) but unsynchronized reads.
  uint64_t count = h.count.load(std::memory_order_relaxed);
  double sum = FromBits(h.sum_bits.load(std::memory_order_relaxed));
  if (count == 0) {
    h.min_bits.store(ToBits(value), std::memory_order_relaxed);
    h.max_bits.store(ToBits(value), std::memory_order_relaxed);
  } else {
    if (value < FromBits(h.min_bits.load(std::memory_order_relaxed))) {
      h.min_bits.store(ToBits(value), std::memory_order_relaxed);
    }
    if (value > FromBits(h.max_bits.load(std::memory_order_relaxed))) {
      h.max_bits.store(ToBits(value), std::memory_order_relaxed);
    }
  }
  h.sum_bits.store(ToBits(sum + value), std::memory_order_relaxed);
  size_t b = BucketFor(value);
  h.buckets[b].store(h.buckets[b].load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  h.count.store(count + 1, std::memory_order_relaxed);
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& slab : slabs_) {
    for (auto& c : slab->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : slab->histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum_bits.store(0, std::memory_order_relaxed);
      h.min_bits.store(0, std::memory_order_relaxed);
      h.max_bits.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) {
    g.value.store(0, std::memory_order_relaxed);
    g.set.store(false, std::memory_order_relaxed);
  }
}

double MetricsRegistry::HistogramStats::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) {
      double lo = b == 0 ? 0.0 : std::exp2(static_cast<double>(b));
      double hi = std::exp2(static_cast<double>(b + 1));
      double mid = (lo + hi) / 2;
      return std::min(std::max(mid, min), max);
    }
  }
  return max;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    uint64_t total = 0;
    for (const auto& slab : slabs_) {
      total += slab->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(counter_names_[i], total);
  }
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    if (!gauges_[i].set.load(std::memory_order_relaxed)) continue;
    snap.gauges.emplace_back(gauge_names_[i],
                             gauges_[i].value.load(std::memory_order_relaxed));
  }
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramStats stats;
    stats.name = histogram_names_[i];
    bool first = true;
    for (const auto& slab : slabs_) {
      const HistSlot& h = slab->histograms[i];
      uint64_t c = h.count.load(std::memory_order_relaxed);
      if (c == 0) continue;
      stats.count += c;
      stats.sum += FromBits(h.sum_bits.load(std::memory_order_relaxed));
      double mn = FromBits(h.min_bits.load(std::memory_order_relaxed));
      double mx = FromBits(h.max_bits.load(std::memory_order_relaxed));
      if (first || mn < stats.min) stats.min = mn;
      if (first || mx > stats.max) stats.max = mx;
      first = false;
      for (size_t b = 0; b < kHistBuckets; ++b) {
        stats.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
    snap.histograms.push_back(std::move(stats));
  }
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  Snapshot snap = Snap();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += StrCat("counter ", name, " ", value, "\n");
  }
  for (const auto& [name, value] : snap.gauges) {
    out += StrCat("gauge ", name, " ", value, "\n");
  }
  char buf[256];
  for (const HistogramStats& h : snap.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "hist %s count=%llu sum=%.3f min=%.3f max=%.3f mean=%.3f "
                  "p50~%.3f p99~%.3f\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.sum, h.min, h.max, h.mean(), h.ApproxQuantile(0.50),
                  h.ApproxQuantile(0.99));
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  Snapshot snap = Snap();
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : snap.counters) {
    counters.Set(name, JsonValue::Number(static_cast<double>(value)));
  }
  root.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : snap.gauges) {
    gauges.Set(name, JsonValue::Number(static_cast<double>(value)));
  }
  root.Set("gauges", std::move(gauges));
  JsonValue hists = JsonValue::Object();
  for (const HistogramStats& h : snap.histograms) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", JsonValue::Number(static_cast<double>(h.count)));
    entry.Set("sum", JsonValue::Number(h.sum));
    entry.Set("min", JsonValue::Number(h.min));
    entry.Set("max", JsonValue::Number(h.max));
    entry.Set("mean", JsonValue::Number(h.mean()));
    entry.Set("p50", JsonValue::Number(h.ApproxQuantile(0.50)));
    entry.Set("p99", JsonValue::Number(h.ApproxQuantile(0.99)));
    JsonValue buckets = JsonValue::Array();
    for (size_t b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      JsonValue pair = JsonValue::Array();
      pair.Push(JsonValue::Number(b == 0 ? 0.0 : std::exp2(double(b))));
      pair.Push(JsonValue::Number(static_cast<double>(h.buckets[b])));
      buckets.Push(std::move(pair));
    }
    entry.Set("buckets", std::move(buckets));
    hists.Set(h.name, std::move(entry));
  }
  root.Set("histograms", std::move(hists));
  return root.Serialize();
}

size_t MetricsRegistry::num_slabs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slabs_.size();
}

}  // namespace lipstick::obs

#ifndef LIPSTICK_OBS_METRICS_H_
#define LIPSTICK_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace lipstick::obs {

/// Index of a registered metric within its kind (counter / gauge /
/// histogram). Ids are dense, stable for the process lifetime, and cheap
/// to cache in a function-local static at the instrumentation site.
using MetricId = uint32_t;

/// Process-wide metrics registry: counters, gauges, and log2-bucketed
/// histograms, designed so the instrumented hot paths never contend.
///
/// The design mirrors the provenance graph's ShardWriter: each thread that
/// records a metric owns a private slab of slots (acquired once, returned
/// to a free list on thread exit so worker pools recycle them), and writes
/// are single-writer relaxed atomics — no lock, no cache-line ping-pong
/// between the executor's workers. Aggregation walks all slabs at render
/// time, which is rare and off the hot path.
///
/// Disarmed (the default), every Record call is one relaxed atomic load —
/// the same precedent as FaultInjector::Fire (<2% end-to-end, see
/// bench_obs_overhead). Arm with Enable(); Render*/Snapshot aggregate.
class MetricsRegistry {
 public:
  /// Capacity per kind. Registration beyond this fails a CHECK; the limit
  /// keeps per-thread slabs small and allocation-free on the hot path.
  static constexpr size_t kMaxCounters = 64;
  static constexpr size_t kMaxHistograms = 32;
  static constexpr size_t kMaxGauges = 32;
  /// Histogram buckets: bucket b counts values in [2^b, 2^(b+1)); values
  /// < 1 land in bucket 0. With 40 buckets a microsecond-valued series
  /// spans 1us .. ~12 days.
  static constexpr size_t kHistBuckets = 40;

  static MetricsRegistry& Global();

  /// True when metrics recording is on (one relaxed atomic load).
  static bool Enabled() {
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Zeroes all recorded values. Registrations (names, ids) survive —
  /// function-local static ids at instrumentation sites stay valid.
  void ResetValues();

  /// Registers a metric (idempotent per name) and returns its id. Names
  /// are dot-separated, e.g. "executor.node_us"; the conventional unit
  /// suffixes are _us (microseconds), _bytes, and bare names for counts.
  MetricId RegisterCounter(std::string_view name);
  MetricId RegisterGauge(std::string_view name);
  MetricId RegisterHistogram(std::string_view name);

  /// Hot-path recording. No-ops when disarmed.
  void CounterAdd(MetricId id, uint64_t delta = 1) {
    if (!Enabled()) return;
    Slab* slab = LocalSlab();
    slab->counters[id].store(
        slab->counters[id].load(std::memory_order_relaxed) + delta,
        std::memory_order_relaxed);
  }
  void GaugeSet(MetricId id, int64_t value) {
    if (!Enabled()) return;
    gauges_[id].value.store(value, std::memory_order_relaxed);
    gauges_[id].set.store(true, std::memory_order_relaxed);
  }
  void Observe(MetricId id, double value);

  /// Aggregated view across all thread slabs.
  struct HistogramStats {
    std::string name;
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    uint64_t buckets[kHistBuckets] = {};
    double mean() const { return count == 0 ? 0 : sum / count; }
    /// Approximate quantile from the log2 buckets (geometric midpoint of
    /// the bucket containing the q-th sample).
    double ApproxQuantile(double q) const;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;  // only set gauges
    std::vector<HistogramStats> histograms;
  };
  Snapshot Snap() const;

  /// Human-readable rendering, one metric per line.
  std::string RenderText() const;
  /// Machine-readable rendering (parsable by obs::ParseJson):
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}.
  std::string RenderJson() const;

  /// Number of thread slabs ever created (diagnostic; slabs are recycled
  /// through a free list when threads exit).
  size_t num_slabs() const;

 private:
  struct HistSlot {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  // bit-cast double
    std::atomic<uint64_t> min_bits{0};  // bit-cast double; valid if count>0
    std::atomic<uint64_t> max_bits{0};
    std::atomic<uint32_t> buckets[kHistBuckets] = {};
  };
  struct Slab {
    std::atomic<uint64_t> counters[kMaxCounters] = {};
    HistSlot histograms[kMaxHistograms];
  };
  struct GaugeSlot {
    std::atomic<int64_t> value{0};
    std::atomic<bool> set{false};
  };

  MetricsRegistry() = default;

  /// The calling thread's slab, acquired from the free list (or freshly
  /// allocated) on first use and returned on thread exit.
  Slab* LocalSlab();
  void ReleaseSlab(Slab* slab);

  MetricId RegisterNamed(std::vector<std::string>* names, size_t limit,
                         const char* kind, std::string_view name);

  friend struct SlabRef;

  std::atomic<bool> enabled_{false};
  GaugeSlot gauges_[kMaxGauges];

  mutable std::mutex mu_;  // guards names and slab bookkeeping
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::vector<Slab*> free_slabs_;
};

/// RAII histogram timer: observes the elapsed wall-clock microseconds into
/// `id` on destruction. Free when the registry is disarmed.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(MetricId id) : id_(id) {
    armed_ = MetricsRegistry::Enabled();
  }
  ~ScopedHistTimer() {
    if (armed_) MetricsRegistry::Global().Observe(id_, timer_.ElapsedMicros());
  }
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  MetricId id_;
  bool armed_;
  WallTimer timer_;
};

}  // namespace lipstick::obs

#endif  // LIPSTICK_OBS_METRICS_H_

#include "relational/schema.h"

#include "common/str_util.h"

namespace lipstick {

bool FieldType::Equals(const FieldType& other) const {
  if (kind_ != other.kind_) return false;
  if (is_scalar()) return true;
  if (nested_ == nullptr || other.nested_ == nullptr)
    return nested_ == other.nested_;
  return nested_->Equals(*other.nested_);
}

std::string FieldType::ToString() const {
  switch (kind_) {
    case Kind::kBool:
      return "bool";
    case Kind::kInt:
      return "int";
    case Kind::kDouble:
      return "double";
    case Kind::kString:
      return "chararray";
    case Kind::kBag:
      return StrCat("bag", nested_ ? nested_->ToString() : "{}");
    case Kind::kTuple:
      return StrCat("tuple", nested_ ? nested_->ToString() : "()");
  }
  return "?";
}

std::optional<size_t> Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  // Unqualified-suffix resolution: "Model" matches "Cars::Model" when unique.
  std::optional<size_t> found;
  const std::string suffix = "::" + name;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const std::string& fname = fields_[i].name;
    if (fname.size() > suffix.size() &&
        fname.compare(fname.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Result<size_t> Schema::ResolveField(const std::string& name) const {
  auto idx = FindField(name);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("field '", name, "' not found (or ambiguous) in schema ",
               ToString()));
  }
  return *idx;
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name) return false;
    if (!fields_[i].type.Equals(other.fields_[i].type)) return false;
  }
  return true;
}

bool Schema::EqualsIgnoreNames(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!fields_[i].type.Equals(other.fields_[i].type)) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(StrCat(f.name, ":", f.type.ToString()));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace lipstick

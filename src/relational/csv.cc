#include "relational/csv.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/str_util.h"

namespace lipstick {

namespace {

/// Splits one CSV record, honoring quotes. Returns false at end of input.
bool ReadRecord(std::istream& is, char delimiter,
                std::vector<std::string>* fields) {
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = is.get()) != EOF) {
    any = true;
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (is.peek() == '"') {
          field += '"';
          is.get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      break;
    } else if (ch == '\r') {
      // swallow; \r\n handled by the following \n
    } else {
      field += ch;
    }
  }
  if (!any) return false;
  fields->push_back(std::move(field));
  return true;
}

Result<Value> ParseField(const std::string& text, const FieldType& type,
                         const CsvOptions& options, size_t row, size_t col) {
  if (text == options.null_text) return Value::Null();
  auto err = [&](const char* what) {
    return Status::ParseError(StrCat("row ", row, " column ", col + 1, ": '",
                                     text, "' is not a valid ", what));
  };
  switch (type.kind()) {
    case FieldType::Kind::kBool:
      if (text == "true" || text == "1") return Value::Bool(true);
      if (text == "false" || text == "0") return Value::Bool(false);
      return err("bool");
    case FieldType::Kind::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') return err("int");
      return Value::Int(v);
    }
    case FieldType::Kind::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') return err("double");
      return Value::Double(v);
    }
    case FieldType::Kind::kString:
      return Value::String(text);
    default:
      return Status::InvalidArgument(
          "CSV supports scalar fields only (no bags/tuples)");
  }
}

std::string FormatField(const Value& v, const CsvOptions& options) {
  if (v.is_null()) return options.null_text;
  if (v.is_bool()) return v.bool_value() ? "true" : "false";
  if (v.is_int()) return StrCat(v.int_value());
  if (v.is_double()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v.double_value());
    return buf;
  }
  return v.is_string() ? v.string_value() : v.ToString();
}

std::string QuoteIfNeeded(const std::string& s, char delimiter) {
  bool needs = s.find(delimiter) != std::string::npos ||
               s.find('"') != std::string::npos ||
               s.find('\n') != std::string::npos ||
               s.find('\r') != std::string::npos;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CheckScalarSchema(const Schema& schema) {
  for (const Field& f : schema.fields()) {
    if (!f.type.is_scalar()) {
      return Status::InvalidArgument(
          StrCat("CSV supports scalar fields only; '", f.name, "' is ",
                 f.type.ToString()));
    }
  }
  return Status::OK();
}

}  // namespace

Result<Bag> ReadCsv(std::istream& is, const Schema& schema,
                    const CsvOptions& options) {
  LIPSTICK_RETURN_IF_ERROR(CheckScalarSchema(schema));
  Bag bag;
  std::vector<std::string> fields;
  size_t row = 0;
  if (options.header) {
    if (!ReadRecord(is, options.delimiter, &fields)) {
      return Status::ParseError("missing CSV header row");
    }
    ++row;
    if (fields.size() != schema.num_fields()) {
      return Status::ParseError(
          StrCat("header has ", fields.size(), " columns, schema has ",
                 schema.num_fields()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i] != schema.field(i).name) {
        return Status::ParseError(
            StrCat("header column ", i + 1, " is '", fields[i],
                   "', expected '", schema.field(i).name, "'"));
      }
    }
  }
  while (ReadRecord(is, options.delimiter, &fields)) {
    ++row;
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != schema.num_fields()) {
      return Status::ParseError(StrCat("row ", row, " has ", fields.size(),
                                       " columns, expected ",
                                       schema.num_fields()));
    }
    Tuple tuple;
    for (size_t i = 0; i < fields.size(); ++i) {
      LIPSTICK_ASSIGN_OR_RETURN(
          Value v,
          ParseField(fields[i], schema.field(i).type, options, row, i));
      tuple.Append(std::move(v));
    }
    bag.Add(std::move(tuple));
  }
  return bag;
}

Result<Bag> ReadCsvFile(const std::string& path, const Schema& schema,
                        const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError(StrCat("cannot open ", path));
  Result<Bag> bag = ReadCsv(in, schema, options);
  if (!bag.ok()) return bag.status().WithContext(path);
  return bag;
}

Status WriteCsv(std::ostream& os, const Relation& relation,
                const CsvOptions& options) {
  if (relation.schema == nullptr) {
    return Status::InvalidArgument("relation has no schema");
  }
  LIPSTICK_RETURN_IF_ERROR(CheckScalarSchema(*relation.schema));
  if (options.header) {
    std::vector<std::string> names;
    for (const Field& f : relation.schema->fields()) {
      names.push_back(QuoteIfNeeded(f.name, options.delimiter));
    }
    os << Join(names, std::string(1, options.delimiter)) << "\n";
  }
  for (const AnnotatedTuple& t : relation.bag) {
    std::vector<std::string> cells;
    cells.reserve(t.tuple.size());
    for (const Value& v : t.tuple.values()) {
      cells.push_back(QuoteIfNeeded(FormatField(v, options),
                                    options.delimiter));
    }
    os << Join(cells, std::string(1, options.delimiter)) << "\n";
  }
  if (!os.good()) return Status::IOError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const std::string& path, const Relation& relation,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError(StrCat("cannot open ", path));
  return WriteCsv(out, relation, options);
}

}  // namespace lipstick

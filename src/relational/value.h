#ifndef LIPSTICK_RELATIONAL_VALUE_H_
#define LIPSTICK_RELATIONAL_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "relational/schema.h"

namespace lipstick {

class Bag;
class Tuple;
using BagPtr = std::shared_ptr<const Bag>;
using TuplePtr = std::shared_ptr<const Tuple>;

/// Opaque provenance annotation attached to each tuple: a node id in a
/// ProvenanceGraph. The relational layer treats it as an uninterpreted
/// 64-bit handle; kNoProvenance means tracking is off for this tuple.
using ProvAnnotation = uint64_t;
inline constexpr ProvAnnotation kNoProvenance = 0;

/// A dynamically-typed value of the nested relational model: null, scalar,
/// nested bag, or nested tuple.
class Value {
 public:
  struct NullT {};

  Value() : repr_(NullT{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }
  static Value OfBag(BagPtr bag) { return Value(Repr(std::move(bag))); }
  static Value OfTuple(TuplePtr t) { return Value(Repr(std::move(t))); }

  bool is_null() const { return std::holds_alternative<NullT>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_bag() const { return std::holds_alternative<BagPtr>(repr_); }
  bool is_tuple() const { return std::holds_alternative<TuplePtr>(repr_); }

  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const {
    return std::get<std::string>(repr_);
  }
  const BagPtr& bag() const { return std::get<BagPtr>(repr_); }
  const TuplePtr& tuple() const { return std::get<TuplePtr>(repr_); }

  /// Numeric value widened to double (int or double fields).
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// Total order over values: first by kind, then by content. Bags compare
  /// as sorted multisets (deep, potentially expensive; used by DISTINCT /
  /// ORDER / group keys, which in practice are scalar).
  int Compare(const Value& other) const;
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Deep content hash, consistent with Equals.
  size_t Hash() const;

  std::string ToString() const;

 private:
  using Repr =
      std::variant<NullT, bool, int64_t, double, std::string, BagPtr, TuplePtr>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
inline bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }

/// An ordered list of values; field names live in the companion Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& mutable_values() { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  int Compare(const Tuple& other) const;
  bool Equals(const Tuple& other) const { return Compare(other) == 0; }
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// A tuple paired with its provenance annotation (a graph node id).
struct AnnotatedTuple {
  Tuple tuple;
  ProvAnnotation annot = kNoProvenance;

  AnnotatedTuple() = default;
  AnnotatedTuple(Tuple t, ProvAnnotation a) : tuple(std::move(t)), annot(a) {}
};

/// An unordered bag (multiset) of annotated tuples — the Pig Latin relation
/// payload. Duplicate tuples are physically retained, each with its own
/// annotation, preserving bag semantics.
class Bag {
 public:
  Bag() = default;
  explicit Bag(std::vector<AnnotatedTuple> tuples)
      : tuples_(std::move(tuples)) {}

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const AnnotatedTuple& at(size_t i) const { return tuples_[i]; }
  const std::vector<AnnotatedTuple>& tuples() const { return tuples_; }

  void Add(Tuple t, ProvAnnotation a = kNoProvenance) {
    tuples_.emplace_back(std::move(t), a);
  }
  void Add(AnnotatedTuple t) { tuples_.push_back(std::move(t)); }
  void Reserve(size_t n) { tuples_.reserve(n); }

  /// Multiset equality on tuple contents (annotations ignored); order-
  /// insensitive. Used heavily by tests.
  bool ContentEquals(const Bag& other) const;

  /// Deterministic content string: tuples sorted, annotations omitted.
  std::string ToString() const;

  std::vector<AnnotatedTuple>::const_iterator begin() const {
    return tuples_.begin();
  }
  std::vector<AnnotatedTuple>::const_iterator end() const {
    return tuples_.end();
  }

 private:
  std::vector<AnnotatedTuple> tuples_;
};

/// A named relation: schema + bag of annotated tuples.
struct Relation {
  std::string name;
  SchemaPtr schema;
  Bag bag;

  Relation() = default;
  Relation(std::string n, SchemaPtr s) : name(std::move(n)), schema(std::move(s)) {}
  Relation(std::string n, SchemaPtr s, Bag b)
      : name(std::move(n)), schema(std::move(s)), bag(std::move(b)) {}

  std::string ToString() const;
};

}  // namespace lipstick

#endif  // LIPSTICK_RELATIONAL_VALUE_H_

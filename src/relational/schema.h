#ifndef LIPSTICK_RELATIONAL_SCHEMA_H_
#define LIPSTICK_RELATIONAL_SCHEMA_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace lipstick {

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// The type of a single field in a (possibly nested) Pig Latin relation.
/// Bags and tuples are the nesting constructors: a kBag field holds an
/// unordered bag of tuples conforming to `nested`, a kTuple field holds one
/// such tuple.
class FieldType {
 public:
  enum class Kind { kBool, kInt, kDouble, kString, kBag, kTuple };

  FieldType() : kind_(Kind::kInt) {}
  explicit FieldType(Kind kind) : kind_(kind) {}
  FieldType(Kind kind, SchemaPtr nested)
      : kind_(kind), nested_(std::move(nested)) {}

  static FieldType Bool() { return FieldType(Kind::kBool); }
  static FieldType Int() { return FieldType(Kind::kInt); }
  static FieldType Double() { return FieldType(Kind::kDouble); }
  static FieldType String() { return FieldType(Kind::kString); }
  static FieldType Bag(SchemaPtr element_schema) {
    return FieldType(Kind::kBag, std::move(element_schema));
  }
  static FieldType Tuple(SchemaPtr tuple_schema) {
    return FieldType(Kind::kTuple, std::move(tuple_schema));
  }

  Kind kind() const { return kind_; }
  bool is_scalar() const {
    return kind_ != Kind::kBag && kind_ != Kind::kTuple;
  }
  bool is_numeric() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  /// Element/tuple schema for kBag / kTuple fields; null for scalars.
  const SchemaPtr& nested() const { return nested_; }

  bool Equals(const FieldType& other) const;
  std::string ToString() const;

 private:
  Kind kind_;
  SchemaPtr nested_;
};

/// A named, typed field.
struct Field {
  std::string name;
  FieldType type;

  Field() = default;
  Field(std::string n, FieldType t) : name(std::move(n)), type(std::move(t)) {}
};

/// An ordered list of fields describing the tuples of a relation.
///
/// Field lookup supports Pig Latin's qualified names: a JOIN output contains
/// fields like "Cars::Model" and "ReqModel::Model"; looking up "Model"
/// resolves if exactly one field has that unqualified suffix.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static SchemaPtr Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Finds a field by exact name, or — failing that — by unambiguous
  /// "::"-qualified suffix. Returns nullopt if absent or ambiguous.
  std::optional<size_t> FindField(const std::string& name) const;

  /// Like FindField but returns a descriptive error.
  Result<size_t> ResolveField(const std::string& name) const;

  bool Equals(const Schema& other) const;
  /// Structural equality ignoring field names (used to validate workflow
  /// edges where renaming is routine).
  bool EqualsIgnoreNames(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace lipstick

#endif  // LIPSTICK_RELATIONAL_SCHEMA_H_

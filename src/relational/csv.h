#ifndef LIPSTICK_RELATIONAL_CSV_H_
#define LIPSTICK_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "relational/value.h"

namespace lipstick {

/// Delimited-text I/O for flat (scalar-field) relations: the format used
/// to feed workflow inputs and initial module state from files, e.g. by
/// the lipstick CLI. RFC-4180-style quoting: fields containing the
/// delimiter, quotes, or newlines are wrapped in double quotes; embedded
/// quotes double.
struct CsvOptions {
  char delimiter = ',';
  /// Expect / emit a header row with the schema's field names.
  bool header = true;
  /// Text representing SQL-ish NULL on read and write.
  std::string null_text = "";
};

/// Parses rows into a bag conforming to `schema` (types enforced per
/// field: bool accepts true/false/0/1). Bags/tuples in the schema are
/// rejected. Annotations are left empty.
Result<Bag> ReadCsv(std::istream& is, const Schema& schema,
                    const CsvOptions& options = {});
Result<Bag> ReadCsvFile(const std::string& path, const Schema& schema,
                        const CsvOptions& options = {});

/// Writes the relation's tuples (scalar fields only).
Status WriteCsv(std::ostream& os, const Relation& relation,
                const CsvOptions& options = {});
Status WriteCsvFile(const std::string& path, const Relation& relation,
                    const CsvOptions& options = {});

}  // namespace lipstick

#endif  // LIPSTICK_RELATIONAL_CSV_H_

#include "relational/value.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace lipstick {

namespace {

// Stable kind rank for the cross-kind total order.
int KindRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;  // int and double compare numerically
  if (v.is_string()) return 3;
  if (v.is_tuple()) return 4;
  return 5;  // bag
}

int CompareDouble(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = KindRank(*this), rb = KindRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // null == null
    case 1:
      return (bool_value() ? 1 : 0) - (other.bool_value() ? 1 : 0);
    case 2:
      if (is_int() && other.is_int()) {
        int64_t a = int_value(), b = other.int_value();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      return CompareDouble(AsDouble(), other.AsDouble());
    case 3:
      return string_value().compare(other.string_value());
    case 4:
      return tuple()->Compare(*other.tuple());
    default: {
      // Bags compare as sorted multisets of tuple contents.
      const Bag& a = *bag();
      const Bag& b = *other.bag();
      std::vector<const Tuple*> ta, tb;
      ta.reserve(a.size());
      tb.reserve(b.size());
      for (const auto& t : a) ta.push_back(&t.tuple);
      for (const auto& t : b) tb.push_back(&t.tuple);
      auto less = [](const Tuple* x, const Tuple* y) {
        return x->Compare(*y) < 0;
      };
      std::sort(ta.begin(), ta.end(), less);
      std::sort(tb.begin(), tb.end(), less);
      size_t n = std::min(ta.size(), tb.size());
      for (size_t i = 0; i < n; ++i) {
        int c = ta[i]->Compare(*tb[i]);
        if (c != 0) return c;
      }
      if (ta.size() != tb.size()) return ta.size() < tb.size() ? -1 : 1;
      return 0;
    }
  }
}

namespace {
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}
}  // namespace

size_t Value::Hash() const {
  if (is_null()) return 0x517cc1b7;
  if (is_bool()) return bool_value() ? 0x9e3779b9 : 0x85ebca6b;
  if (is_numeric()) {
    // Ints and doubles that compare equal must hash equal.
    double d = AsDouble();
    if (is_int() || d == std::floor(d)) {
      return std::hash<int64_t>{}(static_cast<int64_t>(d)) ^ 0xc2b2ae35;
    }
    return std::hash<double>{}(d) ^ 0xc2b2ae35;
  }
  if (is_string()) return std::hash<std::string>{}(string_value());
  if (is_tuple()) return tuple()->Hash();
  // Bag: order-insensitive combination.
  size_t h = 0x27d4eb2f;
  for (const auto& t : *bag()) h += t.tuple.Hash();
  return h;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int()) return StrCat(int_value());
  if (is_double()) {
    // Keep a decimal marker so doubles survive a print/parse round trip
    // (e.g. 2.0 must not come back as the integer 2).
    std::string s = StrCat(double_value());
    if (s.find('.') == std::string::npos &&
        s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos &&
        s.find("nan") == std::string::npos) {
      s += ".0";
    }
    return s;
  }
  if (is_string()) return StrCat("'", string_value(), "'");
  if (is_tuple()) return tuple()->ToString();
  return bag()->ToString();
}

int Tuple::Compare(const Tuple& other) const {
  size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() != other.values_.size()) {
    return values_.size() < other.values_.size() ? -1 : 1;
  }
  return 0;
}

size_t Tuple::Hash() const {
  size_t h = 0x811c9dc5;
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return StrCat("(", Join(parts, ","), ")");
}

bool Bag::ContentEquals(const Bag& other) const {
  if (size() != other.size()) return false;
  std::vector<const Tuple*> a, b;
  a.reserve(size());
  b.reserve(size());
  for (const auto& t : tuples_) a.push_back(&t.tuple);
  for (const auto& t : other.tuples_) b.push_back(&t.tuple);
  auto less = [](const Tuple* x, const Tuple* y) { return x->Compare(*y) < 0; };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->Equals(*b[i])) return false;
  }
  return true;
}

std::string Bag::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(tuples_.size());
  for (const auto& t : tuples_) parts.push_back(t.tuple.ToString());
  std::sort(parts.begin(), parts.end());
  return StrCat("{", Join(parts, ","), "}");
}

std::string Relation::ToString() const {
  return StrCat(name, schema ? schema->ToString() : "()", " = ",
                bag.ToString());
}

}  // namespace lipstick

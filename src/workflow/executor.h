#ifndef LIPSTICK_WORKFLOW_EXECUTOR_H_
#define LIPSTICK_WORKFLOW_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"
#include "workflow/workflow.h"

namespace lipstick {

class Wal;

/// External input for one execution: node id -> input relation name -> bag.
/// Only nodes in In (no incoming edges) may receive external input.
using WorkflowInputs = std::map<std::string, std::map<std::string, Bag>>;

/// Results of one execution: node id -> output relation name -> relation.
/// Contains every node's outputs; callers typically read the Out nodes.
using WorkflowOutputs = std::map<std::string, std::map<std::string, Relation>>;

/// What the executor does with the rest of the workflow when a node fails
/// (after exhausting its retry budget).
enum class FailurePolicy : uint8_t {
  /// Abort the execution and roll everything back: module state, the
  /// execution counter, and all provenance recorded by this execution are
  /// restored to their pre-Execute values. Execute returns the node's
  /// error. This is the default and matches transactional semantics.
  kFailFast,
  /// Skip the failed node's transitive successors (recorded as skipped in
  /// the report); independent branches still run, produce outputs, and
  /// record provenance. Execute returns OK with partial outputs.
  kSkipDownstream,
  /// Keep executing every node; successors of a failed node simply see no
  /// tuples on the dead in-edges. Execute returns OK with partial outputs.
  kBestEffort,
};

const char* FailurePolicyToString(FailurePolicy policy);

/// Per-node retry budget with exponential backoff. Jitter is drawn from a
/// deterministic splitmix64 stream seeded by (seed, node id, execution), so
/// retry schedules are reproducible bit-for-bit.
struct RetryPolicy {
  int max_attempts = 1;            // total attempts (1 = no retry)
  double initial_backoff_ms = 0;   // wait before the 2nd attempt
  double backoff_multiplier = 2.0; // growth factor per further attempt
  double max_backoff_ms = 1000;    // backoff ceiling
  double jitter = 0;               // +/- fraction of the backoff (0..1)
  uint64_t seed = 0x11b57c4u;      // seeds the jitter stream
};

/// Tuning knobs for one Execute() call. The defaults reproduce strict
/// reference semantics: one attempt per node, no timeout, fail fast with
/// full rollback.
struct ExecutionOptions {
  RetryPolicy retry;
  /// Per-attempt wall-clock budget in seconds (<= 0: unlimited). The
  /// budget is cooperative: the Pig interpreter checks it between
  /// statements, so a single long-running statement is not preempted.
  double node_timeout_seconds = 0;
  FailurePolicy failure_policy = FailurePolicy::kFailFast;
  /// Crash durability (provenance/wal.h). When set — and attached to the
  /// graph passed to Execute — the executor marks invocation commits after
  /// each successful node, a savepoint after each committed execution, and
  /// lets the log checkpoint itself per its WalOptions. Null: no logging.
  /// The Wal must outlive the Execute call; WAL errors degrade durability
  /// but never fail the execution (see Wal::status()).
  Wal* durability = nullptr;
};

/// Outcome of one node within one Execute() call.
struct NodeReport {
  int attempts = 0;          // invocation attempts made (0 if skipped)
  Status status;             // final status of the last attempt
  double elapsed_seconds = 0;// wall-clock across all attempts (inc. backoff)
  double queue_wait_seconds = 0;  // ready-to-dispatch wait (parallel path)
  bool skipped = false;      // true: never attempted (kSkipDownstream)
  std::string skipped_because_of;  // failed ancestor that caused the skip
};

/// Outcome of one Execute() call, node by node.
struct ExecutionReport {
  uint32_t execution = 0;    // sequence index this report describes
  double total_seconds = 0;  // wall-clock for the whole Execute() call
  std::map<std::string, NodeReport> nodes;

  bool all_ok() const {
    for (const auto& [id, r] : nodes) {
      if (r.skipped || !r.status.ok()) return false;
    }
    return true;
  }
  size_t failed_count() const {
    size_t n = 0;
    for (const auto& [id, r] : nodes) {
      if (!r.skipped && !r.status.ok()) ++n;
    }
    return n;
  }
  size_t skipped_count() const {
    size_t n = 0;
    for (const auto& [id, r] : nodes) n += r.skipped ? 1 : 0;
    return n;
  }
};

/// Executes a workflow according to the reference semantics of
/// Definition 2.3: nodes run in a fixed topological order; each invocation
/// runs Qstate then Qout on the module's current input and state, producing
/// new state (threaded to later invocations of the same module identity,
/// within this execution and across the execution sequence) and outputs
/// that are copied along the out-edges.
///
/// When a ProvenanceGraph is supplied to Execute, the executor records
/// fine-grained provenance: workflow-input "I" tokens, per-invocation "m"
/// nodes, "i"/"o" wrapper nodes for module inputs/outputs, lazily-created
/// "s" nodes for state tuples that contribute to derivations, and all
/// intermediate operator structure via the Pig interpreter.
///
/// Failure semantics: Execute is transactional. Module state and the
/// execution counter are committed only when the execution completes under
/// its FailurePolicy; a kFailFast abort leaves GetState(), executions_run()
/// and the provenance graph exactly as they were before the call. Failed
/// invocation attempts (including retried ones) always discard their
/// provenance — the merged graph never contains structure from an attempt
/// that did not commit, so it always seals cleanly.
///
/// With num_workers > 1, independent nodes execute concurrently on a
/// thread pool; each worker appends provenance to its own graph shard, so
/// tracking is lock-free on the hot path. Nodes that share a module
/// instance must be ordered by the DAG (enforced by Initialize).
class WorkflowExecutor {
 public:
  WorkflowExecutor(const Workflow* workflow, const pig::UdfRegistry* udfs)
      : workflow_(workflow), udfs_(udfs) {}

  /// Validates the workflow and prepares execution. Must be called before
  /// Execute / SetInitialState.
  Status Initialize();

  /// Installs the initial state instance of one module identity.
  Status SetInitialState(const std::string& instance,
                         const std::string& relation, Bag bag);

  /// Runs one execution of the sequence with the executor's default
  /// options (see set_default_options). `graph` may be null (tracking
  /// off); `num_workers` > 1 enables the parallel executor.
  Result<WorkflowOutputs> Execute(const WorkflowInputs& inputs,
                                  ProvenanceGraph* graph,
                                  int num_workers = 1);

  /// Runs one execution with explicit fault-tolerance options. If `report`
  /// is non-null it is filled with per-node outcomes — also when the
  /// execution fails, so callers can see which node failed, how many
  /// attempts it made, and what was skipped because of it.
  Result<WorkflowOutputs> Execute(const WorkflowInputs& inputs,
                                  ProvenanceGraph* graph,
                                  const ExecutionOptions& options,
                                  ExecutionReport* report = nullptr,
                                  int num_workers = 1);

  /// Current state instance of a module identity (empty relation if the
  /// identity never executed and no initial state was set).
  Result<const Relation*> GetState(const std::string& instance,
                                   const std::string& relation) const;

  /// Number of committed executions so far (the sequence index). Aborted
  /// executions do not advance it.
  uint32_t executions_run() const { return execution_count_; }

  /// Wall-clock seconds spent in each node during the most recent
  /// Execute() call. Used by the parallelism benchmark to replay the
  /// execution on a simulated cluster.
  const std::map<std::string, double>& last_node_times() const {
    return last_node_times_;
  }

  /// Options used by the short Execute overload. Lets owners of an
  /// executor (e.g. the workflowgen drivers, whose Run loops call the
  /// short overload internally) opt whole execution sequences into
  /// durability or fault-tolerance settings without changing call sites.
  void set_default_options(const ExecutionOptions& options) {
    default_options_ = options;
  }
  const ExecutionOptions& default_options() const { return default_options_; }

  /// Ablation switch: when true, every state tuple of every invocation
  /// receives an "s" node up front (the literal construction of Section
  /// 3.2). Default false: "s" nodes are created lazily, only for state
  /// tuples that contribute to a derivation — same query semantics, far
  /// smaller graphs (see bench_ablation_state_nodes).
  void set_eager_state_nodes(bool eager) { eager_state_nodes_ = eager; }

 private:
  struct NodeRun;    // per-node execution task, defined in the .cc
  struct ExecState;  // per-Execute bookkeeping, defined in the .cc

  /// Runs all attempts of one node, filling `report_entry`. Returns the
  /// final status; on failure the node's state mutations and provenance
  /// are already rolled back.
  Status RunNodeWithRetries(const std::string& node_id, ExecState* exec,
                            ShardWriter* writer, NodeReport* report_entry);

  const Workflow* workflow_;
  const pig::UdfRegistry* udfs_;
  std::vector<std::string> topo_order_;
  // Module identity -> state relation name -> current instance.
  std::map<std::string, std::map<std::string, Relation>> state_;
  std::map<std::string, double> last_node_times_;
  ExecutionOptions default_options_;
  uint32_t execution_count_ = 0;
  bool initialized_ = false;
  bool eager_state_nodes_ = false;
};

}  // namespace lipstick

#endif  // LIPSTICK_WORKFLOW_EXECUTOR_H_

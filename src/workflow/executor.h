#ifndef LIPSTICK_WORKFLOW_EXECUTOR_H_
#define LIPSTICK_WORKFLOW_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"
#include "workflow/workflow.h"

namespace lipstick {

/// External input for one execution: node id -> input relation name -> bag.
/// Only nodes in In (no incoming edges) may receive external input.
using WorkflowInputs = std::map<std::string, std::map<std::string, Bag>>;

/// Results of one execution: node id -> output relation name -> relation.
/// Contains every node's outputs; callers typically read the Out nodes.
using WorkflowOutputs = std::map<std::string, std::map<std::string, Relation>>;

/// Executes a workflow according to the reference semantics of
/// Definition 2.3: nodes run in a fixed topological order; each invocation
/// runs Qstate then Qout on the module's current input and state, producing
/// new state (threaded to later invocations of the same module identity,
/// within this execution and across the execution sequence) and outputs
/// that are copied along the out-edges.
///
/// When a ProvenanceGraph is supplied to Execute, the executor records
/// fine-grained provenance: workflow-input "I" tokens, per-invocation "m"
/// nodes, "i"/"o" wrapper nodes for module inputs/outputs, lazily-created
/// "s" nodes for state tuples that contribute to derivations, and all
/// intermediate operator structure via the Pig interpreter.
///
/// With num_workers > 1, independent nodes execute concurrently on a
/// thread pool; each worker appends provenance to its own graph shard, so
/// tracking is lock-free on the hot path. Nodes that share a module
/// instance must be ordered by the DAG (enforced by Initialize).
class WorkflowExecutor {
 public:
  WorkflowExecutor(const Workflow* workflow, const pig::UdfRegistry* udfs)
      : workflow_(workflow), udfs_(udfs) {}

  /// Validates the workflow and prepares execution. Must be called before
  /// Execute / SetInitialState.
  Status Initialize();

  /// Installs the initial state instance of one module identity.
  Status SetInitialState(const std::string& instance,
                         const std::string& relation, Bag bag);

  /// Runs one execution of the sequence. `graph` may be null (tracking
  /// off); `num_workers` > 1 enables the parallel executor.
  Result<WorkflowOutputs> Execute(const WorkflowInputs& inputs,
                                  ProvenanceGraph* graph,
                                  int num_workers = 1);

  /// Current state instance of a module identity (empty relation if the
  /// identity never executed and no initial state was set).
  Result<const Relation*> GetState(const std::string& instance,
                                   const std::string& relation) const;

  /// Number of executions performed so far (the sequence index).
  uint32_t executions_run() const { return execution_count_; }

  /// Wall-clock seconds spent in each node during the most recent
  /// Execute() call. Used by the parallelism benchmark to replay the
  /// execution on a simulated cluster.
  const std::map<std::string, double>& last_node_times() const {
    return last_node_times_;
  }

  /// Ablation switch: when true, every state tuple of every invocation
  /// receives an "s" node up front (the literal construction of Section
  /// 3.2). Default false: "s" nodes are created lazily, only for state
  /// tuples that contribute to a derivation — same query semantics, far
  /// smaller graphs (see bench_ablation_state_nodes).
  void set_eager_state_nodes(bool eager) { eager_state_nodes_ = eager; }

 private:
  struct NodeRun;  // per-node execution task, defined in the .cc

  const Workflow* workflow_;
  const pig::UdfRegistry* udfs_;
  std::vector<std::string> topo_order_;
  // Module identity -> state relation name -> current instance.
  std::map<std::string, std::map<std::string, Relation>> state_;
  std::map<std::string, double> last_node_times_;
  uint32_t execution_count_ = 0;
  bool initialized_ = false;
  bool eager_state_nodes_ = false;
};

}  // namespace lipstick

#endif  // LIPSTICK_WORKFLOW_EXECUTOR_H_

#include "workflow/workflow.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/str_util.h"

namespace lipstick {

Status Workflow::AddModule(ModuleSpec spec) {
  if (modules_.count(spec.name)) {
    return Status::AlreadyExists(
        StrCat("module '", spec.name, "' already registered"));
  }
  modules_.emplace(spec.name, std::move(spec));
  return Status::OK();
}

Status Workflow::AddNode(const std::string& id, const std::string& module,
                         const std::string& instance, SourceLoc loc) {
  for (const WorkflowNode& n : nodes_) {
    if (n.id == id) {
      return Status::AlreadyExists(StrCat("node '", id, "' already exists"));
    }
  }
  nodes_.push_back(
      WorkflowNode{id, module, instance.empty() ? id : instance, loc});
  return Status::OK();
}

Status Workflow::AddEdge(const std::string& from, const std::string& to,
                         std::vector<EdgeRelation> relations, SourceLoc loc) {
  if (relations.empty()) {
    return Status::InvalidArgument("edge must carry at least one relation");
  }
  edges_.push_back(WorkflowEdge{from, to, std::move(relations), loc});
  return Status::OK();
}

Status Workflow::AddEdge(const std::string& from, const std::string& to,
                         const std::string& relation) {
  return AddEdge(from, to, {EdgeRelation{relation, relation}});
}

Result<std::vector<std::string>> Workflow::AddUnrolledLoop(
    const std::string& module, const std::string& prefix, int iterations,
    const std::vector<EdgeRelation>& loop_relations) {
  if (iterations < 1) {
    return Status::InvalidArgument("loop must run at least once");
  }
  std::vector<std::string> ids;
  ids.reserve(iterations);
  for (int i = 1; i <= iterations; ++i) {
    std::string id = StrCat(prefix, i);
    LIPSTICK_RETURN_IF_ERROR(AddNode(id, module));
    if (i > 1) {
      LIPSTICK_RETURN_IF_ERROR(AddEdge(ids.back(), id, loop_relations));
    }
    ids.push_back(std::move(id));
  }
  return ids;
}

std::vector<std::string> Workflow::ModuleNames() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& [name, spec] : modules_) names.push_back(name);
  return names;
}

Result<const WorkflowNode*> Workflow::FindNode(const std::string& id) const {
  for (const WorkflowNode& n : nodes_) {
    if (n.id == id) return &n;
  }
  return Status::NotFound(StrCat("node '", id, "' not found"));
}

Result<const ModuleSpec*> Workflow::FindModule(const std::string& name) const {
  auto it = modules_.find(name);
  if (it == modules_.end()) {
    return Status::NotFound(StrCat("module '", name, "' not found"));
  }
  return &it->second;
}

std::vector<const WorkflowEdge*> Workflow::IncomingEdges(
    const std::string& id) const {
  std::vector<const WorkflowEdge*> out;
  for (const WorkflowEdge& e : edges_) {
    if (e.to == id) out.push_back(&e);
  }
  return out;
}

std::vector<const WorkflowEdge*> Workflow::OutgoingEdges(
    const std::string& id) const {
  std::vector<const WorkflowEdge*> out;
  for (const WorkflowEdge& e : edges_) {
    if (e.from == id) out.push_back(&e);
  }
  return out;
}

std::vector<std::string> Workflow::InputNodes() const {
  std::vector<std::string> out;
  for (const WorkflowNode& n : nodes_) {
    if (IncomingEdges(n.id).empty()) out.push_back(n.id);
  }
  return out;
}

std::vector<std::string> Workflow::OutputNodes() const {
  std::vector<std::string> out;
  for (const WorkflowNode& n : nodes_) {
    if (OutgoingEdges(n.id).empty()) out.push_back(n.id);
  }
  return out;
}

Result<std::vector<std::string>> Workflow::TopologicalOrder() const {
  std::map<std::string, int> in_degree;
  for (const WorkflowNode& n : nodes_) in_degree[n.id] = 0;
  for (const WorkflowEdge& e : edges_) ++in_degree[e.to];

  std::deque<std::string> ready;
  for (const WorkflowNode& n : nodes_) {
    if (in_degree[n.id] == 0) ready.push_back(n.id);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    std::string id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const WorkflowEdge* e : OutgoingEdges(id)) {
      if (--in_degree[e->to] == 0) ready.push_back(e->to);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("workflow graph contains a cycle");
  }
  return order;
}

Status Workflow::Validate(const pig::UdfRegistry* udfs) const {
  if (nodes_.empty()) return Status::InvalidArgument("workflow has no nodes");

  // Modules referenced by nodes exist and validate.
  std::set<std::string> used_modules;
  std::map<std::string, std::string> instance_module;
  for (const WorkflowNode& n : nodes_) {
    LIPSTICK_ASSIGN_OR_RETURN(const ModuleSpec* spec, FindModule(n.module));
    (void)spec;
    used_modules.insert(n.module);
    auto [it, inserted] = instance_module.emplace(n.instance, n.module);
    if (!inserted && it->second != n.module) {
      return Status::InvalidArgument(
          StrCat("instance '", n.instance, "' bound to modules '", it->second,
                 "' and '", n.module, "'"));
    }
  }
  for (const std::string& m : used_modules) {
    LIPSTICK_RETURN_IF_ERROR(modules_.at(m).Validate(udfs));
  }

  // Acyclicity.
  LIPSTICK_RETURN_IF_ERROR(TopologicalOrder().status());

  // Edge endpoints and relation compatibility.
  for (const WorkflowEdge& e : edges_) {
    LIPSTICK_ASSIGN_OR_RETURN(const WorkflowNode* from, FindNode(e.from));
    LIPSTICK_ASSIGN_OR_RETURN(const WorkflowNode* to, FindNode(e.to));
    const ModuleSpec& from_spec = modules_.at(from->module);
    const ModuleSpec& to_spec = modules_.at(to->module);
    for (const EdgeRelation& rel : e.relations) {
      auto out_it = from_spec.output_schemas.find(rel.from_relation);
      if (out_it == from_spec.output_schemas.end()) {
        return Status::InvalidArgument(
            StrCat("edge ", e.from, "->", e.to, ": '", rel.from_relation,
                   "' is not an output of module ", from_spec.name));
      }
      auto in_it = to_spec.input_schemas.find(rel.to_relation);
      if (in_it == to_spec.input_schemas.end()) {
        return Status::InvalidArgument(
            StrCat("edge ", e.from, "->", e.to, ": '", rel.to_relation,
                   "' is not an input of module ", to_spec.name));
      }
      if (!out_it->second->EqualsIgnoreNames(*in_it->second)) {
        return Status::TypeError(
            StrCat("edge ", e.from, "->", e.to, ": schema mismatch ",
                   out_it->second->ToString(), " vs ",
                   in_it->second->ToString()));
      }
    }
  }

  // Input coverage: every input relation of every non-input node must be
  // fed by at least one incoming edge (Definition 2.2, last condition).
  for (const WorkflowNode& n : nodes_) {
    std::vector<const WorkflowEdge*> incoming = IncomingEdges(n.id);
    if (incoming.empty()) continue;  // In node: fed externally
    const ModuleSpec& spec = modules_.at(n.module);
    for (const auto& [in_name, unused] : spec.input_schemas) {
      bool covered = false;
      for (const WorkflowEdge* e : incoming) {
        for (const EdgeRelation& rel : e->relations) {
          if (rel.to_relation == in_name) covered = true;
        }
      }
      if (!covered) {
        return Status::InvalidArgument(
            StrCat("node ", n.id, ": input relation '", in_name,
                   "' is not fed by any incoming edge"));
      }
    }
  }

  // Weak connectivity (Definition 2.2 requires a connected DAG).
  if (nodes_.size() > 1) {
    std::map<std::string, std::vector<std::string>> undirected;
    for (const WorkflowEdge& e : edges_) {
      undirected[e.from].push_back(e.to);
      undirected[e.to].push_back(e.from);
    }
    std::set<std::string> seen{nodes_[0].id};
    std::deque<std::string> queue{nodes_[0].id};
    while (!queue.empty()) {
      std::string id = queue.front();
      queue.pop_front();
      for (const std::string& next : undirected[id]) {
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
    if (seen.size() != nodes_.size()) {
      return Status::InvalidArgument("workflow graph is not connected");
    }
  }
  return Status::OK();
}

}  // namespace lipstick

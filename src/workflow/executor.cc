#include "workflow/executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_set>

#include "analysis/graph_validator.h"
#include "common/fault.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pig/interpreter.h"
#include "provenance/wal.h"

namespace lipstick {

namespace {

/// Metric ids for the executor's instrumentation hooks, registered once.
/// Recording is a no-op (one relaxed load) until obs is enabled.
struct ExecutorMetrics {
  obs::MetricId executions;     // committed + aborted Execute() calls
  obs::MetricId nodes_run;      // node invocations that produced a result
  obs::MetricId node_failures;  // nodes whose final attempt failed
  obs::MetricId retries;        // attempts beyond the first, across nodes
  obs::MetricId node_us;        // per-node wall time (all attempts)
  obs::MetricId queue_wait_us;  // ready-to-dispatch wait (parallel path)
  obs::MetricId prov_nodes;     // provenance nodes appended by node runs
  obs::MetricId shard_nodes;    // appended nodes per shard per execution

  static const ExecutorMetrics& Get() {
    static const ExecutorMetrics m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return ExecutorMetrics{
          r.RegisterCounter("executor.executions"),
          r.RegisterCounter("executor.nodes_run"),
          r.RegisterCounter("executor.node_failures"),
          r.RegisterCounter("executor.retries"),
          r.RegisterHistogram("executor.node_us"),
          r.RegisterHistogram("executor.queue_wait_us"),
          r.RegisterCounter("provenance.nodes_appended"),
          r.RegisterHistogram("executor.shard_nodes"),
      };
    }();
    return m;
  }
};

/// Steady-clock seconds, for queue-wait bookkeeping across threads.
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Checks that nodes sharing a module instance are totally ordered by the
/// DAG, so state threading is deterministic and parallel execution safe.
Status CheckInstanceOrdering(const Workflow& wf) {
  // Reachability via DFS from each node (workflows are small).
  std::map<std::string, std::set<std::string>> reach;
  Result<std::vector<std::string>> topo = wf.TopologicalOrder();
  LIPSTICK_RETURN_IF_ERROR(topo.status());
  for (auto it = topo.value().rbegin(); it != topo.value().rend(); ++it) {
    std::set<std::string>& r = reach[*it];
    for (const WorkflowEdge* e : wf.OutgoingEdges(*it)) {
      r.insert(e->to);
      const std::set<std::string>& down = reach[e->to];
      r.insert(down.begin(), down.end());
    }
  }
  for (size_t i = 0; i < wf.nodes().size(); ++i) {
    for (size_t j = i + 1; j < wf.nodes().size(); ++j) {
      const WorkflowNode& a = wf.nodes()[i];
      const WorkflowNode& b = wf.nodes()[j];
      if (a.instance != b.instance) continue;
      if (!reach[a.id].count(b.id) && !reach[b.id].count(a.id)) {
        return Status::InvalidArgument(
            StrCat("nodes '", a.id, "' and '", b.id,
                   "' share instance '", a.instance,
                   "' but are not ordered by the DAG"));
      }
    }
  }
  return Status::OK();
}

/// Collects the input bags `node_id` receives over its in-edges, unioning
/// bags when several edges feed the same input relation. Edges from nodes
/// that produced no outputs (failed / skipped upstream under a lenient
/// failure policy) contribute nothing.
std::map<std::string, Bag> GatherEdgeInputs(const Workflow& wf,
                                            const std::string& node_id,
                                            const WorkflowOutputs& outputs) {
  std::map<std::string, Bag> in;
  for (const WorkflowEdge* e : wf.IncomingEdges(node_id)) {
    auto from_it = outputs.find(e->from);
    if (from_it == outputs.end()) continue;
    for (const EdgeRelation& rel : e->relations) {
      auto rel_it = from_it->second.find(rel.from_relation);
      if (rel_it == from_it->second.end()) continue;
      Bag& dst = in[rel.to_relation];
      for (const AnnotatedTuple& t : rel_it->second.bag) dst.Add(t);
    }
  }
  return in;
}

/// Backoff before attempt `attempt + 1` (1-based `attempt` just failed):
/// initial * multiplier^(attempt-1), capped, with symmetric jitter drawn
/// from the caller's deterministic stream.
double NextBackoffMs(const RetryPolicy& retry, int attempt, Rng* rng) {
  double backoff = retry.initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) backoff *= retry.backoff_multiplier;
  backoff = std::min(backoff, retry.max_backoff_ms);
  if (retry.jitter > 0 && backoff > 0) {
    backoff *= 1.0 - retry.jitter + 2.0 * retry.jitter * rng->UniformDouble();
  }
  return backoff;
}

}  // namespace

const char* FailurePolicyToString(FailurePolicy policy) {
  switch (policy) {
    case FailurePolicy::kFailFast:
      return "fail-fast";
    case FailurePolicy::kSkipDownstream:
      return "skip-downstream";
    case FailurePolicy::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

Status WorkflowExecutor::Initialize() {
  LIPSTICK_RETURN_IF_ERROR(workflow_->Validate(udfs_));
  LIPSTICK_RETURN_IF_ERROR(CheckInstanceOrdering(*workflow_));
  LIPSTICK_ASSIGN_OR_RETURN(topo_order_, workflow_->TopologicalOrder());
  // Materialize a state map for every module identity (even stateless ones,
  // so Execute never inserts into state_ from worker threads) and empty
  // state instances for every state relation.
  for (const WorkflowNode& n : workflow_->nodes()) {
    auto& inst_state = state_[n.instance];
    LIPSTICK_ASSIGN_OR_RETURN(const ModuleSpec* spec,
                              workflow_->FindModule(n.module));
    for (const auto& [rel_name, schema] : spec->state_schemas) {
      auto& rel = inst_state[rel_name];
      if (rel.schema == nullptr) rel = Relation(rel_name, schema);
    }
  }
  initialized_ = true;
  return Status::OK();
}

Status WorkflowExecutor::SetInitialState(const std::string& instance,
                                         const std::string& relation,
                                         Bag bag) {
  if (!initialized_) return Status::Internal("Initialize() not called");
  auto inst_it = state_.find(instance);
  if (inst_it == state_.end()) {
    return Status::NotFound(StrCat("unknown module instance '", instance,
                                   "'"));
  }
  auto rel_it = inst_it->second.find(relation);
  if (rel_it == inst_it->second.end()) {
    return Status::NotFound(StrCat("instance '", instance,
                                   "' has no state relation '", relation,
                                   "'"));
  }
  rel_it->second.bag = std::move(bag);
  return Status::OK();
}

Result<const Relation*> WorkflowExecutor::GetState(
    const std::string& instance, const std::string& relation) const {
  auto inst_it = state_.find(instance);
  if (inst_it == state_.end()) {
    return Status::NotFound(StrCat("unknown module instance '", instance,
                                   "'"));
  }
  auto rel_it = inst_it->second.find(relation);
  if (rel_it == inst_it->second.end()) {
    return Status::NotFound(StrCat("instance '", instance,
                                   "' has no state relation '", relation,
                                   "'"));
  }
  return &rel_it->second;
}

/// Executes one node (one module invocation). Not a member to keep the
/// threading interface narrow: everything it touches is passed explicitly.
struct WorkflowExecutor::NodeRun {
  const Workflow* workflow;
  const pig::UdfRegistry* udfs;
  const WorkflowNode* node;
  const ModuleSpec* spec;
  const WorkflowInputs* external_inputs;
  // Module-identity state (owned by the executor; exclusive access is
  // guaranteed by DAG ordering of same-instance nodes).
  std::map<std::string, Relation>* state;
  uint32_t execution = 0;
  ShardWriter* writer = nullptr;  // null -> no tracking
  bool eager_state_nodes = false;
  const Deadline* deadline = nullptr;  // per-attempt budget; may be null
  // Invocation registered by the last Run() call, so a failed attempt's
  // record can be aborted (kNoInvocation when tracking is off).
  uint32_t last_invocation = kNoInvocation;

  Result<std::map<std::string, Relation>> Run(
      const std::map<std::string, Bag>& edge_inputs) {
    uint32_t inv = kNoInvocation;
    if (writer != nullptr) {
      inv = writer->BeginInvocation(spec->name, node->instance, execution);
      writer->set_current_invocation(inv);
    }
    last_invocation = inv;

    pig::Environment env;
    bool is_input_node = workflow->IncomingEdges(node->id).empty();

    // Bind input relations. Input-node tuples get workflow-input "I"
    // tokens; all input tuples are wrapped with "i" nodes ·(tuple, m).
    for (const auto& [rel_name, schema] : spec->input_schemas) {
      Bag bag;
      const Bag* source = nullptr;
      if (is_input_node) {
        auto node_it = external_inputs->find(node->id);
        if (node_it != external_inputs->end()) {
          auto rel_it = node_it->second.find(rel_name);
          if (rel_it != node_it->second.end()) source = &rel_it->second;
        }
      } else {
        auto it = edge_inputs.find(rel_name);
        if (it != edge_inputs.end()) source = &it->second;
      }
      if (source != nullptr) {
        bag.Reserve(source->size());
        size_t i = 0;
        for (const AnnotatedTuple& t : *source) {
          ProvAnnotation annot = t.annot;
          if (writer != nullptr) {
            NodeId base = annot;
            if (is_input_node || base == kNoProvenance) {
              base = writer->WorkflowInput(StrCat(
                  "I", execution, ".", node->id, ".", rel_name, "[", i, "]"));
            }
            annot = writer->ModuleInput(inv, base);
          }
          bag.Add(t.tuple, annot);
          ++i;
        }
      }
      env.Bind(rel_name, Relation(rel_name, schema, std::move(bag)));
    }

    // Bind state relations with their stored annotations; tuples that have
    // never been annotated get a one-time base token. "s" nodes are
    // created lazily (only for tuples that contribute to derivations).
    std::unordered_set<NodeId> state_eligible;
    for (auto& [rel_name, rel] : *state) {
      if (writer != nullptr) {
        Bag rebuilt;
        rebuilt.Reserve(rel.bag.size());
        size_t i = 0;
        for (const AnnotatedTuple& t : rel.bag) {
          ProvAnnotation annot = t.annot;
          if (annot == kNoProvenance) {
            annot = writer->Token(
                StrCat(node->instance, ".", rel_name, "[", i, "]"),
                NodeRole::kStateBase);
          }
          state_eligible.insert(annot);
          rebuilt.Add(t.tuple, annot);
          ++i;
        }
        rel.bag = std::move(rebuilt);  // persist the base tokens
      }
      env.Bind(rel_name, rel);
    }
    if (writer != nullptr) {
      writer->BeginStateScope(inv, &state_eligible);
      if (eager_state_nodes) {
        // Literal Section 3.2 construction: an "s" node per state tuple
        // per invocation, whether or not the tuple is ever used.
        for (NodeId base : state_eligible) writer->ResolveParent(base);
      }
    }

    // Qstate then Qout; Qout sees the post-Qstate bindings.
    pig::Interpreter interp(udfs);
    Status status = interp.Run(spec->qstate, &env, writer, deadline);
    if (status.ok()) status = interp.Run(spec->qout, &env, writer, deadline);
    if (writer != nullptr) writer->EndStateScope();
    if (!status.ok()) {
      return status.WithContext(
          StrCat("node ", node->id, " (module ", spec->name, ", execution ",
                 execution, ")"));
    }

    // Persist new state (annotations carried through).
    for (auto& [rel_name, rel] : *state) {
      Result<const Relation*> bound = env.Lookup(rel_name);
      if (bound.ok()) {
        rel.bag = bound.value()->bag;
      }
    }

    // Collect outputs, wrapping each tuple with an "o" node ·(tuple, m).
    std::map<std::string, Relation> outputs;
    for (const auto& [rel_name, schema] : spec->output_schemas) {
      Result<const Relation*> bound = env.Lookup(rel_name);
      if (!bound.ok()) {
        return Status::ExecutionError(
            StrCat("node ", node->id, ": Qout did not bind output '",
                   rel_name, "'"));
      }
      Relation out(rel_name, schema);
      out.bag.Reserve(bound.value()->bag.size());
      for (const AnnotatedTuple& t : bound.value()->bag) {
        ProvAnnotation annot = t.annot;
        if (writer != nullptr) {
          annot = writer->ModuleOutput(inv, annot);
        }
        out.bag.Add(t.tuple, annot);
      }
      outputs.emplace(rel_name, std::move(out));
    }
    return outputs;
  }
};

/// Per-Execute bookkeeping shared between the scheduler and node runs.
struct WorkflowExecutor::ExecState {
  const WorkflowInputs* inputs = nullptr;
  ProvenanceGraph* graph = nullptr;
  const ExecutionOptions* options = nullptr;
  // Write-ahead log to mark invocation commits on, or null. Only set when
  // options->durability is attached to `graph` — logging commit records
  // against a log tracking a different graph would corrupt its history.
  Wal* wal = nullptr;
  uint32_t execution = 0;
  // Span id of the surrounding Execute() span, so worker-thread node spans
  // parent under it even though they run on different threads (0 when the
  // tracer is disarmed).
  uint64_t exec_span = 0;
  WorkflowOutputs outputs;
  // First-touch snapshots of module-instance state, keyed by instance:
  // taken before the first node of an instance runs, used to restore the
  // pre-execution state on a kFailFast abort.
  std::map<std::string, std::map<std::string, Relation>> snapshots;
  std::mutex mu;  // guards outputs, snapshots, last_node_times_
};

Status WorkflowExecutor::RunNodeWithRetries(const std::string& node_id,
                                            ExecState* exec,
                                            ShardWriter* writer,
                                            NodeReport* report_entry) {
  WallTimer timer;
  const WorkflowNode* node = workflow_->FindNode(node_id).value();
  LIPSTICK_ASSIGN_OR_RETURN(const ModuleSpec* spec,
                            workflow_->FindModule(node->module));
  std::map<std::string, Relation>* state = &state_.find(node->instance)->second;

  // Per-node (module invocation) span, explicitly parented under the
  // Execute() span because workers run on their own threads.
  obs::ObsSpan node_span("executor.node", node_id, exec->exec_span);
  if (node_span.active()) {
    node_span.Arg("module", spec->name);
    node_span.Arg("instance", node->instance);
    node_span.Arg("execution", static_cast<uint64_t>(exec->execution));
    if (report_entry->queue_wait_seconds > 0) {
      node_span.Arg("queue_wait_us", report_entry->queue_wait_seconds * 1e6);
    }
  }
  size_t prov_appended = 0;

  std::map<std::string, Bag> edge_inputs;
  {
    std::lock_guard<std::mutex> lock(exec->mu);
    // emplace is a no-op if an earlier node of this instance already
    // snapshotted it (first touch wins — that is the pre-execution state).
    exec->snapshots.emplace(node->instance, *state);
    edge_inputs = GatherEdgeInputs(*workflow_, node_id, exec->outputs);
  }

  const ExecutionOptions& options = *exec->options;
  const int max_attempts = std::max(1, options.retry.max_attempts);
  Rng jitter_rng(options.retry.seed ^
                 std::hash<std::string>{}(node_id) * 0x9e3779b97f4a7c15ull ^
                 exec->execution);

  // With no retries and fail-fast semantics, a failed attempt is followed
  // by a whole-execution rollback, which restores this instance from its
  // snapshot anyway — skip the redundant per-attempt copy on that (default)
  // path so transactional semantics stay free of extra state copies.
  const bool need_attempt_rollback =
      max_attempts > 1 ||
      options.failure_policy != FailurePolicy::kFailFast;

  Status st;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    report_entry->attempts = attempt;
    // Per-attempt rollback marks: the instance state as of this attempt,
    // and the extent of this task's own graph shard.
    std::map<std::string, Relation> state_copy;
    if (need_attempt_rollback) state_copy = *state;
    size_t shard_mark =
        writer != nullptr ? exec->graph->ShardSize(writer->shard()) : 0;

    Deadline deadline(options.node_timeout_seconds);
    NodeRun run{workflow_,       udfs_,  node,   spec,
                exec->inputs,    state,  exec->execution,
                writer,          eager_state_nodes_, &deadline};

    // Retry-attempt span; nests under the node span via thread-local
    // scoping (same thread).
    obs::ObsSpan attempt_span("executor.attempt", node_id);
    attempt_span.Arg("attempt", static_cast<uint64_t>(attempt));

    st = FaultInjector::Fire("executor.node", node_id);
    std::map<std::string, Relation> node_outputs;
    if (st.ok()) {
      Result<std::map<std::string, Relation>> result = run.Run(edge_inputs);
      if (!result.ok()) {
        st = result.status();
      } else if (deadline.Expired()) {
        st = Status::DeadlineExceeded(
            StrCat("node ", node_id, " exceeded its ",
                   options.node_timeout_seconds, "s budget (ran ",
                   deadline.elapsed_seconds(), "s)"));
      } else {
        node_outputs = std::move(result).value();
      }
    }
    attempt_span.Arg("ok", st.ok() ? std::string_view("true")
                                   : std::string_view("false"));
    attempt_span.End();

    if (st.ok()) {
      if (writer != nullptr) {
        prov_appended = exec->graph->ShardSize(writer->shard()) - shard_mark;
      }
      // Commit boundary: every record of this invocation is in the log
      // (hooks fire synchronously from the appending thread), so the
      // commit record makes it replayable as a unit.
      if (exec->wal != nullptr && run.last_invocation != kNoInvocation) {
        (void)exec->wal->CommitInvocation(run.last_invocation);
      }
      std::lock_guard<std::mutex> lock(exec->mu);
      exec->outputs.emplace(node_id, std::move(node_outputs));
      last_node_times_[node_id] = timer.ElapsedSeconds();
      break;
    }

    // The attempt failed (or timed out after producing outputs we must
    // discard): restore the instance state and discard the attempt's
    // provenance so nothing half-written survives into the merged graph.
    if (need_attempt_rollback) *state = std::move(state_copy);
    if (writer != nullptr) {
      exec->graph->KillShardTail(writer->shard(), shard_mark);
      if (run.last_invocation != kNoInvocation) {
        exec->graph->AbortInvocation(run.last_invocation);
      }
    }

    if (attempt < max_attempts) {
      double backoff_ms = NextBackoffMs(options.retry, attempt, &jitter_rng);
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
  }

  report_entry->status = st;
  report_entry->elapsed_seconds = timer.ElapsedSeconds();

  if (obs::MetricsRegistry::Enabled()) {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    const ExecutorMetrics& m = ExecutorMetrics::Get();
    metrics.CounterAdd(st.ok() ? m.nodes_run : m.node_failures);
    if (report_entry->attempts > 1) {
      metrics.CounterAdd(m.retries,
                         static_cast<uint64_t>(report_entry->attempts - 1));
    }
    metrics.Observe(m.node_us, report_entry->elapsed_seconds * 1e6);
    if (report_entry->queue_wait_seconds > 0) {
      metrics.Observe(m.queue_wait_us,
                      report_entry->queue_wait_seconds * 1e6);
    }
    if (prov_appended > 0) {
      metrics.CounterAdd(m.prov_nodes, prov_appended);
    }
  }
  if (node_span.active()) {
    node_span.Arg("attempts", static_cast<uint64_t>(report_entry->attempts));
    node_span.Arg("prov_nodes", static_cast<uint64_t>(prov_appended));
    node_span.Arg("ok", st.ok() ? std::string_view("true")
                                : std::string_view("false"));
  }
  return st;
}

Result<WorkflowOutputs> WorkflowExecutor::Execute(const WorkflowInputs& inputs,
                                                  ProvenanceGraph* graph,
                                                  int num_workers) {
  return Execute(inputs, graph, default_options_, nullptr, num_workers);
}

namespace {

/// Debug-build self-check, run after every committed execution: the graph
/// must satisfy the Section-3 structural invariants (analysis/
/// graph_validator.h) no matter which retry/rollback/parallel path built
/// it. Compiled out under NDEBUG — release builds pay nothing.
Status DebugValidateGraph(ProvenanceGraph* graph) {
#ifndef NDEBUG
  if (graph != nullptr) {
    graph->Seal();
    return analysis::CheckGraphInvariants(*graph);
  }
#else
  (void)graph;
#endif
  return Status::OK();
}

}  // namespace

Result<WorkflowOutputs> WorkflowExecutor::Execute(
    const WorkflowInputs& inputs, ProvenanceGraph* graph,
    const ExecutionOptions& options, ExecutionReport* report,
    int num_workers) {
  if (!initialized_) return Status::Internal("Initialize() not called");
  WallTimer total_timer;

  // Whole-execution span: worker-thread node spans parent under it via
  // ExecState::exec_span. Counter ticks for every call, committed or not.
  obs::ObsSpan execute_span("executor", "execute");
  obs::MetricsRegistry::Global().CounterAdd(ExecutorMetrics::Get().executions);
  if (execute_span.active()) {
    execute_span.Arg("execution", static_cast<uint64_t>(execution_count_));
    execute_span.Arg("workers", static_cast<int64_t>(num_workers));
    execute_span.Arg("policy", FailurePolicyToString(options.failure_policy));
    execute_span.Arg("tracking", graph != nullptr ? std::string_view("true")
                                                  : std::string_view("false"));
  }

  ExecState exec;
  exec.inputs = &inputs;
  exec.graph = graph;
  exec.options = &options;
  if (options.durability != nullptr && graph != nullptr &&
      options.durability->attached_graph() == graph) {
    exec.wal = options.durability;
  }
  exec.execution = execution_count_;
  exec.exec_span = execute_span.id();

  ExecutionReport local_report;
  if (report == nullptr) report = &local_report;
  report->nodes.clear();
  report->execution = exec.execution;
  report->total_seconds = 0;
  // Pre-create every node's entry so worker threads only ever write to
  // their own (already existing) map element.
  for (const WorkflowNode& n : workflow_->nodes()) report->nodes[n.id];

  // Whole-execution savepoint: on a kFailFast abort the graph is restored
  // to this extent and the touched instance states to their snapshots.
  ProvenanceGraph::Savepoint savepoint;
  if (graph != nullptr) savepoint = graph->TakeSavepoint();

  auto rollback_all = [&](const std::string& failed_node) {
    for (auto& [instance, snap] : exec.snapshots) {
      state_[instance] = std::move(snap);
    }
    if (graph != nullptr) graph->RollbackTo(savepoint);
    // Reporting: nodes that never got to run were implicitly skipped by
    // the abort.
    for (auto& [id, entry] : report->nodes) {
      if (entry.attempts == 0 && !entry.skipped) {
        entry.skipped = true;
        entry.skipped_because_of = failed_node;
        entry.status = Status::Aborted(
            StrCat("not run: execution aborted after node '", failed_node,
                   "' failed"));
      }
    }
    report->total_seconds = total_timer.ElapsedSeconds();
  };

  // Resolves whether `node_id` must be skipped under kSkipDownstream and
  // records the root cause (the failed ancestor, chased through skipped
  // intermediaries). Caller must hold whatever lock protects `dead`.
  auto resolve_skip = [&](const std::string& node_id,
                          const std::unordered_set<std::string>& dead,
                          NodeReport* entry) {
    if (options.failure_policy != FailurePolicy::kSkipDownstream) {
      return false;
    }
    for (const WorkflowEdge* e : workflow_->IncomingEdges(node_id)) {
      if (!dead.count(e->from)) continue;
      const NodeReport& up = report->nodes[e->from];
      entry->skipped = true;
      entry->skipped_because_of =
          up.skipped ? up.skipped_because_of : e->from;
      entry->status = Status::Aborted(
          StrCat("skipped: upstream node '", entry->skipped_because_of,
                 "' failed"));
      return true;
    }
    return false;
  };

  last_node_times_.clear();

  if (num_workers <= 1 || workflow_->nodes().size() <= 1) {
    ShardWriter writer = graph ? graph->writer() : ShardWriter(nullptr, 0);
    size_t serial_shard_base = graph != nullptr ? graph->ShardSize(0) : 0;
    std::unordered_set<std::string> dead;  // failed or skipped nodes
    for (const std::string& node_id : topo_order_) {
      NodeReport& entry = report->nodes[node_id];
      if (resolve_skip(node_id, dead, &entry)) {
        dead.insert(node_id);
        continue;
      }
      Status st = RunNodeWithRetries(node_id, &exec,
                                     graph ? &writer : nullptr, &entry);
      if (!st.ok()) {
        if (options.failure_policy == FailurePolicy::kFailFast) {
          rollback_all(node_id);
          return st;
        }
        dead.insert(node_id);
      }
    }
    ++execution_count_;
    // Durable execution boundary: everything this execution appended is in
    // the log before the savepoint that makes it recoverable.
    if (exec.wal != nullptr) {
      (void)exec.wal->MarkSavepoint(execution_count_);
      (void)exec.wal->MaybeCheckpoint();
    }
    report->total_seconds = total_timer.ElapsedSeconds();
    if (obs::MetricsRegistry::Enabled() && graph != nullptr) {
      obs::MetricsRegistry::Global().Observe(
          ExecutorMetrics::Get().shard_nodes,
          static_cast<double>(graph->ShardSize(0) - serial_shard_base));
    }
    LIPSTICK_RETURN_IF_ERROR(DebugValidateGraph(graph));
    return std::move(exec.outputs);
  }

  // Parallel path: dependency-counting scheduler over a worker pool. Each
  // worker owns a graph shard, so provenance appends never contend.
  std::map<std::string, size_t> pending;
  for (const WorkflowNode& n : workflow_->nodes()) {
    pending[n.id] = workflow_->IncomingEdges(n.id).size();
  }
  // Same-instance nodes must also run in topological sequence even without
  // a connecting edge; CheckInstanceOrdering guarantees an edge path
  // exists, so edge counting suffices.
  // Ready-queue enqueue timestamps, for the queue-wait metric (how long a
  // dispatchable node waited for a free worker). Guarded by `mu`.
  std::map<std::string, double> enqueued_at;
  std::deque<std::string> ready;
  for (const auto& [id, count] : pending) {
    if (count == 0) {
      enqueued_at[id] = NowSeconds();
      ready.push_back(id);
    }
  }

  std::vector<ShardWriter> writers;
  std::vector<size_t> shard_base;  // per-writer shard size before execution
  if (graph != nullptr) {
    writers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) writers.push_back(graph->AddShard());
    shard_base.reserve(writers.size());
    for (const ShardWriter& w : writers) {
      shard_base.push_back(graph->ShardSize(w.shard()));
    }
  }

  std::mutex mu;
  std::condition_variable cv;
  size_t settled = 0;  // completed + failed + skipped nodes
  Status first_error;
  std::string first_failed_node;
  bool abort = false;  // kFailFast: a node failed, stop scheduling
  std::unordered_set<std::string> dead;

  // Under kFailFast a failed node does not release its successors, so
  // `settled` never reaches the node count — workers drain via `abort`.
  // Under the lenient policies every node settles exactly once (run,
  // failed, or skipped), releasing successors either way so the DAG
  // always drains. Caller must hold `mu`.
  auto settle = [&](const std::string& node_id) {
    ++settled;
    for (const WorkflowEdge* e : workflow_->OutgoingEdges(node_id)) {
      if (--pending[e->to] == 0) {
        enqueued_at[e->to] = NowSeconds();
        ready.push_back(e->to);
      }
    }
  };

  auto worker = [&](int worker_idx) {
    ShardWriter* writer = graph != nullptr ? &writers[worker_idx] : nullptr;
    while (true) {
      std::string node_id;
      NodeReport* entry = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          return abort || !ready.empty() ||
                 settled == workflow_->nodes().size();
        });
        if (abort || settled == workflow_->nodes().size()) return;
        node_id = ready.front();
        ready.pop_front();
        entry = &report->nodes[node_id];
        auto enq = enqueued_at.find(node_id);
        if (enq != enqueued_at.end()) {
          entry->queue_wait_seconds = NowSeconds() - enq->second;
        }
        if (resolve_skip(node_id, dead, entry)) {
          dead.insert(node_id);
          settle(node_id);
          lock.unlock();
          cv.notify_all();
          continue;
        }
      }
      Status st = RunNodeWithRetries(node_id, &exec, writer, entry);
      {
        std::unique_lock<std::mutex> lock(mu);
        if (st.ok()) {
          settle(node_id);
        } else if (options.failure_policy == FailurePolicy::kFailFast) {
          if (!abort) {
            first_error = st;
            first_failed_node = node_id;
          }
          abort = true;
        } else {
          dead.insert(node_id);
          settle(node_id);
        }
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();

  if (abort) {
    rollback_all(first_failed_node);
    return first_error;
  }
  ++execution_count_;
  if (exec.wal != nullptr) {
    (void)exec.wal->MarkSavepoint(execution_count_);
    (void)exec.wal->MaybeCheckpoint();
  }
  report->total_seconds = total_timer.ElapsedSeconds();
  // Per-shard provenance append counts: how evenly the workers' shards
  // grew this execution (a skewed histogram means poor load balance).
  if (obs::MetricsRegistry::Enabled() && graph != nullptr) {
    for (size_t w = 0; w < writers.size(); ++w) {
      size_t grown = graph->ShardSize(writers[w].shard()) - shard_base[w];
      obs::MetricsRegistry::Global().Observe(
          ExecutorMetrics::Get().shard_nodes, static_cast<double>(grown));
    }
  }
  LIPSTICK_RETURN_IF_ERROR(DebugValidateGraph(graph));
  return std::move(exec.outputs);
}

}  // namespace lipstick

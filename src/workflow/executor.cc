#include "workflow/executor.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_set>

#include "common/str_util.h"
#include "common/timer.h"
#include "pig/interpreter.h"

namespace lipstick {

namespace {

/// Checks that nodes sharing a module instance are totally ordered by the
/// DAG, so state threading is deterministic and parallel execution safe.
Status CheckInstanceOrdering(const Workflow& wf) {
  // Reachability via DFS from each node (workflows are small).
  std::map<std::string, std::set<std::string>> reach;
  Result<std::vector<std::string>> topo = wf.TopologicalOrder();
  LIPSTICK_RETURN_IF_ERROR(topo.status());
  for (auto it = topo.value().rbegin(); it != topo.value().rend(); ++it) {
    std::set<std::string>& r = reach[*it];
    for (const WorkflowEdge* e : wf.OutgoingEdges(*it)) {
      r.insert(e->to);
      const std::set<std::string>& down = reach[e->to];
      r.insert(down.begin(), down.end());
    }
  }
  for (size_t i = 0; i < wf.nodes().size(); ++i) {
    for (size_t j = i + 1; j < wf.nodes().size(); ++j) {
      const WorkflowNode& a = wf.nodes()[i];
      const WorkflowNode& b = wf.nodes()[j];
      if (a.instance != b.instance) continue;
      if (!reach[a.id].count(b.id) && !reach[b.id].count(a.id)) {
        return Status::InvalidArgument(
            StrCat("nodes '", a.id, "' and '", b.id,
                   "' share instance '", a.instance,
                   "' but are not ordered by the DAG"));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status WorkflowExecutor::Initialize() {
  LIPSTICK_RETURN_IF_ERROR(workflow_->Validate(udfs_));
  LIPSTICK_RETURN_IF_ERROR(CheckInstanceOrdering(*workflow_));
  LIPSTICK_ASSIGN_OR_RETURN(topo_order_, workflow_->TopologicalOrder());
  // Materialize empty state instances for every module identity.
  for (const WorkflowNode& n : workflow_->nodes()) {
    LIPSTICK_ASSIGN_OR_RETURN(const ModuleSpec* spec,
                              workflow_->FindModule(n.module));
    for (const auto& [rel_name, schema] : spec->state_schemas) {
      auto& rel = state_[n.instance][rel_name];
      if (rel.schema == nullptr) rel = Relation(rel_name, schema);
    }
  }
  initialized_ = true;
  return Status::OK();
}

Status WorkflowExecutor::SetInitialState(const std::string& instance,
                                         const std::string& relation,
                                         Bag bag) {
  if (!initialized_) return Status::Internal("Initialize() not called");
  auto inst_it = state_.find(instance);
  if (inst_it == state_.end()) {
    return Status::NotFound(StrCat("unknown module instance '", instance,
                                   "'"));
  }
  auto rel_it = inst_it->second.find(relation);
  if (rel_it == inst_it->second.end()) {
    return Status::NotFound(StrCat("instance '", instance,
                                   "' has no state relation '", relation,
                                   "'"));
  }
  rel_it->second.bag = std::move(bag);
  return Status::OK();
}

Result<const Relation*> WorkflowExecutor::GetState(
    const std::string& instance, const std::string& relation) const {
  auto inst_it = state_.find(instance);
  if (inst_it == state_.end()) {
    return Status::NotFound(StrCat("unknown module instance '", instance,
                                   "'"));
  }
  auto rel_it = inst_it->second.find(relation);
  if (rel_it == inst_it->second.end()) {
    return Status::NotFound(StrCat("instance '", instance,
                                   "' has no state relation '", relation,
                                   "'"));
  }
  return &rel_it->second;
}

/// Executes one node (one module invocation). Not a member to keep the
/// threading interface narrow: everything it touches is passed explicitly.
struct WorkflowExecutor::NodeRun {
  const Workflow* workflow;
  const pig::UdfRegistry* udfs;
  const WorkflowNode* node;
  const ModuleSpec* spec;
  const WorkflowInputs* external_inputs;
  // Module-identity state (owned by the executor; exclusive access is
  // guaranteed by DAG ordering of same-instance nodes).
  std::map<std::string, Relation>* state;
  uint32_t execution = 0;
  ShardWriter* writer = nullptr;  // null -> no tracking
  bool eager_state_nodes = false;

  Result<std::map<std::string, Relation>> Run(
      const std::map<std::string, Bag>& edge_inputs) {
    uint32_t inv = kNoInvocation;
    if (writer != nullptr) {
      inv = writer->BeginInvocation(spec->name, node->instance, execution);
      writer->set_current_invocation(inv);
    }

    pig::Environment env;
    bool is_input_node = workflow->IncomingEdges(node->id).empty();

    // Bind input relations. Input-node tuples get workflow-input "I"
    // tokens; all input tuples are wrapped with "i" nodes ·(tuple, m).
    for (const auto& [rel_name, schema] : spec->input_schemas) {
      Bag bag;
      const Bag* source = nullptr;
      if (is_input_node) {
        auto node_it = external_inputs->find(node->id);
        if (node_it != external_inputs->end()) {
          auto rel_it = node_it->second.find(rel_name);
          if (rel_it != node_it->second.end()) source = &rel_it->second;
        }
      } else {
        auto it = edge_inputs.find(rel_name);
        if (it != edge_inputs.end()) source = &it->second;
      }
      if (source != nullptr) {
        bag.Reserve(source->size());
        size_t i = 0;
        for (const AnnotatedTuple& t : *source) {
          ProvAnnotation annot = t.annot;
          if (writer != nullptr) {
            NodeId base = annot;
            if (is_input_node || base == kNoProvenance) {
              base = writer->WorkflowInput(StrCat(
                  "I", execution, ".", node->id, ".", rel_name, "[", i, "]"));
            }
            annot = writer->ModuleInput(inv, base);
          }
          bag.Add(t.tuple, annot);
          ++i;
        }
      }
      env.Bind(rel_name, Relation(rel_name, schema, std::move(bag)));
    }

    // Bind state relations with their stored annotations; tuples that have
    // never been annotated get a one-time base token. "s" nodes are
    // created lazily (only for tuples that contribute to derivations).
    std::unordered_set<NodeId> state_eligible;
    for (auto& [rel_name, rel] : *state) {
      if (writer != nullptr) {
        Bag rebuilt;
        rebuilt.Reserve(rel.bag.size());
        size_t i = 0;
        for (const AnnotatedTuple& t : rel.bag) {
          ProvAnnotation annot = t.annot;
          if (annot == kNoProvenance) {
            annot = writer->Token(
                StrCat(node->instance, ".", rel_name, "[", i, "]"),
                NodeRole::kStateBase);
          }
          state_eligible.insert(annot);
          rebuilt.Add(t.tuple, annot);
          ++i;
        }
        rel.bag = std::move(rebuilt);  // persist the base tokens
      }
      env.Bind(rel_name, rel);
    }
    if (writer != nullptr) {
      writer->BeginStateScope(inv, &state_eligible);
      if (eager_state_nodes) {
        // Literal Section 3.2 construction: an "s" node per state tuple
        // per invocation, whether or not the tuple is ever used.
        for (NodeId base : state_eligible) writer->ResolveParent(base);
      }
    }

    // Qstate then Qout; Qout sees the post-Qstate bindings.
    pig::Interpreter interp(udfs);
    Status status = interp.Run(spec->qstate, &env, writer);
    if (status.ok()) status = interp.Run(spec->qout, &env, writer);
    if (writer != nullptr) writer->EndStateScope();
    if (!status.ok()) {
      return status.WithContext(
          StrCat("node ", node->id, " (module ", spec->name, ", execution ",
                 execution, ")"));
    }

    // Persist new state (annotations carried through).
    for (auto& [rel_name, rel] : *state) {
      Result<const Relation*> bound = env.Lookup(rel_name);
      if (bound.ok()) {
        rel.bag = bound.value()->bag;
      }
    }

    // Collect outputs, wrapping each tuple with an "o" node ·(tuple, m).
    std::map<std::string, Relation> outputs;
    for (const auto& [rel_name, schema] : spec->output_schemas) {
      Result<const Relation*> bound = env.Lookup(rel_name);
      if (!bound.ok()) {
        return Status::ExecutionError(
            StrCat("node ", node->id, ": Qout did not bind output '",
                   rel_name, "'"));
      }
      Relation out(rel_name, schema);
      out.bag.Reserve(bound.value()->bag.size());
      for (const AnnotatedTuple& t : bound.value()->bag) {
        ProvAnnotation annot = t.annot;
        if (writer != nullptr) {
          annot = writer->ModuleOutput(inv, annot);
        }
        out.bag.Add(t.tuple, annot);
      }
      outputs.emplace(rel_name, std::move(out));
    }
    return outputs;
  }
};

Result<WorkflowOutputs> WorkflowExecutor::Execute(const WorkflowInputs& inputs,
                                                  ProvenanceGraph* graph,
                                                  int num_workers) {
  if (!initialized_) return Status::Internal("Initialize() not called");
  uint32_t execution = execution_count_++;

  WorkflowOutputs outputs;
  std::mutex outputs_mu;

  // Collects the input bags a node receives over its in-edges, unioning
  // bags when several edges feed the same input relation.
  auto gather_edge_inputs = [&](const std::string& node_id) {
    std::map<std::string, Bag> in;
    for (const WorkflowEdge* e : workflow_->IncomingEdges(node_id)) {
      auto from_it = outputs.find(e->from);
      if (from_it == outputs.end()) continue;
      for (const EdgeRelation& rel : e->relations) {
        auto rel_it = from_it->second.find(rel.from_relation);
        if (rel_it == from_it->second.end()) continue;
        Bag& dst = in[rel.to_relation];
        for (const AnnotatedTuple& t : rel_it->second.bag) dst.Add(t);
      }
    }
    return in;
  };

  last_node_times_.clear();
  auto run_node = [&](const std::string& node_id,
                      ShardWriter* writer) -> Status {
    WallTimer timer;
    const WorkflowNode* node = workflow_->FindNode(node_id).value();
    LIPSTICK_ASSIGN_OR_RETURN(const ModuleSpec* spec,
                              workflow_->FindModule(node->module));
    NodeRun run{workflow_, udfs_,     node,
                spec,      &inputs,   &state_[node->instance],
                execution, writer,    eager_state_nodes_};
    std::map<std::string, Bag> edge_inputs;
    {
      std::lock_guard<std::mutex> lock(outputs_mu);
      edge_inputs = gather_edge_inputs(node_id);
    }
    LIPSTICK_ASSIGN_OR_RETURN(auto node_outputs, run.Run(edge_inputs));
    std::lock_guard<std::mutex> lock(outputs_mu);
    outputs.emplace(node_id, std::move(node_outputs));
    last_node_times_[node_id] = timer.ElapsedSeconds();
    return Status::OK();
  };

  if (num_workers <= 1 || workflow_->nodes().size() <= 1) {
    ShardWriter writer = graph ? graph->writer() : ShardWriter(nullptr, 0);
    for (const std::string& node_id : topo_order_) {
      LIPSTICK_RETURN_IF_ERROR(
          run_node(node_id, graph ? &writer : nullptr));
    }
    return outputs;
  }

  // Parallel path: dependency-counting scheduler over a worker pool. Each
  // worker owns a graph shard, so provenance appends never contend.
  std::map<std::string, size_t> pending;
  for (const WorkflowNode& n : workflow_->nodes()) {
    pending[n.id] = workflow_->IncomingEdges(n.id).size();
  }
  // Same-instance nodes must also run in topological sequence even without
  // a connecting edge; CheckInstanceOrdering guarantees an edge path
  // exists, so edge counting suffices.
  std::deque<std::string> ready;
  for (const auto& [id, count] : pending) {
    if (count == 0) ready.push_back(id);
  }

  std::vector<ShardWriter> writers;
  if (graph != nullptr) {
    writers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) writers.push_back(graph->AddShard());
  }

  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  Status first_error;
  bool failed = false;

  auto worker = [&](int worker_idx) {
    ShardWriter* writer =
        graph != nullptr ? &writers[worker_idx] : nullptr;
    while (true) {
      std::string node_id;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          return failed || !ready.empty() ||
                 completed == workflow_->nodes().size();
        });
        if (failed || completed == workflow_->nodes().size()) return;
        node_id = ready.front();
        ready.pop_front();
      }
      Status st = run_node(node_id, writer);
      {
        std::unique_lock<std::mutex> lock(mu);
        if (!st.ok()) {
          if (!failed) first_error = st;
          failed = true;
        } else {
          ++completed;
          for (const WorkflowEdge* e : workflow_->OutgoingEdges(node_id)) {
            if (--pending[e->to] == 0) ready.push_back(e->to);
          }
        }
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();

  if (failed) return first_error;
  return outputs;
}

}  // namespace lipstick

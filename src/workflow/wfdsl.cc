#include "workflow/wfdsl.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "workflow/module.h"

namespace lipstick {

namespace {

/// Minimal character-level parser for the workflow DSL. The embedded Pig
/// Latin blocks are extracted verbatim (between braces) and handed to the
/// Pig parser via MakeModule.
class DslParser {
 public:
  explicit DslParser(std::string_view src) : src_(src) {}

  Result<Workflow> Parse() {
    Workflow workflow;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      LIPSTICK_ASSIGN_OR_RETURN(std::string keyword, ReadWord("declaration"));
      std::string lower = ToLower(keyword);
      if (lower == "module") {
        LIPSTICK_RETURN_IF_ERROR(ParseModule(&workflow));
      } else if (lower == "node") {
        LIPSTICK_RETURN_IF_ERROR(ParseNode(&workflow));
      } else if (lower == "edge") {
        LIPSTICK_RETURN_IF_ERROR(ParseEdge(&workflow));
      } else {
        return Err(StrCat("expected 'module', 'node' or 'edge', got '",
                          keyword, "'"));
      }
    }
    return workflow;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  SourceLoc Loc() const { return SourceLoc{line_, col_}; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrCat("workflow line ", line_, ":", col_, ": ", msg));
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      } else if (Peek() == '-' && pos_ + 1 < src_.size() &&
                 src_[pos_ + 1] == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Result<std::string> ReadWord(const char* what) {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    if (pos_ == start) return Err(StrCat("expected ", what));
    return std::string(src_.substr(start, pos_ - start));
  }

  Status Expect(char c) {
    SkipWhitespaceAndComments();
    if (AtEnd() || Peek() != c) {
      return Err(StrCat("expected '", std::string(1, c), "'"));
    }
    Advance();
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipWhitespaceAndComments();
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }

  bool TryConsumeArrow() {
    SkipWhitespaceAndComments();
    if (pos_ + 1 < src_.size() && Peek() == '-' && src_[pos_ + 1] == '>') {
      Advance();
      Advance();
      return true;
    }
    return false;
  }

  Result<FieldType> ParseFieldType() {
    LIPSTICK_ASSIGN_OR_RETURN(std::string name, ReadWord("field type"));
    std::string lower = ToLower(name);
    if (lower == "int" || lower == "long") return FieldType::Int();
    if (lower == "double" || lower == "float") return FieldType::Double();
    if (lower == "chararray" || lower == "string") return FieldType::String();
    if (lower == "boolean" || lower == "bool") return FieldType::Bool();
    return Err(StrCat("unknown field type '", name,
                      "' (use int, double, chararray, boolean)"));
  }

  /// Parses `Name(f1: type, f2: type, ...)`.
  Result<std::pair<std::string, SchemaPtr>> ParseRelationDecl() {
    LIPSTICK_ASSIGN_OR_RETURN(std::string name, ReadWord("relation name"));
    LIPSTICK_RETURN_IF_ERROR(Expect('('));
    std::vector<Field> fields;
    if (!TryConsume(')')) {
      do {
        LIPSTICK_ASSIGN_OR_RETURN(std::string fname,
                                  ReadWord("field name"));
        LIPSTICK_RETURN_IF_ERROR(Expect(':'));
        LIPSTICK_ASSIGN_OR_RETURN(FieldType type, ParseFieldType());
        fields.emplace_back(std::move(fname), std::move(type));
      } while (TryConsume(','));
      LIPSTICK_RETURN_IF_ERROR(Expect(')'));
    }
    return std::make_pair(std::move(name), Schema::Make(std::move(fields)));
  }

  /// Reads a `{ ... }` block verbatim (Pig Latin text). The returned source
  /// is padded with (block start line - 1) newlines plus (column of '{')
  /// spaces so that locations reported by the Pig parser/linter are in
  /// whole-file coordinates. `block_loc`, when non-null, receives the
  /// location of the '{'.
  Result<std::string> ParseBraceBlock(SourceLoc* block_loc = nullptr) {
    SkipWhitespaceAndComments();
    SourceLoc open = Loc();
    LIPSTICK_RETURN_IF_ERROR(Expect('{'));
    if (block_loc != nullptr) *block_loc = open;
    size_t start = pos_;
    int depth = 1;
    while (!AtEnd()) {
      if (Peek() == '{') ++depth;
      if (Peek() == '}') {
        if (--depth == 0) {
          std::string body(open.line - 1, '\n');
          // Space padding keeps columns exact for text on the '{' line.
          body.append(open.column, ' ');
          body.append(src_.substr(start, pos_ - start));
          Advance();
          return body;
        }
      }
      Advance();
    }
    return Err("unterminated '{' block");
  }

  Status ParseModule(Workflow* workflow) {
    SkipWhitespaceAndComments();
    SourceLoc loc = Loc();
    LIPSTICK_ASSIGN_OR_RETURN(std::string name, ReadWord("module name"));
    LIPSTICK_RETURN_IF_ERROR(Expect('{'));
    std::map<std::string, SchemaPtr> inputs, state, outputs;
    std::string qstate_src, qout_src;
    SourceLoc qstate_loc, qout_loc;
    while (!TryConsume('}')) {
      LIPSTICK_ASSIGN_OR_RETURN(std::string keyword,
                                ReadWord("module member"));
      std::string lower = ToLower(keyword);
      if (lower == "input" || lower == "state" || lower == "output") {
        LIPSTICK_ASSIGN_OR_RETURN(auto decl, ParseRelationDecl());
        LIPSTICK_RETURN_IF_ERROR(Expect(';'));
        auto& target = lower == "input" ? inputs
                       : lower == "state" ? state
                                          : outputs;
        if (!target.emplace(decl.first, decl.second).second) {
          return Err(StrCat("duplicate ", lower, " relation '", decl.first,
                            "' in module ", name));
        }
      } else if (lower == "qstate") {
        LIPSTICK_ASSIGN_OR_RETURN(qstate_src, ParseBraceBlock(&qstate_loc));
      } else if (lower == "qout") {
        LIPSTICK_ASSIGN_OR_RETURN(qout_src, ParseBraceBlock(&qout_loc));
      } else {
        return Err(StrCat("unexpected '", keyword, "' inside module ", name));
      }
    }
    Result<ModuleSpec> spec =
        MakeModule(name, std::move(inputs), std::move(state),
                   std::move(outputs), qstate_src, qout_src);
    LIPSTICK_RETURN_IF_ERROR(spec.status());
    spec->loc = loc;
    spec->qstate_loc = qstate_loc;
    spec->qout_loc = qout_loc;
    return workflow->AddModule(std::move(*spec));
  }

  Status ParseNode(Workflow* workflow) {
    SkipWhitespaceAndComments();
    SourceLoc loc = Loc();
    LIPSTICK_ASSIGN_OR_RETURN(std::string id, ReadWord("node id"));
    LIPSTICK_RETURN_IF_ERROR(Expect('='));
    LIPSTICK_ASSIGN_OR_RETURN(std::string module, ReadWord("module name"));
    std::string instance;
    SkipWhitespaceAndComments();
    if (!AtEnd() && Peek() != ';') {
      LIPSTICK_ASSIGN_OR_RETURN(std::string as_kw, ReadWord("'as'"));
      if (ToLower(as_kw) != "as") return Err("expected 'as' or ';'");
      LIPSTICK_ASSIGN_OR_RETURN(instance, ReadWord("instance name"));
    }
    LIPSTICK_RETURN_IF_ERROR(Expect(';'));
    return workflow->AddNode(id, module, instance, loc);
  }

  Status ParseEdge(Workflow* workflow) {
    SkipWhitespaceAndComments();
    SourceLoc loc = Loc();
    LIPSTICK_ASSIGN_OR_RETURN(std::string from, ReadWord("source node"));
    if (!TryConsumeArrow()) return Err("expected '->'");
    LIPSTICK_ASSIGN_OR_RETURN(std::string to, ReadWord("target node"));
    LIPSTICK_RETURN_IF_ERROR(Expect(':'));
    std::vector<EdgeRelation> relations;
    do {
      EdgeRelation rel;
      LIPSTICK_ASSIGN_OR_RETURN(rel.from_relation,
                                ReadWord("output relation"));
      if (TryConsumeArrow()) {
        LIPSTICK_ASSIGN_OR_RETURN(rel.to_relation,
                                  ReadWord("input relation"));
      } else {
        rel.to_relation = rel.from_relation;
      }
      relations.push_back(std::move(rel));
    } while (TryConsume(','));
    LIPSTICK_RETURN_IF_ERROR(Expect(';'));
    return workflow->AddEdge(from, to, std::move(relations), loc);
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

const char* FieldTypeToDsl(const FieldType& type) {
  switch (type.kind()) {
    case FieldType::Kind::kInt:
      return "int";
    case FieldType::Kind::kDouble:
      return "double";
    case FieldType::Kind::kString:
      return "chararray";
    case FieldType::Kind::kBool:
      return "boolean";
    default:
      return "chararray";  // nested types are not declarable in the DSL
  }
}

void AppendRelationDecls(std::ostringstream& os, const char* kind,
                         const std::map<std::string, SchemaPtr>& relations) {
  for (const auto& [name, schema] : relations) {
    os << "  " << kind << " " << name << "(";
    for (size_t i = 0; i < schema->num_fields(); ++i) {
      if (i > 0) os << ", ";
      os << schema->field(i).name << ": "
         << FieldTypeToDsl(schema->field(i).type);
    }
    os << ");\n";
  }
}

}  // namespace

Result<Workflow> ParseWorkflow(std::string_view source) {
  return DslParser(source).Parse();
}

Result<Workflow> ParseWorkflowFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError(StrCat("cannot open ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<Workflow> wf = ParseWorkflow(buffer.str());
  if (!wf.ok()) return wf.status().WithContext(path);
  return wf;
}

std::string WorkflowToDsl(const Workflow& workflow) {
  std::ostringstream os;
  // Modules in deterministic (name) order: collect names used by nodes.
  std::map<std::string, const ModuleSpec*> modules;
  for (const WorkflowNode& node : workflow.nodes()) {
    Result<const ModuleSpec*> spec = workflow.FindModule(node.module);
    if (spec.ok()) modules[node.module] = *spec;
  }
  for (const auto& [name, spec] : modules) {
    os << "module " << name << " {\n";
    AppendRelationDecls(os, "input", spec->input_schemas);
    AppendRelationDecls(os, "state", spec->state_schemas);
    AppendRelationDecls(os, "output", spec->output_schemas);
    if (!spec->qstate.statements.empty()) {
      os << "  qstate {\n" << spec->qstate.ToString() << "\n  }\n";
    }
    os << "  qout {\n" << spec->qout.ToString() << "\n  }\n";
    os << "}\n\n";
  }
  for (const WorkflowNode& node : workflow.nodes()) {
    os << "node " << node.id << " = " << node.module;
    if (node.instance != node.id) os << " as " << node.instance;
    os << ";\n";
  }
  for (const WorkflowEdge& edge : workflow.edges()) {
    os << "edge " << edge.from << " -> " << edge.to << " : ";
    for (size_t i = 0; i < edge.relations.size(); ++i) {
      if (i > 0) os << ", ";
      os << edge.relations[i].from_relation;
      if (edge.relations[i].to_relation != edge.relations[i].from_relation) {
        os << " -> " << edge.relations[i].to_relation;
      }
    }
    os << ";\n";
  }
  return os.str();
}

}  // namespace lipstick

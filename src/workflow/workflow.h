#ifndef LIPSTICK_WORKFLOW_WORKFLOW_H_
#define LIPSTICK_WORKFLOW_WORKFLOW_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/source_loc.h"
#include "workflow/module.h"

namespace lipstick {

/// A node of the workflow DAG, labeled with a module name (LV). Two nodes
/// may bind the same `instance` name, in which case they denote the same
/// module identity and share its state — e.g. the dealership modules, which
/// are invoked once in the bidding phase and once in the purchase phase of
/// the same execution.
struct WorkflowNode {
  std::string id;
  std::string module;    // ModuleSpec name
  std::string instance;  // module identity (defaults to id)
  SourceLoc loc;         // declaration site in the DSL ({0,0}: built in C++)
};

/// A routing entry on an edge: output relation `from_relation` of the
/// source node is delivered as input relation `to_relation` of the target.
struct EdgeRelation {
  std::string from_relation;
  std::string to_relation;
};

/// An edge of the DAG (LE), carrying one or more relations.
struct WorkflowEdge {
  std::string from;
  std::string to;
  std::vector<EdgeRelation> relations;
  SourceLoc loc;  // declaration site in the DSL ({0,0}: built in C++)
};

/// A workflow per Definition 2.2: a connected DAG whose nodes are labeled
/// with module names and whose edges carry relations between compatible
/// module ports. Extension over the paper: several edges may feed the same
/// input relation of a node, in which case their bags are unioned — this
/// models the Arctic-stations topologies where a station receives a
/// minTemp value from each of its predecessors.
class Workflow {
 public:
  /// Registers a module specification (validated on Workflow::Validate).
  Status AddModule(ModuleSpec spec);

  /// Adds a node labeled with `module`; `instance` defaults to `id`.
  /// `loc` is the declaration site when parsed from the DSL.
  Status AddNode(const std::string& id, const std::string& module,
                 const std::string& instance = "", SourceLoc loc = {});

  /// Adds an edge carrying `relations` (pairs may use the same name on both
  /// sides via MakeSameName below).
  Status AddEdge(const std::string& from, const std::string& to,
                 std::vector<EdgeRelation> relations, SourceLoc loc = {});
  /// Convenience: edge carrying `relation` under the same name at both ends.
  Status AddEdge(const std::string& from, const std::string& to,
                 const std::string& relation);

  /// Unfolds a bounded loop into an acyclic chain (the paper restricts
  /// workflows to DAGs but notes that "workflows with bounded looping can
  /// be unfolded into acyclic ones", Definition 2.2). Creates nodes
  /// `<prefix>1 .. <prefix>N` labeled `module` and wires `loop_relations`
  /// from each iteration to the next. Returns the created node ids; the
  /// caller wires the chain's external inputs into `<prefix>1` and reads
  /// results from `<prefix>N`.
  Result<std::vector<std::string>> AddUnrolledLoop(
      const std::string& module, const std::string& prefix, int iterations,
      const std::vector<EdgeRelation>& loop_relations);

  /// Full validation per Definition 2.2: every node's module exists,
  /// acyclicity, edge relations exist in the endpoint schemas with
  /// compatible types, every non-input module input is covered by incoming
  /// edges, instances are module-consistent, and all module specs validate.
  Status Validate(const pig::UdfRegistry* udfs) const;

  /// Topological order of node ids (the reference execution semantics picks
  /// this fixed order; ties broken by insertion order for determinism).
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// Nodes with no incoming edges (workflow inputs, Definition 2.2 In).
  std::vector<std::string> InputNodes() const;
  /// Nodes with no outgoing edges (Out).
  std::vector<std::string> OutputNodes() const;

  const std::vector<WorkflowNode>& nodes() const { return nodes_; }
  const std::vector<WorkflowEdge>& edges() const { return edges_; }
  /// Names of all registered modules, sorted.
  std::vector<std::string> ModuleNames() const;
  Result<const WorkflowNode*> FindNode(const std::string& id) const;
  Result<const ModuleSpec*> FindModule(const std::string& name) const;

  /// Incoming/outgoing edges of a node.
  std::vector<const WorkflowEdge*> IncomingEdges(const std::string& id) const;
  std::vector<const WorkflowEdge*> OutgoingEdges(const std::string& id) const;

 private:
  std::vector<WorkflowNode> nodes_;
  std::vector<WorkflowEdge> edges_;
  std::map<std::string, ModuleSpec> modules_;
};

}  // namespace lipstick

#endif  // LIPSTICK_WORKFLOW_WORKFLOW_H_

#ifndef LIPSTICK_WORKFLOW_MODULE_H_
#define LIPSTICK_WORKFLOW_MODULE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/source_loc.h"
#include "pig/interpreter.h"
#include "pig/parser.h"
#include "relational/value.h"

namespace lipstick {

/// A workflow module specification (Definition 2.1): disjoint relational
/// schemas Sin / Sstate / Sout plus two Pig Latin queries —
///   Qstate : Sin × Sstate -> Sstate   (state manipulation)
///   Qout   : Sin × Sstate -> Sout     (output)
/// Both queries see the input and state relations bound by name; Qstate's
/// final binding of each state relation name becomes the new state (names
/// it does not rebind keep their previous instances), and Qout must bind
/// every output relation name.
struct ModuleSpec {
  std::string name;
  std::map<std::string, SchemaPtr> input_schemas;
  std::map<std::string, SchemaPtr> state_schemas;
  std::map<std::string, SchemaPtr> output_schemas;
  pig::Program qstate;  // may be empty (stateless modules)
  pig::Program qout;
  SourceLoc loc;  // declaration site in the DSL ({0,0}: built in C++)
  // Start of the qstate/qout brace blocks in the DSL file. Statement
  // locations inside the programs are relative to their block; adding
  // (block.line - 1) maps them back to file coordinates.
  SourceLoc qstate_loc;
  SourceLoc qout_loc;

  /// Statically checks the specification: schema-name disjointness, and
  /// that Qstate/Qout analyze cleanly against Sin ∪ Sstate, rebinding state
  /// and output relations with compatible schemas.
  Status Validate(const pig::UdfRegistry* udfs) const;
};

/// Parses Pig Latin source for the two queries and assembles a ModuleSpec.
Result<ModuleSpec> MakeModule(std::string name,
                              std::map<std::string, SchemaPtr> input_schemas,
                              std::map<std::string, SchemaPtr> state_schemas,
                              std::map<std::string, SchemaPtr> output_schemas,
                              std::string_view qstate_src,
                              std::string_view qout_src);

}  // namespace lipstick

#endif  // LIPSTICK_WORKFLOW_MODULE_H_

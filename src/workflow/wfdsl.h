#ifndef LIPSTICK_WORKFLOW_WFDSL_H_
#define LIPSTICK_WORKFLOW_WFDSL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "workflow/workflow.h"

namespace lipstick {

/// Parses a workflow definition in Lipstick's textual format:
///
///   -- modules declare their schemas and Pig Latin queries
///   module dealer {
///     input  Requests(UserId: chararray, BidId: int, Model: chararray);
///     state  Cars(CarId: int, Model: chararray);
///     output Bids(DealerId: int, Amount: double);
///     qstate {
///       ReqModel = FOREACH Requests GENERATE Model;
///       ...
///     }
///     qout {
///       Bids = ...;
///     }
///   }
///
///   -- nodes instantiate modules; `as` binds a shared module identity
///   node req  = request;
///   node bid1 = dealer as dealer1;
///
///   -- edges route output relations to input relations
///   edge req -> bid1 : Requests -> Requests, EmptyPO -> PurchaseOrders;
///
/// Field types: int, double, chararray (string), boolean. Comments: `--`
/// to end of line. Keywords are case-insensitive; `qstate` may be omitted
/// for stateless modules. The resulting workflow still needs
/// Workflow::Validate / WorkflowExecutor::Initialize (which will surface
/// any semantic errors in the Pig queries).
Result<Workflow> ParseWorkflow(std::string_view source);
Result<Workflow> ParseWorkflowFile(const std::string& path);

/// Renders `workflow` back into the DSL (modules, nodes, edges). The
/// output reparses to an equivalent workflow; Pig queries are printed from
/// their ASTs.
std::string WorkflowToDsl(const Workflow& workflow);

}  // namespace lipstick

#endif  // LIPSTICK_WORKFLOW_WFDSL_H_

#include "workflow/module.h"

#include "common/str_util.h"

namespace lipstick {

Status ModuleSpec::Validate(const pig::UdfRegistry* udfs) const {
  if (name.empty()) return Status::InvalidArgument("module name is empty");
  // Schema name disjointness (Definition 2.1 requires disjoint schemas).
  for (const auto& [in_name, unused] : input_schemas) {
    if (state_schemas.count(in_name) || output_schemas.count(in_name)) {
      return Status::InvalidArgument(
          StrCat("module ", name, ": relation '", in_name,
                 "' appears in more than one of Sin/Sstate/Sout"));
    }
  }
  for (const auto& [st_name, unused] : state_schemas) {
    if (output_schemas.count(st_name)) {
      return Status::InvalidArgument(
          StrCat("module ", name, ": relation '", st_name,
                 "' appears in both Sstate and Sout"));
    }
  }

  std::map<std::string, SchemaPtr> bindings;
  for (const auto& [n, s] : input_schemas) bindings[n] = s;
  for (const auto& [n, s] : state_schemas) bindings[n] = s;

  // Qstate must produce state relations with matching schemas.
  Result<std::map<std::string, SchemaPtr>> after_state =
      pig::AnalyzeProgram(qstate, bindings, udfs);
  if (!after_state.ok()) {
    return after_state.status().WithContext(
        StrCat("module ", name, " Qstate"));
  }
  for (const auto& [st_name, schema] : state_schemas) {
    auto it = after_state.value().find(st_name);
    if (it == after_state.value().end()) continue;  // state left unchanged
    if (!it->second->EqualsIgnoreNames(*schema)) {
      return Status::TypeError(
          StrCat("module ", name, " Qstate rebinds state '", st_name,
                 "' with incompatible schema ", it->second->ToString(),
                 " (expected ", schema->ToString(), ")"));
    }
  }

  // Qout must bind every output relation with a matching schema. Qout sees
  // the *post-Qstate* state (execution order runs Qstate first).
  Result<std::map<std::string, SchemaPtr>> after_out =
      pig::AnalyzeProgram(qout, after_state.value(), udfs);
  if (!after_out.ok()) {
    return after_out.status().WithContext(StrCat("module ", name, " Qout"));
  }
  for (const auto& [out_name, schema] : output_schemas) {
    auto it = after_out.value().find(out_name);
    if (it == after_out.value().end()) {
      return Status::TypeError(StrCat("module ", name,
                                      " Qout does not bind output '",
                                      out_name, "'"));
    }
    if (!it->second->EqualsIgnoreNames(*schema)) {
      return Status::TypeError(
          StrCat("module ", name, " Qout binds output '", out_name,
                 "' with incompatible schema ", it->second->ToString(),
                 " (expected ", schema->ToString(), ")"));
    }
  }
  return Status::OK();
}

Result<ModuleSpec> MakeModule(std::string name,
                              std::map<std::string, SchemaPtr> input_schemas,
                              std::map<std::string, SchemaPtr> state_schemas,
                              std::map<std::string, SchemaPtr> output_schemas,
                              std::string_view qstate_src,
                              std::string_view qout_src) {
  ModuleSpec spec;
  spec.name = std::move(name);
  spec.input_schemas = std::move(input_schemas);
  spec.state_schemas = std::move(state_schemas);
  spec.output_schemas = std::move(output_schemas);
  Result<pig::Program> qstate = pig::ParseProgram(qstate_src);
  if (!qstate.ok()) {
    return qstate.status().WithContext(StrCat("module ", spec.name,
                                              " Qstate"));
  }
  spec.qstate = std::move(qstate).value();
  Result<pig::Program> qout = pig::ParseProgram(qout_src);
  if (!qout.ok()) {
    return qout.status().WithContext(StrCat("module ", spec.name, " Qout"));
  }
  spec.qout = std::move(qout).value();
  return spec;
}

}  // namespace lipstick

#ifndef LIPSTICK_COMMON_FAULT_H_
#define LIPSTICK_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace lipstick {

/// Deterministic fault injection for testing failure paths.
///
/// Code under test declares *failure points* by calling
/// `FaultInjector::Fire("point", key)` at interesting boundaries (UDF calls,
/// statement evaluation, module invocation). Tests arm faults against those
/// points; production runs leave the injector disarmed, in which case Fire
/// costs one relaxed atomic load (see bench_fault_overhead).
///
/// Failure points wired into the engine:
///   "pig.udf"        key = lower-cased UDF name, fired before the call
///   "pig.statement"  key = statement target relation, fired per statement
///   "executor.node"  key = workflow node id, fired per invocation attempt
///
/// Determinism: each armed fault owns a splitmix64 Rng seeded explicitly, so
/// probabilistic faults fire on a reproducible hit sequence regardless of
/// thread scheduling (hit counting is serialized under a mutex).
///
/// Faults can also be armed from the environment for whole-binary runs:
///   LIPSTICK_FAULTS="point[@key][:p=0.5][:skip=2][:fires=1][:delay_ms=10]
///                    [:code=unavailable][:seed=7];point2..."
class FaultInjector {
 public:
  struct FaultSpec {
    std::string point;            // failure-point name (required)
    std::string key;              // empty matches any key at the point
    double probability = 1.0;     // chance a matching hit fires
    int skip_hits = 0;            // let this many matching hits pass first
    int max_fires = -1;           // stop firing after this many; -1 = forever
    double delay_ms = 0.0;        // injected latency on fire
    bool fail = true;             // false: delay-only fault
    StatusCode code = StatusCode::kUnavailable;
    std::string message;          // default: "injected fault at <point>"
    uint64_t seed = 0x11b57c4u;   // seeds the per-fault Rng
  };

  /// Process-wide injector. Engine failure points always consult this
  /// instance, so tests need no plumbing to reach code deep in the stack.
  static FaultInjector& Global();

  /// True when at least one fault is armed (single relaxed atomic load).
  static bool Armed() {
    return Global().armed_.load(std::memory_order_relaxed);
  }

  /// Consults the armed faults for `point`/`key`. Returns OK when disarmed,
  /// no spec matches, or the matching spec declines to fire this hit.
  static Status Fire(const char* point, std::string_view key = {}) {
    if (!Armed()) return Status::OK();
    return Global().FireImpl(point, key);
  }

  /// Arms a fault. Multiple faults may target the same point; the first
  /// matching spec (in arm order) decides each hit.
  void Arm(FaultSpec spec);

  /// Disarms everything and zeroes all counters.
  void Reset();

  /// Parses LIPSTICK_FAULTS (see class comment); no-op when unset.
  Status ArmFromEnv();

  /// Total fires across all faults armed at `point` (any key).
  uint64_t fire_count(const std::string& point) const;
  /// Total matching hits (fired or not) across all faults at `point`.
  uint64_t hit_count(const std::string& point) const;

 private:
  struct ArmedFault {
    FaultSpec spec;
    Rng rng{0};
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  Status FireImpl(const char* point, std::string_view key);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::vector<ArmedFault> faults_;
};

}  // namespace lipstick

#endif  // LIPSTICK_COMMON_FAULT_H_

#ifndef LIPSTICK_COMMON_RESULT_H_
#define LIPSTICK_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace lipstick {

/// Holds either a value of type T or a non-OK Status explaining why no value
/// could be produced. Mirrors arrow::Result / absl::StatusOr.
///
/// Accessing the value of an errored Result aborts with the contained Status
/// message in every build mode — an assert() here would compile out under
/// NDEBUG and turn the access into silent undefined behavior in release
/// builds, exactly where an unnoticed error is most dangerous.
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result; `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    LIPSTICK_CHECK(!std::get<Status>(repr_).ok(),
                   "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    CheckHoldsValue();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckHoldsValue();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckHoldsValue();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  void CheckHoldsValue() const {
    if (ok()) return;
    internal::CheckFailed(
        __FILE__, __LINE__, "Result::value() called on an error Result",
        std::get<Status>(repr_).ToString().c_str());
  }

  std::variant<T, Status> repr_;
};

}  // namespace lipstick

#endif  // LIPSTICK_COMMON_RESULT_H_

#ifndef LIPSTICK_COMMON_CANCEL_H_
#define LIPSTICK_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>

#include "common/status.h"

namespace lipstick {

/// Cooperative cancellation for long-running read queries — the `lipstick
/// serve` daemon's per-request deadlines and client-disconnect aborts.
///
/// A token combines three trigger sources:
///   - explicit: Cancel(status) from any thread,
///   - a wall-clock deadline, evaluated every kDeadlineStride polls,
///   - an optional probe callback (e.g. "did the client hang up?"),
///     evaluated every kProbeStride polls.
///
/// Work loops call Poll() at visitor granularity — once per traversed
/// node — which costs one relaxed atomic load plus a counter bump until a
/// trigger fires. Poll() is safe from any number of threads concurrently.
///
/// Installation is thread-local: a CancelScope makes a token current for
/// the calling thread, and the traversal engine (Traverse, ParallelReach,
/// ParallelFor) both polls the current token and re-installs it on its
/// worker threads, so a deadline set at the service layer reaches every
/// traversal visitor without threading a parameter through the operator
/// APIs. Configure (SetDeadlineMs / SetProbe) before sharing the token
/// with other threads; Cancel/Poll/status are safe afterwards.
class CancelToken {
 public:
  /// Deadline evaluation cadence: the clock is read once per this many
  /// polls, keeping the per-node cost of an armed deadline negligible.
  static constexpr uint32_t kDeadlineStride = 128;
  /// Probe cadence; probes (a nonblocking peek at a socket) are pricier.
  static constexpr uint32_t kProbeStride = 1024;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fires the token `limit_ms` milliseconds from now. <= 0 disarms.
  void SetDeadlineMs(double limit_ms) {
    has_deadline_ = limit_ms > 0;
    if (has_deadline_) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         limit_ms));
    }
  }

  /// Installs a probe consulted every kProbeStride polls; returning true
  /// cancels the token with kAborted ("client disconnected").
  void SetProbe(std::function<bool()> probe) { probe_ = std::move(probe); }

  /// Cancels with `reason` (must be non-OK). First caller wins; later
  /// calls and later trigger firings keep the original reason.
  void Cancel(Status reason);

  /// Hot-path check: true once the token has fired. Evaluates the
  /// deadline / probe triggers on their strides.
  bool Poll() {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    uint32_t n = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (has_deadline_ && n % kDeadlineStride == 0) {
      if (CheckDeadlineNow()) return true;
    }
    if (probe_ && n % kProbeStride == 0 && probe_()) {
      Cancel(Status::Aborted("client disconnected"));
      return true;
    }
    return false;
  }

  /// Forces an immediate deadline evaluation (the service layer's
  /// authoritative end-of-request check, independent of poll strides).
  bool CheckDeadlineNow() {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (has_deadline_ && Clock::now() >= deadline_) {
      Cancel(Status::DeadlineExceeded("query deadline expired"));
      return true;
    }
    return false;
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// OK while the token has not fired; afterwards the cancellation reason.
  Status status() const;

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<bool> cancelled_{false};
  std::atomic<uint32_t> polls_{0};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::function<bool()> probe_;
  mutable std::mutex mu_;  // guards reason_
  Status reason_;
};

namespace internal {
/// The calling thread's current token (nullptr = none installed).
extern thread_local CancelToken* g_cancel_token;
}  // namespace internal

/// RAII installation of `token` as the calling thread's current token.
/// Nestable; restores the previous token on destruction. Passing nullptr
/// uninstalls for the scope (used by worker pools to propagate exactly
/// their spawner's token).
class CancelScope {
 public:
  explicit CancelScope(CancelToken* token)
      : prev_(internal::g_cancel_token) {
    internal::g_cancel_token = token;
  }
  ~CancelScope() { internal::g_cancel_token = prev_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken* prev_;
};

/// The calling thread's current token, for hand-off to worker threads.
inline CancelToken* CurrentCancelToken() { return internal::g_cancel_token; }

/// Polls the calling thread's current token; false when none is installed.
/// One thread-local load + null check when no token is current.
inline bool PollCurrentCancel() {
  CancelToken* token = internal::g_cancel_token;
  return token != nullptr && token->Poll();
}

}  // namespace lipstick

#endif  // LIPSTICK_COMMON_CANCEL_H_

#ifndef LIPSTICK_COMMON_SOURCE_LOC_H_
#define LIPSTICK_COMMON_SOURCE_LOC_H_

#include <string>

namespace lipstick {

/// Source location for diagnostics (1-based line/column). A default
/// constructed location ({0, 0}) means "no location" — e.g. a workflow
/// assembled through the C++ API rather than parsed from a file.
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }

  /// "line:column" ("?" when the location is unknown).
  std::string ToString() const {
    if (!valid()) return "?";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

inline bool operator==(const SourceLoc& a, const SourceLoc& b) {
  return a.line == b.line && a.column == b.column;
}

}  // namespace lipstick

#endif  // LIPSTICK_COMMON_SOURCE_LOC_H_

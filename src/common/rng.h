#ifndef LIPSTICK_COMMON_RNG_H_
#define LIPSTICK_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace lipstick {

/// Deterministic pseudo-random number generator (splitmix64 core). All
/// workload generators take explicit seeds so every benchmark run is
/// reproducible bit-for-bit, independent of the standard library.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[static_cast<size_t>(Next() % items.size())];
  }

  /// Derives an independent child generator; used to give each module /
  /// station its own stream.
  Rng Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefull); }

 private:
  uint64_t state_;
};

}  // namespace lipstick

#endif  // LIPSTICK_COMMON_RNG_H_

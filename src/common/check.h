#ifndef LIPSTICK_COMMON_CHECK_H_
#define LIPSTICK_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace lipstick::internal {

/// Terminates the process with a diagnostic. Unlike assert(), this fires in
/// every build mode: invariant violations abort with a message instead of
/// becoming undefined behavior under NDEBUG.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* message) {
  std::fprintf(stderr, "LIPSTICK CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message != nullptr && *message != '\0' ? " — " : "",
               message != nullptr ? message : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace lipstick::internal

/// Always-on invariant check; `msg` is a C string shown on failure.
#define LIPSTICK_CHECK(cond, msg)                                      \
  ((cond) ? static_cast<void>(0)                                       \
          : ::lipstick::internal::CheckFailed(__FILE__, __LINE__,      \
                                              #cond, (msg)))

/// Debug-only invariant check: aborts with a message in debug builds
/// (like assert, but with a diagnostic), compiles to nothing under
/// NDEBUG. Used on hot paths (e.g. per-node bounds checks) where an
/// always-on check would be measurable.
#ifdef NDEBUG
#define LIPSTICK_DCHECK(cond, msg) static_cast<void>(0)
#else
#define LIPSTICK_DCHECK(cond, msg) LIPSTICK_CHECK(cond, msg)
#endif

#endif  // LIPSTICK_COMMON_CHECK_H_

#ifndef LIPSTICK_COMMON_STATUS_H_
#define LIPSTICK_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace lipstick {

/// Error categories used throughout the library. The public API reports
/// failures through Status / Result<T> rather than exceptions, following
/// common database-engine practice (Arrow, RocksDB).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kExecutionError,
  kIOError,
  kInternal,
  kDeadlineExceeded,  // a per-node/per-attempt wall-clock budget expired
  kUnavailable,       // transient failure (default code of injected faults)
  kAborted,           // work intentionally not performed (e.g. skipped node)
};

/// Returns a human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Prepends `context` to the error message; no-op on OK statuses.
  Status WithContext(const std::string& context) const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define LIPSTICK_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::lipstick::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (0)

#define LIPSTICK_CONCAT_IMPL(x, y) x##y
#define LIPSTICK_CONCAT(x, y) LIPSTICK_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on success binds its value to `lhs`,
/// on failure returns the error Status from the enclosing function.
#define LIPSTICK_ASSIGN_OR_RETURN(lhs, expr)                          \
  LIPSTICK_ASSIGN_OR_RETURN_IMPL(                                     \
      LIPSTICK_CONCAT(_result_tmp_, __LINE__), lhs, expr)

#define LIPSTICK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

}  // namespace lipstick

#endif  // LIPSTICK_COMMON_STATUS_H_

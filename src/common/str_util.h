#ifndef LIPSTICK_COMMON_STR_UTIL_H_
#define LIPSTICK_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace lipstick {

namespace internal {
inline void StrCatAppend(std::ostringstream&) {}

template <typename T, typename... Rest>
void StrCatAppend(std::ostringstream& os, const T& first,
                  const Rest&... rest) {
  os << first;
  StrCatAppend(os, rest...);
}
}  // namespace internal

/// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrCatAppend(os, args...);
  return os.str();
}

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the character `sep`; no trimming, keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing (Pig Latin keywords are case-insensitive).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace lipstick

#endif  // LIPSTICK_COMMON_STR_UTIL_H_

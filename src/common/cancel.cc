#include "common/cancel.h"

#include <utility>

#include "common/check.h"

namespace lipstick {

namespace internal {
thread_local CancelToken* g_cancel_token = nullptr;
}  // namespace internal

void CancelToken::Cancel(Status reason) {
  LIPSTICK_DCHECK(!reason.ok(), "CancelToken::Cancel needs a non-OK reason");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;  // first wins
    reason_ = std::move(reason);
  }
  cancelled_.store(true, std::memory_order_release);
}

Status CancelToken::status() const {
  if (!cancelled_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

}  // namespace lipstick

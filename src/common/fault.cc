#include "common/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/result.h"
#include "common/str_util.h"

namespace lipstick {

namespace {

Result<StatusCode> ParseCode(const std::string& name) {
  static const std::pair<const char*, StatusCode> kCodes[] = {
      {"invalid_argument", StatusCode::kInvalidArgument},
      {"not_found", StatusCode::kNotFound},
      {"execution_error", StatusCode::kExecutionError},
      {"io_error", StatusCode::kIOError},
      {"internal", StatusCode::kInternal},
      {"deadline_exceeded", StatusCode::kDeadlineExceeded},
      {"unavailable", StatusCode::kUnavailable},
      {"aborted", StatusCode::kAborted},
  };
  for (const auto& [n, code] : kCodes) {
    if (name == n) return code;
  }
  return Status::ParseError(StrCat("unknown status code '", name, "'"));
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmedFault fault;
  fault.rng = Rng(spec.seed);
  fault.spec = std::move(spec);
  faults_.push_back(std::move(fault));
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::FireImpl(const char* point, std::string_view key) {
  double delay_ms = 0.0;
  Status result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ArmedFault& fault : faults_) {
      const FaultSpec& spec = fault.spec;
      if (spec.point != point) continue;
      if (!spec.key.empty() && spec.key != key) continue;
      ++fault.hits;
      if (fault.hits <= static_cast<uint64_t>(spec.skip_hits)) break;
      if (spec.max_fires >= 0 &&
          fault.fires >= static_cast<uint64_t>(spec.max_fires)) {
        break;
      }
      if (spec.probability < 1.0 && !fault.rng.Chance(spec.probability)) {
        break;
      }
      ++fault.fires;
      delay_ms = spec.delay_ms;
      if (spec.fail) {
        std::string msg = spec.message.empty()
                              ? StrCat("injected fault at ", point,
                                       key.empty() ? "" : "@",
                                       std::string(key))
                              : spec.message;
        result = Status(spec.code, std::move(msg));
      }
      break;  // first matching spec decides the hit
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  return result;
}

Status FaultInjector::ArmFromEnv() {
  const char* env = std::getenv("LIPSTICK_FAULTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  for (const std::string& entry : Split(env, ';')) {
    if (entry.empty()) continue;
    std::vector<std::string> parts = Split(entry, ':');
    FaultSpec spec;
    std::vector<std::string> target = Split(parts[0], '@');
    spec.point = target[0];
    if (target.size() > 1) spec.key = target[1];
    if (spec.point.empty()) {
      return Status::ParseError(
          StrCat("LIPSTICK_FAULTS entry has no point name: '", entry, "'"));
    }
    for (size_t i = 1; i < parts.size(); ++i) {
      std::vector<std::string> kv = Split(parts[i], '=');
      if (kv.size() != 2) {
        return Status::ParseError(
            StrCat("bad LIPSTICK_FAULTS option '", parts[i], "'"));
      }
      const std::string& k = kv[0];
      const std::string& v = kv[1];
      if (k == "p") {
        spec.probability = std::atof(v.c_str());
      } else if (k == "skip") {
        spec.skip_hits = std::atoi(v.c_str());
      } else if (k == "fires") {
        spec.max_fires = std::atoi(v.c_str());
      } else if (k == "delay_ms") {
        spec.delay_ms = std::atof(v.c_str());
      } else if (k == "fail") {
        spec.fail = v != "0" && v != "false";
      } else if (k == "code") {
        LIPSTICK_ASSIGN_OR_RETURN(spec.code, ParseCode(v));
      } else if (k == "seed") {
        spec.seed = std::strtoull(v.c_str(), nullptr, 10);
      } else {
        return Status::ParseError(
            StrCat("unknown LIPSTICK_FAULTS option '", k, "'"));
      }
    }
    Arm(std::move(spec));
  }
  return Status::OK();
}

uint64_t FaultInjector::fire_count(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const ArmedFault& fault : faults_) {
    if (fault.spec.point == point) n += fault.fires;
  }
  return n;
}

uint64_t FaultInjector::hit_count(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const ArmedFault& fault : faults_) {
    if (fault.spec.point == point) n += fault.hits;
  }
  return n;
}

}  // namespace lipstick

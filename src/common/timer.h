#ifndef LIPSTICK_COMMON_TIMER_H_
#define LIPSTICK_COMMON_TIMER_H_

#include <chrono>

namespace lipstick {

/// Simple wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget: constructed with a limit in seconds, reports expiry
/// relative to construction time. A default-constructed Deadline never
/// expires. Used by the workflow executor's per-node timeouts; the Pig
/// interpreter checks it cooperatively between statements.
class Deadline {
 public:
  Deadline() = default;  // unlimited
  explicit Deadline(double limit_seconds) : limit_seconds_(limit_seconds) {}

  bool unlimited() const { return limit_seconds_ <= 0; }
  bool Expired() const {
    return !unlimited() && timer_.ElapsedSeconds() > limit_seconds_;
  }
  double limit_seconds() const { return limit_seconds_; }
  double elapsed_seconds() const { return timer_.ElapsedSeconds(); }

 private:
  WallTimer timer_;
  double limit_seconds_ = 0;
};

}  // namespace lipstick

#endif  // LIPSTICK_COMMON_TIMER_H_

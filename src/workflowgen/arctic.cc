#include "workflowgen/arctic.h"

#include <cmath>

#include "common/str_util.h"
#include "workflow/module.h"

namespace lipstick::workflowgen {

const char* ArcticTopologyName(ArcticTopology t) {
  switch (t) {
    case ArcticTopology::kSerial:
      return "serial";
    case ArcticTopology::kParallel:
      return "parallel";
    case ArcticTopology::kDense:
      return "dense";
  }
  return "?";
}

const char* SelectivityName(Selectivity s) {
  switch (s) {
    case Selectivity::kAll:
      return "all";
    case Selectivity::kSeason:
      return "season";
    case Selectivity::kMonth:
      return "month";
    case Selectivity::kYear:
      return "year";
  }
  return "?";
}

namespace {

SchemaPtr QuerySchema() {
  return Schema::Make({{"Year", FieldType::Int()},
                       {"Month", FieldType::Int()},
                       {"Sel", FieldType::String()}});
}
SchemaPtr ObservationsSchema() {
  return Schema::Make({{"Year", FieldType::Int()},
                       {"Month", FieldType::Int()},
                       {"Temp", FieldType::Double()},
                       {"Pressure", FieldType::Double()},
                       {"Humidity", FieldType::Double()},
                       {"Wind", FieldType::Double()},
                       {"Precip", FieldType::Double()},
                       {"Cloud", FieldType::Double()}});
}
SchemaPtr StationInfoSchema() {
  return Schema::Make({{"StationId", FieldType::Int()}});
}
SchemaPtr MinTempSchema() {
  return Schema::Make({{"Value", FieldType::Double()}});
}

uint64_t Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double Noise(uint64_t key, double lo, double hi) {
  double u = static_cast<double>(Mix(key) >> 11) / 9007199254740992.0;
  return lo + u * (hi - lo);
}

/// One synthetic monthly observation for a station: a seasonal temperature
/// curve (cold Arctic winters) plus station offset and deterministic noise.
Tuple MakeObservation(int station, int year, int month, uint64_t seed) {
  double temp =
      ArcticWorkflow::SyntheticTemperature(station, year, month, seed);
  uint64_t key = seed ^ (static_cast<uint64_t>(station) << 40) ^
                 (static_cast<uint64_t>(year) << 16) ^
                 static_cast<uint64_t>(month);
  Tuple t;
  t.Append(Value::Int(year));
  t.Append(Value::Int(month));
  t.Append(Value::Double(temp));
  t.Append(Value::Double(Noise(key * 3 + 1, 980.0, 1040.0)));   // pressure
  t.Append(Value::Double(Noise(key * 5 + 2, 55.0, 95.0)));      // humidity
  t.Append(Value::Double(Noise(key * 7 + 3, 0.0, 22.0)));       // wind
  t.Append(Value::Double(Noise(key * 11 + 4, 0.0, 60.0)));      // precip
  t.Append(Value::Double(Noise(key * 13 + 5, 0.0, 100.0)));     // cloud
  return t;
}

constexpr char kStationQstate[] = R"PIG(
-- Take this month's measurement (instrument black box) and append it to
-- the station's observation history.
QInfo = CROSS Query, StationInfo;
NewObs = FOREACH QInfo
    GENERATE FLATTEN(TakeMeasurement(StationInfo::StationId, Query::Year,
                                     Query::Month));
Observations = UNION Observations, NewObs;
)PIG";

constexpr char kStationQout[] = R"PIG(
-- Lowest air temperature observed to date under the query selectivity,
-- folded with the minima received from predecessor stations. Each
-- selectivity is a join against the (filtered) query tuple, so only the
-- observations that actually match contribute provenance — graph size
-- therefore scales with selectivity, as in the paper's Figure 6.
QAll = FILTER Query BY Sel == 'all';
MAll = CROSS Observations, QAll;
TAll = FOREACH MAll GENERATE Observations::Temp AS Value;
QYear = FILTER Query BY Sel == 'year';
MYear = JOIN Observations BY Year, QYear BY Year;
TYear = FOREACH MYear GENERATE Observations::Temp AS Value;
QMonth = FILTER Query BY Sel == 'month';
MMonth = JOIN Observations BY Month, QMonth BY Month;
TMonth = FOREACH MMonth GENERATE Observations::Temp AS Value;
QSeason = FILTER Query BY Sel == 'season';
MSeason = JOIN Observations BY (Month - 1) / 3, QSeason BY (Month - 1) / 3;
TSeason = FOREACH MSeason GENERATE Observations::Temp AS Value;
Temps = UNION TAll, TYear, TMonth, TSeason;
TempsAll = GROUP Temps ALL;
LocalMin = FOREACH TempsAll GENERATE MIN(Temps) AS Value;
AllMins = UNION LocalMin, MinTempIn;
MinsAll = GROUP AllMins ALL;
MinTempOut = FOREACH MinsAll GENERATE MIN(AllMins) AS Value;
)PIG";

constexpr char kOutQout[] = R"PIG(
MinsAll = GROUP MinTemps ALL;
GlobalMin = FOREACH MinsAll GENERATE MIN(MinTemps) AS Value;
)PIG";

Result<Value> TakeMeasurement(const std::vector<Value>& args, uint64_t seed) {
  if (args.size() != 3 || !args[0].is_int() || !args[1].is_int() ||
      !args[2].is_int()) {
    return Status::InvalidArgument(
        "TakeMeasurement expects (StationId, Year, Month) integers");
  }
  auto out = std::make_shared<Bag>();
  out->Add(MakeObservation(static_cast<int>(args[0].int_value()),
                           static_cast<int>(args[1].int_value()),
                           static_cast<int>(args[2].int_value()), seed));
  return Value::OfBag(std::move(out));
}

}  // namespace

double ArcticWorkflow::SyntheticTemperature(int station, int year, int month,
                                            uint64_t seed) {
  // Seasonal curve: July warmest (~6C), January coldest (~-28C), with a
  // per-station offset and per-observation noise.
  double seasonal = -11.0 - 17.0 * std::cos(2.0 * M_PI * (month - 7) / 12.0);
  double station_offset =
      Noise(seed ^ (static_cast<uint64_t>(station) * 0x5bd1e995ull), -6.0,
            6.0);
  uint64_t key = seed ^ (static_cast<uint64_t>(station) << 40) ^
                 (static_cast<uint64_t>(year) << 16) ^
                 static_cast<uint64_t>(month);
  return seasonal + station_offset + Noise(key, -4.0, 4.0);
}

Result<std::unique_ptr<ArcticWorkflow>> ArcticWorkflow::Create(
    const ArcticConfig& config) {
  if (config.num_stations < 1) {
    return Status::InvalidArgument("need at least one station");
  }
  if (config.topology == ArcticTopology::kDense &&
      (config.fan_out < 1 || config.num_stations % config.fan_out != 0)) {
    return Status::InvalidArgument(
        "dense topology requires num_stations divisible by fan_out");
  }
  auto wf = std::unique_ptr<ArcticWorkflow>(new ArcticWorkflow());
  wf->config_ = config;
  wf->udfs_ = std::make_unique<pig::UdfRegistry>();
  uint64_t seed = config.seed;
  LIPSTICK_RETURN_IF_ERROR(wf->udfs_->Register(
      "TakeMeasurement",
      pig::UdfEntry{[seed](const std::vector<Value>& args) {
                      return TakeMeasurement(args, seed);
                    },
                    [](const std::vector<FieldType>&) {
                      return Result<FieldType>(
                          FieldType::Bag(ObservationsSchema()));
                    }}));

  wf->workflow_ = std::make_unique<Workflow>();
  Workflow& w = *wf->workflow_;

  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec in_spec,
      MakeModule("arctic_in", {{"QueryIn", QuerySchema()}}, {},
                 {{"Query", QuerySchema()}, {"EmptyMinTemp", MinTempSchema()}},
                 "",
                 R"PIG(
Query = FOREACH QueryIn GENERATE Year, Month, Sel;
None = FILTER QueryIn BY false;
EmptyMinTemp = FOREACH None GENERATE 0.0 AS Value;
)PIG"));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(in_spec)));

  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec station_spec,
      MakeModule("station",
                 {{"Query", QuerySchema()}, {"MinTempIn", MinTempSchema()}},
                 {{"Observations", ObservationsSchema()},
                  {"StationInfo", StationInfoSchema()}},
                 {{"MinTempOut", MinTempSchema()}}, kStationQstate,
                 kStationQout));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(station_spec)));

  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec out_spec,
      MakeModule("arctic_out", {{"MinTemps", MinTempSchema()}}, {},
                 {{"GlobalMin", MinTempSchema()}}, "", kOutQout));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(out_spec)));

  // --- DAG ---
  LIPSTICK_RETURN_IF_ERROR(w.AddNode("in", "arctic_in"));
  LIPSTICK_RETURN_IF_ERROR(w.AddNode("out", "arctic_out"));
  auto sta = [](int i) { return StrCat("sta", i); };
  for (int i = 1; i <= config.num_stations; ++i) {
    LIPSTICK_RETURN_IF_ERROR(w.AddNode(sta(i), "station"));
    // Every station receives the query from the input module; the empty
    // MinTemp relation keeps the MinTempIn port fed for first-layer
    // stations (later layers additionally union their predecessors' minima).
    LIPSTICK_RETURN_IF_ERROR(
        w.AddEdge("in", sta(i),
                  {EdgeRelation{"Query", "Query"},
                   EdgeRelation{"EmptyMinTemp", "MinTempIn"}}));
  }

  // MinTemp chain edges and output edges depend on the topology.
  std::vector<int> terminal_stations;
  switch (config.topology) {
    case ArcticTopology::kSerial:
      for (int i = 2; i <= config.num_stations; ++i) {
        LIPSTICK_RETURN_IF_ERROR(
            w.AddEdge(sta(i - 1), sta(i),
                      {EdgeRelation{"MinTempOut", "MinTempIn"}}));
      }
      terminal_stations.push_back(config.num_stations);
      break;
    case ArcticTopology::kParallel:
      for (int i = 1; i <= config.num_stations; ++i) {
        terminal_stations.push_back(i);
      }
      break;
    case ArcticTopology::kDense: {
      int layers = config.num_stations / config.fan_out;
      for (int layer = 1; layer < layers; ++layer) {
        for (int a = 1; a <= config.fan_out; ++a) {
          for (int b = 1; b <= config.fan_out; ++b) {
            int from = (layer - 1) * config.fan_out + a;
            int to = layer * config.fan_out + b;
            LIPSTICK_RETURN_IF_ERROR(
                w.AddEdge(sta(from), sta(to),
                          {EdgeRelation{"MinTempOut", "MinTempIn"}}));
          }
        }
      }
      for (int b = 1; b <= config.fan_out; ++b) {
        terminal_stations.push_back((layers - 1) * config.fan_out + b);
      }
      break;
    }
  }
  for (int i : terminal_stations) {
    LIPSTICK_RETURN_IF_ERROR(
        w.AddEdge(sta(i), "out", {EdgeRelation{"MinTempOut", "MinTemps"}}));
  }

  wf->executor_ =
      std::make_unique<WorkflowExecutor>(wf->workflow_.get(), wf->udfs_.get());
  LIPSTICK_RETURN_IF_ERROR(wf->executor_->Initialize());

  // --- Initial state: 1961-2000 monthly observation history per station ---
  for (int i = 1; i <= config.num_stations; ++i) {
    Bag obs;
    obs.Reserve(static_cast<size_t>(config.history_years) * 12);
    for (int year = 2001 - config.history_years; year <= 2000; ++year) {
      for (int month = 1; month <= 12; ++month) {
        obs.Add(MakeObservation(i, year, month, config.seed));
      }
    }
    LIPSTICK_RETURN_IF_ERROR(
        wf->executor_->SetInitialState(sta(i), "Observations",
                                       std::move(obs)));
    Bag info;
    info.Add(Tuple({Value::Int(i)}));
    LIPSTICK_RETURN_IF_ERROR(
        wf->executor_->SetInitialState(sta(i), "StationInfo",
                                       std::move(info)));
  }
  return wf;
}

Result<WorkflowOutputs> ArcticWorkflow::ExecuteOnce(ProvenanceGraph* graph) {
  int e = next_execution_++;
  int year = 2001 + e / 12;
  int month = 1 + e % 12;
  WorkflowInputs inputs;
  Bag query;
  query.Add(Tuple({Value::Int(year), Value::Int(month),
                   Value::String(SelectivityName(config_.selectivity))}));
  inputs["in"]["QueryIn"] = std::move(query);
  return executor_->Execute(inputs, graph, config_.num_workers);
}

Result<double> ArcticWorkflow::RunSeries(int num_executions,
                                         ProvenanceGraph* graph) {
  double last_min = 0;
  for (int e = 0; e < num_executions; ++e) {
    LIPSTICK_ASSIGN_OR_RETURN(WorkflowOutputs outputs, ExecuteOnce(graph));
    const Relation& result = outputs.at("out").at("GlobalMin");
    if (!result.bag.empty()) {
      last_min = result.bag.at(0).tuple.at(0).AsDouble();
    }
  }
  return last_min;
}

}  // namespace lipstick::workflowgen

#ifndef LIPSTICK_WORKFLOWGEN_DEALERSHIP_H_
#define LIPSTICK_WORKFLOWGEN_DEALERSHIP_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "provenance/graph.h"
#include "workflow/executor.h"
#include "workflow/workflow.h"

namespace lipstick::workflowgen {

/// Configuration of the Car-dealerships benchmark workflow (Section 5.2).
struct DealershipConfig {
  int num_dealers = 4;
  int num_cars = 20000;      // total cars, split evenly across dealerships
  int num_executions = 10;   // maximum executions per run
  uint64_t seed = 42;
  int num_workers = 1;       // parallel executor width
  // Benchmark overrides: fixes the buyer's acceptance probability (< 0
  // draws it randomly, the paper's setup); 0 forces full-length runs.
  double accept_probability = -1.0;
  // Fixes the requested model (empty -> random).
  std::string buyer_model;
};

/// Statistics of one run (a series of consecutive executions with a fixed
/// buyer; terminates on purchase or when num_executions is reached).
struct DealershipRunStats {
  int executions = 0;
  bool purchased = false;
  double best_bid = 0;            // last best bid seen
  std::string buyer_model;
  size_t graph_nodes = 0;         // 0 when tracking is off
};

/// The running-example workflow: a bid-request input, four dealership
/// modules (invoked in a bid phase and a purchase phase, sharing state), a
/// minimum-bid aggregator, the accept/decline combinator, a router, and the
/// purchased-car output. Dealership pricing is the CalcBid black-box UDF.
class DealershipWorkflow {
 public:
  /// Builds the workflow, registers the CalcBid UDF, validates everything,
  /// and installs the initial car inventory.
  static Result<std::unique_ptr<DealershipWorkflow>> Create(
      const DealershipConfig& config);

  /// Runs a full buyer run: consecutive executions until purchase or the
  /// execution budget is exhausted. Provenance goes to `graph` when given.
  Result<DealershipRunStats> Run(ProvenanceGraph* graph);

  /// Runs exactly one execution with the given bid id; exposed for tests.
  Result<WorkflowOutputs> ExecuteOnce(int bid_id, ProvenanceGraph* graph);

  const Workflow& workflow() const { return *workflow_; }
  WorkflowExecutor& executor() { return *executor_; }
  const pig::UdfRegistry& udfs() const { return *udfs_; }
  const std::string& buyer_model() const { return buyer_model_; }

  /// The 12 German car models used by WorkflowGen.
  static const std::vector<std::string>& Models();

 private:
  DealershipWorkflow() = default;

  DealershipConfig config_;
  std::unique_ptr<pig::UdfRegistry> udfs_;
  std::unique_ptr<Workflow> workflow_;
  std::unique_ptr<WorkflowExecutor> executor_;
  std::unique_ptr<Rng> rng_;
  std::string buyer_model_;
  double reserve_price_ = 0;
  double accept_probability_ = 0;
};

}  // namespace lipstick::workflowgen

#endif  // LIPSTICK_WORKFLOWGEN_DEALERSHIP_H_

#include "workflowgen/dealership.h"

#include <cmath>

#include "common/str_util.h"
#include "workflow/module.h"

namespace lipstick::workflowgen {

namespace {

SchemaPtr RequestsSchema() {
  return Schema::Make({{"UserId", FieldType::String()},
                       {"BidId", FieldType::Int()},
                       {"Model", FieldType::String()}});
}
SchemaPtr ChoiceSchema() {
  return Schema::Make({{"BidId", FieldType::Int()},
                       {"Accept", FieldType::Bool()},
                       {"MaxPrice", FieldType::Double()}});
}
SchemaPtr CarsSchema() {
  return Schema::Make(
      {{"CarId", FieldType::Int()}, {"Model", FieldType::String()}});
}
SchemaPtr SoldCarsSchema() {
  return Schema::Make(
      {{"CarId", FieldType::Int()}, {"BidId", FieldType::Int()}});
}
SchemaPtr InventoryBidsSchema() {
  return Schema::Make({{"BidId", FieldType::Int()},
                       {"UserId", FieldType::String()},
                       {"Model", FieldType::String()},
                       {"Amount", FieldType::Double()}});
}
SchemaPtr DealerInfoSchema() {
  return Schema::Make({{"DealerId", FieldType::Int()}});
}
SchemaPtr BidsSchema() {
  return Schema::Make({{"DealerId", FieldType::Int()},
                       {"BidId", FieldType::Int()},
                       {"Model", FieldType::String()},
                       {"Amount", FieldType::Double()}});
}
SchemaPtr PurchaseOrderSchema() {
  return Schema::Make({{"BidId", FieldType::Int()},
                       {"Model", FieldType::String()},
                       {"Amount", FieldType::Double()}});
}
SchemaPtr SoldCarSchema() {
  return Schema::Make(
      {{"CarId", FieldType::Int()}, {"Model", FieldType::String()}});
}

/// Deterministic base price per model, in dollars.
double BasePrice(const std::string& model) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : model) h = (h ^ c) * 1099511628211ull;
  return 15000.0 + static_cast<double>(h % 30000ull);
}

/// The CalcBid black-box pricing function (paper Example 2.1). Takes the
/// nested bags of one AllInfoByModel group — Requests, NumCarsByModel,
/// NumSoldByModel, PriorBids — and emits one InventoryBids tuple per
/// request. Pricing: scarcer / better-selling models cost more; repeated
/// requests for the same model receive the same or a lower amount (the
/// dealer consults its bid history).
Result<Value> CalcBid(const std::vector<Value>& args) {
  if (args.size() != 4) {
    return Status::InvalidArgument("CalcBid expects 4 bag arguments");
  }
  for (const Value& v : args) {
    if (!v.is_bag()) {
      return Status::InvalidArgument("CalcBid arguments must be bags");
    }
  }
  const Bag& requests = *args[0].bag();
  const Bag& num_cars = *args[1].bag();
  const Bag& num_sold = *args[2].bag();
  const Bag& prior_bids = *args[3].bag();

  auto out = std::make_shared<Bag>();
  if (num_cars.empty()) {
    return Value::OfBag(out);  // no inventory for this model: no bid
  }
  // NumCarsByModel / NumSoldByModel tuples: (Model, count).
  double avail = num_cars.at(0).tuple.at(1).AsDouble();
  double sold =
      num_sold.empty() ? 0.0 : num_sold.at(0).tuple.at(1).AsDouble();

  // Lowest prior bid for this model, if any (PriorBids: BidId, Amount,
  // Model).
  double prior_best = 0;
  bool has_prior = false;
  for (const AnnotatedTuple& t : prior_bids) {
    double amount = t.tuple.at(1).AsDouble();
    if (!has_prior || amount < prior_best) {
      prior_best = amount;
      has_prior = true;
    }
  }

  for (const AnnotatedTuple& req : requests) {
    // Requests tuples: (UserId, BidId, Model).
    const std::string& user = req.tuple.at(0).string_value();
    int64_t bid_id = req.tuple.at(1).int_value();
    const std::string& model = req.tuple.at(2).string_value();

    double price = BasePrice(model);
    price *= 1.0 + 0.2 * (sold / (avail + 1.0));  // demand pressure
    price *= 1.0 + 2.0 / (avail + 4.0);           // scarcity premium
    if (has_prior && prior_best < price) {
      price = prior_best * 0.98;  // same-or-lower repeat offer
    }
    price = std::floor(price);

    Tuple t;
    t.Append(Value::Int(bid_id));
    t.Append(Value::String(user));
    t.Append(Value::String(model));
    t.Append(Value::Double(price));
    out->Add(std::move(t));
  }
  return Value::OfBag(out);
}

constexpr char kDealerQstate[] = R"PIG(
-- Bid phase (paper Example 2.1, with qualified-name projections made
-- explicit and a PriorBids extension so repeat requests bid lower).
ReqModel = FOREACH Requests GENERATE Model;
Inventory0 = JOIN Cars BY Model, ReqModel BY Model;
Inventory = FOREACH Inventory0 GENERATE Cars::CarId AS CarId,
                                        Cars::Model AS Model;
SoldInventory0 = JOIN Inventory BY CarId, SoldCars BY CarId;
SoldInventory = FOREACH SoldInventory0
    GENERATE Inventory::CarId AS CarId, Inventory::Model AS Model;
CarsByModel = GROUP Inventory BY Model;
SoldByModel = GROUP SoldInventory BY Model;
NumCarsByModel = FOREACH CarsByModel
    GENERATE group AS Model, COUNT(Inventory) AS NumAvail;
NumSoldByModel = FOREACH SoldByModel
    GENERATE group AS Model, COUNT(SoldInventory) AS NumSold;
PriorBids0 = JOIN InventoryBids BY Model, ReqModel BY Model;
PriorBids = FOREACH PriorBids0
    GENERATE InventoryBids::BidId AS BidId,
             InventoryBids::Amount AS Amount,
             ReqModel::Model AS Model;
AllInfoByModel = COGROUP Requests BY Model, NumCarsByModel BY Model,
                         NumSoldByModel BY Model, PriorBids BY Model;
NewBids = FOREACH AllInfoByModel
    GENERATE FLATTEN(CalcBid(Requests, NumCarsByModel, NumSoldByModel,
                             PriorBids));
InventoryBids = UNION InventoryBids, NewBids;

-- Purchase phase: pick the lowest-id unsold car of the ordered model.
POModel = FOREACH PurchaseOrders GENERATE BidId, Model;
AvailCars0 = JOIN Cars BY Model, POModel BY Model;
AvailCars = FOREACH AvailCars0
    GENERATE Cars::CarId AS CarId, POModel::BidId AS BidId;
ByCar = COGROUP AvailCars BY CarId, SoldCars BY CarId;
CarStatus = FOREACH ByCar
    GENERATE group AS CarId, COUNT(AvailCars) AS NumAvail,
             COUNT(SoldCars) AS NumSold, MIN(AvailCars.BidId) AS BidId;
UnsoldCars = FILTER CarStatus BY NumAvail > 0 AND NumSold == 0;
PickGroups = GROUP UnsoldCars BY BidId;
Picked = FOREACH PickGroups
    GENERATE MIN(UnsoldCars.CarId) AS CarId, group AS BidId;
NewSold = FOREACH Picked GENERATE CarId, BidId;
SoldCars = UNION SoldCars, NewSold;
)PIG";

constexpr char kDealerQout[] = R"PIG(
BidsWithDealer = CROSS NewBids, DealerInfo;
Bids = FOREACH BidsWithDealer
    GENERATE DealerInfo::DealerId AS DealerId, NewBids::BidId AS BidId,
             NewBids::Model AS Model, NewBids::Amount AS Amount;
SoldJoin = JOIN NewSold BY CarId, Cars BY CarId;
SoldCar = FOREACH SoldJoin
    GENERATE NewSold::CarId AS CarId, Cars::Model AS Model;
)PIG";

constexpr char kAggQout[] = R"PIG(
AllBids = UNION Bids1, Bids2, Bids3, Bids4;
ByBid = GROUP AllBids BY BidId;
Best0 = FOREACH ByBid GENERATE group AS BidId, MIN(AllBids.Amount) AS Amount;
Joined = JOIN AllBids BY BidId, Best0 BY BidId;
Winners = FILTER Joined BY AllBids::Amount <= Best0::Amount;
WinnerGroups = GROUP Winners BY AllBids::BidId;
MinDealer = FOREACH WinnerGroups
    GENERATE group AS BidId, MIN(Winners.AllBids::DealerId) AS DealerId;
Final = JOIN Winners BY (AllBids::BidId, AllBids::DealerId),
             MinDealer BY (BidId, DealerId);
BestBid = FOREACH Final
    GENERATE MinDealer::DealerId AS DealerId, MinDealer::BidId AS BidId,
             Winners::AllBids::Model AS Model,
             Winners::AllBids::Amount AS Amount;
)PIG";

constexpr char kAndQout[] = R"PIG(
Combined = JOIN BestBid BY BidId, Choice BY BidId;
Accepted = FILTER Combined
    BY Choice::Accept AND BestBid::Amount <= Choice::MaxPrice;
Decision = FOREACH Accepted
    GENERATE BestBid::DealerId AS DealerId, BestBid::BidId AS BidId,
             BestBid::Model AS Model, BestBid::Amount AS Amount;
)PIG";

std::string XorQout(int num_dealers) {
  // The xor module routes the accepted decision to the winning dealership
  // only — a SPLIT with one branch per dealer.
  std::vector<std::string> branches;
  for (int k = 1; k <= num_dealers; ++k) {
    branches.push_back(StrCat("D", k, " IF DealerId == ", k));
  }
  std::string out =
      StrCat("SPLIT Decision INTO ", Join(branches, ", "), ";\n");
  for (int k = 1; k <= num_dealers; ++k) {
    out += StrCat("PO", k, " = FOREACH D", k,
                  " GENERATE BidId, Model, Amount;\n");
  }
  out +=
      "EmptyDecision = FILTER Decision BY false;\n"
      "EmptyRequests = FOREACH EmptyDecision GENERATE 'none' AS UserId, "
      "BidId, Model;\n";
  return out;
}

std::string CarQout(int num_dealers) {
  std::vector<std::string> names;
  for (int k = 1; k <= num_dealers; ++k) names.push_back(StrCat("Sold", k));
  return StrCat("PurchasedCar = UNION ", Join(names, ", "), ";\n");
}

}  // namespace

const std::vector<std::string>& DealershipWorkflow::Models() {
  static const std::vector<std::string>* kModels = new std::vector<std::string>{
      "VW Golf",    "VW Passat",  "VW Jetta",   "BMW 3",
      "BMW 5",      "BMW X3",     "Audi A3",    "Audi A4",
      "Audi A6",    "Mercedes C", "Mercedes E", "Porsche 911"};
  return *kModels;
}

Result<std::unique_ptr<DealershipWorkflow>> DealershipWorkflow::Create(
    const DealershipConfig& config) {
  if (config.num_dealers != 4) {
    return Status::InvalidArgument(
        "the dealership workflow is specified for exactly 4 dealerships");
  }
  auto wf = std::unique_ptr<DealershipWorkflow>(new DealershipWorkflow());
  wf->config_ = config;
  wf->rng_ = std::make_unique<Rng>(config.seed);
  wf->udfs_ = std::make_unique<pig::UdfRegistry>();

  LIPSTICK_RETURN_IF_ERROR(wf->udfs_->Register(
      "CalcBid", pig::UdfEntry{
                     CalcBid, [](const std::vector<FieldType>&) {
                       return Result<FieldType>(
                           FieldType::Bag(InventoryBidsSchema()));
                     }}));

  wf->workflow_ = std::make_unique<Workflow>();
  Workflow& w = *wf->workflow_;

  // --- Module specifications ---
  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec req_spec,
      MakeModule("request", {{"BuyerRequests", RequestsSchema()}}, {},
                 {{"Requests", RequestsSchema()},
                  {"EmptyPO", PurchaseOrderSchema()}},
                 "",
                 R"PIG(
Requests = FOREACH BuyerRequests GENERATE UserId, BidId, Model;
None = FILTER BuyerRequests BY false;
EmptyPO = FOREACH None GENERATE BidId, Model, 0.0 AS Amount;
)PIG"));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(req_spec)));

  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec choice_spec,
      MakeModule("choice", {{"BuyerChoice", ChoiceSchema()}}, {},
                 {{"Choice", ChoiceSchema()}}, "",
                 "Choice = FOREACH BuyerChoice GENERATE BidId, Accept, "
                 "MaxPrice;\n"));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(choice_spec)));

  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec dealer_spec,
      MakeModule("dealer",
                 {{"Requests", RequestsSchema()},
                  {"PurchaseOrders", PurchaseOrderSchema()}},
                 {{"Cars", CarsSchema()},
                  {"SoldCars", SoldCarsSchema()},
                  {"InventoryBids", InventoryBidsSchema()},
                  {"DealerInfo", DealerInfoSchema()}},
                 {{"Bids", BidsSchema()}, {"SoldCar", SoldCarSchema()}},
                 kDealerQstate, kDealerQout));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(dealer_spec)));

  std::map<std::string, SchemaPtr> agg_inputs;
  for (int k = 1; k <= config.num_dealers; ++k) {
    agg_inputs[StrCat("Bids", k)] = BidsSchema();
  }
  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec agg_spec,
      MakeModule("aggregate", std::move(agg_inputs), {},
                 {{"BestBid", BidsSchema()}}, "", kAggQout));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(agg_spec)));

  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec and_spec,
      MakeModule("and",
                 {{"BestBid", BidsSchema()}, {"Choice", ChoiceSchema()}}, {},
                 {{"Decision", BidsSchema()}}, "", kAndQout));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(and_spec)));

  std::map<std::string, SchemaPtr> xor_outputs;
  for (int k = 1; k <= config.num_dealers; ++k) {
    xor_outputs[StrCat("PO", k)] = PurchaseOrderSchema();
  }
  xor_outputs["EmptyRequests"] = RequestsSchema();
  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec xor_spec,
      MakeModule("xor", {{"Decision", BidsSchema()}}, {},
                 std::move(xor_outputs), "", XorQout(config.num_dealers)));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(xor_spec)));

  std::map<std::string, SchemaPtr> car_inputs;
  for (int k = 1; k <= config.num_dealers; ++k) {
    car_inputs[StrCat("Sold", k)] = SoldCarSchema();
  }
  LIPSTICK_ASSIGN_OR_RETURN(
      ModuleSpec car_spec,
      MakeModule("car", std::move(car_inputs), {},
                 {{"PurchasedCar", SoldCarSchema()}}, "",
                 CarQout(config.num_dealers)));
  LIPSTICK_RETURN_IF_ERROR(w.AddModule(std::move(car_spec)));

  // --- DAG ---
  LIPSTICK_RETURN_IF_ERROR(w.AddNode("req", "request"));
  LIPSTICK_RETURN_IF_ERROR(w.AddNode("choice", "choice"));
  LIPSTICK_RETURN_IF_ERROR(w.AddNode("agg", "aggregate"));
  LIPSTICK_RETURN_IF_ERROR(w.AddNode("and", "and"));
  LIPSTICK_RETURN_IF_ERROR(w.AddNode("xor", "xor"));
  LIPSTICK_RETURN_IF_ERROR(w.AddNode("car", "car"));
  for (int k = 1; k <= config.num_dealers; ++k) {
    std::string bid_node = StrCat("dealer_bid_", k);
    std::string buy_node = StrCat("dealer_buy_", k);
    std::string instance = StrCat("dealer", k);
    LIPSTICK_RETURN_IF_ERROR(w.AddNode(bid_node, "dealer", instance));
    LIPSTICK_RETURN_IF_ERROR(w.AddNode(buy_node, "dealer", instance));
    LIPSTICK_RETURN_IF_ERROR(
        w.AddEdge("req", bid_node,
                  {EdgeRelation{"Requests", "Requests"},
                   EdgeRelation{"EmptyPO", "PurchaseOrders"}}));
    LIPSTICK_RETURN_IF_ERROR(
        w.AddEdge(bid_node, "agg",
                  {EdgeRelation{"Bids", StrCat("Bids", k)}}));
    LIPSTICK_RETURN_IF_ERROR(
        w.AddEdge("xor", buy_node,
                  {EdgeRelation{StrCat("PO", k), "PurchaseOrders"},
                   EdgeRelation{"EmptyRequests", "Requests"}}));
    LIPSTICK_RETURN_IF_ERROR(
        w.AddEdge(buy_node, "car",
                  {EdgeRelation{"SoldCar", StrCat("Sold", k)}}));
  }
  LIPSTICK_RETURN_IF_ERROR(w.AddEdge("agg", "and", "BestBid"));
  LIPSTICK_RETURN_IF_ERROR(
      w.AddEdge("choice", "and", {EdgeRelation{"Choice", "Choice"}}));
  LIPSTICK_RETURN_IF_ERROR(w.AddEdge("and", "xor", "Decision"));

  wf->executor_ =
      std::make_unique<WorkflowExecutor>(wf->workflow_.get(), wf->udfs_.get());
  LIPSTICK_RETURN_IF_ERROR(wf->executor_->Initialize());

  // --- Initial state: cars split across dealerships, random models ---
  int per_dealer = config.num_cars / config.num_dealers;
  int car_id = 1;
  for (int k = 1; k <= config.num_dealers; ++k) {
    Bag cars;
    cars.Reserve(per_dealer);
    for (int i = 0; i < per_dealer; ++i) {
      Tuple t;
      t.Append(Value::Int(car_id++));
      t.Append(Value::String(wf->rng_->Pick(Models())));
      cars.Add(std::move(t));
    }
    std::string instance = StrCat("dealer", k);
    LIPSTICK_RETURN_IF_ERROR(
        wf->executor_->SetInitialState(instance, "Cars", std::move(cars)));
    Bag info;
    info.Add(Tuple({Value::Int(k)}));
    LIPSTICK_RETURN_IF_ERROR(
        wf->executor_->SetInitialState(instance, "DealerInfo",
                                       std::move(info)));
  }

  // --- Buyer model: fixed per run ---
  wf->buyer_model_ = config.buyer_model.empty() ? wf->rng_->Pick(Models())
                                                : config.buyer_model;
  wf->reserve_price_ = BasePrice(wf->buyer_model_) * 1.35;
  wf->accept_probability_ = config.accept_probability >= 0
                                ? config.accept_probability
                                : 0.15 + 0.5 * wf->rng_->UniformDouble();
  return wf;
}

Result<WorkflowOutputs> DealershipWorkflow::ExecuteOnce(
    int bid_id, ProvenanceGraph* graph) {
  WorkflowInputs inputs;
  Bag requests;
  requests.Add(Tuple({Value::String("buyer1"), Value::Int(bid_id),
                      Value::String(buyer_model_)}));
  inputs["req"]["BuyerRequests"] = std::move(requests);

  Bag choice;
  bool accept = rng_->Chance(accept_probability_);
  choice.Add(Tuple({Value::Int(bid_id), Value::Bool(accept),
                    Value::Double(reserve_price_)}));
  inputs["choice"]["BuyerChoice"] = std::move(choice);

  return executor_->Execute(inputs, graph, config_.num_workers);
}

Result<DealershipRunStats> DealershipWorkflow::Run(ProvenanceGraph* graph) {
  DealershipRunStats stats;
  stats.buyer_model = buyer_model_;
  for (int e = 0; e < config_.num_executions; ++e) {
    LIPSTICK_ASSIGN_OR_RETURN(WorkflowOutputs outputs,
                              ExecuteOnce(e + 1, graph));
    ++stats.executions;
    const Relation& best = outputs.at("agg").at("BestBid");
    if (!best.bag.empty()) {
      stats.best_bid = best.bag.at(0).tuple.at(3).AsDouble();
    }
    const Relation& purchased = outputs.at("car").at("PurchasedCar");
    if (!purchased.bag.empty()) {
      stats.purchased = true;
      break;
    }
  }
  if (graph != nullptr) stats.graph_nodes = graph->num_nodes();
  return stats;
}

}  // namespace lipstick::workflowgen

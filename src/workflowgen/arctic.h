#ifndef LIPSTICK_WORKFLOWGEN_ARCTIC_H_
#define LIPSTICK_WORKFLOWGEN_ARCTIC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "provenance/graph.h"
#include "workflow/executor.h"
#include "workflow/workflow.h"

namespace lipstick::workflowgen {

/// Topologies of the Arctic-stations workflow family (Section 5.2, Fig. 4).
enum class ArcticTopology { kSerial, kParallel, kDense };

const char* ArcticTopologyName(ArcticTopology t);

/// Query selectivity: which stored observations the per-station minimum is
/// computed over. all = every observation, season = 1/4, month = 1/12,
/// year = at most 12 observations.
enum class Selectivity { kAll, kSeason, kMonth, kYear };

const char* SelectivityName(Selectivity s);

struct ArcticConfig {
  ArcticTopology topology = ArcticTopology::kParallel;
  int num_stations = 24;  // between 2 and 24 in the paper
  int fan_out = 2;        // dense topology: stations per layer
  Selectivity selectivity = Selectivity::kMonth;
  int history_years = 40;  // monthly observations 1961-2000
  uint64_t seed = 7;
  int num_workers = 1;
};

/// Workflows modeling meteorological stations in the Russian Arctic. Each
/// station stores historical observations (six meteorological variables) in
/// its state, takes a new measurement per execution (a black-box UDF
/// standing in for the physical instrument), computes its lowest observed
/// air temperature under the query selectivity, folds in the minima
/// received from its predecessor stations, and forwards the result; the
/// output module reports the overall minimum.
///
/// The real NSIDC dataset [27] is replaced by a seeded synthetic generator
/// with the same shape: 480 monthly observations per station with seasonal
/// temperature structure (see DESIGN.md, substitutions).
class ArcticWorkflow {
 public:
  static Result<std::unique_ptr<ArcticWorkflow>> Create(
      const ArcticConfig& config);

  /// Runs one execution: the query (year, month, selectivity) advances one
  /// month per execution starting at 2001-01.
  Result<WorkflowOutputs> ExecuteOnce(ProvenanceGraph* graph);

  /// Runs `num_executions` executions; returns the last global minimum.
  Result<double> RunSeries(int num_executions, ProvenanceGraph* graph);

  const Workflow& workflow() const { return *workflow_; }
  WorkflowExecutor& executor() { return *executor_; }
  const pig::UdfRegistry& udfs() const { return *udfs_; }
  const ArcticConfig& config() const { return config_; }

  /// Synthetic monthly temperature for (station, year, month); exposed so
  /// tests can cross-check workflow results against direct computation.
  static double SyntheticTemperature(int station, int year, int month,
                                     uint64_t seed);

 private:
  ArcticWorkflow() = default;

  ArcticConfig config_;
  std::unique_ptr<pig::UdfRegistry> udfs_;
  std::unique_ptr<Workflow> workflow_;
  std::unique_ptr<WorkflowExecutor> executor_;
  int next_execution_ = 0;
};

}  // namespace lipstick::workflowgen

#endif  // LIPSTICK_WORKFLOWGEN_ARCTIC_H_

#include "service/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/str_util.h"
#include "obs/json.h"
#include "service/protocol.h"

namespace lipstick::service {

Result<ServiceClient> ServiceClient::Connect(const std::string& endpoint) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument(
        StrCat("expected host:port, got '", endpoint, "'"));
  }
  char* end = nullptr;
  long port = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port < 1 || port > 65535) {
    return Status::InvalidArgument(
        StrCat("bad port in '", endpoint, "'"));
  }
  return ConnectHostPort(endpoint.substr(0, colon), static_cast<int>(port));
}

Result<ServiceClient> ServiceClient::ConnectHostPort(const std::string& host,
                                                     int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  int rc = ::getaddrinfo(host.c_str(), StrCat(port).c_str(), &hints, &found);
  if (rc != 0) {
    return Status::IOError(
        StrCat("cannot resolve '", host, "': ", gai_strerror(rc)));
  }
  int fd = -1;
  int connect_errno = 0;
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    connect_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd >= 0) {
    // Requests are single whole frames; disable Nagle so they leave now.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (fd < 0) {
    return Status::IOError(StrCat("cannot connect to ", host, ":", port, ": ",
                                  std::strerror(connect_errno)));
  }
  return ServiceClient(fd);
}

void ServiceClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> ServiceClient::Call(const std::string& payload) {
  if (fd_ < 0) return Status::ExecutionError("client is not connected");
  LIPSTICK_RETURN_IF_ERROR(WriteFrame(fd_, payload));
  Result<std::string> frame = ReadFrame(fd_);
  if (!frame.ok()) {
    // A clean EOF here means the server went away mid-request.
    if (frame.status().code() == StatusCode::kAborted) {
      return Status::IOError("server closed the connection");
    }
    return frame.status();
  }
  return frame;
}

Result<std::string> ServiceClient::Query(const std::string& op,
                                         const std::vector<std::string>& args,
                                         const std::string& graph,
                                         double deadline_ms) {
  Result<std::string> raw =
      Call(MakeRequest(op, args, graph, deadline_ms).Serialize());
  if (!raw.ok()) return raw.status();
  Result<obs::JsonValue> doc = obs::ParseJson(*raw);
  if (!doc.ok()) {
    return Status::Internal(
        StrCat("malformed response: ", doc.status().message()));
  }
  return ResponseToResult(*doc);
}

}  // namespace lipstick::service

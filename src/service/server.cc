#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/str_util.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/ops.h"
#include "service/protocol.h"

namespace lipstick::service {

namespace {

/// Lazily registered service metrics (no-ops while the registry is
/// disabled, mirroring the rest of the codebase).
struct ServiceMetrics {
  obs::MetricId requests;
  obs::MetricId errors;
  obs::MetricId overloaded;
  obs::MetricId cache_hits;
  obs::MetricId cache_misses;
  obs::MetricId request_us;
  obs::MetricId queue_wait_us;

  static ServiceMetrics& Get() {
    static ServiceMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      ServiceMetrics out;
      out.requests = reg.RegisterCounter("service.requests");
      out.errors = reg.RegisterCounter("service.errors");
      out.overloaded = reg.RegisterCounter("service.overloaded");
      out.cache_hits = reg.RegisterCounter("service.cache_hits");
      out.cache_misses = reg.RegisterCounter("service.cache_misses");
      out.request_us = reg.RegisterHistogram("service.request_us");
      out.queue_wait_us = reg.RegisterHistogram("service.queue_wait_us");
      return out;
    }();
    return m;
  }
};

/// True once the peer's read side is known dead: a nonblocking MSG_PEEK
/// returning 0 (orderly shutdown) or a hard error. EAGAIN means "alive,
/// just quiet".
bool PeerClosed(int fd) {
  char byte;
  ssize_t r = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (r > 0) return false;
  if (r == 0) return true;
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------

bool Server::BoundedQueue::TryPush(Work work) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= depth_) return false;
    items_.push_back(std::move(work));
  }
  ready_.notify_one();
  return true;
}

bool Server::BoundedQueue::Pop(Work* out) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void Server::BoundedQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

Server::Server(GraphRegistry* registry, ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      cache_(options_.cache_entries),
      view_cache_(options_.cache_entries),
      queue_(options_.queue_depth) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::ExecutionError("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrCat("bad listen address '", options_.host, "'"));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    Status st = Status::IOError(
        StrCat("cannot listen on ", options_.host, ":", options_.port, ": ",
               std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  int workers = options_.workers < 1 ? 1 : options_.workers;
  worker_threads_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (!started_.load() || stopping_.exchange(true)) {
    // Not started, or another caller already drained everything.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // 1. Stop the intake: shutdown() unblocks the accept(2) call (close()
  //    alone does not reliably do that on Linux), then the thread exits.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Half-close every live connection: SHUT_RD pops session threads out
  //    of ReadFrame while leaving the write side open, so responses for
  //    in-flight requests still reach the client (graceful drain).
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (Session& s : sessions_) {
      if (!s.closed) ::shutdown(s.fd, SHUT_RD);
    }
  }
  // 3. Sessions waiting on a response future need the workers alive, so
  //    join sessions before closing the queue.
  for (Session& s : sessions_) {
    if (s.thread.joinable()) s.thread.join();
  }
  // 4. Now nothing can enqueue; drain and stop the pool.
  queue_.Close();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
}

Server::StatsSnapshot Server::Stats() const {
  StatsSnapshot snap;
  snap.connections = connections_.load();
  snap.requests = requests_.load();
  snap.errors = errors_.load();
  snap.overloaded = overloaded_.load();
  snap.cache_hits = cache_.hits();
  snap.cache_misses = cache_.misses();
  snap.plan_cache_hits = view_cache_.hits();
  snap.plan_cache_misses = view_cache_.misses();
  snap.plan_cache_entries = view_cache_.entries();
  return snap;
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

void Server::AcceptLoop() {
  while (true) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR && !stopping_.load()) continue;
      break;  // listener shut down (or hard error): stop accepting
    }
    if (stopping_.load()) {
      ::close(conn);
      break;
    }
    // Injected accept faults drop the connection, as a listener hitting
    // EMFILE would; the soak job drives clients through this.
    if (!FaultInjector::Fire(kFaultAccept).ok()) {
      ::close(conn);
      continue;
    }
    // Responses are written as whole frames; never let Nagle hold one back.
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.push_back(Session{conn, false, {}});
    Session* session = &sessions_.back();
    session->thread = std::thread([this, session] { SessionLoop(session); });
  }
}

void Server::SessionLoop(Session* session) {
  const int fd = session->fd;
  while (true) {
    Result<std::string> frame = ReadFrame(fd);
    if (!frame.ok()) {
      // kAborted = clean EOF. Anything else (oversized frame, short read,
      // injected read fault) poisons the stream: no framing to resync on,
      // so drop the connection.
      break;
    }
    Work work;
    work.payload = std::move(*frame);
    work.conn_fd = fd;
    work.enqueued = std::chrono::steady_clock::now();
    std::future<std::string> response = work.response.get_future();
    std::string serialized;
    if (queue_.TryPush(std::move(work))) {
      serialized = response.get();
    } else {
      overloaded_.fetch_add(1);
      obs::MetricsRegistry::Global().CounterAdd(
          ServiceMetrics::Get().overloaded);
      serialized =
          ErrorResponse("overloaded", "request queue is full, retry later")
              .Serialize();
    }
    if (!WriteFrame(fd, serialized).ok()) break;
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  ::close(session->fd);
  session->closed = true;
}

void Server::WorkerLoop() {
  Work work;
  while (queue_.Pop(&work)) {
    obs::MetricsRegistry::Global().Observe(
        ServiceMetrics::Get().queue_wait_us, MicrosSince(work.enqueued));
    work.response.set_value(Execute(work.payload, work.conn_fd));
  }
}

// ---------------------------------------------------------------------
// Request execution
// ---------------------------------------------------------------------

std::string Server::CountErrorResponse(std::string_view code,
                                       std::string_view message) {
  errors_.fetch_add(1);
  obs::MetricsRegistry::Global().CounterAdd(ServiceMetrics::Get().errors);
  return ErrorResponse(code, message).Serialize();
}

std::string Server::Execute(const std::string& payload, int conn_fd) {
  requests_.fetch_add(1);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.CounterAdd(ServiceMetrics::Get().requests);
  obs::ScopedHistTimer timer(ServiceMetrics::Get().request_us);

  Result<obs::JsonValue> doc = obs::ParseJson(payload);
  if (!doc.ok() || !doc->is_object()) {
    return CountErrorResponse("parse_error", "request is not a JSON object");
  }
  const obs::JsonValue* op_field = doc->Find("op");
  if (op_field == nullptr || !op_field->is_string()) {
    return CountErrorResponse("invalid_argument",
                              "request has no 'op' string");
  }
  std::string op = op_field->str();
  std::vector<std::string> args;
  if (const obs::JsonValue* args_field = doc->Find("args")) {
    if (!args_field->is_array()) {
      return CountErrorResponse("invalid_argument", "'args' must be an array");
    }
    for (const obs::JsonValue& item : args_field->array()) {
      if (!item.is_string()) {
        return CountErrorResponse("invalid_argument",
                                  "'args' entries must be strings");
      }
      args.push_back(item.str());
    }
  }
  std::string graph_name;
  if (const obs::JsonValue* g = doc->Find("graph")) {
    if (g->is_string()) graph_name = g->str();
  }
  double deadline_ms = options_.default_deadline_ms;
  if (const obs::JsonValue* d = doc->Find("deadline_ms")) {
    if (d->is_number() && d->number() > 0) deadline_ms = d->number();
  }

  if (op == "ping" || op == "metricz" || op == "graphs" || op == "reload") {
    return HandleAdminOp(op, args.empty() && !graph_name.empty()
                                 ? std::vector<std::string>{graph_name}
                                 : args);
  }
  if (!IsReadQueryOp(op)) {
    return CountErrorResponse(
        "invalid_argument", StrCat("unknown query operation '", op, "'"));
  }
  return ExecuteQueryOp(op, args, graph_name, deadline_ms, conn_fd);
}

std::string Server::ExecuteQueryOp(const std::string& op,
                                   const std::vector<std::string>& args,
                                   const std::string& graph_name,
                                   double deadline_ms, int conn_fd) {
  Result<std::shared_ptr<const LoadedGraph>> loaded =
      registry_->Get(graph_name);
  if (!loaded.ok()) {
    return CountErrorResponse(ErrorCodeString(loaded.status().code()),
                              loaded.status().message());
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();

  // Parse + optimize first: the response cache is keyed on the canonical
  // plan string, so syntactically different but equivalent requests
  // ("zoomout b a" vs "zoomout a b") share one entry.
  Result<ParsedQuery> parsed = ParseQuery(op, args);
  if (!parsed.ok()) {
    return CountErrorResponse(ErrorCodeString(parsed.status().code()),
                              parsed.status().message());
  }
  std::string cache_key = ResponseCache::Key(
      (*loaded)->name, (*loaded)->epoch, parsed->canonical, {});
  std::string cached;
  if (cache_.Get(cache_key, &cached)) {
    metrics.CounterAdd(ServiceMetrics::Get().cache_hits);
    return OkResponse(cached).Serialize();
  }
  metrics.CounterAdd(ServiceMetrics::Get().cache_misses);

  // The token is created before the fault fires so an injected exec delay
  // counts against the request deadline — that determinism is what the
  // deadline tests key on.
  CancelToken token;
  token.SetDeadlineMs(deadline_ms);
  token.SetProbe([conn_fd] { return PeerClosed(conn_fd); });
  CancelScope scope(&token);
  Status fault = FaultInjector::Fire(kFaultExec, op);
  if (!fault.ok() && !token.CheckDeadlineNow()) {
    return CountErrorResponse(ErrorCodeString(fault.code()), fault.message());
  }

  std::string view_scope =
      StrCat((*loaded)->name, '\x1f', (*loaded)->epoch);
  Result<std::string> text =
      token.cancelled()
          ? Result<std::string>(token.status())
          : ExecuteParsedQuery((*loaded)->snapshot, *parsed,
                               options_.query_threads, &view_cache_,
                               view_scope, *loaded);
  // Authoritative end-of-request deadline check: a query that slipped past
  // the poll strides still misses its deadline deterministically.
  if (token.CheckDeadlineNow() || token.cancelled()) {
    Status st = token.status();
    return CountErrorResponse(ErrorCodeString(st.code()), st.message());
  }
  if (!text.ok()) {
    return CountErrorResponse(ErrorCodeString(text.status().code()),
                              text.status().message());
  }
  cache_.Put(cache_key, *text);
  return OkResponse(*text).Serialize();
}

std::string Server::HandleAdminOp(const std::string& op,
                                  const std::vector<std::string>& args) {
  if (op == "ping") {
    return OkResponse("pong\n").Serialize();
  }
  if (op == "graphs") {
    std::string out;
    for (const GraphRegistry::Entry& e : registry_->List()) {
      out += StrCat(e.name, "  epoch=", e.epoch, "  nodes=", e.nodes,
                    e.path.empty() ? "" : StrCat("  path=", e.path),
                    e.is_default ? "  (default)" : "", "\n");
    }
    if (out.empty()) out = "(no graphs loaded)\n";
    return OkResponse(out).Serialize();
  }
  if (op == "reload") {
    std::string name = args.empty() ? std::string() : args[0];
    Status st = registry_->Reload(name);
    if (!st.ok()) {
      return CountErrorResponse(ErrorCodeString(st.code()), st.message());
    }
    Result<std::shared_ptr<const LoadedGraph>> loaded = registry_->Get(name);
    uint64_t epoch = loaded.ok() ? (*loaded)->epoch : 0;
    return OkResponse(StrCat("reloaded '",
                             loaded.ok() ? (*loaded)->name : name,
                             "' to epoch ", epoch, "\n"))
        .Serialize();
  }
  // op == "metricz": internal service counters plus the full metrics
  // registry dump (non-empty only when metrics are enabled).
  StatsSnapshot stats = Stats();
  std::string out = StrCat(
      "{\"service\":{\"connections\":", stats.connections,
      ",\"requests\":", stats.requests, ",\"errors\":", stats.errors,
      ",\"overloaded\":", stats.overloaded,
      ",\"cache_hits\":", stats.cache_hits,
      ",\"cache_misses\":", stats.cache_misses,
      ",\"plan_cache\":{\"hits\":", stats.plan_cache_hits,
      ",\"misses\":", stats.plan_cache_misses,
      ",\"entries\":", stats.plan_cache_entries,
      "},\"graphs\":", registry_->size(),
      "},\"metrics\":", obs::MetricsRegistry::Global().RenderJson(), "}\n");
  return OkResponse(out).Serialize();
}

}  // namespace lipstick::service

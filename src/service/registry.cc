#include "service/registry.h"

#include <utility>

#include "common/str_util.h"
#include "provenance/provio.h"

namespace lipstick::service {

Result<std::shared_ptr<const LoadedGraph>> GraphRegistry::Build(
    const std::string& name, const std::string& path, uint64_t epoch,
    ProvenanceGraph graph) {
  if (!graph.sealed()) graph.Seal();
  auto shared = std::make_shared<const ProvenanceGraph>(std::move(graph));
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(shared);
  if (!snap.ok()) return snap.status();
  LoadedGraph loaded{name, path, epoch, std::move(shared), std::move(*snap)};
  return std::make_shared<const LoadedGraph>(std::move(loaded));
}

Status GraphRegistry::LoadFile(const std::string& name,
                               const std::string& path) {
  Result<ProvenanceGraph> graph = LoadGraphFromFile(path);
  if (!graph.ok()) return graph.status();
  Result<std::shared_ptr<const LoadedGraph>> loaded =
      Build(name, path, /*epoch=*/0, std::move(*graph));
  if (!loaded.ok()) return loaded.status();
  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("graph '", name,
                                        "' already registered"));
  }
  if (graphs_.empty()) default_name_ = name;
  graphs_[name] = std::move(*loaded);
  return Status::OK();
}

Status GraphRegistry::AddGraph(const std::string& name,
                               ProvenanceGraph graph) {
  Result<std::shared_ptr<const LoadedGraph>> loaded =
      Build(name, /*path=*/"", /*epoch=*/0, std::move(graph));
  if (!loaded.ok()) return loaded.status();
  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("graph '", name,
                                        "' already registered"));
  }
  if (graphs_.empty()) default_name_ = name;
  graphs_[name] = std::move(*loaded);
  return Status::OK();
}

Result<std::shared_ptr<const LoadedGraph>> GraphRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = name.empty() ? default_name_ : name;
  auto it = graphs_.find(key);
  if (it == graphs_.end()) {
    return Status::NotFound(
        name.empty() ? std::string("no graphs loaded")
                     : StrCat("unknown graph '", name, "'"));
  }
  return it->second;
}

Status GraphRegistry::Reload(const std::string& name) {
  std::string key, path;
  uint64_t next_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    key = name.empty() ? default_name_ : name;
    auto it = graphs_.find(key);
    if (it == graphs_.end()) {
      return Status::NotFound(StrCat("unknown graph '", name, "'"));
    }
    if (it->second->path.empty()) {
      return Status::ExecutionError(
          StrCat("graph '", key, "' has no backing file to reload"));
    }
    path = it->second->path;
    next_epoch = it->second->epoch + 1;
  }
  // Load outside the lock: reads stay serviced from the old epoch while
  // the file is parsed; only the final pointer swap is locked.
  Result<ProvenanceGraph> graph = LoadGraphFromFile(path);
  if (!graph.ok()) return graph.status();
  Result<std::shared_ptr<const LoadedGraph>> loaded =
      Build(key, path, next_epoch, std::move(*graph));
  if (!loaded.ok()) return loaded.status();
  std::lock_guard<std::mutex> lock(mu_);
  graphs_[key] = std::move(*loaded);
  return Status::OK();
}

std::vector<GraphRegistry::Entry> GraphRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> entries;
  entries.reserve(graphs_.size());
  for (const auto& [name, loaded] : graphs_) {
    entries.push_back(Entry{name, loaded->path, loaded->epoch,
                            loaded->snapshot.num_nodes(),
                            name == default_name_});
  }
  return entries;
}

size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace lipstick::service

#ifndef LIPSTICK_SERVICE_SERVER_H_
#define LIPSTICK_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "provenance/exec.h"
#include "service/cache.h"
#include "service/registry.h"

namespace lipstick::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;          // 0 = kernel-assigned ephemeral port (see port())
  int workers = 4;       // query execution threads
  size_t queue_depth = 64;       // admission control: beyond this, reject
  double default_deadline_ms = 0;  // applied when a request sets none
  size_t cache_entries = 64;       // LRU slots for subgraph/zoomout views
  int query_threads = 1;           // traversal threads inside one query
};

/// The `lipstick serve` daemon: answers concurrent provenance queries over
/// the length-prefixed JSON protocol (see protocol.h) against a
/// GraphRegistry of hot-swappable snapshots.
///
/// Threading model — blocking sockets, fixed-size execution pool:
///   - one accept thread hands each connection to a session thread;
///   - a session thread reads a frame, enqueues the request on a bounded
///     queue, waits for its response, writes it back (so each connection
///     is strictly request/response ordered);
///   - `workers` pool threads drain the queue and execute queries. A full
///     queue rejects immediately with the "overloaded" error code instead
///     of stalling the socket — admission control over buffering.
///
/// Each request runs under a CancelToken carrying its deadline and a
/// client-disconnect probe; the traversal engine polls it per visited
/// node, so a 50ms deadline actually stops a multi-million-node BFS ~50ms
/// in, and a vanished client stops paying for its query.
///
/// Shutdown() drains gracefully: stop accepting, let in-flight requests
/// finish and their responses flush, then join everything. Safe to call
/// from a signal-handling thread; idempotent.
class Server {
 public:
  /// `registry` must outlive the server. No sockets are touched until
  /// Start().
  Server(GraphRegistry* registry, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept/worker threads. kIOError on
  /// bind failures (port in use, bad host).
  Status Start();

  /// The bound port (the kernel's choice when options.port == 0). Valid
  /// after Start().
  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Graceful drain; returns when every thread is joined.
  void Shutdown();

  /// Point-in-time counters, readable any time (tests, metricz).
  struct StatsSnapshot {
    uint64_t connections = 0;  // accepted over the server's lifetime
    uint64_t requests = 0;     // frames executed (admin + query)
    uint64_t errors = 0;       // requests answered with ok=false
    uint64_t overloaded = 0;   // admission-control rejections
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    // Composed view-mask reuse (subplan cache; one hit or miss per plan
    // with view operators).
    uint64_t plan_cache_hits = 0;
    uint64_t plan_cache_misses = 0;
    uint64_t plan_cache_entries = 0;
  };
  StatsSnapshot Stats() const;

 private:
  struct Work {
    std::string payload;  // raw request frame
    int conn_fd = -1;     // for the disconnect probe
    std::promise<std::string> response;
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// Bounded MPMC queue with close semantics. TryPush fails (returns
  /// false) on a full or closed queue — the admission-control edge.
  class BoundedQueue {
   public:
    explicit BoundedQueue(size_t depth) : depth_(depth) {}
    bool TryPush(Work work);
    bool Pop(Work* out);  // blocks; false once closed and drained
    void Close();

   private:
    const size_t depth_;
    std::mutex mu_;
    std::condition_variable ready_;
    std::list<Work> items_;
    bool closed_ = false;
  };

  struct Session {
    int fd = -1;
    bool closed = false;  // fd already closed by its thread
    std::thread thread;
  };

  void AcceptLoop();
  void SessionLoop(Session* session);
  void WorkerLoop();
  /// Executes one request frame end to end; returns the serialized
  /// response document.
  std::string Execute(const std::string& payload, int conn_fd);
  std::string ExecuteQueryOp(const std::string& op,
                             const std::vector<std::string>& args,
                             const std::string& graph_name,
                             double deadline_ms, int conn_fd);
  std::string HandleAdminOp(const std::string& op,
                            const std::vector<std::string>& args);
  std::string CountErrorResponse(std::string_view code,
                                 std::string_view message);

  GraphRegistry* const registry_;
  const ServerOptions options_;
  ResponseCache cache_;
  // Composed GraphView masks keyed by canonical view-prefix, so requests
  // sharing a plan prefix (any graph, any epoch — the scope string keys
  // both) skip recomputing the shared stages.
  PlanViewCache view_cache_;
  BoundedQueue queue_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::mutex sessions_mu_;
  std::list<Session> sessions_;
  std::mutex shutdown_mu_;  // serializes Shutdown() callers

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> overloaded_{0};
};

}  // namespace lipstick::service

#endif  // LIPSTICK_SERVICE_SERVER_H_

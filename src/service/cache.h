#ifndef LIPSTICK_SERVICE_CACHE_H_
#define LIPSTICK_SERVICE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lipstick::service {

/// Thread-safe LRU cache of rendered query responses, keyed by
/// (graph name, graph epoch, op, args). Including the epoch in the key
/// means a `reload` invalidates implicitly: stale entries simply stop
/// being hit and age out of the LRU tail — no flush, no epoch fences.
///
/// Only the traversal-heavy view ops (subgraph, zoomout — see
/// IsCacheableOp) are worth an entry; the server decides what to put in.
class ResponseCache {
 public:
  /// `capacity` = max entries; 0 disables the cache entirely.
  explicit ResponseCache(size_t capacity) : capacity_(capacity) {}

  /// Canonical key for one query against one graph epoch. Fields are
  /// joined with '\x1f' (unit separator), which cannot appear in graph
  /// names or tokenized args.
  static std::string Key(const std::string& graph, uint64_t epoch,
                         const std::string& op,
                         const std::vector<std::string>& args);

  /// Looks up `key`, refreshing its LRU position. Returns true and fills
  /// `*text` on a hit.
  bool Get(const std::string& key, std::string* text);

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// when over capacity. No-op when capacity is 0.
  void Put(const std::string& key, std::string text);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    std::string key;
    std::string text;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace lipstick::service

#endif  // LIPSTICK_SERVICE_CACHE_H_

#ifndef LIPSTICK_SERVICE_REGISTRY_H_
#define LIPSTICK_SERVICE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick::service {

/// One epoch of one named graph: the sealed graph plus its shared snapshot.
/// Immutable after construction; held by shared_ptr so in-flight requests
/// pin the columns while a `reload` swaps the registry entry underneath
/// them.
struct LoadedGraph {
  std::string name;
  std::string path;     // .pg file it was loaded from (reload re-reads it)
  uint64_t epoch = 0;   // bumped on every successful reload
  std::shared_ptr<const ProvenanceGraph> graph;
  GraphSnapshot snapshot;  // shared-ownership capture over `graph`
};

/// Thread-safe name -> LoadedGraph map behind the serve daemon. Lookups
/// return shared_ptr<const LoadedGraph>, so a concurrent Reload never
/// invalidates a request mid-flight: the old epoch stays alive until its
/// last reader drops the pointer.
class GraphRegistry {
 public:
  /// Loads `path` (a provio .pg file), seals it, and registers it under
  /// `name`. The first graph added becomes the default (name "" resolves
  /// to it). Fails on duplicate names or unreadable/corrupt files.
  Status LoadFile(const std::string& name, const std::string& path);

  /// Registers an already-built graph (tests, in-process servers). The
  /// graph is sealed here if it is not yet.
  Status AddGraph(const std::string& name, ProvenanceGraph graph);

  /// Resolves `name` ("" = default graph). kNotFound if absent.
  Result<std::shared_ptr<const LoadedGraph>> Get(const std::string& name) const;

  /// Re-reads a graph's backing file into a fresh LoadedGraph with
  /// epoch+1 and atomically swaps it in. In-flight requests keep reading
  /// the old epoch; new requests see the new one. kExecutionError for
  /// graphs registered via AddGraph (no backing file).
  Status Reload(const std::string& name);

  /// Registered names in sorted order, each with its epoch and node count.
  struct Entry {
    std::string name;
    std::string path;
    uint64_t epoch;
    size_t nodes;
    bool is_default;
  };
  std::vector<Entry> List() const;

  size_t size() const;

 private:
  static Result<std::shared_ptr<const LoadedGraph>> Build(
      const std::string& name, const std::string& path, uint64_t epoch,
      ProvenanceGraph graph);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const LoadedGraph>> graphs_;
  std::string default_name_;  // first registered graph
};

}  // namespace lipstick::service

#endif  // LIPSTICK_SERVICE_REGISTRY_H_

#include "service/cache.h"

#include <utility>

#include "common/str_util.h"

namespace lipstick::service {

std::string ResponseCache::Key(const std::string& graph, uint64_t epoch,
                               const std::string& op,
                               const std::vector<std::string>& args) {
  std::string key = StrCat(graph, '\x1f', epoch, '\x1f', op);
  for (const std::string& a : args) {
    key.push_back('\x1f');
    key += a;
  }
  return key;
}

bool ResponseCache::Get(const std::string& key, std::string* text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *text = it->second->text;
  ++hits_;
  return true;
}

void ResponseCache::Put(const std::string& key, std::string text) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->text = std::move(text);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(text)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t ResponseCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResponseCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace lipstick::service

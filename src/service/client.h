#ifndef LIPSTICK_SERVICE_CLIENT_H_
#define LIPSTICK_SERVICE_CLIENT_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace lipstick::service {

/// Blocking client for the serve daemon's wire protocol — the engine
/// behind `lipstick query --connect host:port`. One TCP connection,
/// strict request/response alternation (matching the server's
/// per-session ordering). Not thread-safe; use one client per thread.
class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient() { Close(); }
  ServiceClient(ServiceClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  ServiceClient& operator=(ServiceClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects to "host:port" (e.g. "127.0.0.1:7411", "localhost:7411").
  static Result<ServiceClient> Connect(const std::string& endpoint);
  static Result<ServiceClient> ConnectHostPort(const std::string& host,
                                               int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one query and returns the server-rendered text (byte-identical
  /// to local-mode output), or the server's error as a Status carrying
  /// the wire error code. `graph` "" = server default; `deadline_ms` 0 =
  /// server default.
  Result<std::string> Query(const std::string& op,
                            const std::vector<std::string>& args,
                            const std::string& graph = "",
                            double deadline_ms = 0);

  /// Raw round-trip: sends `payload` as one frame, returns the response
  /// frame (tests poke malformed requests through this).
  Result<std::string> Call(const std::string& payload);

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace lipstick::service

#endif  // LIPSTICK_SERVICE_CLIENT_H_

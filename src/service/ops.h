#ifndef LIPSTICK_SERVICE_OPS_H_
#define LIPSTICK_SERVICE_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/exec.h"
#include "provenance/graph.h"
#include "provenance/optimizer.h"
#include "provenance/plan.h"
#include "provenance/snapshot.h"

namespace lipstick::service {

/// True when `op` names (or begins) a read-only query the service router
/// and the local CLI dispatch through the plan engine: the single-op forms
/// (stats, find, expr, depends, subgraph, zoomout, restrict), a
/// `|`-pipeline carried whole in the op field (where `delete` is the
/// non-mutating deletion-propagation view stage), and `explain`.
bool IsReadQueryOp(const std::string& op);

/// Ops whose rendered output was historically worth caching server-side.
/// The server now caches every read query under its canonical plan string;
/// this remains for callers that want the old traversal-heavy gate.
bool IsCacheableOp(const std::string& op);

/// Parses a decimal node id ("bad node id '...'" on garbage).
Result<NodeId> ParseNodeId(const std::string& s);

/// A read request after parsing + optimization: what every query surface
/// (CLI one-shot, `query --batch`, the serve daemon) executes, and the
/// canonical string they key caches on.
struct ParsedQuery {
  bool is_explain = false;    // render the optimized plan, don't run it
  bool explain_json = false;  // `explain --json`
  OptimizedPlan optimized;
  /// Canonical string of the *optimized* plan — the cache identity.
  /// Syntactically different but equivalent requests share it.
  std::string canonical;
};

/// Parses one read request (operation plus argument tokens; the op field
/// may carry a whole pipeline) and runs the plan optimizer. Error strings
/// match the historical single-op parser exactly.
Result<ParsedQuery> ParseQuery(const std::string& op,
                               const std::vector<std::string>& args);

/// Executes a parsed query through the one plan engine and renders its
/// output. `view_cache` (optional) reuses composed view masks across
/// requests whose plans share a canonical view prefix; `scope` namespaces
/// its keys by graph identity and `pin` keeps the snapshot alive inside
/// cache entries. Safe to call concurrently on one snapshot.
Result<std::string> ExecuteParsedQuery(const GraphSnapshot& snap,
                                       const ParsedQuery& parsed, int threads,
                                       PlanViewCache* view_cache = nullptr,
                                       const std::string& scope = "",
                                       std::shared_ptr<const void> pin = {});

/// ParseQuery + ExecuteParsedQuery in one call — the single rendering path
/// behind local one-shot queries, `query --batch`, and the serve daemon,
/// so remote responses are byte-identical to local output (golden tests
/// double as protocol tests). Honors the calling thread's CancelToken
/// (deadline / disconnect) through the traversal engine.
Result<std::string> ExecuteReadQuery(const GraphSnapshot& snap,
                                     const std::string& op,
                                     const std::vector<std::string>& args,
                                     int threads);

}  // namespace lipstick::service

#endif  // LIPSTICK_SERVICE_OPS_H_

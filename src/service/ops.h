#ifndef LIPSTICK_SERVICE_OPS_H_
#define LIPSTICK_SERVICE_OPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick::service {

/// The read-only query operations the service router (and the local CLI)
/// dispatch through ExecuteReadQuery: stats, find, expr, depends,
/// subgraph, zoomout.
bool IsReadQueryOp(const std::string& op);

/// Ops whose rendered output is worth caching server-side: the traversal-
/// heavy view builders (subgraph, zoomout). Point lookups are cheaper than
/// a cache probe.
bool IsCacheableOp(const std::string& op);

/// Parses a decimal node id ("bad node id '...'" on garbage).
Result<NodeId> ParseNodeId(const std::string& s);

/// Runs one read-only query over the shared snapshot and renders its
/// output — the single rendering path behind local one-shot queries,
/// `query --batch`, and the serve daemon, so remote responses are
/// byte-identical to local output (golden tests double as protocol
/// tests). Safe to call concurrently from many threads on the same
/// snapshot. Honors the calling thread's CancelToken (deadline /
/// disconnect) through the traversal engine.
Result<std::string> ExecuteReadQuery(const GraphSnapshot& snap,
                                     const std::string& op,
                                     const std::vector<std::string>& args,
                                     int threads);

}  // namespace lipstick::service

#endif  // LIPSTICK_SERVICE_OPS_H_

#include "service/ops.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "analysis/plan_cost.h"
#include "common/str_util.h"

namespace lipstick::service {

namespace {

/// The first word of the op field (a pipeline may arrive whole in it).
std::string HeadOf(const std::string& op) {
  size_t end = op.find_first_of(" \t|");
  return end == std::string::npos ? op : op.substr(0, end);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string CardString(const analysis::CardInterval& rows) {
  return rows.ToString();
}

/// `lipstick explain`: the optimized plan tree with the PR-6 cost model's
/// predicted cardinalities and byte footprints per operator.
std::string RenderExplainText(const ParsedQuery& parsed,
                              const analysis::PlanCostReport& cost) {
  std::string out = StrCat("plan: ", parsed.canonical, "\n");
  out += StrCat("bytes/node: ", FormatDouble(cost.bytes_per_node), "\n");
  out += "rewrites:\n";
  if (parsed.optimized.rewrites.empty()) {
    out += "  (none)\n";
  }
  for (const PlanRewrite& rw : parsed.optimized.rewrites) {
    out += StrCat("  ", rw.rule, ": ", rw.detail, "\n");
  }
  out += "operators:\n";
  for (size_t i = 0; i < parsed.optimized.plan.ops.size(); ++i) {
    const PlanOp& op = parsed.optimized.plan.ops[i];
    std::string row_info;
    if (i < cost.rows.size()) {
      const analysis::PlanCostRow& row = cost.rows[i];
      row_info = StrCat("  rows=", CardString(row.rows),
                        "  est_rows=", FormatDouble(row.est_rows),
                        "  est_bytes=", row.est_bytes);
    }
    out += StrCat("  ", std::string(2 * i, ' '), op.IsViewOp() ? "-> " : "=> ",
                  op.Canonical(), row_info, "\n");
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string RenderExplainJson(const ParsedQuery& parsed,
                              const analysis::PlanCostReport& cost) {
  std::string out =
      StrCat("{\"plan\":\"", JsonEscape(parsed.canonical), "\",");
  out += StrCat("\"bytes_per_node\":", FormatDouble(cost.bytes_per_node),
                ",\"rewrites\":[");
  for (size_t i = 0; i < parsed.optimized.rewrites.size(); ++i) {
    const PlanRewrite& rw = parsed.optimized.rewrites[i];
    out += StrCat(i == 0 ? "" : ",", "{\"rule\":\"", JsonEscape(rw.rule),
                  "\",\"detail\":\"", JsonEscape(rw.detail), "\"}");
  }
  out += "],\"operators\":[";
  for (size_t i = 0; i < parsed.optimized.plan.ops.size(); ++i) {
    const PlanOp& op = parsed.optimized.plan.ops[i];
    out += StrCat(i == 0 ? "" : ",", "{\"op\":\"",
                  JsonEscape(op.Canonical()), "\",\"view\":",
                  op.IsViewOp() ? "true" : "false");
    if (i < cost.rows.size()) {
      const analysis::PlanCostRow& row = cost.rows[i];
      out += StrCat(",\"rows\":\"", JsonEscape(CardString(row.rows)),
                    "\",\"est_rows\":", FormatDouble(row.est_rows),
                    ",\"est_bytes\":", row.est_bytes);
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace

bool IsReadQueryOp(const std::string& op) {
  std::string head = HeadOf(op);
  if (head == "stats" || head == "find" || head == "expr" ||
      head == "depends" || head == "subgraph" || head == "zoomout" ||
      head == "restrict" || head == "explain") {
    return true;
  }
  // `delete` is read-only as a pipeline view stage; the bare op is the
  // CLI's mutating subcommand.
  return head == "delete" && op.find('|') != std::string::npos;
}

bool IsCacheableOp(const std::string& op) {
  std::string head = HeadOf(op);
  return head == "subgraph" || head == "zoomout";
}

Result<NodeId> ParseNodeId(const std::string& s) { return ParsePlanNodeId(s); }

Result<ParsedQuery> ParseQuery(const std::string& op,
                               const std::vector<std::string>& args) {
  ParsedQuery parsed;
  std::string plan_op = op;
  std::vector<std::string> plan_args = args;
  if (HeadOf(op) == "explain") {
    parsed.is_explain = true;
    // Strip the leading "explain" word, keep the rest of the op field.
    size_t head_end = op.find_first_of(" \t");
    plan_op = head_end == std::string::npos ? "" : op.substr(head_end + 1);
    if (!plan_args.empty() && plan_args.back() == "--json") {
      parsed.explain_json = true;
      plan_args.pop_back();
    }
    if (plan_op.find_first_not_of(" \t") == std::string::npos &&
        plan_args.empty()) {
      return Status::InvalidArgument("explain needs a query to explain");
    }
  }
  Result<Plan> plan = ParsePlan(plan_op, plan_args);
  if (!plan.ok()) return plan.status();
  parsed.optimized = OptimizePlan(*plan);
  parsed.canonical = StrCat(parsed.is_explain ? "explain " : "",
                            parsed.optimized.plan.Canonical(),
                            parsed.explain_json ? " --json" : "");
  return parsed;
}

Result<std::string> ExecuteParsedQuery(const GraphSnapshot& snap,
                                       const ParsedQuery& parsed, int threads,
                                       PlanViewCache* view_cache,
                                       const std::string& scope,
                                       std::shared_ptr<const void> pin) {
  if (parsed.is_explain) {
    analysis::PlanCostReport cost =
        analysis::EstimatePlanCost(snap, parsed.optimized.plan);
    return parsed.explain_json ? RenderExplainJson(parsed, cost)
                               : RenderExplainText(parsed, cost);
  }
  ExecOptions opts;
  opts.threads = threads;
  opts.cache = view_cache;
  opts.scope = scope;
  opts.pin = std::move(pin);
  return ExecutePlan(snap, parsed.optimized, opts);
}

Result<std::string> ExecuteReadQuery(const GraphSnapshot& snap,
                                     const std::string& op,
                                     const std::vector<std::string>& args,
                                     int threads) {
  Result<ParsedQuery> parsed = ParseQuery(op, args);
  if (!parsed.ok()) return parsed.status();
  return ExecuteParsedQuery(snap, *parsed, threads);
}

}  // namespace lipstick::service

#include "service/ops.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/str_util.h"
#include "provenance/deletion.h"
#include "provenance/query.h"
#include "provenance/semiring.h"
#include "provenance/subgraph.h"
#include "provenance/view.h"

namespace lipstick::service {

namespace {

/// snprintf into a std::string accumulator (query output is rendered to a
/// string so batch drivers and the wire protocol can ship it whole).
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

/// Builds the node predicate for `find` from its flag list.
Result<NodePredicate> ParseFindPredicate(const std::vector<std::string>& rest) {
  NodePredicate pred = [](NodeId, const NodeView&) { return true; };
  for (size_t i = 0; i + 1 < rest.size(); i += 2) {
    const std::string& flag = rest[i];
    const std::string& value = rest[i + 1];
    if (flag == "--payload") {
      pred = And(std::move(pred), ByPayload(value));
    } else if (flag == "--label") {
      bool matched = false;
      for (int l = 0; l <= static_cast<int>(NodeLabel::kZoomedModule); ++l) {
        if (value == NodeLabelToString(static_cast<NodeLabel>(l))) {
          pred = And(std::move(pred), ByLabel(static_cast<NodeLabel>(l)));
          matched = true;
        }
      }
      if (!matched) {
        return Status::InvalidArgument(StrCat("unknown label '", value, "'"));
      }
    } else if (flag == "--role") {
      bool matched = false;
      for (int r = 0; r <= static_cast<int>(NodeRole::kZoom); ++r) {
        if (value == NodeRoleToString(static_cast<NodeRole>(r))) {
          pred = And(std::move(pred), ByRole(static_cast<NodeRole>(r)));
          matched = true;
        }
      }
      if (!matched) {
        return Status::InvalidArgument(StrCat("unknown role '", value, "'"));
      }
    } else {
      return Status::InvalidArgument(StrCat("unknown find flag '", flag, "'"));
    }
  }
  return pred;
}

}  // namespace

bool IsReadQueryOp(const std::string& op) {
  return op == "stats" || op == "find" || op == "expr" || op == "depends" ||
         op == "subgraph" || op == "zoomout";
}

bool IsCacheableOp(const std::string& op) {
  return op == "subgraph" || op == "zoomout";
}

Result<NodeId> ParseNodeId(const std::string& s) {
  char* end = nullptr;
  NodeId id = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument(StrCat("bad node id '", s, "'"));
  }
  return id;
}

Result<std::string> ExecuteReadQuery(const GraphSnapshot& snap,
                                     const std::string& op,
                                     const std::vector<std::string>& rest,
                                     int threads) {
  std::string out;
  if (op == "stats") {
    Result<GraphStats> stats = ComputeGraphStats(snap);
    if (!stats.ok()) return stats.status();
    Appendf(&out, "nodes:        %zu\n", stats->nodes);
    Appendf(&out, "edges:        %zu\n", stats->edges);
    Appendf(&out, "tokens:       %zu\n", stats->tokens);
    Appendf(&out, "invocations:  %zu\n", stats->invocations);
    Appendf(&out, "max fan-in:   %zu\n", stats->max_fan_in);
    Appendf(&out, "max fan-out:  %zu\n", stats->max_fan_out);
    Appendf(&out, "depth:        %zu\n", stats->depth);
    for (const auto& [label, count] : snap.graph().LabelHistogram()) {
      Appendf(&out, "  label %-10s %zu\n", label.c_str(), count);
    }
    return out;
  }
  if (op == "find") {
    Result<NodePredicate> pred = ParseFindPredicate(rest);
    if (!pred.ok()) return pred.status();
    std::vector<NodeId> found = FindNodes(snap, *pred, threads);
    for (NodeId id : found) {
      NodeView n = snap.node(id);
      std::string_view payload = n.payload();
      Appendf(&out, "%llu  %-9s %-13s ", static_cast<unsigned long long>(id),
              NodeLabelToString(n.label()), NodeRoleToString(n.role()));
      out.append(payload);
      out.push_back('\n');
    }
    Appendf(&out, "(%zu nodes)\n", found.size());
    return out;
  }
  if (op == "expr") {
    if (rest.size() != 1) {
      return Status::InvalidArgument("expr needs one node id");
    }
    Result<NodeId> id = ParseNodeId(rest[0]);
    if (!id.ok()) return id.status();
    out = ProvExpressionString(snap, *id, 12);
    out.push_back('\n');
    return out;
  }
  if (op == "depends") {
    if (rest.size() != 2) {
      return Status::InvalidArgument("depends needs <target-id> <source-id>");
    }
    Result<NodeId> target = ParseNodeId(rest[0]);
    Result<NodeId> source = ParseNodeId(rest[1]);
    if (!target.ok() || !source.ok()) {
      return Status::InvalidArgument("bad node ids");
    }
    Result<bool> dep = DependsOn(snap, *target, *source);
    if (!dep.ok()) return dep.status();
    out = *dep ? "yes\n" : "no\n";
    return out;
  }
  if (op == "subgraph") {
    if (rest.size() != 1) {
      return Status::InvalidArgument("subgraph needs one node id");
    }
    Result<NodeId> id = ParseNodeId(rest[0]);
    if (!id.ok()) return id.status();
    Result<std::vector<NodeId>> sub = SubgraphNodes(snap, *id, threads);
    if (!sub.ok()) return sub.status();
    Appendf(&out, "subgraph of %llu: %zu nodes\n",
            static_cast<unsigned long long>(*id), sub->size());
    return out;
  }
  if (op == "zoomout") {
    if (rest.empty()) {
      return Status::InvalidArgument("zoomout needs at least one module");
    }
    Result<GraphView> view =
        ZoomOutView(snap, {rest.begin(), rest.end()}, threads);
    if (!view.ok()) return view.status();
    Appendf(&out, "zoomed out of %zu module(s); %zu nodes remain\n",
            rest.size(), view->num_visible());
    return out;
  }
  return Status::InvalidArgument(StrCat("unknown query operation '", op, "'"));
}

}  // namespace lipstick::service

#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/str_util.h"

namespace lipstick::service {

namespace {

/// Reads exactly `n` bytes. Returns the number of bytes read before EOF
/// (n on success), or -1 on a socket error.
ssize_t ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) break;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

Status WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a SIGPIPE that
    // would kill the daemon.
    ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrCat("socket write failed: ", std::strerror(errno)));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFrame(int fd) {
  Status fault = FaultInjector::Fire(kFaultRead);
  if (!fault.ok()) return fault;
  char header[4];
  ssize_t got = ReadFull(fd, header, sizeof(header));
  if (got == 0) return Status::Aborted("peer closed connection");
  if (got != sizeof(header)) {
    return Status::IOError("short read on frame header");
  }
  uint32_t len = (static_cast<uint32_t>(static_cast<uint8_t>(header[0])) << 24) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(header[1])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(header[2])) << 8) |
                 static_cast<uint32_t>(static_cast<uint8_t>(header[3]));
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrCat("frame length ", len, " exceeds limit ", kMaxFrameBytes));
  }
  std::string payload(len, '\0');
  if (len > 0 && ReadFull(fd, payload.data(), len) !=
                     static_cast<ssize_t>(len)) {
    return Status::IOError("short read on frame payload");
  }
  return payload;
}

Status WriteFrame(int fd, std::string_view payload) {
  LIPSTICK_RETURN_IF_ERROR(FaultInjector::Fire(kFaultWrite));
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  // One contiguous send: splitting header and payload across two send()
  // calls interacts with Nagle + delayed ACK and costs ~40ms per frame.
  std::string frame;
  frame.reserve(sizeof(uint32_t) + payload.size());
  frame.push_back(static_cast<char>(len >> 24));
  frame.push_back(static_cast<char>(len >> 16));
  frame.push_back(static_cast<char>(len >> 8));
  frame.push_back(static_cast<char>(len));
  frame.append(payload);
  return WriteFull(fd, frame.data(), frame.size());
}

std::string_view ErrorCodeString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kTypeError: return "type_error";
    case StatusCode::kExecutionError: return "execution_error";
    case StatusCode::kIOError: return "io_error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kAborted: return "cancelled";
  }
  return "internal";
}

StatusCode ErrorCodeFromString(std::string_view code) {
  if (code == "invalid_argument") return StatusCode::kInvalidArgument;
  if (code == "not_found") return StatusCode::kNotFound;
  if (code == "already_exists") return StatusCode::kAlreadyExists;
  if (code == "parse_error") return StatusCode::kParseError;
  if (code == "type_error") return StatusCode::kTypeError;
  if (code == "execution_error") return StatusCode::kExecutionError;
  if (code == "io_error") return StatusCode::kIOError;
  if (code == "deadline_exceeded") return StatusCode::kDeadlineExceeded;
  // "overloaded" is the admission-control rejection: a transient,
  // retryable condition, hence kUnavailable.
  if (code == "unavailable" || code == "overloaded") {
    return StatusCode::kUnavailable;
  }
  if (code == "cancelled") return StatusCode::kAborted;
  return StatusCode::kInternal;
}

std::string ErrorLine(std::string_view code, std::string_view message) {
  return StrCat("error: ", code, ": ", message);
}

std::string ErrorLine(const Status& status) {
  return ErrorLine(ErrorCodeString(status.code()), status.message());
}

obs::JsonValue MakeRequest(std::string_view op,
                           const std::vector<std::string>& args,
                           std::string_view graph, double deadline_ms) {
  obs::JsonValue req = obs::JsonValue::Object();
  req.Set("op", obs::JsonValue::Str(std::string(op)));
  obs::JsonValue arr = obs::JsonValue::Array();
  for (const std::string& a : args) arr.Push(obs::JsonValue::Str(a));
  req.Set("args", std::move(arr));
  if (!graph.empty()) {
    req.Set("graph", obs::JsonValue::Str(std::string(graph)));
  }
  if (deadline_ms > 0) {
    req.Set("deadline_ms", obs::JsonValue::Number(deadline_ms));
  }
  return req;
}

obs::JsonValue OkResponse(std::string_view text) {
  obs::JsonValue resp = obs::JsonValue::Object();
  resp.Set("ok", obs::JsonValue::Bool(true));
  resp.Set("text", obs::JsonValue::Str(std::string(text)));
  return resp;
}

obs::JsonValue ErrorResponse(std::string_view code, std::string_view message) {
  obs::JsonValue resp = obs::JsonValue::Object();
  resp.Set("ok", obs::JsonValue::Bool(false));
  obs::JsonValue err = obs::JsonValue::Object();
  err.Set("code", obs::JsonValue::Str(std::string(code)));
  err.Set("message", obs::JsonValue::Str(std::string(message)));
  resp.Set("error", std::move(err));
  return resp;
}

Result<std::string> ResponseToResult(const obs::JsonValue& doc) {
  const obs::JsonValue* ok = doc.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::Internal("malformed response: missing 'ok'");
  }
  if (ok->bool_value()) {
    const obs::JsonValue* text = doc.Find("text");
    if (text == nullptr || !text->is_string()) {
      return Status::Internal("malformed response: missing 'text'");
    }
    return text->str();
  }
  const obs::JsonValue* err = doc.Find("error");
  if (err == nullptr || !err->is_object()) {
    return Status::Internal("malformed response: missing 'error'");
  }
  const obs::JsonValue* code = err->Find("code");
  const obs::JsonValue* message = err->Find("message");
  return Status(
      ErrorCodeFromString(code != nullptr && code->is_string() ? code->str()
                                                               : ""),
      message != nullptr && message->is_string() ? message->str()
                                                 : "unknown server error");
}

}  // namespace lipstick::service

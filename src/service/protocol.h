#ifndef LIPSTICK_SERVICE_PROTOCOL_H_
#define LIPSTICK_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace lipstick::service {

/// Wire protocol of the `lipstick serve` daemon: one request frame in, one
/// response frame out, over a blocking TCP stream.
///
/// Frame = 4-byte big-endian payload length + that many bytes of UTF-8
/// JSON. Requests:
///
///   {"op":"stats","graph":"g","args":["--label","token"],"deadline_ms":50}
///
/// `graph` ("" = the server's default graph) and `deadline_ms` (0 = the
/// server's default) are optional. Responses:
///
///   {"ok":true,"text":"nodes:        162\n..."}
///   {"ok":false,"error":{"code":"deadline_exceeded","message":"..."}}
///
/// The `text` payload is byte-identical to what `lipstick query` prints in
/// local mode for the same operation, so the local golden outputs double
/// as protocol tests (see tools/check.sh `integration`).

/// Upper bound on a frame payload; larger lengths poison the stream and
/// the connection is dropped.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Failure points fired on the socket and execution paths, armable via
/// LIPSTICK_FAULTS for deterministic robustness tests (CI soak job).
inline constexpr char kFaultAccept[] = "service.accept";
inline constexpr char kFaultRead[] = "service.read";
inline constexpr char kFaultWrite[] = "service.write";
inline constexpr char kFaultExec[] = "service.exec";

/// Reads one length-prefixed frame from `fd`. kAborted = the peer closed
/// the stream cleanly before any header byte (normal end of session);
/// kIOError = short reads, socket errors, or an injected "service.read"
/// fault; kInvalidArgument = oversized length prefix.
Result<std::string> ReadFrame(int fd);

/// Writes one length-prefixed frame to `fd` (full payload or error).
/// Fires "service.write".
Status WriteFrame(int fd, std::string_view payload);

/// Wire code string for a StatusCode (e.g. "invalid_argument"). The
/// admission-control rejection code "overloaded" is produced by the
/// server directly, not by any StatusCode.
std::string_view ErrorCodeString(StatusCode code);

/// Inverse of ErrorCodeString; unknown strings (including "overloaded")
/// map to kUnavailable/kInternal as documented in the .cc.
StatusCode ErrorCodeFromString(std::string_view code);

/// The canonical one-line error rendering shared by the local `query
/// --batch` driver and the remote client: "error: <code>: <message>".
std::string ErrorLine(std::string_view code, std::string_view message);
std::string ErrorLine(const Status& status);

/// Envelope constructors.
obs::JsonValue MakeRequest(std::string_view op,
                           const std::vector<std::string>& args,
                           std::string_view graph = {},
                           double deadline_ms = 0);
obs::JsonValue OkResponse(std::string_view text);
obs::JsonValue ErrorResponse(std::string_view code, std::string_view message);

/// Unpacks a response document: the rendered text on success, or a Status
/// carrying the server's error code + message. Malformed documents are
/// kInternal ("malformed response").
Result<std::string> ResponseToResult(const obs::JsonValue& doc);

}  // namespace lipstick::service

#endif  // LIPSTICK_SERVICE_PROTOCOL_H_

#ifndef LIPSTICK_PROVENANCE_OPM_H_
#define LIPSTICK_PROVENANCE_OPM_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick {

/// Exports the coarse-grained view of a provenance graph as an Open
/// Provenance Model (OPM [23]) XML document — the interchange format the
/// standard workflow-provenance systems the paper compares against use.
///
/// The mapping follows the OPM core vocabulary:
///   module invocation ("m" node)  -> <process>
///   module input tuple ("i" node) -> <artifact> + <used>
///   module output tuple ("o" node)-> <artifact> + <wasGeneratedBy>
///   edge o -> i across modules    -> <wasDerivedFrom>
///   invocation ordering by shared artifacts -> <wasTriggeredBy>
///
/// Fine-grained internals (operator nodes, state, aggregation structure)
/// have no OPM counterpart and are omitted — which is precisely the
/// information loss the paper's model repairs; exporting makes the
/// difference inspectable.
Status WriteOpmXml(const GraphSnapshot& snap, std::ostream& os);
Status WriteOpmXml(const ProvenanceGraph& graph, std::ostream& os);
Status WriteOpmXmlToFile(const ProvenanceGraph& graph,
                         const std::string& path);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_OPM_H_

#include "provenance/graph.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace lipstick {

const char* NodeLabelToString(NodeLabel label) {
  switch (label) {
    case NodeLabel::kToken:
      return "token";
    case NodeLabel::kPlus:
      return "+";
    case NodeLabel::kTimes:
      return "*";
    case NodeLabel::kDelta:
      return "delta";
    case NodeLabel::kTensor:
      return "tensor";
    case NodeLabel::kAggregate:
      return "agg";
    case NodeLabel::kConstValue:
      return "const";
    case NodeLabel::kBlackBox:
      return "blackbox";
    case NodeLabel::kModuleInvocation:
      return "m";
    case NodeLabel::kZoomedModule:
      return "zoom";
  }
  return "?";
}

const char* NodeRoleToString(NodeRole role) {
  switch (role) {
    case NodeRole::kIntermediate:
      return "intermediate";
    case NodeRole::kWorkflowInput:
      return "I";
    case NodeRole::kModuleInput:
      return "i";
    case NodeRole::kModuleOutput:
      return "o";
    case NodeRole::kModuleState:
      return "s";
    case NodeRole::kStateBase:
      return "base";
    case NodeRole::kInvocation:
      return "inv";
    case NodeRole::kZoom:
      return "zoomed";
  }
  return "?";
}

NodeId ShardWriter::Append(ProvNode node) {
  auto& shard = graph_->shards_[shard_];
  shard.nodes.push_back(std::move(node));
  graph_->sealed_ = false;
  return MakeNodeId(shard_, shard.nodes.size() - 1);
}

NodeId ShardWriter::Token(std::string name, NodeRole role) {
  ProvNode n;
  n.label = NodeLabel::kToken;
  n.role = role;
  n.payload = std::move(name);
  n.invocation = current_invocation_;
  return Append(std::move(n));
}

NodeId ShardWriter::Plus(std::vector<NodeId> parents) {
  ProvNode n;
  n.label = NodeLabel::kPlus;
  n.parents = std::move(parents);
  n.invocation = current_invocation_;
  return Append(std::move(n));
}

NodeId ShardWriter::Times(std::vector<NodeId> parents, NodeRole role,
                          uint32_t invocation) {
  ProvNode n;
  n.label = NodeLabel::kTimes;
  n.role = role;
  n.parents = std::move(parents);
  n.invocation =
      invocation == kNoInvocation ? current_invocation_ : invocation;
  return Append(std::move(n));
}

NodeId ShardWriter::Delta(std::vector<NodeId> parents) {
  ProvNode n;
  n.label = NodeLabel::kDelta;
  n.parents = std::move(parents);
  n.invocation = current_invocation_;
  return Append(std::move(n));
}

NodeId ShardWriter::Tensor(NodeId value_node, NodeId prov_node) {
  ProvNode n;
  n.label = NodeLabel::kTensor;
  n.is_value_node = true;
  n.parents = {value_node, prov_node};
  n.invocation = current_invocation_;
  return Append(std::move(n));
}

NodeId ShardWriter::Aggregate(std::string op, std::vector<NodeId> parents,
                              Value result) {
  ProvNode n;
  n.label = NodeLabel::kAggregate;
  n.is_value_node = true;
  n.payload = std::move(op);
  n.parents = std::move(parents);
  n.value = std::move(result);
  n.invocation = current_invocation_;
  return Append(std::move(n));
}

NodeId ShardWriter::ConstValue(Value v) {
  ProvNode n;
  n.label = NodeLabel::kConstValue;
  n.is_value_node = true;
  n.value = std::move(v);
  n.invocation = current_invocation_;
  return Append(std::move(n));
}

NodeId ShardWriter::BlackBox(std::string function,
                             std::vector<NodeId> parents) {
  ProvNode n;
  n.label = NodeLabel::kBlackBox;
  n.payload = std::move(function);
  n.parents = std::move(parents);
  n.invocation = current_invocation_;
  return Append(std::move(n));
}

uint32_t ShardWriter::BeginInvocation(std::string module_name,
                                      std::string instance_name,
                                      uint32_t execution) {
  ProvNode n;
  n.label = NodeLabel::kModuleInvocation;
  n.role = NodeRole::kInvocation;
  n.payload = module_name;
  NodeId m_node = Append(std::move(n));

  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  uint32_t id = static_cast<uint32_t>(graph_->invocations_.size());
  InvocationInfo info;
  info.module_name = std::move(module_name);
  info.instance_name = std::move(instance_name);
  info.execution = execution;
  info.m_node = m_node;
  graph_->invocations_.push_back(std::move(info));
  graph_->mutable_node(m_node).invocation = id;
  return id;
}

NodeId ShardWriter::InvocationNode(uint32_t invocation) const {
  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  return graph_->invocations_[invocation].m_node;
}

NodeId ShardWriter::WorkflowInput(std::string token_name) {
  ProvNode n;
  n.label = NodeLabel::kToken;
  n.role = NodeRole::kWorkflowInput;
  n.payload = std::move(token_name);
  return Append(std::move(n));
}

NodeId ShardWriter::ModuleInput(uint32_t invocation, NodeId tuple_node) {
  NodeId m_node;
  {
    std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
    m_node = graph_->invocations_[invocation].m_node;
  }
  NodeId id =
      Times({tuple_node, m_node}, NodeRole::kModuleInput, invocation);
  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  graph_->invocations_[invocation].input_nodes.push_back(id);
  return id;
}

NodeId ShardWriter::ModuleOutput(uint32_t invocation, NodeId tuple_node) {
  NodeId m_node;
  {
    std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
    m_node = graph_->invocations_[invocation].m_node;
  }
  NodeId id =
      Times({tuple_node, m_node}, NodeRole::kModuleOutput, invocation);
  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  graph_->invocations_[invocation].output_nodes.push_back(id);
  return id;
}

NodeId ShardWriter::ModuleState(uint32_t invocation, NodeId tuple_node) {
  NodeId m_node;
  {
    std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
    m_node = graph_->invocations_[invocation].m_node;
  }
  NodeId id =
      Times({tuple_node, m_node}, NodeRole::kModuleState, invocation);
  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  graph_->invocations_[invocation].state_nodes.push_back(id);
  return id;
}

void ShardWriter::BeginStateScope(
    uint32_t invocation, const std::unordered_set<NodeId>* eligible) {
  state_scope_invocation_ = invocation;
  state_eligible_ = eligible;
  state_wrap_cache_.clear();
}

void ShardWriter::EndStateScope() {
  state_scope_invocation_ = kNoInvocation;
  state_eligible_ = nullptr;
  state_wrap_cache_.clear();
}

NodeId ShardWriter::ResolveParent(NodeId annot) {
  if (state_eligible_ == nullptr || annot == kInvalidNode) return annot;
  if (!state_eligible_->count(annot)) return annot;
  auto it = state_wrap_cache_.find(annot);
  if (it != state_wrap_cache_.end()) return it->second;
  NodeId s = ModuleState(state_scope_invocation_, annot);
  state_wrap_cache_.emplace(annot, s);
  return s;
}

uint32_t ProvenanceGraph::RestoreInvocation(InvocationInfo info) {
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  invocations_.push_back(std::move(info));
  return static_cast<uint32_t>(invocations_.size() - 1);
}

ShardWriter ProvenanceGraph::AddShard() {
  shards_.emplace_back();
  return ShardWriter(this, static_cast<uint32_t>(shards_.size() - 1));
}

bool ProvenanceGraph::Contains(NodeId id) const {
  if (id == kInvalidNode) return false;
  uint32_t s = NodeShard(id);
  if (s >= shards_.size()) return false;
  uint64_t i = NodeIndex(id);
  return i < shards_[s].nodes.size() && shards_[s].nodes[i].alive;
}

size_t ProvenanceGraph::num_nodes() const {
  size_t n = 0;
  for (const Shard& s : shards_) n += s.nodes.size();
  return n;
}

size_t ProvenanceGraph::num_alive() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    for (const ProvNode& node : s.nodes) n += node.alive ? 1 : 0;
  }
  return n;
}

size_t ProvenanceGraph::num_edges() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    for (const ProvNode& node : s.nodes) {
      if (!node.alive) continue;
      for (NodeId p : node.parents) n += Contains(p) ? 1 : 0;
    }
  }
  return n;
}

std::vector<NodeId> ProvenanceGraph::AllNodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(num_nodes());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    for (uint64_t i = 0; i < shards_[s].nodes.size(); ++i) {
      ids.push_back(MakeNodeId(s, i));
    }
  }
  return ids;
}

void ProvenanceGraph::Seal() {
  for (Shard& s : shards_) {
    s.children.assign(s.nodes.size(), {});
  }
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    for (uint64_t i = 0; i < shards_[s].nodes.size(); ++i) {
      const ProvNode& node = shards_[s].nodes[i];
      if (!node.alive) continue;
      NodeId child = MakeNodeId(s, i);
      for (NodeId p : node.parents) {
        if (!Contains(p)) continue;
        shards_[NodeShard(p)].children[NodeIndex(p)].push_back(child);
      }
    }
  }
  sealed_ = true;
}

const std::vector<NodeId>& ProvenanceGraph::Children(NodeId id) const {
  // Always-on: reading children of an unsealed graph would index a stale
  // (possibly shorter) adjacency vector — UB in release builds if this
  // were a plain assert.
  LIPSTICK_CHECK(sealed_, "call Seal() before Children()");
  return shards_[NodeShard(id)].children[NodeIndex(id)];
}

size_t ProvenanceGraph::num_live_invocations() const {
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  size_t n = 0;
  for (const InvocationInfo& inv : invocations_) n += inv.aborted() ? 0 : 1;
  return n;
}

ProvenanceGraph::Savepoint ProvenanceGraph::TakeSavepoint() const {
  Savepoint sp;
  sp.shard_sizes.reserve(shards_.size());
  for (const Shard& s : shards_) sp.shard_sizes.push_back(s.nodes.size());
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  sp.invocation_count = invocations_.size();
  return sp;
}

void ProvenanceGraph::RollbackTo(const Savepoint& savepoint) {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    size_t from =
        s < savepoint.shard_sizes.size() ? savepoint.shard_sizes[s] : 0;
    KillShardTail(s, from);
  }
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  // Invocation ids are indices handed out monotonically, so everything
  // registered after the savepoint forms a suffix; the nodes referencing
  // those ids were just killed above.
  if (invocations_.size() > savepoint.invocation_count) {
    invocations_.resize(savepoint.invocation_count);
  }
  sealed_ = false;
}

size_t ProvenanceGraph::ShardSize(uint32_t shard) const {
  return shards_[shard].nodes.size();
}

void ProvenanceGraph::KillShardTail(uint32_t shard, size_t from) {
  Shard& s = shards_[shard];
  if (from >= s.nodes.size()) return;
  for (size_t i = from; i < s.nodes.size(); ++i) s.nodes[i].alive = false;
  sealed_ = false;
}

void ProvenanceGraph::AbortInvocation(uint32_t invocation) {
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  InvocationInfo& inv = invocations_[invocation];
  inv.m_node = kInvalidNode;
  inv.input_nodes.clear();
  inv.output_nodes.clear();
  inv.state_nodes.clear();
}

std::vector<std::pair<std::string, size_t>> ProvenanceGraph::LabelHistogram()
    const {
  std::map<std::string, size_t> counts;
  for (const Shard& s : shards_) {
    for (const ProvNode& node : s.nodes) {
      if (node.alive) ++counts[NodeLabelToString(node.label)];
    }
  }
  return {counts.begin(), counts.end()};
}

}  // namespace lipstick

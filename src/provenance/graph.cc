#include "provenance/graph.h"

#include <algorithm>
#include <map>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lipstick {

const char* NodeLabelToString(NodeLabel label) {
  switch (label) {
    case NodeLabel::kToken:
      return "token";
    case NodeLabel::kPlus:
      return "+";
    case NodeLabel::kTimes:
      return "*";
    case NodeLabel::kDelta:
      return "delta";
    case NodeLabel::kTensor:
      return "tensor";
    case NodeLabel::kAggregate:
      return "agg";
    case NodeLabel::kConstValue:
      return "const";
    case NodeLabel::kBlackBox:
      return "blackbox";
    case NodeLabel::kModuleInvocation:
      return "m";
    case NodeLabel::kZoomedModule:
      return "zoom";
  }
  return "?";
}

const char* NodeRoleToString(NodeRole role) {
  switch (role) {
    case NodeRole::kIntermediate:
      return "intermediate";
    case NodeRole::kWorkflowInput:
      return "I";
    case NodeRole::kModuleInput:
      return "i";
    case NodeRole::kModuleOutput:
      return "o";
    case NodeRole::kModuleState:
      return "s";
    case NodeRole::kStateBase:
      return "base";
    case NodeRole::kInvocation:
      return "inv";
    case NodeRole::kZoom:
      return "zoomed";
  }
  return "?";
}

const Value& NullValue() {
  static const Value kNull;
  return kNull;
}

namespace {

using internal::kAliveFlag;
using internal::kInlineParents;
using internal::kNoValueIdx;
using internal::kValueNodeFlag;
using internal::NodeColumns;
using internal::ParentSlot;

/// Writes `parents` into the slot at row `i`: inline if small, else
/// appended to the shard's edge arena. Any previous arena region of the
/// slot is abandoned (the arena is append-only; Seal/stats account it).
void StoreParents(NodeColumns& sh, uint64_t i,
                  std::span<const NodeId> parents) {
  ParentSlot& slot = sh.parents[i];
  slot.count = static_cast<uint32_t>(parents.size());
  if (parents.size() <= kInlineParents) {
    for (size_t k = 0; k < parents.size(); ++k) slot.ab[k] = parents[k];
    return;
  }
  slot.ab[0] = sh.edge_arena.size();
  slot.ab[1] = kInvalidNode;
  sh.edge_arena.insert(sh.edge_arena.end(), parents.begin(), parents.end());
}

}  // namespace

NodeId ShardWriter::Append(NodeLabel label, NodeRole role, uint32_t flags,
                           uint32_t invocation, StrId payload,
                           std::span<const NodeId> parents) {
  NodeColumns& sh = graph_->shards_[shard_];
  uint64_t i = sh.size();
  sh.labels.push_back(label);
  sh.roles.push_back(role);
  sh.flags.push_back(static_cast<uint8_t>(flags));
  sh.invocations.push_back(invocation);
  sh.payloads.push_back(payload);
  sh.parents.emplace_back();
  sh.value_idx.push_back(kNoValueIdx);
  StoreParents(sh, i, parents);
  graph_->sealed_ = false;
  NodeId id = MakeNodeId(shard_, i);
  if (GraphWalSink* sink = graph_->wal_sink_) {
    sink->OnNodeAppend(id, label, role, static_cast<uint8_t>(flags),
                       invocation, payload, parents);
  }
  return id;
}

NodeId ShardWriter::Token(std::string name, NodeRole role) {
  return Append(NodeLabel::kToken, role, kAliveFlag, current_invocation_,
                graph_->pool_.Intern(name), {});
}

NodeId ShardWriter::Plus(std::vector<NodeId> parents) {
  return Append(NodeLabel::kPlus, NodeRole::kIntermediate, kAliveFlag,
                current_invocation_, kEmptyStr, parents);
}

NodeId ShardWriter::Times(std::vector<NodeId> parents, NodeRole role,
                          uint32_t invocation) {
  return Append(NodeLabel::kTimes, role, kAliveFlag,
                invocation == kNoInvocation ? current_invocation_ : invocation,
                kEmptyStr, parents);
}

NodeId ShardWriter::Delta(std::vector<NodeId> parents) {
  return Append(NodeLabel::kDelta, NodeRole::kIntermediate, kAliveFlag,
                current_invocation_, kEmptyStr, parents);
}

NodeId ShardWriter::Tensor(NodeId value_node, NodeId prov_node) {
  const NodeId parents[2] = {value_node, prov_node};
  return Append(NodeLabel::kTensor, NodeRole::kIntermediate,
                kAliveFlag | kValueNodeFlag, current_invocation_, kEmptyStr,
                parents);
}

NodeId ShardWriter::Aggregate(std::string op, std::vector<NodeId> parents,
                              Value result) {
  NodeId id = Append(NodeLabel::kAggregate, NodeRole::kIntermediate,
                     kAliveFlag | kValueNodeFlag, current_invocation_,
                     graph_->pool_.Intern(op), parents);
  if (!result.is_null()) {
    NodeColumns& sh = graph_->shards_[shard_];
    sh.value_idx.back() = static_cast<uint32_t>(sh.values.size());
    sh.values.push_back(std::move(result));
    if (GraphWalSink* sink = graph_->wal_sink_) {
      sink->OnNodeValue(id, sh.values.back());
    }
  }
  return id;
}

NodeId ShardWriter::ConstValue(Value v) {
  NodeId id = Append(NodeLabel::kConstValue, NodeRole::kIntermediate,
                     kAliveFlag | kValueNodeFlag, current_invocation_,
                     kEmptyStr, {});
  if (!v.is_null()) {
    NodeColumns& sh = graph_->shards_[shard_];
    sh.value_idx.back() = static_cast<uint32_t>(sh.values.size());
    sh.values.push_back(std::move(v));
    if (GraphWalSink* sink = graph_->wal_sink_) {
      sink->OnNodeValue(id, sh.values.back());
    }
  }
  return id;
}

NodeId ShardWriter::BlackBox(std::string function,
                             std::vector<NodeId> parents) {
  return Append(NodeLabel::kBlackBox, NodeRole::kIntermediate, kAliveFlag,
                current_invocation_, graph_->pool_.Intern(function), parents);
}

NodeId ShardWriter::ZoomedModule(std::string_view module,
                                 std::vector<NodeId> parents,
                                 uint32_t invocation) {
  return Append(NodeLabel::kZoomedModule, NodeRole::kZoom, kAliveFlag,
                invocation, graph_->pool_.Intern(module), parents);
}

NodeId ShardWriter::Restore(const NodeRecord& record) {
  uint32_t flags = (record.alive ? kAliveFlag : 0) |
                   (record.is_value_node ? kValueNodeFlag : 0);
  NodeId id = Append(record.label, record.role, flags, record.invocation,
                     graph_->pool_.Intern(record.payload), record.parents);
  if (!record.value.is_null()) {
    NodeColumns& sh = graph_->shards_[shard_];
    sh.value_idx.back() = static_cast<uint32_t>(sh.values.size());
    sh.values.push_back(record.value);
    if (GraphWalSink* sink = graph_->wal_sink_) {
      sink->OnNodeValue(id, sh.values.back());
    }
  }
  return id;
}

uint32_t ShardWriter::BeginInvocation(std::string module_name,
                                      std::string instance_name,
                                      uint32_t execution) {
  StrId module_id = graph_->pool_.Intern(module_name);
  StrId instance_id = graph_->pool_.Intern(instance_name);
  NodeId m_node = Append(NodeLabel::kModuleInvocation, NodeRole::kInvocation,
                         kAliveFlag, kNoInvocation, module_id, {});

  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  uint32_t id = static_cast<uint32_t>(graph_->invocations_.size());
  InvocationInfo info;
  info.module_name = module_id;
  info.instance_name = instance_id;
  info.execution = execution;
  info.m_node = m_node;
  graph_->invocations_.push_back(std::move(info));
  graph_->shards_[shard_].invocations[NodeIndex(m_node)] = id;
  if (GraphWalSink* sink = graph_->wal_sink_) {
    sink->OnBeginInvocation(id, graph_->invocations_.back());
  }
  return id;
}

NodeId ShardWriter::InvocationNode(uint32_t invocation) const {
  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  return graph_->invocations_[invocation].m_node;
}

NodeId ShardWriter::WorkflowInput(std::string token_name) {
  return Append(NodeLabel::kToken, NodeRole::kWorkflowInput, kAliveFlag,
                kNoInvocation, graph_->pool_.Intern(token_name), {});
}

NodeId ShardWriter::ModuleInput(uint32_t invocation, NodeId tuple_node) {
  NodeId m_node;
  {
    std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
    m_node = graph_->invocations_[invocation].m_node;
  }
  NodeId id =
      Times({tuple_node, m_node}, NodeRole::kModuleInput, invocation);
  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  graph_->invocations_[invocation].input_nodes.push_back(id);
  if (GraphWalSink* sink = graph_->wal_sink_) {
    sink->OnInvocationNode(invocation, 0, id);
  }
  return id;
}

NodeId ShardWriter::ModuleOutput(uint32_t invocation, NodeId tuple_node) {
  NodeId m_node;
  {
    std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
    m_node = graph_->invocations_[invocation].m_node;
  }
  NodeId id =
      Times({tuple_node, m_node}, NodeRole::kModuleOutput, invocation);
  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  graph_->invocations_[invocation].output_nodes.push_back(id);
  if (GraphWalSink* sink = graph_->wal_sink_) {
    sink->OnInvocationNode(invocation, 1, id);
  }
  return id;
}

NodeId ShardWriter::ModuleState(uint32_t invocation, NodeId tuple_node) {
  NodeId m_node;
  {
    std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
    m_node = graph_->invocations_[invocation].m_node;
  }
  NodeId id =
      Times({tuple_node, m_node}, NodeRole::kModuleState, invocation);
  std::lock_guard<std::mutex> lock(*graph_->invocations_mu_);
  graph_->invocations_[invocation].state_nodes.push_back(id);
  if (GraphWalSink* sink = graph_->wal_sink_) {
    sink->OnInvocationNode(invocation, 2, id);
  }
  return id;
}

void ShardWriter::BeginStateScope(
    uint32_t invocation, const std::unordered_set<NodeId>* eligible) {
  state_scope_invocation_ = invocation;
  state_eligible_ = eligible;
  state_wrap_cache_.clear();
}

void ShardWriter::EndStateScope() {
  state_scope_invocation_ = kNoInvocation;
  state_eligible_ = nullptr;
  state_wrap_cache_.clear();
}

NodeId ShardWriter::ResolveParent(NodeId annot) {
  if (state_eligible_ == nullptr || annot == kInvalidNode) return annot;
  if (!state_eligible_->count(annot)) return annot;
  auto it = state_wrap_cache_.find(annot);
  if (it != state_wrap_cache_.end()) return it->second;
  NodeId s = ModuleState(state_scope_invocation_, annot);
  state_wrap_cache_.emplace(annot, s);
  return s;
}

uint32_t ProvenanceGraph::RestoreInvocation(InvocationInfo info) {
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  invocations_.push_back(std::move(info));
  return static_cast<uint32_t>(invocations_.size() - 1);
}

ShardWriter ProvenanceGraph::AddShard() {
  shards_.emplace_back();
  return ShardWriter(this, static_cast<uint32_t>(shards_.size() - 1));
}

void ProvenanceGraph::SetAlive(NodeId id, bool alive) {
  uint32_t s = NodeShard(id);
  uint64_t i = NodeIndex(id);
  LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                      i < shards_[s].size(),
                  "SetAlive: node id out of range");
  uint8_t& flags = shards_[s].flags[i];
  flags = alive ? (flags | internal::kAliveFlag)
                : (flags & ~internal::kAliveFlag);
  sealed_ = false;
  if (GraphWalSink* sink = wal_sink_) sink->OnSetAlive(id, alive);
}

void ProvenanceGraph::SetParents(NodeId id, std::span<const NodeId> parents) {
  uint32_t s = NodeShard(id);
  uint64_t i = NodeIndex(id);
  LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                      i < shards_[s].size(),
                  "SetParents: node id out of range");
  StoreParents(shards_[s], i, parents);
  sealed_ = false;
  if (GraphWalSink* sink = wal_sink_) sink->OnSetParents(id, parents);
}

void ProvenanceGraph::AddParent(NodeId id, NodeId parent) {
  uint32_t s = NodeShard(id);
  uint64_t i = NodeIndex(id);
  LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                      i < shards_[s].size(),
                  "AddParent: node id out of range");
  NodeColumns& sh = shards_[s];
  ParentSlot& slot = sh.parents[i];
  if (slot.count < kInlineParents) {
    slot.ab[slot.count++] = parent;
  } else if (slot.count == kInlineParents) {
    // Spills to the arena: copy the inline pair, then the new edge.
    uint64_t offset = sh.edge_arena.size();
    sh.edge_arena.push_back(slot.ab[0]);
    sh.edge_arena.push_back(slot.ab[1]);
    sh.edge_arena.push_back(parent);
    slot.ab[0] = offset;
    slot.ab[1] = kInvalidNode;
    slot.count = 3;
  } else if (slot.ab[0] + slot.count == sh.edge_arena.size()) {
    // Slot already sits at the arena tail: grow in place.
    sh.edge_arena.push_back(parent);
    ++slot.count;
  } else {
    uint64_t offset = sh.edge_arena.size();
    sh.edge_arena.insert(sh.edge_arena.end(),
                         sh.edge_arena.begin() + slot.ab[0],
                         sh.edge_arena.begin() + slot.ab[0] + slot.count);
    sh.edge_arena.push_back(parent);
    slot.ab[0] = offset;
    ++slot.count;
  }
  sealed_ = false;
  if (GraphWalSink* sink = wal_sink_) {
    sink->OnSetParents(id, sh.ParentSpan(i));
  }
}

void ProvenanceGraph::ClearParents(NodeId id) {
  SetParents(id, {});
}

void ProvenanceGraph::SetRole(NodeId id, NodeRole role) {
  uint32_t s = NodeShard(id);
  uint64_t i = NodeIndex(id);
  LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                      i < shards_[s].size(),
                  "SetRole: node id out of range");
  shards_[s].roles[i] = role;
}

void ProvenanceGraph::SetInvocationTag(NodeId id, uint32_t invocation) {
  uint32_t s = NodeShard(id);
  uint64_t i = NodeIndex(id);
  LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                      i < shards_[s].size(),
                  "SetInvocationTag: node id out of range");
  shards_[s].invocations[i] = invocation;
}

void ProvenanceGraph::SetValueNodeFlag(NodeId id, bool is_value_node) {
  uint32_t s = NodeShard(id);
  uint64_t i = NodeIndex(id);
  LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                      i < shards_[s].size(),
                  "SetValueNodeFlag: node id out of range");
  uint8_t& flags = shards_[s].flags[i];
  flags = is_value_node ? (flags | internal::kValueNodeFlag)
                        : (flags & ~internal::kValueNodeFlag);
}

void ProvenanceGraph::SetNodeValue(NodeId id, Value value) {
  uint32_t s = NodeShard(id);
  uint64_t i = NodeIndex(id);
  LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                      i < shards_[s].size(),
                  "SetNodeValue: node id out of range");
  NodeColumns& sh = shards_[s];
  uint32_t& vi = sh.value_idx[i];
  if (vi == kNoValueIdx) {
    vi = static_cast<uint32_t>(sh.values.size());
    sh.values.push_back(std::move(value));
  } else {
    sh.values[vi] = std::move(value);
  }
  if (GraphWalSink* sink = wal_sink_) sink->OnNodeValue(id, sh.values[vi]);
}

namespace {

void ForwardInternToSink(void* ctx, StrId id, std::string_view s) {
  static_cast<GraphWalSink*>(ctx)->OnIntern(id, s);
}

}  // namespace

void ProvenanceGraph::AttachWalSink(GraphWalSink* sink) {
  wal_sink_ = sink;
  pool_.SetInternObserver(sink != nullptr ? &ForwardInternToSink : nullptr,
                          sink);
}

size_t ProvenanceGraph::num_nodes() const {
  size_t n = 0;
  for (const NodeColumns& s : shards_) n += s.size();
  return n;
}

size_t ProvenanceGraph::num_alive() const {
  size_t n = 0;
  for (const NodeColumns& s : shards_) {
    for (uint8_t f : s.flags) n += (f & kAliveFlag) ? 1 : 0;
  }
  return n;
}

size_t ProvenanceGraph::num_edges() const {
  size_t n = 0;
  for (const NodeColumns& s : shards_) {
    for (uint64_t i = 0; i < s.size(); ++i) {
      if (!(s.flags[i] & kAliveFlag)) continue;
      for (NodeId p : s.ParentSpan(i)) n += Contains(p) ? 1 : 0;
    }
  }
  return n;
}

std::vector<NodeId> ProvenanceGraph::AllNodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(num_nodes());
  ForEachNode([&ids](NodeId id) { ids.push_back(id); });
  return ids;
}

void ProvenanceGraph::Seal() {
  // Observability: time the CSR build and report graph shape + bytes/node
  // (from the existing memory accounting) when armed. Disarmed, the whole
  // block is two relaxed atomic loads.
  obs::ObsSpan span("provenance", "seal");
  const bool obs_armed = span.active() || obs::MetricsRegistry::Enabled();
  WallTimer seal_timer;

  // Two-pass CSR build per shard: count alive-child edges into each
  // parent, prefix-sum into offsets, then fill. Iteration order (shard,
  // index) matches the historical nested-vector build, so children of a
  // parent stay sorted by (child shard, child index).
  for (NodeColumns& s : shards_) {
    s.child_offsets.assign(s.size() + 1, 0);
    s.child_edges.clear();
  }
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    const NodeColumns& sh = shards_[s];
    for (uint64_t i = 0; i < sh.size(); ++i) {
      if (!(sh.flags[i] & kAliveFlag)) continue;
      for (NodeId p : sh.ParentSpan(i)) {
        if (!Contains(p)) continue;
        ++shards_[NodeShard(p)].child_offsets[NodeIndex(p) + 1];
      }
    }
  }
  for (NodeColumns& s : shards_) {
    uint64_t total = 0;
    for (size_t i = 1; i < s.child_offsets.size(); ++i) {
      total += s.child_offsets[i];
      LIPSTICK_CHECK(total <= 0xffffffffull,
                     "shard exceeds 2^32 child edges");
      s.child_offsets[i] = static_cast<uint32_t>(total);
    }
    s.child_edges.resize(total);
  }
  // Fill pass; cursor tracks the next free slot per parent.
  std::vector<std::vector<uint32_t>> cursor(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    cursor[s].assign(shards_[s].child_offsets.begin(),
                     shards_[s].child_offsets.end() - 1);
  }
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    const NodeColumns& sh = shards_[s];
    for (uint64_t i = 0; i < sh.size(); ++i) {
      if (!(sh.flags[i] & kAliveFlag)) continue;
      NodeId child = MakeNodeId(s, i);
      for (NodeId p : sh.ParentSpan(i)) {
        if (!Contains(p)) continue;
        uint32_t ps = NodeShard(p);
        shards_[ps].child_edges[cursor[ps][NodeIndex(p)]++] = child;
      }
    }
  }
  sealed_ = true;

  if (obs_armed) {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    static const obs::MetricId kSeals = metrics.RegisterCounter(
        "provenance.seals");
    static const obs::MetricId kSealUs = metrics.RegisterHistogram(
        "provenance.seal_us");
    static const obs::MetricId kBytesPerNode = metrics.RegisterGauge(
        "provenance.bytes_per_node");
    static const obs::MetricId kNodes = metrics.RegisterGauge(
        "provenance.nodes");
    double seal_us = seal_timer.ElapsedMicros();
    size_t nodes = num_nodes();
    size_t edges = 0;
    for (const NodeColumns& s : shards_) edges += s.child_edges.size();
    MemoryStats stats = ComputeMemoryStats();
    size_t bytes_per_node = nodes == 0 ? 0 : stats.total() / nodes;
    metrics.CounterAdd(kSeals);
    metrics.Observe(kSealUs, seal_us);
    metrics.GaugeSet(kNodes, static_cast<int64_t>(nodes));
    metrics.GaugeSet(kBytesPerNode, static_cast<int64_t>(bytes_per_node));
    span.Arg("nodes", static_cast<uint64_t>(nodes));
    span.Arg("edges", static_cast<uint64_t>(edges));
    span.Arg("shards", static_cast<uint64_t>(shards_.size()));
    span.Arg("bytes_per_node", static_cast<uint64_t>(bytes_per_node));
    span.Arg("build_us", seal_us);
  }
}

size_t ProvenanceGraph::num_live_invocations() const {
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  size_t n = 0;
  for (const InvocationInfo& inv : invocations_) n += inv.aborted() ? 0 : 1;
  return n;
}

ProvenanceGraph::Savepoint ProvenanceGraph::TakeSavepoint() const {
  Savepoint sp;
  sp.shard_sizes.reserve(shards_.size());
  for (const NodeColumns& s : shards_) sp.shard_sizes.push_back(s.size());
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  sp.invocation_count = invocations_.size();
  return sp;
}

void ProvenanceGraph::RollbackTo(const Savepoint& savepoint) {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    size_t from =
        s < savepoint.shard_sizes.size() ? savepoint.shard_sizes[s] : 0;
    KillShardTail(s, from);
  }
  // Invocation ids are indices handed out monotonically, so everything
  // registered after the savepoint forms a suffix; the nodes referencing
  // those ids were just killed above.
  TruncateInvocations(savepoint.invocation_count);
  sealed_ = false;
}

void ProvenanceGraph::TruncateInvocations(size_t count) {
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  if (invocations_.size() > count) invocations_.resize(count);
  if (GraphWalSink* sink = wal_sink_) {
    sink->OnTruncateInvocations(invocations_.size());
  }
}

size_t ProvenanceGraph::ShardSize(uint32_t shard) const {
  return shards_[shard].size();
}

void ProvenanceGraph::KillShardTail(uint32_t shard, size_t from) {
  NodeColumns& s = shards_[shard];
  if (from >= s.size()) return;
  for (size_t i = from; i < s.size(); ++i) {
    s.flags[i] &= static_cast<uint8_t>(~kAliveFlag);
  }
  sealed_ = false;
  if (GraphWalSink* sink = wal_sink_) sink->OnKillShardTail(shard, from);
}

void ProvenanceGraph::AbortInvocation(uint32_t invocation) {
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  InvocationInfo& inv = invocations_[invocation];
  inv.m_node = kInvalidNode;
  inv.input_nodes.clear();
  inv.output_nodes.clear();
  inv.state_nodes.clear();
  if (GraphWalSink* sink = wal_sink_) sink->OnAbortInvocation(invocation);
}

std::vector<std::pair<std::string, size_t>> ProvenanceGraph::LabelHistogram()
    const {
  std::map<std::string, size_t> counts;
  for (const NodeColumns& s : shards_) {
    for (uint64_t i = 0; i < s.size(); ++i) {
      if (s.flags[i] & kAliveFlag) ++counts[NodeLabelToString(s.labels[i])];
    }
  }
  return {counts.begin(), counts.end()};
}

ProvenanceGraph::MemoryStats ProvenanceGraph::ComputeMemoryStats() const {
  MemoryStats ms;
  for (const NodeColumns& s : shards_) {
    ms.column_bytes += s.labels.capacity() * sizeof(NodeLabel) +
                       s.roles.capacity() * sizeof(NodeRole) +
                       s.flags.capacity() * sizeof(uint8_t) +
                       s.invocations.capacity() * sizeof(uint32_t) +
                       s.payloads.capacity() * sizeof(StrId) +
                       s.parents.capacity() * sizeof(ParentSlot) +
                       s.value_idx.capacity() * sizeof(uint32_t);
    ms.edge_arena_bytes += s.edge_arena.capacity() * sizeof(NodeId);
    ms.csr_bytes += s.child_offsets.capacity() * sizeof(uint32_t) +
                    s.child_edges.capacity() * sizeof(NodeId);
    ms.value_bytes += s.values.capacity() * sizeof(Value);
  }
  ms.interner_bytes = pool_.MemoryBytes();
  std::lock_guard<std::mutex> lock(*invocations_mu_);
  for (const InvocationInfo& inv : invocations_) {
    ms.invocation_bytes += sizeof(InvocationInfo) +
                           (inv.input_nodes.capacity() +
                            inv.output_nodes.capacity() +
                            inv.state_nodes.capacity()) *
                               sizeof(NodeId);
  }
  return ms;
}

}  // namespace lipstick

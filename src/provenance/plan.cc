#include "provenance/plan.h"

#include <algorithm>
#include <cstdlib>

#include "common/str_util.h"

namespace lipstick {

namespace {

/// Splits one token at '|' boundaries, emitting the pieces and a bare "|"
/// separator token for each pipe, so "a|b" tokenizes like "a | b".
void SplitPipes(const std::string& token, std::vector<std::string>* out) {
  size_t start = 0;
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '|') continue;
    if (i > start) out->push_back(token.substr(start, i - start));
    out->push_back("|");
    start = i + 1;
  }
  if (start < token.size()) out->push_back(token.substr(start));
  if (token.empty()) out->push_back(token);
}

/// Whitespace-splits `s` (the op field may carry a whole pipeline).
void SplitWhitespace(const std::string& s, std::vector<std::string>* out) {
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i > start) out->push_back(s.substr(start, i - start));
  }
}

/// Comma-splits a roots/modules operand; empty pieces are preserved so
/// "4,,5" surfaces as a "bad node id ''" / empty-module error downstream.
std::vector<std::string> SplitCommaList(const std::string& s) {
  return Split(s, ',');
}

/// Builds the pattern for `find` / `restrict` from a flag token list,
/// mirroring the historical flag parser exactly: flags are consumed in
/// (flag, value) pairs and a trailing flag with no value is ignored.
Result<PlanPattern> ParsePatternFlags(const std::vector<std::string>& rest) {
  PlanPattern pattern;
  for (size_t i = 0; i + 1 < rest.size(); i += 2) {
    const std::string& flag = rest[i];
    const std::string& value = rest[i + 1];
    PatternAtom atom;
    if (flag == "--payload") {
      atom.kind = PatternAtom::Kind::kPayload;
      atom.payload = value;
    } else if (flag == "--label") {
      bool matched = false;
      for (int l = 0; l <= static_cast<int>(NodeLabel::kZoomedModule); ++l) {
        if (value == NodeLabelToString(static_cast<NodeLabel>(l))) {
          atom.kind = PatternAtom::Kind::kLabel;
          atom.label = static_cast<NodeLabel>(l);
          matched = true;
        }
      }
      if (!matched) {
        return Status::InvalidArgument(StrCat("unknown label '", value, "'"));
      }
    } else if (flag == "--role") {
      bool matched = false;
      for (int r = 0; r <= static_cast<int>(NodeRole::kZoom); ++r) {
        if (value == NodeRoleToString(static_cast<NodeRole>(r))) {
          atom.kind = PatternAtom::Kind::kRole;
          atom.role = static_cast<NodeRole>(r);
          matched = true;
        }
      }
      if (!matched) {
        return Status::InvalidArgument(StrCat("unknown role '", value, "'"));
      }
    } else {
      return Status::InvalidArgument(StrCat("unknown find flag '", flag, "'"));
    }
    pattern.atoms.push_back(std::move(atom));
  }
  pattern.Normalize();
  return pattern;
}

Result<std::vector<NodeId>> ParseNodeList(const std::string& operand) {
  std::vector<NodeId> ids;
  for (const std::string& piece : SplitCommaList(operand)) {
    Result<NodeId> id = ParsePlanNodeId(piece);
    if (!id.ok()) return id.status();
    ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool ParseSubgraphDir(const std::string& word, SubgraphDir* dir) {
  if (word == "both") {
    *dir = SubgraphDir::kBoth;
  } else if (word == "up") {
    *dir = SubgraphDir::kUp;
  } else if (word == "down") {
    *dir = SubgraphDir::kDown;
  } else {
    return false;
  }
  return true;
}

const char* SubgraphDirName(SubgraphDir dir) {
  switch (dir) {
    case SubgraphDir::kBoth:
      return "both";
    case SubgraphDir::kUp:
      return "up";
    case SubgraphDir::kDown:
      return "down";
  }
  return "?";
}

/// Parses one pipeline stage (op name + operand tokens) into a PlanOp.
/// `single_stage` preserves the legacy single-op surface: "delete" is not
/// a standalone read query (the CLI owns the mutating form), and unknown
/// operations report the historical error string.
Result<PlanOp> ParseStage(const std::vector<std::string>& stage,
                          bool single_stage) {
  const std::string& op = stage[0];
  std::vector<std::string> rest(stage.begin() + 1, stage.end());
  PlanOp out;
  if (op == "stats") {
    out.kind = PlanOpKind::kStats;
    return out;
  }
  if (op == "find" || op == "restrict") {
    out.kind = op == "find" ? PlanOpKind::kFind : PlanOpKind::kRestrict;
    Result<PlanPattern> pattern = ParsePatternFlags(rest);
    if (!pattern.ok()) return pattern.status();
    out.pattern = std::move(*pattern);
    return out;
  }
  if (op == "expr") {
    if (rest.size() != 1) {
      return Status::InvalidArgument("expr needs one node id");
    }
    Result<NodeId> id = ParsePlanNodeId(rest[0]);
    if (!id.ok()) return id.status();
    out.kind = PlanOpKind::kExpr;
    out.target = *id;
    return out;
  }
  if (op == "depends") {
    if (rest.size() != 2) {
      return Status::InvalidArgument("depends needs <target-id> <source-id>");
    }
    Result<NodeId> target = ParsePlanNodeId(rest[0]);
    Result<NodeId> source = ParsePlanNodeId(rest[1]);
    if (!target.ok() || !source.ok()) {
      return Status::InvalidArgument("bad node ids");
    }
    out.kind = PlanOpKind::kDepends;
    out.target = *target;
    out.source = *source;
    return out;
  }
  if (op == "subgraph") {
    // One comma-joined roots operand, optionally followed by a direction
    // keyword (up / down / both).
    out.kind = PlanOpKind::kSubgraph;
    if (rest.size() == 2 && ParseSubgraphDir(rest[1], &out.dir)) {
      rest.pop_back();
    }
    if (rest.size() != 1) {
      return Status::InvalidArgument("subgraph needs one node id");
    }
    Result<std::vector<NodeId>> roots = ParseNodeList(rest[0]);
    if (!roots.ok()) return roots.status();
    out.nodes = std::move(*roots);
    return out;
  }
  if (op == "zoomout") {
    if (rest.empty()) {
      return Status::InvalidArgument("zoomout needs at least one module");
    }
    out.kind = PlanOpKind::kZoomOut;
    for (const std::string& operand : rest) {
      for (std::string& module : SplitCommaList(operand)) {
        if (module.empty()) {
          return Status::InvalidArgument("zoomout needs at least one module");
        }
        out.modules.push_back(std::move(module));
      }
    }
    std::sort(out.modules.begin(), out.modules.end());
    return out;
  }
  if (op == "delete" && !single_stage) {
    if (rest.size() != 1) {
      return Status::InvalidArgument("delete needs one node id list");
    }
    Result<std::vector<NodeId>> seeds = ParseNodeList(rest[0]);
    if (!seeds.ok()) return seeds.status();
    if (seeds->empty()) {
      return Status::InvalidArgument("delete needs one node id list");
    }
    out.kind = PlanOpKind::kDeleteProp;
    out.nodes = std::move(*seeds);
    return out;
  }
  return Status::InvalidArgument(StrCat("unknown query operation '", op, "'"));
}

}  // namespace

Result<NodeId> ParsePlanNodeId(const std::string& s) {
  char* end = nullptr;
  NodeId id = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument(StrCat("bad node id '", s, "'"));
  }
  return id;
}

bool PatternAtom::Matches(NodeLabel l, NodeRole r, std::string_view p) const {
  switch (kind) {
    case Kind::kLabel:
      return l == label;
    case Kind::kRole:
      return r == role;
    case Kind::kPayload:
      return p.find(payload) != std::string_view::npos;
  }
  return false;
}

std::string PatternAtom::Canonical() const {
  switch (kind) {
    case Kind::kLabel:
      return StrCat("label=", NodeLabelToString(label));
    case Kind::kRole:
      return StrCat("role=", NodeRoleToString(role));
    case Kind::kPayload:
      return StrCat("payload=", payload);
  }
  return "?";
}

bool PlanPattern::Matches(NodeLabel l, NodeRole r,
                          std::string_view payload) const {
  for (const PatternAtom& atom : atoms) {
    if (!atom.Matches(l, r, payload)) return false;
  }
  return true;
}

std::string PlanPattern::Canonical() const {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const PatternAtom& atom : atoms) parts.push_back(atom.Canonical());
  return Join(parts, ",");
}

void PlanPattern::Normalize() {
  std::sort(atoms.begin(), atoms.end(),
            [](const PatternAtom& a, const PatternAtom& b) {
              return a.Canonical() < b.Canonical();
            });
}

std::string PlanOp::Canonical() const {
  switch (kind) {
    case PlanOpKind::kZoomOut:
      return StrCat("zoomout(", Join(modules, ","), ")");
    case PlanOpKind::kSubgraph: {
      std::vector<std::string> parts;
      parts.reserve(nodes.size());
      for (NodeId id : nodes) parts.push_back(StrCat(id));
      std::string roots = Join(parts, ",");
      if (dir == SubgraphDir::kBoth) {
        return StrCat("subgraph(", roots, ")");
      }
      return StrCat("subgraph(", roots, ";", SubgraphDirName(dir), ")");
    }
    case PlanOpKind::kRestrict:
      return StrCat("restrict(", pattern.Canonical(), ")");
    case PlanOpKind::kDeleteProp: {
      std::vector<std::string> parts;
      parts.reserve(nodes.size());
      for (NodeId id : nodes) parts.push_back(StrCat(id));
      return StrCat("delete(", Join(parts, ","), ")");
    }
    case PlanOpKind::kStats:
      return "stats";
    case PlanOpKind::kFind:
      return StrCat("find(", pattern.Canonical(), ")");
    case PlanOpKind::kExpr:
      return StrCat("expr(", target, ")");
    case PlanOpKind::kDepends:
      return StrCat("depends(", target, ",", source, ")");
  }
  return "?";
}

std::string Plan::Canonical() const {
  std::vector<std::string> parts;
  parts.reserve(ops.size());
  for (const PlanOp& op : ops) parts.push_back(op.Canonical());
  return Join(parts, "|");
}

Result<Plan> ParsePlan(const std::string& op,
                       const std::vector<std::string>& args) {
  // Token stream: the op field whitespace-split (a pipeline may arrive as
  // one string), then the argument tokens verbatim; '|' splits everywhere.
  std::vector<std::string> raw;
  SplitWhitespace(op, &raw);
  raw.insert(raw.end(), args.begin(), args.end());
  std::vector<std::string> tokens;
  for (const std::string& t : raw) SplitPipes(t, &tokens);

  std::vector<std::vector<std::string>> stages(1);
  for (std::string& t : tokens) {
    if (t == "|") {
      stages.emplace_back();
    } else {
      stages.back().push_back(std::move(t));
    }
  }
  if (stages.size() == 1 && stages[0].empty()) {
    return Status::InvalidArgument("unknown query operation ''");
  }
  bool single_stage = stages.size() == 1;
  Plan plan;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (stages[i].empty()) {
      return Status::InvalidArgument("empty pipeline stage");
    }
    Result<PlanOp> stage_op = ParseStage(stages[i], single_stage);
    if (!stage_op.ok()) return stage_op.status();
    if (!stage_op->IsViewOp() && i + 1 != stages.size()) {
      return Status::InvalidArgument(
          StrCat("terminal operation '", stages[i][0],
                 "' must be last in pipeline"));
    }
    plan.ops.push_back(std::move(*stage_op));
  }
  return plan;
}

}  // namespace lipstick

#include "provenance/provio.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/str_util.h"

namespace lipstick {

namespace {

/// Hard ceilings on self-described counts, so truncated or garbage input
/// cannot drive huge up-front allocations. NodeIds carry a 16-bit shard
/// field, so more than 65535 shards cannot round-trip anyway; the string
/// reserve is a hint only (the loop reads exactly what the file holds).
constexpr size_t kMaxShards = 65535;
constexpr size_t kMaxStringReserve = 1u << 20;

// Percent-encodes whitespace, '%', and non-printable bytes so every record
// stays on one whitespace-delimited line.
std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c <= ' ' || c == '%' || c >= 127) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out.empty() ? "%00" : out;  // empty strings encode as NUL marker
}

Result<std::string> Unescape(const std::string& s) {
  if (s == "%00") return std::string();
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) return Status::ParseError("truncated escape");
      int hi = std::isxdigit(static_cast<unsigned char>(s[i + 1]))
                   ? std::stoi(s.substr(i + 1, 2), nullptr, 16)
                   : -1;
      if (hi < 0) return Status::ParseError("bad escape");
      out += static_cast<char>(hi);
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string EncodeValue(const Value& v) {
  if (v.is_null()) return "N";
  if (v.is_bool()) return v.bool_value() ? "B1" : "B0";
  if (v.is_int()) return StrCat("I", v.int_value());
  if (v.is_double()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "D%.17g", v.double_value());
    return buf;
  }
  if (v.is_string()) return StrCat("S", Escape(v.string_value()));
  return "N";  // nested values are not stored in graph v-nodes
}

Result<Value> DecodeValue(const std::string& s) {
  if (s.empty()) return Status::ParseError("empty value");
  switch (s[0]) {
    case 'N':
      return Value::Null();
    case 'B':
      return Value::Bool(s == "B1");
    case 'I':
      return Value::Int(std::strtoll(s.c_str() + 1, nullptr, 10));
    case 'D':
      return Value::Double(std::strtod(s.c_str() + 1, nullptr));
    case 'S': {
      LIPSTICK_ASSIGN_OR_RETURN(std::string str, Unescape(s.substr(1)));
      return Value::String(std::move(str));
    }
    default:
      return Status::ParseError(StrCat("bad value encoding: ", s));
  }
}

std::string EncodeIdList(std::span<const NodeId> ids) {
  if (ids.empty()) return "-";
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (NodeId id : ids) parts.push_back(StrCat(id));
  return Join(parts, ",");
}

Result<std::vector<NodeId>> DecodeIdList(const std::string& s) {
  std::vector<NodeId> out;
  if (s == "-") return out;
  for (const std::string& part : Split(s, ',')) {
    if (part.empty()) return Status::ParseError("empty id in list");
    char* end = nullptr;
    errno = 0;
    NodeId id = std::strtoull(part.c_str(), &end, 10);
    if (end != part.c_str() + part.size() || errno == ERANGE) {
      return Status::ParseError(StrCat("bad id in list: '", part, "'"));
    }
    out.push_back(id);
  }
  return out;
}

/// Referential-integrity post-pass shared by both loaders: every parent
/// edge and invocation structural reference must name a node the file
/// actually defined, and alive nodes may only cite surviving invocation
/// records (dead nodes legitimately outlive their rolled-back records).
/// Catches truncated or hand-edited files whose records parse fine
/// individually but dangle collectively.
Status CheckLoadedRefs(const ProvenanceGraph& graph) {
  Status bad;
  graph.ForEachNode([&](NodeId id) {
    if (!bad.ok()) return;
    for (NodeId parent : graph.ParentsOf(id)) {
      if (!graph.InGraph(parent)) {
        bad = Status::ParseError(
            StrCat("node ", id, " references undefined parent ", parent));
        return;
      }
    }
    NodeView n = graph.node(id);
    if (n.alive() && n.invocation() != kNoInvocation &&
        n.invocation() >= graph.invocations().size()) {
      bad = Status::ParseError(
          StrCat("alive node ", id, " references undefined invocation ",
                 n.invocation()));
    }
  });
  LIPSTICK_RETURN_IF_ERROR(bad);
  for (size_t i = 0; i < graph.invocations().size(); ++i) {
    const InvocationInfo& inv = graph.invocations()[i];
    if (inv.m_node != kInvalidNode && !graph.InGraph(inv.m_node)) {
      return Status::ParseError(
          StrCat("invocation ", i, " references undefined m-node ",
                 inv.m_node));
    }
    for (const std::vector<NodeId>* nodes :
         {&inv.input_nodes, &inv.output_nodes, &inv.state_nodes}) {
      for (NodeId id : *nodes) {
        if (!graph.InGraph(id)) {
          return Status::ParseError(
              StrCat("invocation ", i, " references undefined node ", id));
        }
      }
    }
  }
  return Status::OK();
}

// Maps string indices of the file's strings table to the loading graph's
// pool. Index 0 is the implicit empty string.
struct StringTable {
  std::vector<StrId> ids{kEmptyStr};

  Result<StrId> Resolve(uint32_t file_idx) const {
    if (file_idx >= ids.size()) {
      return Status::ParseError(StrCat("string index out of range: ",
                                       file_idx));
    }
    return ids[file_idx];
  }
};

Result<ProvenanceGraph> LoadGraphV1(std::istream& is);
Result<ProvenanceGraph> LoadGraphV2(std::istream& is);

}  // namespace

Status SaveGraph(const ProvenanceGraph& graph, std::ostream& os) {
  // v2: payloads and invocation names are written once, in a strings table
  // up front; node and invocation records reference table indices. The
  // graph's interner ids are already dense, so the table is the pool in id
  // order and every StrId is its own table index.
  os << "LIPSTICKGRAPH v2\n";
  size_t num_shards = 1;
  graph.ForEachNode([&](NodeId id) {
    num_shards = std::max<size_t>(num_shards, NodeShard(id) + 1);
  });
  os << "shards " << num_shards << "\n";
  const StringPool& pool = graph.strings();
  os << "strings " << (pool.size() - 1) << "\n";
  for (StrId i = 1; i < pool.size(); ++i) {
    os << "s " << Escape(pool.Get(i)) << "\n";
  }
  graph.ForEachNode([&](NodeId id) {
    NodeView n = graph.node(id);
    os << "n " << id << ' ' << static_cast<int>(n.label()) << ' '
       << static_cast<int>(n.role()) << ' ' << (n.is_value_node() ? 1 : 0)
       << ' ' << (n.alive() ? 1 : 0) << ' ' << n.invocation() << ' '
       << EncodeIdList(n.parents()) << ' ' << n.payload_id() << ' '
       << EncodeValue(n.value()) << "\n";
  });
  for (const InvocationInfo& inv : graph.invocations()) {
    os << "v " << inv.module_name << ' ' << inv.instance_name << ' '
       << inv.execution << ' ' << inv.m_node << ' '
       << EncodeIdList(inv.input_nodes) << ' '
       << EncodeIdList(inv.output_nodes) << ' '
       << EncodeIdList(inv.state_nodes) << "\n";
  }
  os << "end\n";
  if (!os.good()) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveGraphToFile(const ProvenanceGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError(StrCat("cannot open ", path, " for writing"));
  }
  return SaveGraph(graph, out);
}

namespace {

Result<ProvenanceGraph> LoadGraphV2(std::istream& is) {
  std::string tag;
  size_t num_shards = 0;
  if (!(is >> tag >> num_shards) || tag != "shards" || num_shards == 0 ||
      num_shards > kMaxShards) {
    return Status::ParseError("bad shard count");
  }
  size_t num_strings = 0;
  if (!(is >> tag >> num_strings) || tag != "strings") {
    return Status::ParseError("bad strings count");
  }

  ProvenanceGraph graph;
  StringTable strings;
  strings.ids.reserve(std::min(num_strings, kMaxStringReserve) + 1);
  for (size_t i = 0; i < num_strings; ++i) {
    std::string raw;
    if (!(is >> tag >> raw) || tag != "s") {
      return Status::ParseError("bad string record");
    }
    LIPSTICK_ASSIGN_OR_RETURN(std::string str, Unescape(raw));
    strings.ids.push_back(graph.InternString(str));
  }

  std::vector<ShardWriter> writers;
  writers.push_back(graph.writer());
  for (size_t s = 1; s < num_shards; ++s) writers.push_back(graph.AddShard());

  while (is >> tag) {
    if (tag == "end") break;
    if (tag == "n") {
      NodeId id;
      int label, role, vflag, alive;
      uint32_t invocation, payload_idx;
      std::string parents_s, value_s;
      if (!(is >> id >> label >> role >> vflag >> alive >> invocation >>
            parents_s >> payload_idx >> value_s)) {
        return Status::ParseError("bad node record");
      }
      if (label < 0 || label > static_cast<int>(NodeLabel::kZoomedModule) ||
          role < 0 || role > static_cast<int>(NodeRole::kZoom)) {
        return Status::ParseError(
            StrCat("node ", id, " has out-of-range label/role"));
      }
      NodeRecord rec;
      rec.label = static_cast<NodeLabel>(label);
      rec.role = static_cast<NodeRole>(role);
      rec.is_value_node = vflag != 0;
      rec.alive = alive != 0;
      rec.invocation = invocation;
      LIPSTICK_ASSIGN_OR_RETURN(rec.parents, DecodeIdList(parents_s));
      LIPSTICK_ASSIGN_OR_RETURN(StrId payload, strings.Resolve(payload_idx));
      rec.payload = std::string(graph.str(payload));
      LIPSTICK_ASSIGN_OR_RETURN(rec.value, DecodeValue(value_s));
      uint32_t shard = NodeShard(id);
      if (shard >= writers.size()) {
        return Status::ParseError("node references unknown shard");
      }
      // Nodes must arrive in id order within each shard.
      NodeId got = writers[shard].Restore(rec);
      if (got != id) {
        return Status::ParseError(
            StrCat("node id mismatch: expected ", id, " got ", got));
      }
    } else if (tag == "v") {
      uint32_t module_idx, instance_idx, execution;
      NodeId m_node;
      std::string in_s, out_s, state_s;
      if (!(is >> module_idx >> instance_idx >> execution >> m_node >> in_s >>
            out_s >> state_s)) {
        return Status::ParseError("bad invocation record");
      }
      InvocationInfo info;
      LIPSTICK_ASSIGN_OR_RETURN(info.module_name,
                                strings.Resolve(module_idx));
      LIPSTICK_ASSIGN_OR_RETURN(info.instance_name,
                                strings.Resolve(instance_idx));
      info.execution = execution;
      info.m_node = m_node;
      LIPSTICK_ASSIGN_OR_RETURN(info.input_nodes, DecodeIdList(in_s));
      LIPSTICK_ASSIGN_OR_RETURN(info.output_nodes, DecodeIdList(out_s));
      LIPSTICK_ASSIGN_OR_RETURN(info.state_nodes, DecodeIdList(state_s));
      graph.RestoreInvocation(std::move(info));
    } else {
      return Status::ParseError(StrCat("unknown record tag: ", tag));
    }
  }
  if (tag != "end") {
    return Status::ParseError("truncated graph file: missing end marker");
  }
  LIPSTICK_RETURN_IF_ERROR(CheckLoadedRefs(graph));
  return graph;
}

// Loader for the legacy v1 format (payload and invocation names written
// inline per record). Kept so graphs saved by older builds still load.
Result<ProvenanceGraph> LoadGraphV1(std::istream& is) {
  std::string tag;
  size_t num_shards = 0;
  if (!(is >> tag >> num_shards) || tag != "shards" || num_shards == 0 ||
      num_shards > kMaxShards) {
    return Status::ParseError("bad shard count");
  }

  ProvenanceGraph graph;
  std::vector<ShardWriter> writers;
  writers.push_back(graph.writer());
  for (size_t s = 1; s < num_shards; ++s) writers.push_back(graph.AddShard());

  while (is >> tag) {
    if (tag == "end") break;
    if (tag == "n") {
      NodeId id;
      int label, role, vflag, alive;
      uint32_t invocation;
      std::string parents_s, payload_s, value_s;
      if (!(is >> id >> label >> role >> vflag >> alive >> invocation >>
            parents_s >> payload_s >> value_s)) {
        return Status::ParseError("bad node record");
      }
      if (label < 0 || label > static_cast<int>(NodeLabel::kZoomedModule) ||
          role < 0 || role > static_cast<int>(NodeRole::kZoom)) {
        return Status::ParseError(
            StrCat("node ", id, " has out-of-range label/role"));
      }
      NodeRecord rec;
      rec.label = static_cast<NodeLabel>(label);
      rec.role = static_cast<NodeRole>(role);
      rec.is_value_node = vflag != 0;
      rec.alive = alive != 0;
      rec.invocation = invocation;
      LIPSTICK_ASSIGN_OR_RETURN(rec.parents, DecodeIdList(parents_s));
      LIPSTICK_ASSIGN_OR_RETURN(rec.payload, Unescape(payload_s));
      LIPSTICK_ASSIGN_OR_RETURN(rec.value, DecodeValue(value_s));
      uint32_t shard = NodeShard(id);
      if (shard >= writers.size()) {
        return Status::ParseError("node references unknown shard");
      }
      NodeId got = writers[shard].Restore(rec);
      if (got != id) {
        return Status::ParseError(
            StrCat("node id mismatch: expected ", id, " got ", got));
      }
    } else if (tag == "v") {
      std::string module_s, instance_s, in_s, out_s, state_s;
      uint32_t execution;
      NodeId m_node;
      if (!(is >> module_s >> instance_s >> execution >> m_node >> in_s >>
            out_s >> state_s)) {
        return Status::ParseError("bad invocation record");
      }
      InvocationInfo info;
      LIPSTICK_ASSIGN_OR_RETURN(std::string module, Unescape(module_s));
      LIPSTICK_ASSIGN_OR_RETURN(std::string instance, Unescape(instance_s));
      info.module_name = graph.InternString(module);
      info.instance_name = graph.InternString(instance);
      info.execution = execution;
      info.m_node = m_node;
      LIPSTICK_ASSIGN_OR_RETURN(info.input_nodes, DecodeIdList(in_s));
      LIPSTICK_ASSIGN_OR_RETURN(info.output_nodes, DecodeIdList(out_s));
      LIPSTICK_ASSIGN_OR_RETURN(info.state_nodes, DecodeIdList(state_s));
      graph.RestoreInvocation(std::move(info));
    } else {
      return Status::ParseError(StrCat("unknown record tag: ", tag));
    }
  }
  if (tag != "end") {
    return Status::ParseError("truncated graph file: missing end marker");
  }
  LIPSTICK_RETURN_IF_ERROR(CheckLoadedRefs(graph));
  return graph;
}

}  // namespace

Result<ProvenanceGraph> LoadGraph(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) {
    return Status::ParseError("bad graph file header");
  }
  if (header == "LIPSTICKGRAPH v2") return LoadGraphV2(is);
  if (header == "LIPSTICKGRAPH v1") return LoadGraphV1(is);
  return Status::ParseError("bad graph file header");
}

Result<ProvenanceGraph> LoadGraphFromFile(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return Status::IOError(
        StrCat(path, " is a directory, not a provenance graph file"));
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError(StrCat("cannot open ", path));
  }
  return LoadGraph(in);
}

}  // namespace lipstick

#ifndef LIPSTICK_PROVENANCE_DELETION_H_
#define LIPSTICK_PROVENANCE_DELETION_H_

#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick {

/// Deletion propagation (Definition 4.2): starting from the seed nodes,
/// repeatedly removes every node for which either
///   (1) all of its (originally existing) incoming edges were deleted, or
///   (2) it is labeled · or ⊗ and at least one incoming edge was deleted.
/// Nodes with no incoming edges (tokens, module invocations) survive unless
/// they are seeds — matching the paper's Example 4.4, where deleting the
/// bid request erases everything except state tuples and invocations.
///
/// Returns the full set of deleted nodes (including the seeds). Fails with
/// kInvalidArgument if the graph is not sealed.
Result<std::unordered_set<NodeId>> ComputeDeletionSet(
    const ProvenanceGraph& graph, const std::vector<NodeId>& seeds);
Result<std::unordered_set<NodeId>> ComputeDeletionSet(
    const GraphSnapshot& snap, const std::vector<NodeId>& seeds);

/// Applies ComputeDeletionSet and materializes it: deleted nodes are marked
/// dead and the graph is re-sealed. Returns the number of deleted nodes.
/// Fails with kInvalidArgument if the graph is not sealed.
Result<size_t> PropagateDeletion(ProvenanceGraph* graph, NodeId seed);

/// Dependency query (Section 4.3): does the existence of `target` depend on
/// the existence of `source`? Answered by checking whether `target` is
/// deleted when the deletion of `source` is propagated. Non-mutating.
/// Fails with kInvalidArgument if the graph is not sealed.
Result<bool> DependsOn(const ProvenanceGraph& graph, NodeId target,
                       NodeId source);
Result<bool> DependsOn(const GraphSnapshot& snap, NodeId target,
                       NodeId source);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_DELETION_H_

#ifndef LIPSTICK_PROVENANCE_VIEW_H_
#define LIPSTICK_PROVENANCE_VIEW_H_

#include <array>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "provenance/snapshot.h"

namespace lipstick {

/// A lazy result of a graph-transforming query (ZoomOut, subgraph,
/// restrict, deletion propagation): a node mask over an immutable
/// GraphSnapshot plus, for zoom, synthetic collapsed module nodes and
/// parent rewirings. Nothing is copied or mutated when a view is built —
/// the view materializes into a standalone ProvenanceGraph only on export,
/// and materialization is byte-identical (provio v2) to what the eager,
/// mutating operator produces.
///
/// Views compose: the plan executor (provenance/exec.h) starts from
/// MakeIdentity() and chains ApplyZoomOut / ApplySubgraph / ApplyRestrict
/// / ApplyDeleteProp on one view, so a whole pipeline runs against a
/// single mask with no intermediate materialization ("mask fusion").
/// Applying stage k over the composed state is equivalent to materializing
/// after stage k-1 and running stage k eagerly — the plan-equivalence
/// suite (tests/plan_test.cc) checks this byte-for-byte.
///
/// Thread-safety: composition (the Apply* methods) is single-threaded;
/// once composed, a GraphView is immutable and any number of threads may
/// read or Materialize() one view concurrently, under the same contract as
/// the snapshot it was built from.
class GraphView {
 public:
  /// A collapsed module p-node that exists only in the view. Its id
  /// (SyntheticId) continues shard 0's index space, exactly where the
  /// eager path's writer would have appended it.
  struct SyntheticNode {
    std::string module;            // payload of the zoom node
    uint32_t invocation = 0;       // owning invocation id
    NodeId m_node = kInvalidNode;  // the invocation's "m" node
    std::vector<NodeId> parents;   // the invocation's live input nodes
  };

  /// Node predicate over the facts a restrict stage can see. Synthetic
  /// zoom nodes evaluate as (kZoomedModule, kZoom, module-name).
  using FactPredicate =
      std::function<bool(NodeLabel, NodeRole, std::string_view)>;

  GraphView(GraphView&&) = default;
  GraphView& operator=(GraphView&&) = default;

  /// The all-visible view of a snapshot: the Scan leaf every composed plan
  /// starts from. Fails with kInvalidArgument on an unsealed graph.
  static Result<GraphView> MakeIdentity(const GraphSnapshot& snap);

  /// Deep copy (mask, synthetics, rewirings). The cacheable-subplan path
  /// clones a cached prefix view before extending it with further stages.
  GraphView Clone() const;

  const GraphSnapshot& snapshot() const { return *snap_; }

  /// True iff underlying node `id` is alive under this view. Synthetic ids
  /// are out of the snapshot's range and always report false here; they are
  /// enumerated separately via synthetic_nodes().
  bool Visible(NodeId id) const {
    return snap_->Contains(id) && mask_->Test(id) == keep_mode_;
  }

  /// Visibility across both node populations: underlying nodes by mask,
  /// synthetic nodes by their alive flag.
  bool VisibleOrSynthetic(NodeId id) const {
    if (IsSynthetic(id)) return syn_alive_[SyntheticIndex(id)] != 0;
    return Visible(id);
  }

  /// Visible underlying nodes plus alive synthetic nodes.
  size_t num_visible() const {
    return num_visible_underlying_ + num_syn_alive_;
  }
  size_t num_synthetic() const { return synthetic_.size(); }
  const std::vector<SyntheticNode>& synthetic_nodes() const {
    return synthetic_;
  }
  NodeId SyntheticId(size_t k) const { return MakeNodeId(0, base0_ + k); }
  /// True iff `id` names one of this view's synthetic nodes.
  bool IsSynthetic(NodeId id) const {
    return NodeShard(id) == 0 && NodeIndex(id) >= base0_ &&
           NodeIndex(id) < base0_ + synthetic_.size();
  }
  size_t SyntheticIndex(NodeId id) const { return NodeIndex(id) - base0_; }
  /// Liveness of synthetic node `k` (a later pipeline stage may hide a
  /// zoom node created by an earlier one).
  bool SyntheticAlive(size_t k) const { return syn_alive_[k] != 0; }

  /// Parent list of a node under the view: synthetic nodes resolve to
  /// their input nodes, rewired module outputs to {zoom node, m node},
  /// everything else to the snapshot's parents. Callers filter for
  /// visibility themselves, as with ProvenanceGraph::ParentsOf.
  std::span<const NodeId> ParentsOf(NodeId id) const {
    if (IsSynthetic(id)) {
      return synthetic_[SyntheticIndex(id)].parents;
    }
    auto it = overrides_.find(id);
    if (it != overrides_.end()) {
      return std::span<const NodeId>(it->second.data(), it->second.size());
    }
    return snap_->ParentsOf(id);
  }

  /// The zoom rewirings: module output -> {zoom node, m node}.
  const std::unordered_map<NodeId, std::array<NodeId, 2>>& parent_overrides()
      const {
    return overrides_;
  }

  /// Visible underlying nodes as a set (synthetics excluded) — the shape
  /// the eager set-returning queries expose.
  std::unordered_set<NodeId> VisibleSet() const;

  /// Every visible node in materialization order: shard 0's originals,
  /// then the alive synthetic zoom nodes, then the remaining shards. `fn`
  /// is called as fn(NodeId, const SyntheticNode*) with null for underlying
  /// nodes. This is exactly ForEachAliveNode order on the materialized
  /// graph, which keeps lazy exports byte-identical to eager ones.
  template <typename Fn>
  void ForEachVisibleNode(Fn&& fn) const {
    const SyntheticNode* none = nullptr;
    for (uint64_t i = 0; i < base0_; ++i) {
      NodeId id = MakeNodeId(0, i);
      if (Visible(id)) fn(id, none);
    }
    for (size_t k = 0; k < synthetic_.size(); ++k) {
      if (syn_alive_[k]) fn(SyntheticId(k), &synthetic_[k]);
    }
    for (uint32_t s = 1; s < snap_->num_shards(); ++s) {
      for (uint64_t i = 0; i < snap_->ShardSize(s); ++i) {
        NodeId id = MakeNodeId(s, i);
        if (Visible(id)) fn(id, none);
      }
    }
  }

  /// Extra child adjacency a composed view carries on top of the
  /// snapshot's CSR: edges into rewired module outputs and edges touching
  /// synthetic zoom nodes. Built on demand by the stages/terminals that
  /// traverse downward; see ForEachChild.
  using ChildOverlay = std::unordered_map<NodeId, std::vector<NodeId>>;
  ChildOverlay BuildChildOverlay() const;

  /// Visible children of `id` under the view: the snapshot's CSR edges
  /// minus edges into rewired outputs (their parents changed), plus the
  /// overlay's synthetic/rewired edges. Duplicate edges are preserved,
  /// like the CSR itself.
  template <typename Fn>
  void ForEachChild(NodeId id, const ChildOverlay& overlay, Fn&& fn) const {
    if (!IsSynthetic(id)) {
      for (NodeId c : snap_->ChildrenOf(id)) {
        if (Visible(c) && overrides_.find(c) == overrides_.end()) fn(c);
      }
    }
    auto it = overlay.find(id);
    if (it != overlay.end()) {
      for (NodeId c : it->second) fn(c);
    }
  }

  /// ------------------------------------------------------------------
  /// Composition stages. Hide-mode views only (MakeIdentity / ZoomOutView
  /// produce those); each stage narrows visibility in place. Equivalent to
  /// materializing first and running the eager operator on the result.
  /// ------------------------------------------------------------------

  /// Collapses every named module (Definition 4.1) over the current
  /// visibility. Duplicate names collapse once. Fails with kNotFound when
  /// the graph holds no live invocation of a module.
  Status ApplyZoomOut(const std::vector<std::string>& modules,
                      int num_threads);

  /// Restricts visibility to the reachability neighborhood of `roots`:
  /// ancestors (`up`), descendants (`down`), plus co-parents of
  /// descendants when both directions are on (the legacy subgraph query).
  /// Invisible roots contribute nothing, like the eager query on a dead
  /// node.
  Status ApplySubgraph(const std::vector<NodeId>& roots, bool up, bool down);

  /// Hides every visible node whose (label, role, payload) facts fail
  /// `pred`.
  Status ApplyRestrict(const FactPredicate& pred);

  /// Deletion propagation (Definition 4.2) from `seeds` over the view's
  /// adjacency; the deleted set becomes hidden. `*removed` receives the
  /// deleted-node count (seeds included).
  Status ApplyDeleteProp(const std::vector<NodeId>& seeds, size_t* removed);

  /// Builds a standalone graph equal to what the eager operator would have
  /// produced by mutation: same string pool, same node ids, same liveness,
  /// same (rewired) parents, sealed. Byte-identical under provio v2.
  Result<ProvenanceGraph> Materialize() const;

 private:
  friend Result<GraphView> ZoomOutView(const GraphSnapshot&,
                                       const std::set<std::string>&, int);
  friend Result<GraphView> SubgraphView(const GraphSnapshot&, NodeId, int);

  enum class Mode { kKeep, kHide };

  GraphView(const GraphSnapshot& snap, Mode mode)
      : snap_(&snap),
        keep_mode_(mode == Mode::kKeep),
        mask_(snap.AcquireVisited()),
        base0_(snap.ShardSize(0)) {}

  /// Appends a synthetic zoom node (alive).
  void PushSynthetic(SyntheticNode node) {
    synthetic_.push_back(std::move(node));
    syn_alive_.push_back(1);
    ++num_syn_alive_;
  }
  Status RequireHideMode(const char* op) const;

  const GraphSnapshot* snap_;
  // The mask is a leased bitmap: marked = kept (subgraph) or marked =
  // hidden (zoom / composed plans), so neither operator pays a full-graph
  // scan to build it.
  bool keep_mode_;
  VisitedLease mask_;
  size_t num_visible_underlying_ = 0;
  uint64_t base0_;  // shard 0 size; synthetic ids start here
  std::vector<SyntheticNode> synthetic_;
  std::vector<uint8_t> syn_alive_;  // parallel to synthetic_
  size_t num_syn_alive_ = 0;
  std::unordered_map<NodeId, std::array<NodeId, 2>> overrides_;
};

/// Lazy ZoomOut (Section 4.1) over a snapshot: plans the collapse of every
/// named module (via the same planner as the eager Zoomer) and returns a
/// view hiding the removed nodes, with one synthetic p-node per invocation
/// and module outputs rewired through it. The snapshot is not modified;
/// dropping the view is the (trivial) ZoomIn. Planning scans fan out over
/// `num_threads` workers. Fails with kNotFound if a module has no live
/// invocations.
Result<GraphView> ZoomOutView(const GraphSnapshot& snap,
                              const std::set<std::string>& module_names,
                              int num_threads = 1);

/// Lazy subgraph query (Section 5.1) over a snapshot: the view keeps the
/// node, its ancestors, descendants, and co-parents of descendants.
/// Materializing kills every other node, like restricting the eager graph
/// to the query result. Traversals parallelize over `num_threads`.
Result<GraphView> SubgraphView(const GraphSnapshot& snap, NodeId node,
                               int num_threads = 1);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_VIEW_H_

#include "provenance/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/provio.h"

namespace lipstick {

const char* FsyncPolicyToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kOnCommit:
      return "commit";
    case FsyncPolicy::kOnSavepoint:
      return "savepoint";
  }
  return "?";
}

namespace walfmt {

uint32_t Crc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

}  // namespace

uint8_t Cursor::U8() {
  if (end - p < 1) {
    ok = false;
    return 0;
  }
  return static_cast<uint8_t>(*p++);
}

uint32_t Cursor::U32() {
  if (end - p < 4) {
    ok = false;
    p = end;
    return 0;
  }
  uint32_t v = static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
               static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
               static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
               static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
  p += 4;
  return v;
}

uint64_t Cursor::U64() {
  uint64_t lo = U32();
  uint64_t hi = U32();
  return lo | hi << 32;
}

std::string_view Cursor::Bytes(size_t n) {
  if (static_cast<size_t>(end - p) < n) {
    ok = false;
    p = end;
    return {};
  }
  std::string_view s(p, n);
  p += n;
  return s;
}

void EncodeValue(std::string* out, const Value& v) {
  if (v.is_bool()) {
    PutU8(out, 'B');
    PutU8(out, v.bool_value() ? 1 : 0);
  } else if (v.is_int()) {
    PutU8(out, 'I');
    PutU64(out, static_cast<uint64_t>(v.int_value()));
  } else if (v.is_double()) {
    PutU8(out, 'D');
    uint64_t bits;
    double d = v.double_value();
    std::memcpy(&bits, &d, sizeof bits);
    PutU64(out, bits);
  } else if (v.is_string()) {
    const std::string& s = v.string_value();
    PutU8(out, 'S');
    PutU32(out, static_cast<uint32_t>(s.size()));
    out->append(s);
  } else {
    // Null, or a nested bag/tuple — nested values degrade to null exactly
    // like the provio text format.
    PutU8(out, 'N');
  }
}

Result<Value> DecodeValue(Cursor* c) {
  uint8_t tag = c->U8();
  switch (tag) {
    case 'N':
      return Value::Null();
    case 'B':
      return Value::Bool(c->U8() != 0);
    case 'I':
      return Value::Int(static_cast<int64_t>(c->U64()));
    case 'D': {
      uint64_t bits = c->U64();
      double d;
      std::memcpy(&d, &bits, sizeof d);
      return Value::Double(d);
    }
    case 'S': {
      uint32_t n = c->U32();
      std::string_view s = c->Bytes(n);
      if (!c->ok) break;
      return Value::String(std::string(s));
    }
    default:
      break;
  }
  return Status::ParseError(
      StrCat("wal: bad value tag ", static_cast<int>(tag)));
}

std::string SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%010llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string CheckpointFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt-%010llu.pg",
                static_cast<unsigned long long>(seq));
  return buf;
}

namespace {

bool ParseSeqName(std::string_view name, std::string_view prefix,
                  std::string_view suffix, uint64_t* seq) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

}  // namespace

bool ParseSegmentName(std::string_view name, uint64_t* seq) {
  return ParseSeqName(name, "wal-", ".log", seq);
}

bool ParseCheckpointName(std::string_view name, uint64_t* seq) {
  return ParseSeqName(name, "ckpt-", ".pg", seq);
}

SegmentScanner::SegmentScanner(std::string_view data) : data_(data) {
  if (data_.size() < kHeaderBytes) {
    header_status_ = Status::ParseError("wal: short segment header");
    torn_reason_ = "short header";
    return;
  }
  if (std::memcmp(data_.data(), kMagic, kMagicBytes) != 0) {
    header_status_ = Status::ParseError("wal: bad segment magic");
    torn_reason_ = "bad magic";
    return;
  }
  Cursor c(data_.substr(kMagicBytes, 12));
  uint32_t version = c.U32();
  sequence_ = c.U64();
  if (version != kVersion) {
    header_status_ =
        Status::ParseError(StrCat("wal: unsupported version ", version));
    torn_reason_ = "bad version";
    return;
  }
  offset_ = kHeaderBytes;
}

bool SegmentScanner::Next(Record* out) {
  if (!header_status_.ok()) return false;
  if (!torn_reason_.empty()) return false;
  if (offset_ == data_.size()) return false;  // clean end
  if (offset_ + kFrameBytes > data_.size()) {
    torn_reason_ = "short frame header";
    return false;
  }
  Cursor c(data_.substr(offset_, kFrameBytes));
  uint32_t len = c.U32();
  uint32_t crc = c.U32();
  if (len == 0 || len > kMaxRecordBytes) {
    torn_reason_ = "bad record length";
    return false;
  }
  if (offset_ + kFrameBytes + len > data_.size()) {
    torn_reason_ = "short record";
    return false;
  }
  const char* body = data_.data() + offset_ + kFrameBytes;
  if (Crc32(body, len) != crc) {
    torn_reason_ = "bad crc";
    return false;
  }
  out->type = static_cast<RecordType>(static_cast<uint8_t>(body[0]));
  out->payload = std::string_view(body + 1, len - 1);
  out->offset = offset_;
  offset_ += kFrameBytes + len;
  return true;
}

}  // namespace walfmt

namespace {

using walfmt::RecordType;

struct WalMetrics {
  obs::MetricId bytes;
  obs::MetricId records;
  obs::MetricId flushes;
  obs::MetricId fsyncs;
  obs::MetricId fsync_us;
  obs::MetricId checkpoints;
  obs::MetricId checkpoint_us;
  obs::MetricId errors;

  static const WalMetrics& Get() {
    static const WalMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      WalMetrics w;
      w.bytes = reg.RegisterCounter("wal.bytes_appended");
      w.records = reg.RegisterCounter("wal.records");
      w.flushes = reg.RegisterCounter("wal.flushes");
      w.fsyncs = reg.RegisterCounter("wal.fsyncs");
      w.fsync_us = reg.RegisterHistogram("wal.fsync_us");
      w.checkpoints = reg.RegisterCounter("wal.checkpoints");
      w.checkpoint_us = reg.RegisterHistogram("wal.checkpoint_us");
      w.errors = reg.RegisterCounter("wal.errors");
      return w;
    }();
    return m;
  }
};

/// Per-thread payload scratch: hooks fire from concurrent ShardWriters, and
/// serializing outside the log mutex keeps the critical section to a
/// buffer append.
std::string& Scratch() {
  thread_local std::string s;
  s.clear();
  return s;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

Status WriteFully(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrCat("wal: write failed: ", std::strerror(errno)));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(
        StrCat("wal: open for fsync failed: ", path, ": ",
               std::strerror(errno)));
  }
  Status st;
  if (::fsync(fd) != 0) {
    st = Status::IOError(
        StrCat("wal: fsync failed: ", path, ": ", std::strerror(errno)));
  }
  ::close(fd);
  return st;
}

/// Deterministic position derivation for injected corruption / torn
/// writes: splitmix64 of the log's record counter, so a given skip_hits
/// setting lands on a reproducible byte regardless of timing.
uint64_t MixPosition(uint64_t counter, uint64_t salt) {
  Rng rng(counter ^ salt);
  return rng.Next();
}

}  // namespace

// ---------------------------------------------------------------------------
// Wal: open / segment management
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const WalOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(
        StrCat("wal: cannot create log directory ", dir, ": ", ec.message()));
  }
  uint64_t max_seq = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    std::string name = entry.path().filename().string();
    if (walfmt::ParseSegmentName(name, &seq) ||
        walfmt::ParseCheckpointName(name, &seq)) {
      max_seq = std::max(max_seq, seq);
    }
  }
  if (ec) {
    return Status::IOError(
        StrCat("wal: cannot list log directory ", dir, ": ", ec.message()));
  }
  std::unique_ptr<Wal> wal(new Wal(dir, options));
  // Existing segments may have torn tails; never append to them. Start a
  // fresh segment after the highest sequence number ever used.
  LIPSTICK_RETURN_IF_ERROR(wal->OpenSegmentLocked(max_seq + 1));
  return wal;
}

Wal::~Wal() { (void)Close(); }

Status Wal::OpenSegmentLocked(uint64_t seq) {
  std::string name = walfmt::SegmentFileName(seq);
  std::string path = dir_ + "/" + name;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError(
        StrCat("wal: cannot create segment ", path, ": ",
               std::strerror(errno)));
  }
  std::string header;
  header.append(walfmt::kMagic, walfmt::kMagicBytes);
  PutU32(&header, walfmt::kVersion);
  PutU64(&header, seq);
  LIPSTICK_CHECK(header.size() == walfmt::kHeaderBytes,
                 "wal segment header size mismatch");
  Status st = WriteFully(fd, header.data(), header.size());
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  fd_ = fd;
  seq_ = seq;
  segment_name_ = std::move(name);
  segment_written_ = walfmt::kHeaderBytes;
  return Status::OK();
}

void Wal::MarkDeadLocked(Status why) {
  if (!status_.ok()) return;
  status_ = std::move(why);
  obs::MetricsRegistry::Global().CounterAdd(WalMetrics::Get().errors);
}

// ---------------------------------------------------------------------------
// Wal: record append + group commit
// ---------------------------------------------------------------------------

void Wal::AppendRecordLocked(RecordType type, std::string_view payload) {
  size_t len = payload.size() + 1;  // type byte + payload
  LIPSTICK_CHECK(len <= walfmt::kMaxRecordBytes, "wal record too large");
  size_t frame_at = buffer_.size();
  PutU32(&buffer_, static_cast<uint32_t>(len));
  PutU32(&buffer_, 0);  // CRC placeholder, patched below
  buffer_.push_back(static_cast<char>(type));
  buffer_.append(payload);
  uint32_t crc =
      walfmt::Crc32(buffer_.data() + frame_at + walfmt::kFrameBytes, len);
  char crc_bytes[4] = {
      static_cast<char>(crc), static_cast<char>(crc >> 8),
      static_cast<char>(crc >> 16), static_cast<char>(crc >> 24)};
  std::memcpy(&buffer_[frame_at + 4], crc_bytes, 4);

  uint64_t framed = walfmt::kFrameBytes + len;
  bytes_appended_ += framed;
  bytes_since_checkpoint_ += framed;
  ++records_appended_;
  if (obs::MetricsRegistry::Enabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.CounterAdd(WalMetrics::Get().bytes, framed);
    reg.CounterAdd(WalMetrics::Get().records);
  }
}

void Wal::AppendRecord(RecordType type, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || !status_.ok()) return;
  AppendRecordLocked(type, payload);
  if (buffer_.size() >= options_.buffer_bytes) (void)FlushLocked();
}

Status Wal::FlushLocked() {
  if (!status_.ok()) return status_;
  if (buffer_.empty()) return Status::OK();

  if (FaultInjector::Armed()) {
    // Silent media corruption: flip one byte of the outgoing batch and keep
    // going. Recovery must detect it via CRC, not via an error here.
    Status f = FaultInjector::Fire("wal.corrupt", segment_name_);
    if (!f.ok()) {
      size_t pos = MixPosition(records_appended_, 0xc0ffee) % buffer_.size();
      buffer_[pos] = static_cast<char>(buffer_[pos] ^ 0x40);
    }
    // Torn write: persist a prefix of the batch, then behave as if the
    // process crashed (the log goes dead, execution continues).
    f = FaultInjector::Fire("wal.short_write", segment_name_);
    if (!f.ok()) {
      size_t cut = MixPosition(bytes_appended_, 0x5eed) % buffer_.size();
      (void)WriteFully(fd_, buffer_.data(), cut);
      MarkDeadLocked(Status::IOError(
          StrCat("injected short write: ", cut, " of ", buffer_.size(),
                 " bytes reached ", segment_name_)));
      return status_;
    }
  }

  Status st = WriteFully(fd_, buffer_.data(), buffer_.size());
  if (!st.ok()) {
    MarkDeadLocked(std::move(st));
    return status_;
  }
  segment_written_ += buffer_.size();
  buffer_.clear();
  obs::MetricsRegistry::Global().CounterAdd(WalMetrics::Get().flushes);

  if (segment_written_ >= options_.segment_bytes) {
    // Roll to a new segment. Seal the outgoing one durably first (cheap:
    // once per segment_bytes) so a later checkpoint can safely delete it.
    if (options_.fsync != FsyncPolicy::kNever) {
      LIPSTICK_RETURN_IF_ERROR(SyncLocked());
    }
    ::close(fd_);
    fd_ = -1;
    st = OpenSegmentLocked(seq_ + 1);
    if (!st.ok()) MarkDeadLocked(std::move(st));
  }
  return status_;
}

Status Wal::SyncLocked() {
  LIPSTICK_RETURN_IF_ERROR(FlushLocked());
  if (FaultInjector::Armed()) {
    Status f = FaultInjector::Fire("wal.fsync", segment_name_);
    if (!f.ok()) {
      MarkDeadLocked(Status::IOError(
          StrCat("injected fsync failure on ", segment_name_)));
      return status_;
    }
  }
  WallTimer timer;
  if (::fsync(fd_) != 0) {
    MarkDeadLocked(Status::IOError(
        StrCat("wal: fsync failed: ", std::strerror(errno))));
    return status_;
  }
  if (obs::MetricsRegistry::Enabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.CounterAdd(WalMetrics::Get().fsyncs);
    reg.Observe(WalMetrics::Get().fsync_us, timer.ElapsedMicros());
  }
  return Status::OK();
}

Status Wal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status Wal::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

uint64_t Wal::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_appended_;
}

uint64_t Wal::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_appended_;
}

uint64_t Wal::checkpoints_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_;
}

// ---------------------------------------------------------------------------
// Wal: attach / durability boundaries
// ---------------------------------------------------------------------------

Status Wal::Attach(ProvenanceGraph* graph, uint32_t executions_run) {
  LIPSTICK_CHECK(graph != nullptr, "Wal::Attach: null graph");
  bool empty;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::Internal("wal: already closed");
    LIPSTICK_RETURN_IF_ERROR(status_);
    LIPSTICK_CHECK(graph_ == nullptr, "Wal::Attach: already attached");
    graph_ = graph;
    last_execution_ = executions_run;
    empty = graph->num_nodes() == 0 && graph->invocations().empty();
  }
  graph->AttachWalSink(this);
  if (!empty) {
    // The log alone must reproduce the graph: snapshot the pre-existing
    // state so replay never needs records we were not attached to see.
    return Checkpoint();
  }
  ProvenanceGraph::Savepoint extent = graph->TakeSavepoint();
  std::lock_guard<std::mutex> lock(mu_);
  AppendSavepointLocked(executions_run, extent);
  LIPSTICK_RETURN_IF_ERROR(FlushLocked());
  // The initial recovery boundary is always durable, whatever the policy:
  // a crash before the first savepoint must still find a valid log.
  return SyncLocked();
}

void Wal::Detach() {
  ProvenanceGraph* graph;
  {
    std::lock_guard<std::mutex> lock(mu_);
    graph = graph_;
    graph_ = nullptr;
  }
  if (graph != nullptr && graph->wal_sink() == this) {
    graph->AttachWalSink(nullptr);
  }
}

Status Wal::CommitInvocation(uint32_t invocation) {
  std::string& p = Scratch();
  PutU32(&p, invocation);
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::Internal("wal: closed");
  LIPSTICK_RETURN_IF_ERROR(status_);
  AppendRecordLocked(RecordType::kCommitInvocation, p);
  if (options_.fsync == FsyncPolicy::kOnCommit) {
    return SyncLocked();
  }
  if (buffer_.size() >= options_.buffer_bytes) return FlushLocked();
  return Status::OK();
}

void Wal::AppendSavepointLocked(uint32_t execution,
                                const ProvenanceGraph::Savepoint& extent) {
  std::string& p = Scratch();
  PutU32(&p, execution);
  PutU64(&p, extent.invocation_count);
  PutU32(&p, static_cast<uint32_t>(extent.shard_sizes.size()));
  for (size_t size : extent.shard_sizes) PutU64(&p, size);
  AppendRecordLocked(RecordType::kSavepoint, p);
}

Status Wal::MarkSavepoint(uint32_t execution) {
  ProvenanceGraph::Savepoint extent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::Internal("wal: closed");
    LIPSTICK_RETURN_IF_ERROR(status_);
    LIPSTICK_CHECK(graph_ != nullptr, "Wal::MarkSavepoint: not attached");
  }
  // Capture the extent outside mu_: the graph hooks take locks in the
  // order (graph lock -> mu_), and TakeSavepoint takes the invocations
  // lock, so taking it under mu_ would invert the order.
  extent = graph_->TakeSavepoint();
  std::lock_guard<std::mutex> lock(mu_);
  LIPSTICK_RETURN_IF_ERROR(status_);
  last_execution_ = execution;
  AppendSavepointLocked(execution, extent);
  LIPSTICK_RETURN_IF_ERROR(FlushLocked());
  if (options_.fsync != FsyncPolicy::kNever) return SyncLocked();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Wal: checkpointing
// ---------------------------------------------------------------------------

Status Wal::Checkpoint() {
  if (graph_ == nullptr) {
    return Status::Internal("wal: Checkpoint() before Attach()");
  }
  ProvenanceGraph::Savepoint extent = graph_->TakeSavepoint();
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::Internal("wal: closed");
  LIPSTICK_RETURN_IF_ERROR(status_);
  return CheckpointLocked(extent);
}

Status Wal::MaybeCheckpoint() {
  if (graph_ == nullptr || options_.checkpoint_bytes == 0) {
    return Status::OK();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || !status_.ok()) return status_;
    if (bytes_since_checkpoint_ < options_.checkpoint_bytes) {
      return Status::OK();
    }
  }
  return Checkpoint();
}

Status Wal::CheckpointLocked(const ProvenanceGraph::Savepoint& extent) {
  obs::ObsSpan span("wal", "checkpoint");
  WallTimer timer;
  LIPSTICK_RETURN_IF_ERROR(FlushLocked());

  uint64_t new_seq = seq_ + 1;
  std::string final_name = walfmt::CheckpointFileName(new_seq);
  std::string final_path = dir_ + "/" + final_name;
  std::string tmp_path = final_path + ".tmp";
  // Snapshot, make it durable, then atomically publish: a crash at any
  // point leaves either no ckpt-<new_seq> (recovery uses the previous
  // checkpoint + segments) or a complete one.
  Status st = SaveGraphToFile(*graph_, tmp_path);
  if (st.ok()) st = FsyncPath(tmp_path);
  if (st.ok() && std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    st = Status::IOError(StrCat("wal: cannot publish checkpoint ", final_path,
                                ": ", std::strerror(errno)));
  }
  if (st.ok()) st = FsyncPath(dir_);
  if (!st.ok()) {
    MarkDeadLocked(std::move(st));
    return status_;
  }

  // Roll to the segment the checkpoint corresponds to and seed it with a
  // savepoint of the snapshotted extent, so the new head is immediately
  // recoverable on its own.
  ::close(fd_);
  fd_ = -1;
  st = OpenSegmentLocked(new_seq);
  if (!st.ok()) {
    MarkDeadLocked(std::move(st));
    return status_;
  }
  AppendSavepointLocked(last_execution_, extent);
  LIPSTICK_RETURN_IF_ERROR(FlushLocked());
  LIPSTICK_RETURN_IF_ERROR(SyncLocked());

  // Everything before the checkpoint is superseded; reclaim it.
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t seq = 0;
    std::string name = entry.path().filename().string();
    if ((walfmt::ParseSegmentName(name, &seq) ||
         walfmt::ParseCheckpointName(name, &seq)) &&
        seq < new_seq) {
      fs::remove(entry.path(), ec);
    }
  }

  bytes_since_checkpoint_ = 0;
  ++checkpoints_;
  if (obs::MetricsRegistry::Enabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.CounterAdd(WalMetrics::Get().checkpoints);
    reg.Observe(WalMetrics::Get().checkpoint_us, timer.ElapsedMicros());
  }
  if (span.active()) span.Arg("seq", new_seq);
  return Status::OK();
}

Status Wal::Close() {
  Detach();
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return status_;
  closed_ = true;
  if (status_.ok()) {
    (void)FlushLocked();
    if (status_.ok() && options_.fsync != FsyncPolicy::kNever) {
      (void)SyncLocked();
    }
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return status_;
}

// ---------------------------------------------------------------------------
// Wal: GraphWalSink hooks
// ---------------------------------------------------------------------------

void Wal::OnIntern(StrId id, std::string_view s) {
  std::string& p = Scratch();
  PutU32(&p, id);
  PutU32(&p, static_cast<uint32_t>(s.size()));
  p.append(s);
  AppendRecord(RecordType::kIntern, p);
}

void Wal::OnNodeAppend(NodeId id, NodeLabel label, NodeRole role,
                       uint8_t flags, uint32_t invocation, StrId payload,
                       std::span<const NodeId> parents) {
  std::string& p = Scratch();
  PutU64(&p, id);
  PutU8(&p, static_cast<uint8_t>(label));
  PutU8(&p, static_cast<uint8_t>(role));
  PutU8(&p, flags);
  PutU32(&p, invocation);
  PutU32(&p, payload);
  PutU32(&p, static_cast<uint32_t>(parents.size()));
  for (NodeId parent : parents) PutU64(&p, parent);
  AppendRecord(RecordType::kNodeAppend, p);
}

void Wal::OnNodeValue(NodeId id, const Value& value) {
  std::string& p = Scratch();
  PutU64(&p, id);
  walfmt::EncodeValue(&p, value);
  AppendRecord(RecordType::kNodeValue, p);
}

void Wal::OnSetParents(NodeId id, std::span<const NodeId> parents) {
  std::string& p = Scratch();
  PutU64(&p, id);
  PutU32(&p, static_cast<uint32_t>(parents.size()));
  for (NodeId parent : parents) PutU64(&p, parent);
  AppendRecord(RecordType::kSetParents, p);
}

void Wal::OnSetAlive(NodeId id, bool alive) {
  std::string& p = Scratch();
  PutU64(&p, id);
  PutU8(&p, alive ? 1 : 0);
  AppendRecord(RecordType::kSetAlive, p);
}

void Wal::OnKillShardTail(uint32_t shard, uint64_t from) {
  std::string& p = Scratch();
  PutU32(&p, shard);
  PutU64(&p, from);
  AppendRecord(RecordType::kKillShardTail, p);
}

void Wal::OnBeginInvocation(uint32_t invocation, const InvocationInfo& info) {
  std::string& p = Scratch();
  PutU32(&p, invocation);
  PutU32(&p, info.module_name);
  PutU32(&p, info.instance_name);
  PutU32(&p, info.execution);
  PutU64(&p, info.m_node);
  AppendRecord(RecordType::kBeginInvocation, p);
}

void Wal::OnInvocationNode(uint32_t invocation, int kind, NodeId node) {
  std::string& p = Scratch();
  PutU32(&p, invocation);
  PutU8(&p, static_cast<uint8_t>(kind));
  PutU64(&p, node);
  AppendRecord(RecordType::kInvocationNode, p);
}

void Wal::OnAbortInvocation(uint32_t invocation) {
  std::string& p = Scratch();
  PutU32(&p, invocation);
  AppendRecord(RecordType::kAbortInvocation, p);
}

void Wal::OnTruncateInvocations(uint64_t count) {
  std::string& p = Scratch();
  PutU64(&p, count);
  AppendRecord(RecordType::kTruncateInvocations, p);
}

}  // namespace lipstick

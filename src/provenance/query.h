#ifndef LIPSTICK_PROVENANCE_QUERY_H_
#define LIPSTICK_PROVENANCE_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick {

/// A small ProQL-style query layer over provenance graphs (the paper
/// defers to ProQL [20] for graph querying; these primitives cover the
/// selections and reachability patterns used in its examples, composed
/// with the zoom / deletion transformations of Section 4).
///
/// Every query has a GraphSnapshot form — the unified read path — safe for
/// any number of concurrent callers over one snapshot; the ProvenanceGraph
/// forms capture a snapshot internally and delegate.

/// Predicate over nodes (views into the columnar storage).
using NodePredicate = std::function<bool(NodeId, const NodeView&)>;

/// Common predicate constructors.
NodePredicate ByLabel(NodeLabel label);
NodePredicate ByRole(NodeRole role);
/// Payload contains `substring` (token names, module names, agg ops...).
NodePredicate ByPayload(const std::string& substring);
/// Node belongs to an invocation of the given module name.
NodePredicate ByModule(const ProvenanceGraph& graph, std::string module);
NodePredicate ByModule(const GraphSnapshot& snap, std::string module);
NodePredicate And(NodePredicate a, NodePredicate b);
NodePredicate Or(NodePredicate a, NodePredicate b);
NodePredicate Not(NodePredicate p);

/// All alive nodes satisfying `pred`, in deterministic id order at any
/// thread count. The predicate must be thread-safe when `num_threads` > 1
/// (all the constructors above are).
std::vector<NodeId> FindNodes(const ProvenanceGraph& graph,
                              const NodePredicate& pred);
std::vector<NodeId> FindNodes(const GraphSnapshot& snap,
                              const NodePredicate& pred,
                              int num_threads = 1);

/// True if an alive directed path `from -> ... -> to` exists (derivation
/// order: edges point from inputs to results). Fails with kInvalidArgument
/// if the graph is not sealed.
Result<bool> PathExists(const ProvenanceGraph& graph, NodeId from, NodeId to);
Result<bool> PathExists(const GraphSnapshot& snap, NodeId from, NodeId to);

/// One shortest derivation path from `from` to `to` (node ids, inclusive),
/// or empty if none. Fails with kInvalidArgument if the graph is not sealed.
Result<std::vector<NodeId>> ShortestDerivationPath(
    const ProvenanceGraph& graph, NodeId from, NodeId to);
Result<std::vector<NodeId>> ShortestDerivationPath(const GraphSnapshot& snap,
                                                   NodeId from, NodeId to);

/// Set-dependency query (Section 4.3, "extended to sets of nodes"): does
/// the existence of `target` depend on the *joint* existence of `sources`,
/// i.e. is `target` deleted when all of `sources` are deleted together?
/// Fails with kInvalidArgument if the graph is not sealed.
Result<bool> DependsOnSet(const ProvenanceGraph& graph, NodeId target,
                          const std::vector<NodeId>& sources);
Result<bool> DependsOnSet(const GraphSnapshot& snap, NodeId target,
                          const std::vector<NodeId>& sources);

/// Summary statistics of the alive graph, for diagnostics and tests.
struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t tokens = 0;
  size_t invocations = 0;
  size_t max_fan_in = 0;   // largest parent count
  size_t max_fan_out = 0;  // largest child count (sealed graphs)
  size_t depth = 0;        // longest derivation path length (edges)
};
/// Fails with kInvalidArgument if the graph is not sealed.
Result<GraphStats> ComputeGraphStats(const ProvenanceGraph& graph);
Result<GraphStats> ComputeGraphStats(const GraphSnapshot& snap);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_QUERY_H_

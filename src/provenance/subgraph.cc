#include "provenance/subgraph.h"

#include <array>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/traverse.h"

namespace lipstick {

namespace {

/// Every alive node reachable from `start` (exclusive unless re-reached),
/// marked in `visited` and collected in unspecified order.
std::vector<NodeId> ReachFrom(const GraphSnapshot& snap, NodeId start,
                              TraverseDirection dir, int num_threads,
                              VisitedSet& visited) {
  std::array<NodeId, 1> seeds{start};
  return ParallelReach(snap, seeds, dir, num_threads, visited);
}

std::unordered_set<NodeId> ToSet(const std::vector<NodeId>& ids) {
  std::unordered_set<NodeId> set;
  set.reserve(ids.size());
  set.insert(ids.begin(), ids.end());
  return set;
}

}  // namespace

std::unordered_set<NodeId> Ancestors(const GraphSnapshot& snap, NodeId node) {
  VisitedLease visited = snap.AcquireVisited();
  return ToSet(
      ReachFrom(snap, node, TraverseDirection::kBackward, 1, *visited));
}

std::unordered_set<NodeId> Ancestors(const ProvenanceGraph& graph,
                                     NodeId node) {
  // Parent edges are always available, sealed or not.
  GraphSnapshot snap = GraphSnapshot::CaptureForParents(graph);
  return Ancestors(snap, node);
}

Result<std::unordered_set<NodeId>> Descendants(const GraphSnapshot& snap,
                                               NodeId node) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "descendant queries"));
  VisitedLease visited = snap.AcquireVisited();
  return ToSet(
      ReachFrom(snap, node, TraverseDirection::kForward, 1, *visited));
}

Result<std::unordered_set<NodeId>> Descendants(const ProvenanceGraph& graph,
                                               NodeId node) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "descendant queries"));
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  if (!snap.ok()) return snap.status();
  return Descendants(*snap, node);
}

Result<std::vector<NodeId>> SubgraphNodes(const GraphSnapshot& snap,
                                          NodeId node, int num_threads) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "subgraph queries"));
  obs::ObsSpan span("query", "subgraph");
  static const obs::MetricId kSubgraphUs =
      obs::MetricsRegistry::Global().RegisterHistogram("query.subgraph_us");
  obs::ScopedHistTimer obs_timer(kSubgraphUs);
  if (num_threads < 1) num_threads = 1;

  if (!snap.Contains(node)) return std::vector<NodeId>{};
  // One result bitmap accumulates ancestors, descendants, and siblings of
  // descendants.
  VisitedLease in_result = snap.AcquireVisited();
  std::vector<NodeId> result =
      ReachFrom(snap, node, TraverseDirection::kBackward, num_threads,
                *in_result);
  VisitedLease down_only = snap.AcquireVisited();
  std::vector<NodeId> down = ReachFrom(
      snap, node, TraverseDirection::kForward, num_threads, *down_only);
  if (num_threads <= 1) {
    for (NodeId d : down) {
      if (!in_result->TestAndSet(d)) result.push_back(d);
      // Siblings of descendants: every co-parent a descendant is derived
      // from.
      for (NodeId p : snap.ParentsOf(d)) {
        if (snap.Contains(p) && !in_result->TestAndSet(p)) {
          result.push_back(p);
        }
      }
    }
  } else {
    std::vector<std::vector<NodeId>> found(num_threads);
    ParallelFor(down.size(), num_threads,
                [&](size_t b, size_t e, int w) {
                  for (size_t i = b; i < e; ++i) {
                    NodeId d = down[i];
                    if (!in_result->TestAndSetAtomic(d)) {
                      found[w].push_back(d);
                    }
                    for (NodeId p : snap.ParentsOf(d)) {
                      if (snap.Contains(p) &&
                          !in_result->TestAndSetAtomic(p)) {
                        found[w].push_back(p);
                      }
                    }
                  }
                });
    for (const std::vector<NodeId>& v : found) {
      result.insert(result.end(), v.begin(), v.end());
    }
  }
  if (!in_result->TestAndSet(node)) result.push_back(node);
  span.Arg("result_nodes", static_cast<uint64_t>(result.size()));
  return result;
}

Result<std::unordered_set<NodeId>> SubgraphQuery(const GraphSnapshot& snap,
                                                 NodeId node,
                                                 int num_threads) {
  Result<std::vector<NodeId>> nodes = SubgraphNodes(snap, node, num_threads);
  if (!nodes.ok()) return nodes.status();
  return ToSet(*nodes);
}

Result<std::unordered_set<NodeId>> SubgraphQuery(const ProvenanceGraph& graph,
                                                 NodeId node) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "subgraph queries"));
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  if (!snap.ok()) return snap.status();
  return SubgraphQuery(*snap, node, 1);
}

}  // namespace lipstick

#include "provenance/subgraph.h"

#include <deque>

namespace lipstick {

namespace {

enum class Direction { kUp, kDown };

std::unordered_set<NodeId> Reach(const ProvenanceGraph& graph, NodeId start,
                                 Direction dir) {
  std::unordered_set<NodeId> seen;
  std::deque<NodeId> queue{start};
  while (!queue.empty()) {
    NodeId id = queue.front();
    queue.pop_front();
    const auto& next = dir == Direction::kUp ? graph.node(id).parents
                                             : graph.Children(id);
    for (NodeId n : next) {
      if (!graph.Contains(n)) continue;
      if (seen.insert(n).second) queue.push_back(n);
    }
  }
  return seen;
}

}  // namespace

std::unordered_set<NodeId> Ancestors(const ProvenanceGraph& graph,
                                     NodeId node) {
  return Reach(graph, node, Direction::kUp);
}

Result<std::unordered_set<NodeId>> Descendants(const ProvenanceGraph& graph,
                                               NodeId node) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "descendant queries"));
  return Reach(graph, node, Direction::kDown);
}

Result<std::unordered_set<NodeId>> SubgraphQuery(const ProvenanceGraph& graph,
                                                 NodeId node) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "subgraph queries"));
  if (!graph.Contains(node)) return std::unordered_set<NodeId>{};
  std::unordered_set<NodeId> result = Ancestors(graph, node);
  LIPSTICK_ASSIGN_OR_RETURN(std::unordered_set<NodeId> down,
                            Descendants(graph, node));
  // Siblings of descendants: every co-parent a descendant is derived from.
  for (NodeId d : down) {
    for (NodeId p : graph.node(d).parents) {
      if (graph.Contains(p)) result.insert(p);
    }
  }
  result.insert(down.begin(), down.end());
  result.insert(node);
  return result;
}

}  // namespace lipstick

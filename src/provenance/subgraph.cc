#include "provenance/subgraph.h"

#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lipstick {

namespace {

enum class Direction { kUp, kDown };

/// Per-shard visited bitmap. Traversals over the sealed columnar graph
/// are bound by set overhead, not edge chasing: a bit per node replaces
/// one heap allocation per unordered_set insert on the BFS hot path.
class VisitedMap {
 public:
  explicit VisitedMap(const ProvenanceGraph& graph) {
    bits_.resize(graph.num_shards());
    for (uint32_t s = 0; s < bits_.size(); ++s) {
      bits_[s].assign((graph.ShardSize(s) + 63) / 64, 0);
    }
  }

  /// Marks `id`; returns true if it was already marked.
  bool TestAndSet(NodeId id) {
    uint64_t& word = bits_[NodeShard(id)][NodeIndex(id) >> 6];
    uint64_t mask = 1ull << (NodeIndex(id) & 63);
    if (word & mask) return true;
    word |= mask;
    return false;
  }

 private:
  std::vector<std::vector<uint64_t>> bits_;
};

/// Appends to `out` every alive node reachable from `start` (exclusive,
/// unless re-reached through a cycle), marking them in `visited`.
void Reach(const ProvenanceGraph& graph, NodeId start, Direction dir,
           VisitedMap& visited, std::vector<NodeId>& out) {
  std::vector<NodeId> queue{start};
  while (!queue.empty()) {
    NodeId id = queue.back();
    queue.pop_back();
    std::span<const NodeId> next = dir == Direction::kUp
                                       ? graph.ParentsOf(id)
                                       : graph.ChildrenOf(id);
    for (NodeId n : next) {
      if (!graph.Contains(n)) continue;
      if (!visited.TestAndSet(n)) {
        out.push_back(n);
        queue.push_back(n);
      }
    }
  }
}

std::unordered_set<NodeId> ToSet(const std::vector<NodeId>& ids) {
  std::unordered_set<NodeId> set;
  set.reserve(ids.size());
  set.insert(ids.begin(), ids.end());
  return set;
}

}  // namespace

std::unordered_set<NodeId> Ancestors(const ProvenanceGraph& graph,
                                     NodeId node) {
  VisitedMap visited(graph);
  std::vector<NodeId> up;
  Reach(graph, node, Direction::kUp, visited, up);
  return ToSet(up);
}

Result<std::unordered_set<NodeId>> Descendants(const ProvenanceGraph& graph,
                                               NodeId node) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "descendant queries"));
  VisitedMap visited(graph);
  std::vector<NodeId> down;
  Reach(graph, node, Direction::kDown, visited, down);
  return ToSet(down);
}

Result<std::unordered_set<NodeId>> SubgraphQuery(const ProvenanceGraph& graph,
                                                 NodeId node) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "subgraph queries"));
  obs::ObsSpan span("query", "subgraph");
  static const obs::MetricId kSubgraphUs =
      obs::MetricsRegistry::Global().RegisterHistogram("query.subgraph_us");
  obs::ScopedHistTimer obs_timer(kSubgraphUs);

  if (!graph.Contains(node)) return std::unordered_set<NodeId>{};
  // One result bitmap accumulates ancestors, descendants, and siblings of
  // descendants; the unordered_set is materialized once, pre-sized.
  VisitedMap in_result(graph);
  std::vector<NodeId> result;
  Reach(graph, node, Direction::kUp, in_result, result);
  VisitedMap down_only(graph);
  std::vector<NodeId> down;
  Reach(graph, node, Direction::kDown, down_only, down);
  for (NodeId d : down) {
    if (!in_result.TestAndSet(d)) result.push_back(d);
    // Siblings of descendants: every co-parent a descendant is derived
    // from.
    for (NodeId p : graph.ParentsOf(d)) {
      if (graph.Contains(p) && !in_result.TestAndSet(p)) result.push_back(p);
    }
  }
  if (!in_result.TestAndSet(node)) result.push_back(node);
  span.Arg("result_nodes", static_cast<uint64_t>(result.size()));
  return ToSet(result);
}

}  // namespace lipstick

#ifndef LIPSTICK_PROVENANCE_ZOOM_H_
#define LIPSTICK_PROVENANCE_ZOOM_H_

#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick {

/// Identifies the nodes that belong to intermediate computations of any
/// invocation of `module_name`, by the path-based criterion of
/// Definition 4.1: v is intermediate iff there is a directed path to v from
/// an input, state, or intermediate node of such an invocation with no
/// output node on the path (v included). Used to cross-validate the
/// tag-based identification ZoomOut relies on. Fails with kInvalidArgument
/// if the graph is not sealed.
Result<std::unordered_set<NodeId>> IntermediateNodesByDefinition(
    const ProvenanceGraph& graph, const std::string& module_name);
Result<std::unordered_set<NodeId>> IntermediateNodesByDefinition(
    const GraphSnapshot& snap, const std::string& module_name);

namespace internal {

/// One invocation's share of a ZoomOut: the collapsed p-node to create and
/// the outputs to rewire through it.
struct ZoomInvocationPlan {
  uint32_t invocation = 0;
  NodeId m_node = kInvalidNode;
  std::vector<NodeId> zoom_parents;  // alive input nodes of the invocation
  std::vector<NodeId> outputs;       // alive output nodes to rewire
};

/// The full effect of collapsing one module, computed without mutating
/// anything. Shared by the eager Zoomer (which applies it to the graph)
/// and the lazy ZoomOutView (which keeps it as a view); computing both
/// from one planner keeps the two paths equivalent by construction.
struct ZoomPlan {
  std::vector<NodeId> removed;  // intermediates + state (+ base tokens)
  std::vector<ZoomInvocationPlan> invocations;
};

/// Plans ZoomOut(module) over the snapshot, per Definition 4.1 / the
/// ZoomOut steps of Section 4.1. Nodes already marked in `removed_so_far`
/// (by previously planned modules of the same zoom) are treated as dead;
/// this module's removals are added to the mark set and returned in
/// ZoomPlan::removed in ascending id order. Column scans fan out over the
/// traversal engine's work-stealing scan when `num_threads` > 1. Fails
/// with kNotFound when the graph holds no live invocation of `module`.
Result<ZoomPlan> PlanZoomOut(const GraphSnapshot& snap,
                             const std::string& module,
                             VisitedSet& removed_so_far, int num_threads);

}  // namespace internal

/// Implements the ZoomOut / ZoomIn graph transformations of Section 4.1.
///
/// ZoomOut(M) removes, for every invocation of every module named in M, all
/// intermediate-computation nodes and state nodes (plus state-base tokens
/// used only by those state nodes), then adds one module p-node per
/// invocation wired input-nodes -> module-node -> output-nodes. Because
/// invocations of a module may share state, ZoomOut always applies to all
/// invocations of a module, never a proper subset.
///
/// The removed structure is retained in this object (the "detail store") so
/// that ZoomIn is an exact inverse: ZoomIn(ZoomOut(G, M), M) == G.
///
/// This is the eager, mutating form; for concurrent read-only zooming over
/// one snapshot, see ZoomOutView (provenance/view.h).
class Zoomer {
 public:
  explicit Zoomer(ProvenanceGraph* graph) : graph_(graph) {}

  /// Collapses all invocations of the given module names. Modules already
  /// zoomed out are ignored. Re-seals the graph.
  Status ZoomOut(const std::set<std::string>& module_names);

  /// Restores all invocations of the given module names. It is an error to
  /// zoom in on a module that is not currently zoomed out.
  Status ZoomIn(const std::set<std::string>& module_names);

  /// Convenience: zoom out every module, producing the coarse-grained view.
  Status ZoomOutAll();

  bool IsZoomedOut(const std::string& module_name) const {
    return store_.count(module_name) > 0;
  }

  /// Worker count for the planning column scans (1 = sequential).
  void set_num_threads(int n) { num_threads_ = n < 1 ? 1 : n; }

 private:
  struct InvocationDetail {
    uint32_t invocation = 0;
    NodeId zoom_node = kInvalidNode;
    std::vector<NodeId> removed;  // intermediates + state (+ base tokens)
    // Original parent lists of the invocation's output nodes.
    std::vector<std::pair<NodeId, std::vector<NodeId>>> output_parents;
  };

  ProvenanceGraph* graph_;
  std::map<std::string, std::vector<InvocationDetail>> store_;
  int num_threads_ = 1;
};

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_ZOOM_H_

#ifndef LIPSTICK_PROVENANCE_DOT_H_
#define LIPSTICK_PROVENANCE_DOT_H_

#include <iosfwd>
#include <string>
#include <unordered_set>

#include "common/status.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"
#include "provenance/view.h"

namespace lipstick {

/// Options for Graphviz rendering of provenance graphs, in the visual
/// vocabulary of the paper's Figure 2: circles for p-nodes, boxes for
/// v-nodes, house shapes for module invocations, and per-invocation
/// clusters standing in for the shaded module regions.
struct DotOptions {
  /// Restrict the output to these nodes (empty = whole alive graph).
  std::unordered_set<NodeId> subset;
  /// Group nodes of each invocation into a cluster.
  bool cluster_by_invocation = true;
  /// Include node ids in labels (useful when debugging).
  bool show_ids = false;
};

/// Writes the graph in Graphviz DOT format. Labels are streamed straight
/// to `os` (no per-document string is built) with bounds-checked payload
/// resolution, so a corrupt .pg file renders as empty labels instead of
/// crashing. The snapshot form is the core; the graph form captures one
/// internally (parent edges only — works unsealed).
Status WriteDot(const GraphSnapshot& snap, std::ostream& os,
                const DotOptions& options = {});
Status WriteDot(const ProvenanceGraph& graph, std::ostream& os,
                const DotOptions& options = {});
/// Renders a lazy view without materializing it: byte-identical to
/// WriteDot(view.Materialize()) on the same options.
Status WriteDot(const GraphView& view, std::ostream& os,
                const DotOptions& options = {});
Status WriteDotToFile(const ProvenanceGraph& graph, const std::string& path,
                      const DotOptions& options = {});
Status WriteDotToFile(const GraphView& view, const std::string& path,
                      const DotOptions& options = {});

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_DOT_H_

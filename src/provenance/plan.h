#ifndef LIPSTICK_PROVENANCE_PLAN_H_
#define LIPSTICK_PROVENANCE_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"

namespace lipstick {

/// ----------------------------------------------------------------------
/// Relational-style plan IR over the provenance read path.
///
/// Every read query — the legacy one-shot operators (stats, find, expr,
/// depends, subgraph, zoomout) as well as the `|`-pipeline form
/// ("zoomout m1,m2 | subgraph 42 | stats") — parses into a Plan: a linear
/// chain of zero or more *view operators* (ZoomOut, Subgraph, Restrict,
/// DeleteProp), optionally closed by one *terminal* (Stats, Find,
/// SemiringEval/Expr, Depends). A chain ending in a view operator renders
/// that operator's summary line, matching the legacy output byte for byte.
///
/// Plans canonicalize to a stable string (Plan::Canonical) used as the
/// service cache key, so syntactically different but equivalent requests
/// ("zoomout b a" vs "zoomout a b") share one cache entry.
/// ----------------------------------------------------------------------

enum class PlanOpKind : uint8_t {
  kZoomOut,     // collapse modules (Definition 4.1)          [view]
  kSubgraph,    // restrict to a reachability neighborhood    [view]
  kRestrict,    // keep nodes matching a predicate            [view]
  kDeleteProp,  // deletion propagation from seeds (Def 4.2)  [view]
  kStats,       // graph summary statistics                   [terminal]
  kFind,        // enumerate nodes matching a predicate       [terminal]
  kExpr,        // semiring expression of one node            [terminal]
  kDepends,     // deletion-propagation dependency query      [terminal]
};

/// Subgraph traversal direction: the legacy query is kBoth (ancestors +
/// descendants + co-parents of descendants); kUp / kDown restrict to the
/// ancestor / descendant side.
enum class SubgraphDir : uint8_t { kBoth, kUp, kDown };

/// One conjunct of a node predicate (the `find`/`restrict` flag language).
struct PatternAtom {
  enum class Kind : uint8_t { kLabel, kRole, kPayload };
  Kind kind = Kind::kLabel;
  NodeLabel label = NodeLabel::kToken;
  NodeRole role = NodeRole::kIntermediate;
  std::string payload;  // substring match

  bool Matches(NodeLabel l, NodeRole r, std::string_view p) const;
  std::string Canonical() const;
};

/// Conjunction of atoms over (label, role, payload); empty matches all.
/// Atoms are kept sorted by canonical rendering — conjunction commutes, so
/// "--label token --payload x" and "--payload x --label token" canonicalize
/// (and cache) identically.
struct PlanPattern {
  std::vector<PatternAtom> atoms;

  bool Matches(NodeLabel l, NodeRole r, std::string_view payload) const;
  bool empty() const { return atoms.empty(); }
  std::string Canonical() const;
  void Normalize();  // sorts atoms into canonical order
};

struct PlanOp {
  PlanOpKind kind = PlanOpKind::kStats;

  // kZoomOut: module names, sorted, duplicates preserved (the legacy
  // summary reports the requested count; execution collapses the set).
  std::vector<std::string> modules;
  // kSubgraph roots / kDeleteProp seeds, sorted and deduplicated.
  std::vector<NodeId> nodes;
  SubgraphDir dir = SubgraphDir::kBoth;  // kSubgraph only
  PlanPattern pattern;                   // kFind / kRestrict
  NodeId target = kInvalidNode;          // kExpr node / kDepends target
  NodeId source = kInvalidNode;          // kDepends source

  bool IsViewOp() const {
    return kind == PlanOpKind::kZoomOut || kind == PlanOpKind::kSubgraph ||
           kind == PlanOpKind::kRestrict || kind == PlanOpKind::kDeleteProp;
  }
  std::string Canonical() const;
};

struct Plan {
  std::vector<PlanOp> ops;

  /// Leading view operators (all ops except an optional trailing terminal).
  size_t NumViewOps() const {
    return ops.empty() ? 0
                       : ops.size() - (ops.back().IsViewOp() ? 0 : 1);
  }
  bool HasTerminal() const {
    return !ops.empty() && !ops.back().IsViewOp();
  }
  /// Stable canonical rendering, e.g. "zoomout(a,b)|subgraph(42)|stats".
  std::string Canonical() const;
};

/// Parses the wire/CLI request (operation plus argument tokens) into a
/// Plan. Accepts the legacy single-op syntax with its exact error strings
/// ("unknown query operation '...'", "bad node id '...'", ...) and the
/// pipeline form, where stages are separated by '|' tokens (a '|' may be
/// glued to its neighbors: "zoomout a|stats" splits like "zoomout a | stats").
/// Argument tokens containing whitespace (e.g. a quoted --payload value)
/// are never re-split.
Result<Plan> ParsePlan(const std::string& op,
                       const std::vector<std::string>& args);

/// Parses a decimal node id ("bad node id '...'" on garbage). Shared by
/// the plan parser and the CLI's mutating delete path.
Result<NodeId> ParsePlanNodeId(const std::string& s);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_PLAN_H_

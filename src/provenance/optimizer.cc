#include "provenance/optimizer.h"

#include <utility>

#include "common/str_util.h"

namespace lipstick {

OptimizedPlan OptimizePlan(const Plan& plan) {
  OptimizedPlan out;
  // Pass 1: no-op elimination + restrict fusion over the view chain. The
  // final op renders the pipeline's summary, so it is never dropped.
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    const PlanOp& op = plan.ops[i];
    bool is_last = i + 1 == plan.ops.size();
    if (op.kind == PlanOpKind::kRestrict && op.pattern.empty() && !is_last) {
      out.rewrites.push_back(
          {"noop_elimination",
           "dropped restrict() with an empty predicate (matches all nodes)"});
      continue;
    }
    if (op.kind == PlanOpKind::kRestrict && !out.plan.ops.empty() &&
        out.plan.ops.back().kind == PlanOpKind::kRestrict) {
      PlanOp& prev = out.plan.ops.back();
      std::string a = prev.Canonical();
      std::string b = op.Canonical();
      prev.pattern.atoms.insert(prev.pattern.atoms.end(),
                                op.pattern.atoms.begin(),
                                op.pattern.atoms.end());
      prev.pattern.Normalize();
      out.rewrites.push_back(
          {"restrict_fusion",
           StrCat("merged ", a, "|", b, " into ", prev.Canonical())});
      continue;
    }
    out.plan.ops.push_back(op);
  }
  // Pass 2: execution-strategy annotations over the rewritten chain.
  size_t view_ops = out.plan.NumViewOps();
  if (view_ops >= 2) {
    out.rewrites.push_back(
        {"mask_fusion",
         StrCat(view_ops, " view stages fuse into one composed view "
                          "(no intermediate materialization)")});
  }
  if (out.plan.HasTerminal() && view_ops > 0 &&
      out.plan.ops.back().kind == PlanOpKind::kFind) {
    out.rewrites.push_back(
        {"predicate_pushdown",
         "find predicate evaluates inside the composed view's single "
         "visible-node enumeration"});
  }
  Plan prefix;
  for (size_t i = 0; i < view_ops; ++i) {
    prefix.ops.push_back(out.plan.ops[i]);
    out.view_prefixes.push_back(prefix.Canonical());
  }
  if (view_ops > 0) {
    out.rewrites.push_back(
        {"cache_split",
         StrCat(view_ops, " cacheable view prefix(es): ",
                Join(out.view_prefixes, " ; "))});
  }
  return out;
}

}  // namespace lipstick

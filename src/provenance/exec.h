#ifndef LIPSTICK_PROVENANCE_EXEC_H_
#define LIPSTICK_PROVENANCE_EXEC_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "provenance/optimizer.h"
#include "provenance/plan.h"
#include "provenance/snapshot.h"
#include "provenance/view.h"

namespace lipstick {

/// Thread-safe LRU cache of composed view masks, keyed by
/// (scope, canonical view-prefix). The optimizer publishes every view
/// prefix of a plan as a cacheable unit; a later plan sharing a prefix
/// clones the cached view and applies only its remaining stages. Entries
/// are immutable once inserted (readers Clone() concurrently).
class PlanViewCache {
 public:
  struct Entry {
    GraphView view;
    // DeleteProp count of the entry's last stage, so a fully-cached
    // "... | delete n" can still render its summary line.
    size_t last_stage_removed = 0;
    // Keeps the snapshot the view points into alive (e.g. the service's
    // LoadedGraph). May be null when the caller outlives the cache.
    std::shared_ptr<const void> pin;
  };

  /// `capacity` = max entries; 0 disables the cache entirely.
  explicit PlanViewCache(size_t capacity) : capacity_(capacity) {}

  /// Probes `prefixes` (canonical strings, longest last) from longest to
  /// shortest and returns the first entry found, storing its index in
  /// `*index`. Counts exactly one hit (something matched) or one miss per
  /// call, so the counters track plan executions, not probe fan-out.
  std::shared_ptr<const Entry> GetLongestPrefix(
      const std::string& scope, const std::vector<std::string>& prefixes,
      size_t* index);

  /// Inserts (or refreshes) the entry for one view prefix, evicting the
  /// least recently used entry when over capacity. No-op at capacity 0.
  void Put(const std::string& scope, const std::string& prefix, Entry entry);

  size_t entries() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  static std::string Key(const std::string& scope, const std::string& prefix);

  struct Slot {
    std::string key;
    std::shared_ptr<const Entry> entry;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Slot> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Slot>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

struct ExecOptions {
  int threads = 1;
  // When set, composed view prefixes are reused and published under
  // `scope` (the caller namespaces by graph identity, e.g. name + epoch).
  PlanViewCache* cache = nullptr;
  std::string scope;
  // Lifetime pin stored into cache entries; see PlanViewCache::Entry.
  std::shared_ptr<const void> pin;
};

/// Runs an optimized plan over the snapshot and renders its output — the
/// single rendering path behind local one-shot queries, `query --batch`,
/// and the serve daemon, so remote responses are byte-identical to local
/// output. View stages execute against one composed GraphView (mask
/// fusion); plans without view operators render straight off the
/// snapshot. Safe to call concurrently from many threads on one snapshot.
Result<std::string> ExecutePlan(const GraphSnapshot& snap,
                                const OptimizedPlan& opt,
                                const ExecOptions& opts = {});

/// Reference executor: materializes a standalone graph between every view
/// stage, then runs the terminal with the legacy single-op renderers. The
/// plan-equivalence suite asserts ExecutePlan == ExecutePlanNaive byte for
/// byte; bench_pipeline measures the gap.
Result<std::string> ExecutePlanNaive(const GraphSnapshot& snap,
                                     const Plan& plan, int threads = 1);

/// Composes the plan's view stages (ignoring any terminal) into one view,
/// for export paths (`--out` dot / provio rendering of a pipeline result).
Result<GraphView> BuildPlanView(const GraphSnapshot& snap, const Plan& plan,
                                int threads = 1);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_EXEC_H_

#include "provenance/deletion.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lipstick {

Result<std::unordered_set<NodeId>> ComputeDeletionSet(
    const GraphSnapshot& snap, const std::vector<NodeId>& seeds) {
  LIPSTICK_RETURN_IF_ERROR(
      RequireSealed(snap.graph(), "deletion propagation"));
  // Not a plain reachability: a node may be inspected several times before
  // its lost-edge count crosses the deletion threshold, so the propagation
  // keeps its own worklist on top of the snapshot's pooled bitmap (which
  // replaces the unordered_set membership checks of the old path).
  VisitedLease deleted = snap.AcquireVisited();
  std::vector<NodeId> order;  // deleted nodes, also the BFS worklist
  std::unordered_map<NodeId, size_t> lost_edges;

  for (NodeId s : seeds) {
    if (snap.Contains(s) && !deleted->TestAndSet(s)) order.push_back(s);
  }

  auto alive_parent_count = [&snap](NodeId id) {
    size_t n = 0;
    for (NodeId p : snap.ParentsOf(id)) n += snap.Contains(p) ? 1 : 0;
    return n;
  };

  size_t head = 0;
  while (head < order.size()) {
    NodeId dead = order[head++];
    for (NodeId child : snap.ChildrenOf(dead)) {
      if (deleted->Test(child)) continue;
      size_t lost = ++lost_edges[child];
      NodeLabel cl = snap.node(child).label();
      bool joint = cl == NodeLabel::kTimes || cl == NodeLabel::kTensor;
      if (joint || lost >= alive_parent_count(child)) {
        deleted->Set(child);
        order.push_back(child);
      }
    }
  }
  return std::unordered_set<NodeId>(order.begin(), order.end());
}

Result<std::unordered_set<NodeId>> ComputeDeletionSet(
    const ProvenanceGraph& graph, const std::vector<NodeId>& seeds) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "deletion propagation"));
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  if (!snap.ok()) return snap.status();
  return ComputeDeletionSet(*snap, seeds);
}

Result<size_t> PropagateDeletion(ProvenanceGraph* graph, NodeId seed) {
  obs::ObsSpan span("query", "delete");
  static const obs::MetricId kDeleteUs =
      obs::MetricsRegistry::Global().RegisterHistogram("query.delete_us");
  obs::ScopedHistTimer obs_timer(kDeleteUs);

  LIPSTICK_ASSIGN_OR_RETURN(std::unordered_set<NodeId> dead,
                            ComputeDeletionSet(*graph, {seed}));
  for (NodeId id : dead) graph->SetAlive(id, false);
  graph->Seal();
  span.Arg("deleted_nodes", static_cast<uint64_t>(dead.size()));
  return dead.size();
}

Result<bool> DependsOn(const GraphSnapshot& snap, NodeId target,
                       NodeId source) {
  if (!snap.Contains(target) || !snap.Contains(source)) return false;
  if (target == source) return true;
  LIPSTICK_ASSIGN_OR_RETURN(std::unordered_set<NodeId> deleted,
                            ComputeDeletionSet(snap, {source}));
  return deleted.count(target) > 0;
}

Result<bool> DependsOn(const ProvenanceGraph& graph, NodeId target,
                       NodeId source) {
  if (!graph.Contains(target) || !graph.Contains(source)) return false;
  if (target == source) return true;
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "deletion propagation"));
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  if (!snap.ok()) return snap.status();
  return DependsOn(*snap, target, source);
}

}  // namespace lipstick

#include "provenance/deletion.h"

#include <deque>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lipstick {

Result<std::unordered_set<NodeId>> ComputeDeletionSet(
    const ProvenanceGraph& graph, const std::vector<NodeId>& seeds) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "deletion propagation"));
  std::unordered_set<NodeId> deleted;
  std::unordered_map<NodeId, size_t> lost_edges;
  std::deque<NodeId> queue;

  for (NodeId s : seeds) {
    if (graph.Contains(s) && deleted.insert(s).second) queue.push_back(s);
  }

  auto alive_parent_count = [&graph](NodeId id) {
    size_t n = 0;
    for (NodeId p : graph.ParentsOf(id)) n += graph.Contains(p) ? 1 : 0;
    return n;
  };

  while (!queue.empty()) {
    NodeId dead = queue.front();
    queue.pop_front();
    for (NodeId child : graph.ChildrenOf(dead)) {
      if (deleted.count(child)) continue;
      size_t lost = ++lost_edges[child];
      NodeLabel cl = graph.node(child).label();
      bool joint = cl == NodeLabel::kTimes || cl == NodeLabel::kTensor;
      if (joint || lost >= alive_parent_count(child)) {
        deleted.insert(child);
        queue.push_back(child);
      }
    }
  }
  return deleted;
}

Result<size_t> PropagateDeletion(ProvenanceGraph* graph, NodeId seed) {
  obs::ObsSpan span("query", "delete");
  static const obs::MetricId kDeleteUs =
      obs::MetricsRegistry::Global().RegisterHistogram("query.delete_us");
  obs::ScopedHistTimer obs_timer(kDeleteUs);

  LIPSTICK_ASSIGN_OR_RETURN(std::unordered_set<NodeId> dead,
                            ComputeDeletionSet(*graph, {seed}));
  for (NodeId id : dead) graph->SetAlive(id, false);
  graph->Seal();
  span.Arg("deleted_nodes", static_cast<uint64_t>(dead.size()));
  return dead.size();
}

Result<bool> DependsOn(const ProvenanceGraph& graph, NodeId target,
                       NodeId source) {
  if (!graph.Contains(target) || !graph.Contains(source)) return false;
  if (target == source) return true;
  LIPSTICK_ASSIGN_OR_RETURN(std::unordered_set<NodeId> deleted,
                            ComputeDeletionSet(graph, {source}));
  return deleted.count(target) > 0;
}

}  // namespace lipstick

#include "provenance/string_pool.h"

#include <cstring>

#include "common/check.h"

namespace lipstick {

StrId StringPool::Intern(std::string_view s) {
  if (s.empty()) return kEmptyStr;
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  LIPSTICK_CHECK(spans_.size() < kStrNotFound, "string pool exhausted");
  const char* stored = Store(s);
  StrId id = static_cast<StrId>(spans_.size());
  spans_.push_back({stored, static_cast<uint32_t>(s.size())});
  index_.emplace(std::string_view(stored, s.size()), id);
  if (observer_ != nullptr) {
    observer_(observer_ctx_, id, std::string_view(stored, s.size()));
  }
  return id;
}

StrId StringPool::Find(std::string_view s) const {
  if (s.empty()) return kEmptyStr;
  std::lock_guard<std::mutex> lock(*mu_);
  auto it = index_.find(s);
  return it == index_.end() ? kStrNotFound : it->second;
}

const char* StringPool::Store(std::string_view s) {
  if (s.size() > tail_left_) {
    if (s.size() >= kChunkSize) {
      // Oversized string: dedicated chunk, current tail chunk untouched.
      chunks_.push_back(std::make_unique<char[]>(s.size()));
      arena_bytes_ += s.size();
      char* dst = chunks_.back().get();
      std::memcpy(dst, s.data(), s.size());
      return dst;
    }
    chunks_.push_back(std::make_unique<char[]>(kChunkSize));
    arena_bytes_ += kChunkSize;
    tail_ = chunks_.back().get();
    tail_left_ = kChunkSize;
  }
  char* dst = tail_;
  std::memcpy(dst, s.data(), s.size());
  tail_ += s.size();
  tail_left_ -= s.size();
  return dst;
}

size_t StringPool::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return arena_bytes_ + spans_.capacity() * sizeof(Span) +
         index_.size() * (sizeof(std::string_view) + sizeof(StrId) +
                          2 * sizeof(void*));  // approx. bucket overhead
}

}  // namespace lipstick

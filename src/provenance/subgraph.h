#ifndef LIPSTICK_PROVENANCE_SUBGRAPH_H_
#define LIPSTICK_PROVENANCE_SUBGRAPH_H_

#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick {

/// All transitive ancestors of `node` (derivation inputs), excluding itself.
/// Works on sealed and unsealed graphs (parent edges are always available).
std::unordered_set<NodeId> Ancestors(const ProvenanceGraph& graph,
                                     NodeId node);
std::unordered_set<NodeId> Ancestors(const GraphSnapshot& snap, NodeId node);

/// All transitive descendants of `node` (derived data), excluding itself.
/// Fails with kInvalidArgument if the graph is not sealed.
Result<std::unordered_set<NodeId>> Descendants(const ProvenanceGraph& graph,
                                               NodeId node);
Result<std::unordered_set<NodeId>> Descendants(const GraphSnapshot& snap,
                                               NodeId node);

/// Core of the subgraph query: the member nodes (including `node` itself)
/// as a vector in unspecified order. The up/down reachability phases run on
/// the parallel traversal engine when `num_threads` > 1; the member *set*
/// is identical at any thread count. Empty if `node` is not alive.
Result<std::vector<NodeId>> SubgraphNodes(const GraphSnapshot& snap,
                                          NodeId node, int num_threads = 1);

/// The subgraph query of Section 5.1: given a node, returns the node itself,
/// all its ancestors and descendants, and all siblings of its descendants
/// (the co-parents needed to re-derive each descendant). Fails with
/// kInvalidArgument if the graph is not sealed.
Result<std::unordered_set<NodeId>> SubgraphQuery(const ProvenanceGraph& graph,
                                                 NodeId node);
Result<std::unordered_set<NodeId>> SubgraphQuery(const GraphSnapshot& snap,
                                                 NodeId node,
                                                 int num_threads = 1);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_SUBGRAPH_H_

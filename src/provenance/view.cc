#include "provenance/view.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/subgraph.h"
#include "provenance/zoom.h"

namespace lipstick {

std::unordered_set<NodeId> GraphView::VisibleSet() const {
  std::unordered_set<NodeId> set;
  set.reserve(num_visible_underlying_);
  for (uint32_t s = 0; s < snap_->num_shards(); ++s) {
    for (uint64_t i = 0; i < snap_->ShardSize(s); ++i) {
      NodeId id = MakeNodeId(s, i);
      if (Visible(id)) set.insert(id);
    }
  }
  return set;
}

Result<ProvenanceGraph> GraphView::Materialize() const {
  obs::ObsSpan span("query", "view_materialize");
  const GraphSnapshot& snap = *snap_;
  ProvenanceGraph out;
  // Reproduce the source pool id-for-id, so every payload and invocation
  // name in the copied records resolves to the same StrId.
  const StringPool& pool = snap.strings();
  for (StrId i = 1; i < pool.size(); ++i) {
    out.InternString(pool.Get(i));
  }
  std::vector<ShardWriter> writers;
  writers.push_back(out.writer());
  for (uint32_t s = 1; s < snap.num_shards(); ++s) {
    writers.push_back(out.AddShard());
  }
  // Every underlying node is restored at its original (shard, index) with
  // the view's liveness and parents; hidden and originally-dead nodes stay
  // in place as dead records, exactly as the eager mutating operators
  // leave them.
  NodeRecord rec;
  for (uint32_t s = 0; s < snap.num_shards(); ++s) {
    for (uint64_t i = 0; i < snap.ShardSize(s); ++i) {
      NodeId id = MakeNodeId(s, i);
      NodeView n = snap.node(id);
      rec.label = n.label();
      rec.role = n.role();
      rec.is_value_node = n.is_value_node();
      rec.alive = Visible(id);
      rec.invocation = n.invocation();
      auto ov = overrides_.find(id);
      if (ov != overrides_.end()) {
        rec.parents.assign(ov->second.begin(), ov->second.end());
      } else {
        std::span<const NodeId> ps = snap.ParentsOf(id);
        rec.parents.assign(ps.begin(), ps.end());
      }
      rec.payload = std::string(n.payload());
      rec.value = n.value();
      writers[s].Restore(rec);
    }
  }
  // Synthetic zoom nodes continue shard 0's index space, exactly where the
  // eager writer would have appended them.
  for (const SyntheticNode& z : synthetic_) {
    NodeRecord zrec;
    zrec.label = NodeLabel::kZoomedModule;
    zrec.role = NodeRole::kZoom;
    zrec.alive = true;
    zrec.invocation = z.invocation;
    zrec.parents = z.parents;
    zrec.payload = z.module;
    writers[0].Restore(zrec);
  }
  for (const InvocationInfo& inv : snap.invocations()) {
    out.RestoreInvocation(inv);
  }
  out.Seal();
  span.Arg("nodes", static_cast<uint64_t>(out.num_nodes()));
  return out;
}

Result<GraphView> ZoomOutView(const GraphSnapshot& snap,
                              const std::set<std::string>& module_names,
                              int num_threads) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "ZoomOutView"));
  obs::ObsSpan span("query", "zoomout_view");
  static const obs::MetricId kZoomViewUs =
      obs::MetricsRegistry::Global().RegisterHistogram(
          "query.zoomout_view_us");
  obs::ScopedHistTimer obs_timer(kZoomViewUs);
  span.Arg("modules", static_cast<uint64_t>(module_names.size()));
  span.Arg("threads", static_cast<uint64_t>(num_threads < 1 ? 1
                                                            : num_threads));

  GraphView view(snap, GraphView::Mode::kHide);
  // One shared mark set across modules makes earlier modules' removals
  // invisible to later planning passes, mirroring the eager path's
  // seal-between-modules behavior.
  size_t removed_total = 0;
  for (const std::string& module : module_names) {
    Result<internal::ZoomPlan> plan =
        internal::PlanZoomOut(snap, module, *view.mask_, num_threads);
    if (!plan.ok()) return plan.status();
    removed_total += plan->removed.size();
    for (internal::ZoomInvocationPlan& ip : plan->invocations) {
      NodeId zoom_id = view.SyntheticId(view.synthetic_.size());
      for (NodeId out : ip.outputs) {
        view.overrides_[out] = {zoom_id, ip.m_node};
      }
      view.synthetic_.push_back(GraphView::SyntheticNode{
          module, ip.invocation, ip.m_node, std::move(ip.zoom_parents)});
    }
  }
  view.num_visible_underlying_ = snap.graph().num_alive() - removed_total;
  return view;
}

Result<GraphView> SubgraphView(const GraphSnapshot& snap, NodeId node,
                               int num_threads) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "subgraph queries"));
  GraphView view(snap, GraphView::Mode::kKeep);
  Result<std::vector<NodeId>> members =
      SubgraphNodes(snap, node, num_threads);
  if (!members.ok()) return members.status();
  for (NodeId id : *members) view.mask_->Set(id);
  view.num_visible_underlying_ = members->size();
  return view;
}

}  // namespace lipstick

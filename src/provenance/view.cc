#include "provenance/view.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/subgraph.h"
#include "provenance/zoom.h"

namespace lipstick {

Result<GraphView> GraphView::MakeIdentity(const GraphSnapshot& snap) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "plan execution"));
  GraphView view(snap, Mode::kHide);
  view.num_visible_underlying_ = snap.graph().num_alive();
  return view;
}

GraphView GraphView::Clone() const {
  GraphView copy(*snap_, keep_mode_ ? Mode::kKeep : Mode::kHide);
  copy.mask_->CopyFrom(*mask_);
  copy.num_visible_underlying_ = num_visible_underlying_;
  copy.synthetic_ = synthetic_;
  copy.syn_alive_ = syn_alive_;
  copy.num_syn_alive_ = num_syn_alive_;
  copy.overrides_ = overrides_;
  return copy;
}

Status GraphView::RequireHideMode(const char* op) const {
  if (!keep_mode_) return Status::OK();
  return Status::InvalidArgument(
      std::string("view composition requires a hide-mode view: ") + op);
}

std::unordered_set<NodeId> GraphView::VisibleSet() const {
  std::unordered_set<NodeId> set;
  set.reserve(num_visible_underlying_);
  for (uint32_t s = 0; s < snap_->num_shards(); ++s) {
    for (uint64_t i = 0; i < snap_->ShardSize(s); ++i) {
      NodeId id = MakeNodeId(s, i);
      if (Visible(id)) set.insert(id);
    }
  }
  return set;
}

GraphView::ChildOverlay GraphView::BuildChildOverlay() const {
  ChildOverlay overlay;
  // Rewired module outputs: their parents became {zoom node, m node}, so
  // the zoom node and the m node each gain the output as a child (the
  // output's original CSR in-edges are suppressed by ForEachChild).
  for (const auto& [out, parents] : overrides_) {
    if (!Visible(out)) continue;
    for (NodeId p : parents) {
      if (VisibleOrSynthetic(p)) overlay[p].push_back(out);
    }
  }
  // Synthetic zoom nodes are children of their (visible) input nodes.
  for (size_t k = 0; k < synthetic_.size(); ++k) {
    if (!syn_alive_[k]) continue;
    NodeId zoom_id = SyntheticId(k);
    for (NodeId p : synthetic_[k].parents) {
      if (Visible(p)) overlay[p].push_back(zoom_id);
    }
  }
  return overlay;
}

Status GraphView::ApplyZoomOut(const std::vector<std::string>& modules,
                               int num_threads) {
  LIPSTICK_RETURN_IF_ERROR(RequireHideMode("ApplyZoomOut"));
  std::set<std::string> unique(modules.begin(), modules.end());
  // One shared mark set across modules makes earlier modules' removals
  // invisible to later planning passes, mirroring the eager path's
  // seal-between-modules behavior.
  for (const std::string& module : unique) {
    Result<internal::ZoomPlan> plan =
        internal::PlanZoomOut(*snap_, module, *mask_, num_threads);
    if (!plan.ok()) return plan.status();
    num_visible_underlying_ -= plan->removed.size();
    for (internal::ZoomInvocationPlan& ip : plan->invocations) {
      NodeId zoom_id = SyntheticId(synthetic_.size());
      for (NodeId out : ip.outputs) {
        overrides_[out] = {zoom_id, ip.m_node};
      }
      PushSynthetic(SyntheticNode{module, ip.invocation, ip.m_node,
                                  std::move(ip.zoom_parents)});
    }
  }
  return Status::OK();
}

Status GraphView::ApplySubgraph(const std::vector<NodeId>& roots, bool up,
                                bool down) {
  LIPSTICK_RETURN_IF_ERROR(RequireHideMode("ApplySubgraph"));
  std::unordered_set<NodeId> members;
  std::vector<NodeId> work;
  for (NodeId r : roots) {
    if (VisibleOrSynthetic(r)) members.insert(r);
  }
  std::unordered_set<NodeId> seeds = members;
  if (up) {
    work.assign(seeds.begin(), seeds.end());
    while (!work.empty()) {
      NodeId id = work.back();
      work.pop_back();
      for (NodeId p : ParentsOf(id)) {
        if (VisibleOrSynthetic(p) && members.insert(p).second) {
          work.push_back(p);
        }
      }
    }
  }
  if (down) {
    ChildOverlay overlay = BuildChildOverlay();
    std::unordered_set<NodeId> down_set;
    std::unordered_set<NodeId> visited = seeds;
    work.assign(seeds.begin(), seeds.end());
    while (!work.empty()) {
      NodeId id = work.back();
      work.pop_back();
      ForEachChild(id, overlay, [&](NodeId c) {
        if (visited.insert(c).second) {
          down_set.insert(c);
          work.push_back(c);
        }
      });
    }
    for (NodeId d : down_set) {
      members.insert(d);
      if (up) {
        // The legacy subgraph query also keeps co-parents of descendants:
        // every node a descendant is jointly derived from.
        for (NodeId p : ParentsOf(d)) {
          if (VisibleOrSynthetic(p)) members.insert(p);
        }
      }
    }
  }
  // Narrow visibility to the members.
  size_t kept = 0;
  for (uint32_t s = 0; s < snap_->num_shards(); ++s) {
    for (uint64_t i = 0; i < snap_->ShardSize(s); ++i) {
      NodeId id = MakeNodeId(s, i);
      if (!Visible(id)) continue;
      if (members.count(id)) {
        ++kept;
      } else {
        mask_->Set(id);
      }
    }
  }
  num_visible_underlying_ = kept;
  for (size_t k = 0; k < synthetic_.size(); ++k) {
    if (syn_alive_[k] && !members.count(SyntheticId(k))) {
      syn_alive_[k] = 0;
      --num_syn_alive_;
    }
  }
  return Status::OK();
}

Status GraphView::ApplyRestrict(const FactPredicate& pred) {
  LIPSTICK_RETURN_IF_ERROR(RequireHideMode("ApplyRestrict"));
  size_t kept = 0;
  for (uint32_t s = 0; s < snap_->num_shards(); ++s) {
    for (uint64_t i = 0; i < snap_->ShardSize(s); ++i) {
      NodeId id = MakeNodeId(s, i);
      if (!Visible(id)) continue;
      NodeView n = snap_->node(id);
      if (pred(n.label(), n.role(), n.payload())) {
        ++kept;
      } else {
        mask_->Set(id);
      }
    }
  }
  num_visible_underlying_ = kept;
  for (size_t k = 0; k < synthetic_.size(); ++k) {
    if (syn_alive_[k] &&
        !pred(NodeLabel::kZoomedModule, NodeRole::kZoom,
              synthetic_[k].module)) {
      syn_alive_[k] = 0;
      --num_syn_alive_;
    }
  }
  return Status::OK();
}

Status GraphView::ApplyDeleteProp(const std::vector<NodeId>& seeds,
                                  size_t* removed) {
  LIPSTICK_RETURN_IF_ERROR(RequireHideMode("ApplyDeleteProp"));
  ChildOverlay overlay = BuildChildOverlay();
  // Mirror of ComputeDeletionSet (provenance/deletion.cc) over the view's
  // adjacency: a node dies when it is joint (· / ⊗) and loses any edge, or
  // when it loses all of its visible in-edges.
  std::unordered_set<NodeId> deleted;
  std::vector<NodeId> order;
  std::unordered_map<NodeId, size_t> lost_edges;
  for (NodeId s : seeds) {
    if (VisibleOrSynthetic(s) && deleted.insert(s).second) {
      order.push_back(s);
    }
  }
  auto alive_parent_count = [this](NodeId id) {
    size_t n = 0;
    for (NodeId p : ParentsOf(id)) n += VisibleOrSynthetic(p) ? 1 : 0;
    return n;
  };
  size_t head = 0;
  while (head < order.size()) {
    NodeId dead = order[head++];
    ForEachChild(dead, overlay, [&](NodeId child) {
      if (deleted.count(child)) return;
      size_t lost = ++lost_edges[child];
      NodeLabel cl = IsSynthetic(child) ? NodeLabel::kZoomedModule
                                        : snap_->node(child).label();
      bool joint = cl == NodeLabel::kTimes || cl == NodeLabel::kTensor;
      if (joint || lost >= alive_parent_count(child)) {
        deleted.insert(child);
        order.push_back(child);
      }
    });
  }
  for (NodeId id : order) {
    if (IsSynthetic(id)) {
      size_t k = SyntheticIndex(id);
      if (syn_alive_[k]) {
        syn_alive_[k] = 0;
        --num_syn_alive_;
      }
    } else {
      mask_->Set(id);
      --num_visible_underlying_;
    }
  }
  if (removed != nullptr) *removed = order.size();
  return Status::OK();
}

Result<ProvenanceGraph> GraphView::Materialize() const {
  obs::ObsSpan span("query", "view_materialize");
  const GraphSnapshot& snap = *snap_;
  ProvenanceGraph out;
  // Reproduce the source pool id-for-id, so every payload and invocation
  // name in the copied records resolves to the same StrId.
  const StringPool& pool = snap.strings();
  for (StrId i = 1; i < pool.size(); ++i) {
    out.InternString(pool.Get(i));
  }
  std::vector<ShardWriter> writers;
  writers.push_back(out.writer());
  for (uint32_t s = 1; s < snap.num_shards(); ++s) {
    writers.push_back(out.AddShard());
  }
  // Every underlying node is restored at its original (shard, index) with
  // the view's liveness and parents; hidden and originally-dead nodes stay
  // in place as dead records, exactly as the eager mutating operators
  // leave them.
  NodeRecord rec;
  for (uint32_t s = 0; s < snap.num_shards(); ++s) {
    for (uint64_t i = 0; i < snap.ShardSize(s); ++i) {
      NodeId id = MakeNodeId(s, i);
      NodeView n = snap.node(id);
      rec.label = n.label();
      rec.role = n.role();
      rec.is_value_node = n.is_value_node();
      rec.alive = Visible(id);
      rec.invocation = n.invocation();
      auto ov = overrides_.find(id);
      if (ov != overrides_.end()) {
        rec.parents.assign(ov->second.begin(), ov->second.end());
      } else {
        std::span<const NodeId> ps = snap.ParentsOf(id);
        rec.parents.assign(ps.begin(), ps.end());
      }
      rec.payload = std::string(n.payload());
      rec.value = n.value();
      writers[s].Restore(rec);
    }
  }
  // Synthetic zoom nodes continue shard 0's index space, exactly where the
  // eager writer would have appended them; ones hidden by a later pipeline
  // stage are restored dead, like any other hidden node.
  for (size_t k = 0; k < synthetic_.size(); ++k) {
    const SyntheticNode& z = synthetic_[k];
    NodeRecord zrec;
    zrec.label = NodeLabel::kZoomedModule;
    zrec.role = NodeRole::kZoom;
    zrec.alive = syn_alive_[k] != 0;
    zrec.invocation = z.invocation;
    zrec.parents = z.parents;
    zrec.payload = z.module;
    writers[0].Restore(zrec);
  }
  for (const InvocationInfo& inv : snap.invocations()) {
    out.RestoreInvocation(inv);
  }
  out.Seal();
  span.Arg("nodes", static_cast<uint64_t>(out.num_nodes()));
  return out;
}

Result<GraphView> ZoomOutView(const GraphSnapshot& snap,
                              const std::set<std::string>& module_names,
                              int num_threads) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "ZoomOutView"));
  obs::ObsSpan span("query", "zoomout_view");
  static const obs::MetricId kZoomViewUs =
      obs::MetricsRegistry::Global().RegisterHistogram(
          "query.zoomout_view_us");
  obs::ScopedHistTimer obs_timer(kZoomViewUs);
  span.Arg("modules", static_cast<uint64_t>(module_names.size()));
  span.Arg("threads", static_cast<uint64_t>(num_threads < 1 ? 1
                                                            : num_threads));

  GraphView view(snap, GraphView::Mode::kHide);
  view.num_visible_underlying_ = snap.graph().num_alive();
  std::vector<std::string> modules(module_names.begin(), module_names.end());
  LIPSTICK_RETURN_IF_ERROR(view.ApplyZoomOut(modules, num_threads));
  return view;
}

Result<GraphView> SubgraphView(const GraphSnapshot& snap, NodeId node,
                               int num_threads) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "subgraph queries"));
  GraphView view(snap, GraphView::Mode::kKeep);
  Result<std::vector<NodeId>> members =
      SubgraphNodes(snap, node, num_threads);
  if (!members.ok()) return members.status();
  for (NodeId id : *members) view.mask_->Set(id);
  view.num_visible_underlying_ = members->size();
  return view;
}

}  // namespace lipstick

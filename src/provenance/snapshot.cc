#include "provenance/snapshot.h"

#include <utility>

namespace lipstick {

/// Free-list of visited bitmaps, shared by every lease handed out by one
/// snapshot. Reference-counted so a lease can safely outlive the snapshot
/// that created it.
struct VisitedLease::Pool {
  std::mutex mu;
  std::vector<std::unique_ptr<VisitedSet>> free;
};

VisitedLease::~VisitedLease() {
  if (set_ == nullptr || pool_ == nullptr) return;
  // Returned bitmaps are cleared eagerly: clearing is a straight memset
  // over words already in cache, and it keeps Acquire allocation-free and
  // O(1) on the query hot path.
  set_->Clear();
  std::lock_guard<std::mutex> lock(pool_->mu);
  pool_->free.push_back(std::move(set_));
}

GraphSnapshot::GraphSnapshot(const ProvenanceGraph& graph)
    : graph_(&graph), pool_(std::make_shared<VisitedLease::Pool>()) {
  shard_sizes_.reserve(graph.num_shards());
  for (uint32_t s = 0; s < graph.num_shards(); ++s) {
    shard_sizes_.push_back(graph.ShardSize(s));
    num_nodes_ += shard_sizes_.back();
  }
}

Result<GraphSnapshot> GraphSnapshot::Capture(const ProvenanceGraph& graph) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "GraphSnapshot::Capture"));
  return GraphSnapshot(graph);
}

Result<GraphSnapshot> GraphSnapshot::Capture(
    std::shared_ptr<const ProvenanceGraph> graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("GraphSnapshot::Capture: null graph");
  }
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(*graph, "GraphSnapshot::Capture"));
  GraphSnapshot snap(*graph);
  snap.owner_ = std::move(graph);
  return snap;
}

GraphSnapshot GraphSnapshot::CaptureForParents(const ProvenanceGraph& graph) {
  return GraphSnapshot(graph);
}

VisitedLease GraphSnapshot::AcquireVisited() const {
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    if (!pool_->free.empty()) {
      std::unique_ptr<VisitedSet> set = std::move(pool_->free.back());
      pool_->free.pop_back();
      return VisitedLease(pool_, std::move(set));
    }
  }
  return VisitedLease(
      pool_, std::unique_ptr<VisitedSet>(new VisitedSet(shard_sizes_)));
}

}  // namespace lipstick

#ifndef LIPSTICK_PROVENANCE_GRAPH_H_
#define LIPSTICK_PROVENANCE_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "provenance/string_pool.h"
#include "relational/value.h"

namespace lipstick {

/// Identifier of a node in a ProvenanceGraph. Ids pack (shard, index) so
/// that concurrent workflow tasks can allocate nodes without coordination:
/// shard s, index i  =>  id = (s+1) << 48 | i. Id 0 (== kNoProvenance) is
/// never allocated and means "no annotation".
using NodeId = uint64_t;

inline constexpr NodeId kInvalidNode = 0;
inline constexpr uint32_t kNoInvocation = 0xffffffffu;

inline uint32_t NodeShard(NodeId id) {
  return static_cast<uint32_t>(id >> 48) - 1;
}
inline uint64_t NodeIndex(NodeId id) { return id & ((1ull << 48) - 1); }
inline NodeId MakeNodeId(uint32_t shard, uint64_t index) {
  return (static_cast<uint64_t>(shard + 1) << 48) | index;
}

/// Node labels. Labels kToken..kZoomedModule follow Section 3 of the paper:
/// semiring operations (+, ·, δ), aggregation structure (⊗, aggregate op),
/// black boxes, and the workflow-level structural nodes.
enum class NodeLabel : uint8_t {
  kToken,             // atomic provenance token (p-node)
  kPlus,              // + : alternative derivation (p-node)
  kTimes,             // · : joint derivation (p-node)
  kDelta,             // δ : duplicate elimination (p-node)
  kTensor,            // ⊗ : value-provenance pairing (v-node)
  kAggregate,         // aggregate operation result, payload = op (v-node)
  kConstValue,        // concrete value carried in the graph (v-node)
  kBlackBox,          // UDF invocation, payload = function name
  kModuleInvocation,  // "m" node, payload = module name
  kZoomedModule,      // collapsed module created by ZoomOut, payload = module
};

/// Structural role in the workflow-level construction of Section 3.1.
/// kIntermediate marks nodes produced by a module's internal Pig Latin
/// computation — exactly the nodes ZoomOut removes (cf. Definition 4.1).
enum class NodeRole : uint8_t {
  kIntermediate,    // inside a module's computation
  kWorkflowInput,   // "I" node: tuple supplied by a workflow input module
  kModuleInput,     // "i" node: · of (tuple, invocation)
  kModuleOutput,    // "o" node: · of (tuple, invocation)
  kModuleState,     // "s" node: · of (state tuple, invocation)
  kStateBase,       // token identifying an initial state tuple
  kInvocation,      // "m" node
  kZoom,            // synthetic node created by ZoomOut
};

const char* NodeLabelToString(NodeLabel label);
const char* NodeRoleToString(NodeRole role);

/// The shared Null returned for nodes that carry no value.
const Value& NullValue();

namespace internal {

inline constexpr uint32_t kAliveFlag = 0x1;
inline constexpr uint32_t kValueNodeFlag = 0x2;
inline constexpr uint32_t kNoValueIdx = 0xffffffffu;
inline constexpr uint32_t kInlineParents = 2;

/// Parent adjacency of one node. Up to kInlineParents ids are stored
/// inline (the +/·/⊗ common case); larger lists live in the owning
/// shard's edge arena, with ab[0] holding the arena offset.
struct ParentSlot {
  uint32_t count = 0;
  uint32_t reserved = 0;
  NodeId ab[2] = {kInvalidNode, kInvalidNode};
};

/// One shard of columnar (struct-of-arrays) node storage. A node is a row
/// across the parallel columns; ShardWriter::Append pushes one element to
/// each. The layout exists for traversal speed: scans touch only the
/// columns they need, and parent/child adjacency is contiguous (inline
/// slots + edge arena, CSR after Seal) instead of per-node heap vectors.
struct NodeColumns {
  std::vector<NodeLabel> labels;
  std::vector<NodeRole> roles;
  std::vector<uint8_t> flags;         // kAliveFlag | kValueNodeFlag
  std::vector<uint32_t> invocations;  // kNoInvocation if untagged
  std::vector<StrId> payloads;        // interned token/op/function/module
  std::vector<ParentSlot> parents;
  std::vector<NodeId> edge_arena;     // overflow parent lists
  std::vector<uint32_t> value_idx;    // kNoValueIdx or index into values
  std::vector<Value> values;          // sparse: v-nodes with a value
  // CSR children index, built by Seal(): children of node i are
  // child_edges[child_offsets[i] .. child_offsets[i+1]).
  std::vector<uint32_t> child_offsets;
  std::vector<NodeId> child_edges;

  size_t size() const { return labels.size(); }

  std::span<const NodeId> ParentSpan(uint64_t i) const {
    const ParentSlot& p = parents[i];
    if (p.count <= kInlineParents) return {p.ab, p.count};
    return {edge_arena.data() + p.ab[0], p.count};
  }
};

/// Movable atomic boolean. The graph's sealed flag is cleared by every
/// ShardWriter::Append, and concurrent workflow tasks append to their own
/// shards without coordination, so the flag itself must be an atomic; a
/// bare std::atomic would delete the graph's move operations (it is
/// returned by value from the loaders), hence this wrapper. Moves/copies
/// only happen single-threaded, so a relaxed load-then-store is fine.
class AtomicFlag {
 public:
  AtomicFlag() = default;
  AtomicFlag(const AtomicFlag& o) noexcept
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  AtomicFlag& operator=(const AtomicFlag& o) noexcept {
    v_.store(o.v_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
    return *this;
  }
  AtomicFlag& operator=(bool b) noexcept {
    v_.store(b, std::memory_order_relaxed);
    return *this;
  }
  operator bool() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> v_{false};
};

}  // namespace internal

/// Read-only view of one node of a ProvenanceGraph. Cheap to copy (three
/// words); reads resolve directly into the columnar storage. Views are
/// invalidated by appends and mutations, like iterators.
class NodeView {
 public:
  NodeLabel label() const { return sh_->labels[i_]; }
  NodeRole role() const { return sh_->roles[i_]; }
  bool is_value_node() const {
    return (sh_->flags[i_] & internal::kValueNodeFlag) != 0;
  }
  bool alive() const { return (sh_->flags[i_] & internal::kAliveFlag) != 0; }
  uint32_t invocation() const { return sh_->invocations[i_]; }

  /// Token / op / function / module name (empty for unlabeled nodes).
  std::string_view payload() const { return pool_->Get(sh_->payloads[i_]); }
  StrId payload_id() const { return sh_->payloads[i_]; }

  /// The nodes this node was derived from (edges point parent -> child in
  /// derivation order; this is the incoming side).
  std::span<const NodeId> parents() const { return sh_->ParentSpan(i_); }
  size_t num_parents() const { return sh_->parents[i_].count; }

  /// Value carried by v-nodes (aggregate results, constants); NullValue()
  /// for nodes without one.
  const Value& value() const {
    uint32_t v = sh_->value_idx[i_];
    return v == internal::kNoValueIdx ? NullValue() : sh_->values[v];
  }

 private:
  friend class ProvenanceGraph;
  NodeView(const StringPool* pool, const internal::NodeColumns* sh,
           uint64_t i)
      : pool_(pool), sh_(sh), i_(i) {}

  const StringPool* pool_;
  const internal::NodeColumns* sh_;
  uint64_t i_;
};

/// Metadata for one module invocation ("m" node): which module, which
/// workflow node, which execution of the sequence. Names are interned in
/// the owning graph's StringPool — resolve with graph.str(...).
struct InvocationInfo {
  StrId module_name = kEmptyStr;    // module specification name ("dealer")
  StrId instance_name = kEmptyStr;  // module identity ("dealer1")
  uint32_t execution = 0;           // index in the execution sequence
  NodeId m_node = kInvalidNode;
  // Structural node sets recorded during tracking; used by ZoomOut.
  std::vector<NodeId> input_nodes;
  std::vector<NodeId> output_nodes;
  std::vector<NodeId> state_nodes;

  /// True once the invocation's nodes are discarded (AbortInvocation):
  /// the attempt failed and its provenance was rolled back. Aborted
  /// records keep their module/instance names for diagnostics but carry
  /// no graph structure.
  bool aborted() const { return m_node == kInvalidNode; }
};

/// A fully-formed node, used by the deserialization path (provio) to
/// restore nodes with explicit liveness and payload.
struct NodeRecord {
  NodeLabel label = NodeLabel::kToken;
  NodeRole role = NodeRole::kIntermediate;
  bool is_value_node = false;
  bool alive = true;
  uint32_t invocation = kNoInvocation;
  std::vector<NodeId> parents;
  std::string payload;
  Value value;
};

class ProvenanceGraph;

/// Observer of every graph mutation that matters for durability. The
/// write-ahead log (provenance/wal.h) implements this interface; the graph
/// calls the attached sink synchronously from the mutating thread, in an
/// order that guarantees referential integrity on replay: interns arrive
/// before any node referencing the id (under the pool lock), invocation
/// registrations in id order (under the invocations lock), and node
/// appends before their value/parent updates. Detached (the default),
/// every hook site costs one null-pointer check.
class GraphWalSink {
 public:
  virtual ~GraphWalSink() = default;

  /// A string was interned for the first time.
  virtual void OnIntern(StrId id, std::string_view s) = 0;
  /// A node was appended (ShardWriter::Append), with the columns exactly
  /// as written.
  virtual void OnNodeAppend(NodeId id, NodeLabel label, NodeRole role,
                            uint8_t flags, uint32_t invocation, StrId payload,
                            std::span<const NodeId> parents) = 0;
  /// A v-node received (or replaced) its carried value.
  virtual void OnNodeValue(NodeId id, const Value& value) = 0;
  /// The parent list of `id` was replaced (SetParents / AddParent /
  /// ClearParents all report the resulting full list).
  virtual void OnSetParents(NodeId id, std::span<const NodeId> parents) = 0;
  virtual void OnSetAlive(NodeId id, bool alive) = 0;
  /// Every node of `shard` with index >= `from` was marked dead.
  virtual void OnKillShardTail(uint32_t shard, uint64_t from) = 0;
  /// An invocation was registered; `info` names are already interned.
  virtual void OnBeginInvocation(uint32_t invocation,
                                 const InvocationInfo& info) = 0;
  /// `node` joined the invocation's input (0) / output (1) / state (2)
  /// node list.
  virtual void OnInvocationNode(uint32_t invocation, int kind,
                                NodeId node) = 0;
  virtual void OnAbortInvocation(uint32_t invocation) = 0;
  /// The invocation list was truncated to `count` records (rollback).
  virtual void OnTruncateInvocations(uint64_t count) = 0;
};

/// Appends nodes to one shard of a ProvenanceGraph. Each concurrent task
/// owns one ShardWriter; no locking is required because a writer only
/// appends to its own shard and only references already-created nodes
/// (string interning takes the pool's internal lock).
class ShardWriter {
 public:
  ShardWriter(ProvenanceGraph* graph, uint32_t shard)
      : graph_(graph), shard_(shard) {}

  /// Atomic provenance token, e.g. an input or initial-state tuple id.
  NodeId Token(std::string name, NodeRole role = NodeRole::kIntermediate);
  /// + node over `parents` (alternative derivation).
  NodeId Plus(std::vector<NodeId> parents);
  /// · node over `parents` (joint derivation).
  NodeId Times(std::vector<NodeId> parents,
               NodeRole role = NodeRole::kIntermediate,
               uint32_t invocation = kNoInvocation);
  /// δ node over `parents` (duplicate elimination; GROUP/COGROUP/DISTINCT).
  NodeId Delta(std::vector<NodeId> parents);
  /// ⊗ v-node pairing a value v-node with a tuple p-node.
  NodeId Tensor(NodeId value_node, NodeId prov_node);
  /// Aggregate-result v-node, payload = op name ("COUNT", "SUM", ...).
  NodeId Aggregate(std::string op, std::vector<NodeId> parents, Value result);
  /// v-node carrying a constant value being aggregated.
  NodeId ConstValue(Value v);
  /// Black-box (UDF) node.
  NodeId BlackBox(std::string function, std::vector<NodeId> parents);
  /// Collapsed-module p-node appended by ZoomOut.
  NodeId ZoomedModule(std::string_view module, std::vector<NodeId> parents,
                      uint32_t invocation);

  /// Appends a node with every field explicit (deserialization path).
  NodeId Restore(const NodeRecord& record);

  /// WAL-replay append: every column explicit, `payload` already interned
  /// in this graph's pool. Values are restored separately via
  /// ProvenanceGraph::SetNodeValue, mirroring WAL record order.
  NodeId AppendRaw(NodeLabel label, NodeRole role, uint8_t flags,
                   uint32_t invocation, StrId payload,
                   std::span<const NodeId> parents) {
    return Append(label, role, flags, invocation, payload, parents);
  }

  /// Registers a module invocation and creates its "m" node.
  uint32_t BeginInvocation(std::string module_name, std::string instance_name,
                           uint32_t execution);
  NodeId InvocationNode(uint32_t invocation) const;

  /// Workflow-input "I" node for an externally supplied tuple.
  NodeId WorkflowInput(std::string token_name);
  /// Module input "i" node: ·(tuple, m-node); records it on the invocation.
  NodeId ModuleInput(uint32_t invocation, NodeId tuple_node);
  /// Module output "o" node: ·(tuple, m-node); records it on the invocation.
  NodeId ModuleOutput(uint32_t invocation, NodeId tuple_node);
  /// Module state "s" node: ·(state tuple, m-node).
  NodeId ModuleState(uint32_t invocation, NodeId tuple_node);

  /// Sets the invocation tag of subsequently interpreted intermediate nodes.
  void set_current_invocation(uint32_t inv) { current_invocation_ = inv; }
  uint32_t current_invocation() const { return current_invocation_; }

  /// Lazy state wrapping. While a state scope is active, ResolveParent
  /// wraps annotations in `eligible` (the module's current state tuples)
  /// with an "s" node ·(tuple, m) on first use — so state tuples that never
  /// contribute to a derivation cost no graph nodes, matching the paper's
  /// observation that outputs depend on only ~2% of the state (§5.5).
  void BeginStateScope(uint32_t invocation,
                       const std::unordered_set<NodeId>* eligible);
  /// Ends the scope and clears the wrap cache: a writer reused by a later
  /// invocation must never resolve a stale "s" node of a previous scope.
  void EndStateScope();

  /// Returns the annotation to use as a derivation parent: the lazily
  /// created state node if `annot` is an eligible state tuple, else
  /// `annot` itself.
  NodeId ResolveParent(NodeId annot);

  uint32_t shard() const { return shard_; }

 private:
  NodeId Append(NodeLabel label, NodeRole role, uint32_t flags,
                uint32_t invocation, StrId payload,
                std::span<const NodeId> parents);

  ProvenanceGraph* graph_;
  uint32_t shard_;
  uint32_t current_invocation_ = kNoInvocation;
  uint32_t state_scope_invocation_ = kNoInvocation;
  const std::unordered_set<NodeId>* state_eligible_ = nullptr;
  std::unordered_map<NodeId, NodeId> state_wrap_cache_;
};

/// The provenance graph for a (sequence of) workflow execution(s).
///
/// Construction phase: ShardWriters append nodes recording only parent
/// (incoming) edges. Query phase: Seal() derives the children adjacency;
/// zoom / deletion / subgraph operations then run on the sealed graph.
///
/// Storage is columnar (internal::NodeColumns, one set of parallel arrays
/// per shard) with payload strings interned in a StringPool; see
/// DESIGN.md §"Graph storage layout".
class ProvenanceGraph {
 public:
  ProvenanceGraph() { shards_.emplace_back(); }

  /// Adds a shard and returns a writer for it. Not thread-safe; create all
  /// writers before spawning tasks.
  ShardWriter AddShard();
  /// Writer for the default shard 0 (single-threaded use).
  ShardWriter writer() { return ShardWriter(this, 0); }

  /// Read-only view of a node. Bounds are LIPSTICK_DCHECKed: passing an id
  /// from another graph (or kInvalidNode) aborts in debug builds instead of
  /// being silent UB.
  NodeView node(NodeId id) const {
    uint32_t s = NodeShard(id);
    uint64_t i = NodeIndex(id);
    LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                        i < shards_[s].size(),
                    "node id out of range for this graph");
    return NodeView(&pool_, &shards_[s], i);
  }

  /// True iff `id` names a node of this graph that is currently alive.
  bool Contains(NodeId id) const {
    if (id == kInvalidNode) return false;
    uint32_t s = NodeShard(id);
    if (s >= shards_.size()) return false;
    uint64_t i = NodeIndex(id);
    return i < shards_[s].size() &&
           (shards_[s].flags[i] & internal::kAliveFlag) != 0;
  }

  /// True iff `id` names a node ever created in this graph (alive or dead).
  bool InGraph(NodeId id) const {
    if (id == kInvalidNode) return false;
    uint32_t s = NodeShard(id);
    return s < shards_.size() && NodeIndex(id) < shards_[s].size();
  }

  /// ------------------------------------------------------------------
  /// Traversal API. Spans point into the columnar storage and are
  /// invalidated by appends and parent mutations.
  /// ------------------------------------------------------------------

  /// Incoming edges of `id` (the nodes it was derived from).
  std::span<const NodeId> ParentsOf(NodeId id) const {
    uint32_t s = NodeShard(id);
    uint64_t i = NodeIndex(id);
    LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                        i < shards_[s].size(),
                    "ParentsOf: node id out of range");
    return shards_[s].ParentSpan(i);
  }

  /// Outgoing edges of `id`; graph must be sealed. Always-on check:
  /// reading children of an unsealed graph would index a stale CSR.
  std::span<const NodeId> ChildrenOf(NodeId id) const {
    LIPSTICK_CHECK(sealed_, "call Seal() before ChildrenOf()");
    uint32_t s = NodeShard(id);
    uint64_t i = NodeIndex(id);
    LIPSTICK_DCHECK(id != kInvalidNode && s < shards_.size() &&
                        i < shards_[s].size(),
                    "ChildrenOf: node id out of range");
    const internal::NodeColumns& sh = shards_[s];
    return {sh.child_edges.data() + sh.child_offsets[i],
            sh.child_offsets[i + 1] - sh.child_offsets[i]};
  }

  /// Calls `fn(NodeId)` for every node ever created (alive or dead), in
  /// deterministic (shard, index) order. The zero-allocation replacement
  /// for materializing AllNodeIds().
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      size_t n = shards_[s].size();
      for (uint64_t i = 0; i < n; ++i) fn(MakeNodeId(s, i));
    }
  }

  /// Calls `fn(NodeId)` for every alive node, in deterministic order.
  template <typename Fn>
  void ForEachAliveNode(Fn&& fn) const {
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      const internal::NodeColumns& sh = shards_[s];
      size_t n = sh.size();
      for (uint64_t i = 0; i < n; ++i) {
        if (sh.flags[i] & internal::kAliveFlag) fn(MakeNodeId(s, i));
      }
    }
  }

  /// Materialized id list (alive or dead). Test convenience; production
  /// code uses ForEachNode.
  std::vector<NodeId> AllNodeIds() const;

  /// ------------------------------------------------------------------
  /// Mutation API (zoom / deletion / restore paths).
  /// ------------------------------------------------------------------

  /// Marks a node alive or dead. Dirties the seal.
  void SetAlive(NodeId id, bool alive);
  /// Replaces the parent list of `id`. Dirties the seal.
  void SetParents(NodeId id, std::span<const NodeId> parents);
  /// Appends one parent edge to `id`. Dirties the seal.
  void AddParent(NodeId id, NodeId parent);
  /// Removes all parent edges of `id`. Dirties the seal.
  void ClearParents(NodeId id);

  /// Column pokes for tools and validator tests that need to fabricate
  /// specific (possibly corrupt) node states. They do not touch
  /// adjacency, so the seal stays valid.
  void SetRole(NodeId id, NodeRole role);
  void SetInvocationTag(NodeId id, uint32_t invocation);
  void SetValueNodeFlag(NodeId id, bool is_value_node);

  /// Sets (or replaces) the value carried by a v-node. WAL-replay path:
  /// tracking writes values through the ShardWriter helpers, but the WAL
  /// logs them as separate records after the append.
  void SetNodeValue(NodeId id, Value value);

  /// Total nodes ever created (including dead ones).
  size_t num_nodes() const;
  /// Number of currently-alive nodes.
  size_t num_alive() const;
  /// Number of edges among alive nodes.
  size_t num_edges() const;

  /// Builds the children adjacency as a per-shard CSR index (offsets +
  /// flat edge array). Must be called after tracking finishes and before
  /// ChildrenOf() / queries. Re-runs after mutations if dirty.
  void Seal();
  bool sealed() const { return sealed_; }
  void MarkDirty() { sealed_ = false; }
  /// Inverse of MarkDirty(): claims the children index is fresh without
  /// rebuilding it. Exists so the validator's stale-seal detector
  /// (G0310) can be exercised deterministically; never call it on a
  /// graph whose adjacency you intend to trust.
  void MarkSealed() { sealed_ = true; }

  /// The graph's string interner (payloads, module/instance names).
  const StringPool& strings() const { return pool_; }
  /// Resolves an interned id; str(inv.module_name) etc.
  std::string_view str(StrId id) const { return pool_.Get(id); }
  /// Interns a string (tracking and deserialization paths).
  StrId InternString(std::string_view s) { return pool_.Intern(s); }

  /// Registered invocations, indexed by invocation id.
  const std::vector<InvocationInfo>& invocations() const {
    return invocations_;
  }
  InvocationInfo& mutable_invocation(uint32_t id) { return invocations_[id]; }

  /// Appends a fully-formed invocation record (deserialization path).
  /// Returns its invocation id.
  uint32_t RestoreInvocation(InvocationInfo info);

  /// Invocations that still carry graph structure (not aborted).
  size_t num_live_invocations() const;

  /// A marker of the graph's extent, used to discard the provenance of
  /// failed or aborted workflow executions. Capture with Savepoint()
  /// before tracking begins; RollbackTo() kills every node appended since
  /// (including nodes in shards added after the savepoint) and erases the
  /// invocation records registered since, leaving the graph observably
  /// identical to its state at the savepoint. Not thread-safe: call with
  /// no concurrent writers.
  struct Savepoint {
    std::vector<size_t> shard_sizes;
    size_t invocation_count = 0;
  };
  Savepoint TakeSavepoint() const;
  void RollbackTo(const Savepoint& savepoint);

  /// Number of nodes currently in `shard` — a per-shard savepoint for
  /// rolling back a single failed invocation attempt.
  size_t ShardSize(uint32_t shard) const;
  /// Number of shards ever created (dense: ids 0..num_shards()-1).
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// Marks every node of `shard` with index >= `from` dead. Safe to call
  /// from the task that owns the shard while other shards are written.
  void KillShardTail(uint32_t shard, size_t from);
  /// Clears an invocation record whose nodes were discarded: drops its
  /// node lists and m-node reference (the record reports aborted()).
  void AbortInvocation(uint32_t invocation);
  /// Truncates the invocation list to `count` records (WAL-replay
  /// counterpart of the truncation RollbackTo performs).
  void TruncateInvocations(size_t count);

  /// Attaches (or detaches, with nullptr) the durability sink notified of
  /// every mutation; also wires the string pool's intern observer. At most
  /// one sink is supported. The sink must outlive the graph or be
  /// detached first, and the graph must not be moved while attached.
  void AttachWalSink(GraphWalSink* sink);
  GraphWalSink* wal_sink() const { return wal_sink_; }

  /// Per-label alive-node counts, for diagnostics and tests.
  std::vector<std::pair<std::string, size_t>> LabelHistogram() const;

  /// Bytes held by each storage component, for size accounting
  /// (bench_prov_size) and capacity planning.
  struct MemoryStats {
    size_t column_bytes = 0;      // fixed-width SoA columns + parent slots
    size_t edge_arena_bytes = 0;  // overflow parent lists
    size_t csr_bytes = 0;         // sealed children index
    size_t value_bytes = 0;       // sparse v-node value storage
    size_t interner_bytes = 0;    // StringPool arena + index
    size_t invocation_bytes = 0;  // invocation records
    size_t total() const {
      return column_bytes + edge_arena_bytes + csr_bytes + value_bytes +
             interner_bytes + invocation_bytes;
    }
  };
  MemoryStats ComputeMemoryStats() const;

 private:
  friend class ShardWriter;

  internal::NodeColumns& ShardFor(NodeId id) {
    return shards_[NodeShard(id)];
  }

  std::vector<internal::NodeColumns> shards_;
  StringPool pool_;
  std::vector<InvocationInfo> invocations_;
  // Guards invocations_: invocation registration and the per-invocation
  // input/output/state node lists are shared across concurrent tasks
  // (node creation itself is lock-free — each writer owns its shard).
  // Held behind unique_ptr so the graph stays movable.
  std::unique_ptr<std::mutex> invocations_mu_ =
      std::make_unique<std::mutex>();
  GraphWalSink* wal_sink_ = nullptr;
  internal::AtomicFlag sealed_;
};

/// Guard used by the query layer: every operation that needs the children
/// adjacency reports kInvalidArgument on an unsealed graph instead of
/// asserting (which would be UB under NDEBUG).
inline Status RequireSealed(const ProvenanceGraph& graph, const char* op) {
  if (graph.sealed()) return Status::OK();
  return Status::InvalidArgument(
      std::string("graph not sealed: call Seal() before ") + op);
}

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_GRAPH_H_

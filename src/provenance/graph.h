#ifndef LIPSTICK_PROVENANCE_GRAPH_H_
#define LIPSTICK_PROVENANCE_GRAPH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace lipstick {

/// Identifier of a node in a ProvenanceGraph. Ids pack (shard, index) so
/// that concurrent workflow tasks can allocate nodes without coordination:
/// shard s, index i  =>  id = (s+1) << 48 | i. Id 0 (== kNoProvenance) is
/// never allocated and means "no annotation".
using NodeId = uint64_t;

inline constexpr NodeId kInvalidNode = 0;
inline constexpr uint32_t kNoInvocation = 0xffffffffu;

inline uint32_t NodeShard(NodeId id) {
  return static_cast<uint32_t>(id >> 48) - 1;
}
inline uint64_t NodeIndex(NodeId id) { return id & ((1ull << 48) - 1); }
inline NodeId MakeNodeId(uint32_t shard, uint64_t index) {
  return (static_cast<uint64_t>(shard + 1) << 48) | index;
}

/// Node labels. Labels kToken..kZoomedModule follow Section 3 of the paper:
/// semiring operations (+, ·, δ), aggregation structure (⊗, aggregate op),
/// black boxes, and the workflow-level structural nodes.
enum class NodeLabel : uint8_t {
  kToken,             // atomic provenance token (p-node)
  kPlus,              // + : alternative derivation (p-node)
  kTimes,             // · : joint derivation (p-node)
  kDelta,             // δ : duplicate elimination (p-node)
  kTensor,            // ⊗ : value-provenance pairing (v-node)
  kAggregate,         // aggregate operation result, payload = op (v-node)
  kConstValue,        // concrete value carried in the graph (v-node)
  kBlackBox,          // UDF invocation, payload = function name
  kModuleInvocation,  // "m" node, payload = module name
  kZoomedModule,      // collapsed module created by ZoomOut, payload = module
};

/// Structural role in the workflow-level construction of Section 3.1.
/// kIntermediate marks nodes produced by a module's internal Pig Latin
/// computation — exactly the nodes ZoomOut removes (cf. Definition 4.1).
enum class NodeRole : uint8_t {
  kIntermediate,    // inside a module's computation
  kWorkflowInput,   // "I" node: tuple supplied by a workflow input module
  kModuleInput,     // "i" node: · of (tuple, invocation)
  kModuleOutput,    // "o" node: · of (tuple, invocation)
  kModuleState,     // "s" node: · of (state tuple, invocation)
  kStateBase,       // token identifying an initial state tuple
  kInvocation,      // "m" node
  kZoom,            // synthetic node created by ZoomOut
};

const char* NodeLabelToString(NodeLabel label);
const char* NodeRoleToString(NodeRole role);

/// A provenance graph node. `parents` are the nodes this node was derived
/// from (edges point parent -> child in derivation order; we store the
/// incoming side). `children` adjacency is computed by Seal().
struct ProvNode {
  NodeLabel label = NodeLabel::kToken;
  NodeRole role = NodeRole::kIntermediate;
  bool is_value_node = false;   // v-node vs p-node
  bool alive = true;            // false after zoom/deletion materialization
  uint32_t invocation = kNoInvocation;
  std::vector<NodeId> parents;
  std::string payload;          // token / op / function / module name
  Value value;                  // for v-nodes (aggregate results, constants)
};

/// Metadata for one module invocation ("m" node): which module, which
/// workflow node, which execution of the sequence.
struct InvocationInfo {
  std::string module_name;      // module specification name (e.g. "dealer")
  std::string instance_name;    // module identity (e.g. "dealer1")
  uint32_t execution = 0;       // index in the execution sequence
  NodeId m_node = kInvalidNode;
  // Structural node sets recorded during tracking; used by ZoomOut.
  std::vector<NodeId> input_nodes;
  std::vector<NodeId> output_nodes;
  std::vector<NodeId> state_nodes;

  /// True once the invocation's nodes are discarded (AbortInvocation):
  /// the attempt failed and its provenance was rolled back. Aborted
  /// records keep their module/instance names for diagnostics but carry
  /// no graph structure.
  bool aborted() const { return m_node == kInvalidNode; }
};

class ProvenanceGraph;

/// Appends nodes to one shard of a ProvenanceGraph. Each concurrent task
/// owns one ShardWriter; no locking is required because a writer only
/// appends to its own shard and only references already-created nodes.
class ShardWriter {
 public:
  ShardWriter(ProvenanceGraph* graph, uint32_t shard)
      : graph_(graph), shard_(shard) {}

  /// Atomic provenance token, e.g. an input or initial-state tuple id.
  NodeId Token(std::string name, NodeRole role = NodeRole::kIntermediate);
  /// + node over `parents` (alternative derivation).
  NodeId Plus(std::vector<NodeId> parents);
  /// · node over `parents` (joint derivation).
  NodeId Times(std::vector<NodeId> parents,
               NodeRole role = NodeRole::kIntermediate,
               uint32_t invocation = kNoInvocation);
  /// δ node over `parents` (duplicate elimination; GROUP/COGROUP/DISTINCT).
  NodeId Delta(std::vector<NodeId> parents);
  /// ⊗ v-node pairing a value v-node with a tuple p-node.
  NodeId Tensor(NodeId value_node, NodeId prov_node);
  /// Aggregate-result v-node, payload = op name ("COUNT", "SUM", ...).
  NodeId Aggregate(std::string op, std::vector<NodeId> parents, Value result);
  /// v-node carrying a constant value being aggregated.
  NodeId ConstValue(Value v);
  /// Black-box (UDF) node.
  NodeId BlackBox(std::string function, std::vector<NodeId> parents);

  /// Registers a module invocation and creates its "m" node.
  uint32_t BeginInvocation(std::string module_name, std::string instance_name,
                           uint32_t execution);
  NodeId InvocationNode(uint32_t invocation) const;

  /// Workflow-input "I" node for an externally supplied tuple.
  NodeId WorkflowInput(std::string token_name);
  /// Module input "i" node: ·(tuple, m-node); records it on the invocation.
  NodeId ModuleInput(uint32_t invocation, NodeId tuple_node);
  /// Module output "o" node: ·(tuple, m-node); records it on the invocation.
  NodeId ModuleOutput(uint32_t invocation, NodeId tuple_node);
  /// Module state "s" node: ·(state tuple, m-node).
  NodeId ModuleState(uint32_t invocation, NodeId tuple_node);

  /// Sets the invocation tag of subsequently interpreted intermediate nodes.
  void set_current_invocation(uint32_t inv) { current_invocation_ = inv; }
  uint32_t current_invocation() const { return current_invocation_; }

  /// Lazy state wrapping. While a state scope is active, ResolveParent
  /// wraps annotations in `eligible` (the module's current state tuples)
  /// with an "s" node ·(tuple, m) on first use — so state tuples that never
  /// contribute to a derivation cost no graph nodes, matching the paper's
  /// observation that outputs depend on only ~2% of the state (§5.5).
  void BeginStateScope(uint32_t invocation,
                       const std::unordered_set<NodeId>* eligible);
  void EndStateScope();

  /// Returns the annotation to use as a derivation parent: the lazily
  /// created state node if `annot` is an eligible state tuple, else
  /// `annot` itself.
  NodeId ResolveParent(NodeId annot);

  uint32_t shard() const { return shard_; }

 private:
  NodeId Append(ProvNode node);

  ProvenanceGraph* graph_;
  uint32_t shard_;
  uint32_t current_invocation_ = kNoInvocation;
  uint32_t state_scope_invocation_ = kNoInvocation;
  const std::unordered_set<NodeId>* state_eligible_ = nullptr;
  std::unordered_map<NodeId, NodeId> state_wrap_cache_;
};

/// The provenance graph for a (sequence of) workflow execution(s).
///
/// Construction phase: ShardWriters append nodes recording only parent
/// (incoming) edges. Query phase: Seal() derives the children adjacency;
/// zoom / deletion / subgraph operations then run on the sealed graph.
class ProvenanceGraph {
 public:
  ProvenanceGraph() { shards_.emplace_back(); }

  /// Adds a shard and returns a writer for it. Not thread-safe; create all
  /// writers before spawning tasks.
  ShardWriter AddShard();
  /// Writer for the default shard 0 (single-threaded use).
  ShardWriter writer() { return ShardWriter(this, 0); }

  const ProvNode& node(NodeId id) const {
    return shards_[NodeShard(id)].nodes[NodeIndex(id)];
  }
  ProvNode& mutable_node(NodeId id) {
    return shards_[NodeShard(id)].nodes[NodeIndex(id)];
  }
  bool Contains(NodeId id) const;

  /// Total nodes ever created (including dead ones).
  size_t num_nodes() const;
  /// Number of currently-alive nodes.
  size_t num_alive() const;
  /// Number of edges among alive nodes.
  size_t num_edges() const;

  /// Iterates over all node ids (alive or dead) in a deterministic order.
  std::vector<NodeId> AllNodeIds() const;

  /// Builds the children adjacency. Must be called after tracking finishes
  /// and before Children() / queries. Re-runs after mutations if dirty.
  void Seal();
  bool sealed() const { return sealed_; }
  void MarkDirty() { sealed_ = false; }

  /// Outgoing edges of `id`; graph must be sealed.
  const std::vector<NodeId>& Children(NodeId id) const;

  /// Registered invocations, indexed by invocation id.
  const std::vector<InvocationInfo>& invocations() const {
    return invocations_;
  }
  InvocationInfo& mutable_invocation(uint32_t id) { return invocations_[id]; }

  /// Appends a fully-formed invocation record (deserialization path).
  /// Returns its invocation id.
  uint32_t RestoreInvocation(InvocationInfo info);

  /// Invocations that still carry graph structure (not aborted).
  size_t num_live_invocations() const;

  /// A marker of the graph's extent, used to discard the provenance of
  /// failed or aborted workflow executions. Capture with Savepoint()
  /// before tracking begins; RollbackTo() kills every node appended since
  /// (including nodes in shards added after the savepoint) and erases the
  /// invocation records registered since, leaving the graph observably
  /// identical to its state at the savepoint. Not thread-safe: call with
  /// no concurrent writers.
  struct Savepoint {
    std::vector<size_t> shard_sizes;
    size_t invocation_count = 0;
  };
  Savepoint TakeSavepoint() const;
  void RollbackTo(const Savepoint& savepoint);

  /// Number of nodes currently in `shard` — a per-shard savepoint for
  /// rolling back a single failed invocation attempt.
  size_t ShardSize(uint32_t shard) const;
  /// Marks every node of `shard` with index >= `from` dead. Safe to call
  /// from the task that owns the shard while other shards are written.
  void KillShardTail(uint32_t shard, size_t from);
  /// Clears an invocation record whose nodes were discarded: drops its
  /// node lists and m-node reference (the record reports aborted()).
  void AbortInvocation(uint32_t invocation);

  /// Per-label alive-node counts, for diagnostics and tests.
  std::vector<std::pair<std::string, size_t>> LabelHistogram() const;

 private:
  friend class ShardWriter;

  struct Shard {
    std::vector<ProvNode> nodes;
    std::vector<std::vector<NodeId>> children;  // built by Seal()
  };

  std::vector<Shard> shards_;
  std::vector<InvocationInfo> invocations_;
  // Guards invocations_: invocation registration and the per-invocation
  // input/output/state node lists are shared across concurrent tasks
  // (node creation itself is lock-free — each writer owns its shard).
  // Held behind unique_ptr so the graph stays movable.
  std::unique_ptr<std::mutex> invocations_mu_ =
      std::make_unique<std::mutex>();
  bool sealed_ = false;
};

/// Guard used by the query layer: every operation that needs the children
/// adjacency reports kInvalidArgument on an unsealed graph instead of
/// asserting (which would be UB under NDEBUG).
inline Status RequireSealed(const ProvenanceGraph& graph, const char* op) {
  if (graph.sealed()) return Status::OK();
  return Status::InvalidArgument(
      std::string("graph not sealed: call Seal() before ") + op);
}

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_GRAPH_H_

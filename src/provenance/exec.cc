#include "provenance/exec.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/str_util.h"
#include "provenance/deletion.h"
#include "provenance/query.h"
#include "provenance/semiring.h"

namespace lipstick {

namespace {

/// snprintf into a std::string accumulator (query output is rendered to a
/// string so batch drivers and the wire protocol can ship it whole).
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

NodePredicate PatternPredicate(const PlanPattern& pattern) {
  return [pattern](NodeId, const NodeView& n) {
    return pattern.Matches(n.label(), n.role(), n.payload());
  };
}

std::string JoinIds(const std::vector<NodeId>& ids) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (NodeId id : ids) parts.push_back(StrCat(id));
  return Join(parts, ",");
}

void RenderStatsBlock(std::string* out, const GraphStats& stats,
                      const std::vector<std::pair<std::string, size_t>>&
                          histogram) {
  Appendf(out, "nodes:        %zu\n", stats.nodes);
  Appendf(out, "edges:        %zu\n", stats.edges);
  Appendf(out, "tokens:       %zu\n", stats.tokens);
  Appendf(out, "invocations:  %zu\n", stats.invocations);
  Appendf(out, "max fan-in:   %zu\n", stats.max_fan_in);
  Appendf(out, "max fan-out:  %zu\n", stats.max_fan_out);
  Appendf(out, "depth:        %zu\n", stats.depth);
  for (const auto& [label, count] : histogram) {
    Appendf(out, "  label %-10s %zu\n", label.c_str(), count);
  }
}

void RenderFindLine(std::string* out, NodeId id, NodeLabel label,
                    NodeRole role, std::string_view payload) {
  Appendf(out, "%llu  %-9s %-13s ", static_cast<unsigned long long>(id),
          NodeLabelToString(label), NodeRoleToString(role));
  out->append(payload);
  out->push_back('\n');
}

/// ------------------------------------------------------------------
/// Terminals on a bare snapshot (plans without view operators, and the
/// naive executor after it materialized every stage). These are the
/// historical single-op renderers, byte for byte.
/// ------------------------------------------------------------------

Result<std::string> RenderTerminalOnSnapshot(const GraphSnapshot& snap,
                                             const PlanOp& op, int threads) {
  std::string out;
  switch (op.kind) {
    case PlanOpKind::kStats: {
      Result<GraphStats> stats = ComputeGraphStats(snap);
      if (!stats.ok()) return stats.status();
      RenderStatsBlock(&out, *stats, snap.graph().LabelHistogram());
      return out;
    }
    case PlanOpKind::kFind: {
      std::vector<NodeId> found =
          FindNodes(snap, PatternPredicate(op.pattern), threads);
      for (NodeId id : found) {
        NodeView n = snap.node(id);
        RenderFindLine(&out, id, n.label(), n.role(), n.payload());
      }
      Appendf(&out, "(%zu nodes)\n", found.size());
      return out;
    }
    case PlanOpKind::kExpr:
      out = ProvExpressionString(snap, op.target, 12);
      out.push_back('\n');
      return out;
    case PlanOpKind::kDepends: {
      Result<bool> dep = DependsOn(snap, op.target, op.source);
      if (!dep.ok()) return dep.status();
      out = *dep ? "yes\n" : "no\n";
      return out;
    }
    default:
      return Status::InvalidArgument("not a terminal operation");
  }
}

/// ------------------------------------------------------------------
/// Terminals on a composed view: the same algorithms re-read through the
/// view's adjacency (mask + synthetic zoom nodes + parent rewirings), so
/// their output matches running the terminal on the materialized graph.
/// ------------------------------------------------------------------

/// Deletion propagation over the view's adjacency; mirrors
/// ComputeDeletionSet (deletion.cc) with Contains -> VisibleOrSynthetic.
std::vector<NodeId> ViewDeletionOrder(const GraphView& view,
                                      const std::vector<NodeId>& seeds) {
  GraphView::ChildOverlay overlay = view.BuildChildOverlay();
  std::unordered_set<NodeId> deleted;
  std::vector<NodeId> order;
  std::unordered_map<NodeId, size_t> lost_edges;
  for (NodeId s : seeds) {
    if (view.VisibleOrSynthetic(s) && deleted.insert(s).second) {
      order.push_back(s);
    }
  }
  auto alive_parent_count = [&view](NodeId id) {
    size_t n = 0;
    for (NodeId p : view.ParentsOf(id)) {
      n += view.VisibleOrSynthetic(p) ? 1 : 0;
    }
    return n;
  };
  size_t head = 0;
  while (head < order.size()) {
    NodeId dead = order[head++];
    view.ForEachChild(dead, overlay, [&](NodeId child) {
      if (deleted.count(child)) return;
      size_t lost = ++lost_edges[child];
      NodeLabel cl = view.IsSynthetic(child)
                         ? NodeLabel::kZoomedModule
                         : view.snapshot().node(child).label();
      bool joint = cl == NodeLabel::kTimes || cl == NodeLabel::kTensor;
      if (joint || lost >= alive_parent_count(child)) {
        deleted.insert(child);
        order.push_back(child);
      }
    });
  }
  return order;
}

Result<GraphStats> ComputeViewStats(const GraphView& view) {
  const GraphSnapshot& snap = view.snapshot();
  GraphStats stats;
  stats.invocations = snap.graph().num_live_invocations();
  // Depth fixpoint exactly as ComputeGraphStats, with a side column for
  // the synthetic zoom nodes.
  std::vector<std::vector<size_t>> depth(snap.num_shards());
  for (uint32_t s = 0; s < snap.num_shards(); ++s) {
    depth[s].assign(snap.ShardSize(s), 0);
  }
  std::vector<size_t> syn_depth(view.num_synthetic(), 0);
  auto depth_at = [&](NodeId id) -> size_t& {
    if (view.IsSynthetic(id)) return syn_depth[view.SyntheticIndex(id)];
    return depth[NodeShard(id)][NodeIndex(id)];
  };
  bool changed = true;
  while (changed) {
    changed = false;
    view.ForEachVisibleNode([&](NodeId id, const GraphView::SyntheticNode*) {
      size_t best = 0;
      for (NodeId p : view.ParentsOf(id)) {
        if (view.VisibleOrSynthetic(p)) {
          best = std::max(best, depth_at(p) + 1);
        }
      }
      if (best > depth_at(id)) {
        depth_at(id) = best;
        changed = true;
      }
    });
  }
  // Fan-out has no CSR to read (the view never seals), so accumulate it
  // from the parent side: every visible edge child->parent is one out-edge
  // of the parent.
  std::vector<std::vector<size_t>> fan_out(snap.num_shards());
  for (uint32_t s = 0; s < snap.num_shards(); ++s) {
    fan_out[s].assign(snap.ShardSize(s), 0);
  }
  std::vector<size_t> syn_fan_out(view.num_synthetic(), 0);
  auto fan_out_at = [&](NodeId id) -> size_t& {
    if (view.IsSynthetic(id)) return syn_fan_out[view.SyntheticIndex(id)];
    return fan_out[NodeShard(id)][NodeIndex(id)];
  };
  view.ForEachVisibleNode(
      [&](NodeId id, const GraphView::SyntheticNode* syn) {
        ++stats.nodes;
        size_t fan_in = 0;
        for (NodeId p : view.ParentsOf(id)) {
          if (!view.VisibleOrSynthetic(p)) continue;
          ++fan_in;
          ++fan_out_at(p);
        }
        stats.edges += fan_in;
        stats.max_fan_in = std::max(stats.max_fan_in, fan_in);
        if (syn == nullptr &&
            snap.node(id).label() == NodeLabel::kToken) {
          ++stats.tokens;
        }
        stats.depth = std::max(stats.depth, depth_at(id));
      });
  view.ForEachVisibleNode([&](NodeId id, const GraphView::SyntheticNode*) {
    stats.max_fan_out = std::max(stats.max_fan_out, fan_out_at(id));
  });
  return stats;
}

std::vector<std::pair<std::string, size_t>> ViewLabelHistogram(
    const GraphView& view) {
  std::map<std::string, size_t> hist;
  view.ForEachVisibleNode(
      [&](NodeId id, const GraphView::SyntheticNode* syn) {
        NodeLabel label = syn != nullptr
                              ? NodeLabel::kZoomedModule
                              : view.snapshot().node(id).label();
        ++hist[NodeLabelToString(label)];
      });
  return {hist.begin(), hist.end()};
}

/// Mirror of semiring.cc's ExprString over the view adjacency.
std::string ViewExprString(const GraphView& view, NodeId id, int depth) {
  if (depth <= 0) return "...";
  auto join_parents = [&](const char* sep) {
    std::vector<std::string> parts;
    for (NodeId p : view.ParentsOf(id)) {
      if (view.VisibleOrSynthetic(p)) {
        parts.push_back(ViewExprString(view, p, depth - 1));
      }
    }
    return Join(parts, sep);
  };
  if (view.IsSynthetic(id)) {
    const GraphView::SyntheticNode& z =
        view.synthetic_nodes()[view.SyntheticIndex(id)];
    return StrCat("M<", z.module, ">(", join_parents(", "), ")");
  }
  NodeView n = view.snapshot().node(id);
  switch (n.label()) {
    case NodeLabel::kToken:
      return n.payload().empty() ? std::string("x?")
                                 : std::string(n.payload());
    case NodeLabel::kPlus:
      return StrCat("(", join_parents(" + "), ")");
    case NodeLabel::kTimes:
      return StrCat("(", join_parents(" * "), ")");
    case NodeLabel::kDelta:
      return StrCat("delta(", join_parents(" + "), ")");
    case NodeLabel::kTensor:
      return StrCat("(", join_parents(" (x) "), ")");
    case NodeLabel::kAggregate:
      return StrCat(n.payload(), "[", join_parents(", "), "]");
    case NodeLabel::kConstValue:
      return n.value().ToString();
    case NodeLabel::kBlackBox:
      return StrCat(n.payload(), "(", join_parents(", "), ")");
    case NodeLabel::kModuleInvocation:
      return StrCat("m<", n.payload(), ">");
    case NodeLabel::kZoomedModule:
      return StrCat("M<", n.payload(), ">(", join_parents(", "), ")");
  }
  return "?";
}

Result<std::string> RenderTerminalOnView(const GraphView& view,
                                         const PlanOp& op) {
  std::string out;
  switch (op.kind) {
    case PlanOpKind::kStats: {
      Result<GraphStats> stats = ComputeViewStats(view);
      if (!stats.ok()) return stats.status();
      RenderStatsBlock(&out, *stats, ViewLabelHistogram(view));
      return out;
    }
    case PlanOpKind::kFind: {
      size_t count = 0;
      view.ForEachVisibleNode(
          [&](NodeId id, const GraphView::SyntheticNode* syn) {
            NodeLabel label;
            NodeRole role;
            std::string_view payload;
            if (syn != nullptr) {
              label = NodeLabel::kZoomedModule;
              role = NodeRole::kZoom;
              payload = syn->module;
            } else {
              NodeView n = view.snapshot().node(id);
              label = n.label();
              role = n.role();
              payload = n.payload();
            }
            if (!op.pattern.Matches(label, role, payload)) return;
            ++count;
            RenderFindLine(&out, id, label, role, payload);
          });
      Appendf(&out, "(%zu nodes)\n", count);
      return out;
    }
    case PlanOpKind::kExpr:
      out = view.VisibleOrSynthetic(op.target)
                ? ViewExprString(view, op.target, 12)
                : "0";
      out.push_back('\n');
      return out;
    case PlanOpKind::kDepends: {
      if (!view.VisibleOrSynthetic(op.target) ||
          !view.VisibleOrSynthetic(op.source)) {
        return std::string("no\n");
      }
      if (op.target == op.source) return std::string("yes\n");
      std::vector<NodeId> deleted = ViewDeletionOrder(view, {op.source});
      bool dep = std::find(deleted.begin(), deleted.end(), op.target) !=
                 deleted.end();
      return std::string(dep ? "yes\n" : "no\n");
    }
    default:
      return Status::InvalidArgument("not a terminal operation");
  }
}

/// A pipeline ending in a view operator renders that operator's summary
/// line — for the single-op forms, the historical output byte for byte.
std::string RenderViewSummary(const PlanOp& op, size_t num_visible,
                              size_t last_removed) {
  std::string out;
  switch (op.kind) {
    case PlanOpKind::kZoomOut:
      Appendf(&out, "zoomed out of %zu module(s); %zu nodes remain\n",
              op.modules.size(), num_visible);
      return out;
    case PlanOpKind::kSubgraph:
      Appendf(&out, "subgraph of %s: %zu nodes\n", JoinIds(op.nodes).c_str(),
              num_visible);
      return out;
    case PlanOpKind::kRestrict:
      Appendf(&out, "restricted to %zu nodes\n", num_visible);
      return out;
    case PlanOpKind::kDeleteProp:
      Appendf(&out, "deleted %zu node(s); %zu nodes remain\n", last_removed,
              num_visible);
      return out;
    default:
      return out;
  }
}

/// Applies one view stage; returns the DeleteProp removal count (0 for the
/// other stage kinds).
Result<size_t> ApplyStage(GraphView* view, const PlanOp& op, int threads) {
  switch (op.kind) {
    case PlanOpKind::kZoomOut:
      LIPSTICK_RETURN_IF_ERROR(view->ApplyZoomOut(op.modules, threads));
      return size_t{0};
    case PlanOpKind::kSubgraph:
      LIPSTICK_RETURN_IF_ERROR(
          view->ApplySubgraph(op.nodes, op.dir != SubgraphDir::kDown,
                              op.dir != SubgraphDir::kUp));
      return size_t{0};
    case PlanOpKind::kRestrict: {
      const PlanPattern& pattern = op.pattern;
      LIPSTICK_RETURN_IF_ERROR(view->ApplyRestrict(
          [&pattern](NodeLabel l, NodeRole r, std::string_view p) {
            return pattern.Matches(l, r, p);
          }));
      return size_t{0};
    }
    case PlanOpKind::kDeleteProp: {
      size_t removed = 0;
      LIPSTICK_RETURN_IF_ERROR(view->ApplyDeleteProp(op.nodes, &removed));
      return removed;
    }
    default:
      return Status::InvalidArgument("not a view operation");
  }
}

}  // namespace

std::string PlanViewCache::Key(const std::string& scope,
                               const std::string& prefix) {
  std::string key = scope;
  key.push_back('\x1f');
  key.append(prefix);
  return key;
}

std::shared_ptr<const PlanViewCache::Entry> PlanViewCache::GetLongestPrefix(
    const std::string& scope, const std::vector<std::string>& prefixes,
    size_t* index) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = prefixes.size(); i-- > 0;) {
    auto it = index_.find(Key(scope, prefixes[i]));
    if (it == index_.end()) continue;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    *index = i;
    return it->second->entry;
  }
  ++misses_;
  return nullptr;
}

void PlanViewCache::Put(const std::string& scope, const std::string& prefix,
                        Entry entry) {
  if (capacity_ == 0) return;
  std::string key = Key(scope, prefix);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::make_shared<const Entry>(std::move(entry));
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::make_shared<const Entry>(std::move(entry))});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t PlanViewCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t PlanViewCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanViewCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Result<std::string> ExecutePlan(const GraphSnapshot& snap,
                                const OptimizedPlan& opt,
                                const ExecOptions& opts) {
  const Plan& plan = opt.plan;
  if (plan.ops.empty()) {
    return Status::InvalidArgument("empty plan");
  }
  int threads = opts.threads < 1 ? 1 : opts.threads;
  size_t view_ops = plan.NumViewOps();
  if (view_ops == 0) {
    return RenderTerminalOnSnapshot(snap, plan.ops.back(), threads);
  }
  std::optional<GraphView> view;
  size_t start = 0;
  size_t last_removed = 0;
  if (opts.cache != nullptr) {
    size_t idx = 0;
    std::shared_ptr<const PlanViewCache::Entry> hit =
        opts.cache->GetLongestPrefix(opts.scope, opt.view_prefixes, &idx);
    if (hit != nullptr) {
      view = hit->view.Clone();
      last_removed = hit->last_stage_removed;
      start = idx + 1;
    }
  }
  if (!view.has_value()) {
    Result<GraphView> identity = GraphView::MakeIdentity(snap);
    if (!identity.ok()) return identity.status();
    view = std::move(*identity);
  }
  for (size_t i = start; i < view_ops; ++i) {
    Result<size_t> removed = ApplyStage(&*view, plan.ops[i], threads);
    if (!removed.ok()) return removed.status();
    last_removed = *removed;
    if (opts.cache != nullptr) {
      opts.cache->Put(
          opts.scope, opt.view_prefixes[i],
          PlanViewCache::Entry{view->Clone(), last_removed, opts.pin});
    }
  }
  if (plan.HasTerminal()) {
    return RenderTerminalOnView(*view, plan.ops.back());
  }
  return RenderViewSummary(plan.ops[view_ops - 1], view->num_visible(),
                           last_removed);
}

Result<std::string> ExecutePlanNaive(const GraphSnapshot& snap,
                                     const Plan& plan, int threads) {
  if (plan.ops.empty()) {
    return Status::InvalidArgument("empty plan");
  }
  if (threads < 1) threads = 1;
  size_t view_ops = plan.NumViewOps();
  const GraphSnapshot* cur = &snap;
  std::optional<GraphSnapshot> owned_snap;
  size_t last_removed = 0;
  size_t final_visible = 0;
  for (size_t i = 0; i < view_ops; ++i) {
    Result<GraphView> view = GraphView::MakeIdentity(*cur);
    if (!view.ok()) return view.status();
    Result<size_t> removed = ApplyStage(&*view, plan.ops[i], threads);
    if (!removed.ok()) return removed.status();
    last_removed = *removed;
    final_visible = view->num_visible();
    Result<ProvenanceGraph> graph = view->Materialize();
    if (!graph.ok()) return graph.status();
    auto owner =
        std::make_shared<const ProvenanceGraph>(std::move(*graph));
    Result<GraphSnapshot> next = GraphSnapshot::Capture(owner);
    if (!next.ok()) return next.status();
    owned_snap = std::move(*next);
    cur = &*owned_snap;
  }
  if (plan.HasTerminal()) {
    return RenderTerminalOnSnapshot(*cur, plan.ops.back(), threads);
  }
  return RenderViewSummary(plan.ops[view_ops - 1], final_visible,
                           last_removed);
}

Result<GraphView> BuildPlanView(const GraphSnapshot& snap, const Plan& plan,
                                int threads) {
  if (threads < 1) threads = 1;
  Result<GraphView> identity = GraphView::MakeIdentity(snap);
  if (!identity.ok()) return identity.status();
  GraphView view = std::move(*identity);
  for (size_t i = 0; i < plan.NumViewOps(); ++i) {
    Result<size_t> removed = ApplyStage(&view, plan.ops[i], threads);
    if (!removed.ok()) return removed.status();
  }
  return view;
}

}  // namespace lipstick

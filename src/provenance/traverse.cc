#include "provenance/traverse.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lipstick {

namespace internal {

void RecordTraversal(TraverseDirection dir, size_t visited, int threads) {
  if (!obs::MetricsRegistry::Enabled()) return;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  static const obs::MetricId kTraversals =
      metrics.RegisterCounter("query.traversals");
  static const obs::MetricId kVisited =
      metrics.RegisterCounter("query.traverse_visited");
  static const obs::MetricId kParallel =
      metrics.RegisterCounter("query.traversals_parallel");
  (void)dir;
  metrics.CounterAdd(kTraversals);
  metrics.CounterAdd(kVisited, visited);
  if (threads > 1) metrics.CounterAdd(kParallel);
}

}  // namespace internal

namespace {

/// Packs a half-open chunk range [begin, end) into one atomic word so both
/// bounds move together under CAS.
constexpr uint64_t PackRange(uint32_t begin, uint32_t end) {
  return (static_cast<uint64_t>(begin) << 32) | end;
}
constexpr uint32_t RangeBegin(uint64_t r) {
  return static_cast<uint32_t>(r >> 32);
}
constexpr uint32_t RangeEnd(uint64_t r) {
  return static_cast<uint32_t>(r);
}

/// Work-stealing distribution of a static chunk space: every worker owns a
/// contiguous slice; owners pop chunks from the front of their slice,
/// thieves CAS away the back half of a victim's remainder. All transfers
/// go through the packed atomic, so a chunk is processed exactly once.
class RangeStealer {
 public:
  RangeStealer(uint32_t num_chunks, int workers) : slots_(workers) {
    uint32_t per = num_chunks / workers;
    uint32_t rem = num_chunks % workers;
    uint32_t begin = 0;
    for (int w = 0; w < workers; ++w) {
      uint32_t take = per + (w < static_cast<int>(rem) ? 1 : 0);
      slots_[w].range.store(PackRange(begin, begin + take),
                            std::memory_order_relaxed);
      begin += take;
    }
  }

  /// Next chunk for `worker`: own slice first, then steal. Returns false
  /// when no work is visible anywhere (the caller's loop ends).
  bool Next(int worker, uint32_t* chunk) {
    if (PopFront(&slots_[worker], chunk)) return true;
    int workers = static_cast<int>(slots_.size());
    for (int i = 1; i < workers; ++i) {
      Slot& victim = slots_[(worker + i) % workers];
      uint32_t begin, end;
      if (!StealBackHalf(&victim, &begin, &end)) continue;
      *chunk = begin;
      if (begin + 1 < end) {
        // Own slot is empty, and CAS transitions never fire on an empty
        // slot, so installing the remainder with a plain store is safe.
        slots_[worker].range.store(PackRange(begin + 1, end),
                                   std::memory_order_release);
      }
      return true;
    }
    return false;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> range{0};
  };

  static bool PopFront(Slot* slot, uint32_t* chunk) {
    uint64_t cur = slot->range.load(std::memory_order_relaxed);
    while (true) {
      uint32_t begin = RangeBegin(cur), end = RangeEnd(cur);
      if (begin >= end) return false;
      if (slot->range.compare_exchange_weak(cur, PackRange(begin + 1, end),
                                            std::memory_order_acq_rel)) {
        *chunk = begin;
        return true;
      }
    }
  }

  static bool StealBackHalf(Slot* victim, uint32_t* begin_out,
                            uint32_t* end_out) {
    uint64_t cur = victim->range.load(std::memory_order_relaxed);
    while (true) {
      uint32_t begin = RangeBegin(cur), end = RangeEnd(cur);
      // A single remaining chunk stays with its owner: stealing it would
      // yield an empty back half whose `end` chunk belongs to someone else.
      if (end <= begin + 1) return false;
      uint32_t mid = begin + (end - begin + 1) / 2;  // victim keeps front
      if (victim->range.compare_exchange_weak(cur, PackRange(begin, mid),
                                              std::memory_order_acq_rel)) {
        *begin_out = mid;
        *end_out = end;
        return true;
      }
    }
  }

  std::vector<Slot> slots_;
};

/// Runs `body(worker)` on `workers` threads (worker 0 on the caller) and
/// joins them all before returning.
template <typename Body>
void RunWorkers(int workers, const Body& body) {
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back([&body, w] { body(w); });
  }
  body(0);
  for (std::thread& t : threads) t.join();
}

}  // namespace

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  int workers = std::min<int>(num_threads, static_cast<int>(n));
  if (workers <= 1) {
    fn(0, n, 0);
    return;
  }
  // ~8 chunks per worker keeps the steal traffic negligible while leaving
  // enough granularity for imbalanced chunks to migrate.
  size_t chunk_size =
      std::max<size_t>(1, n / (static_cast<size_t>(workers) * 8));
  uint32_t num_chunks = static_cast<uint32_t>((n + chunk_size - 1) /
                                              chunk_size);
  RangeStealer stealer(num_chunks, workers);
  // The spawner's cancel token is re-installed on every worker so chunk
  // bodies (and any traversal they run) observe the same deadline. A fired
  // token stops workers claiming new chunks; completed chunks stay done.
  CancelToken* token = CurrentCancelToken();
  RunWorkers(workers, [&](int w) {
    CancelScope scope(token);
    uint32_t chunk;
    while (!(token != nullptr && token->Poll()) && stealer.Next(w, &chunk)) {
      size_t begin = static_cast<size_t>(chunk) * chunk_size;
      size_t end = std::min(n, begin + chunk_size);
      fn(begin, end, w);
    }
  });
}

void ParallelForNodes(const GraphSnapshot& snap, int num_threads,
                      const std::function<void(uint32_t, uint64_t, uint64_t,
                                               int)>& fn) {
  // Shards are flattened into one global index space so small shards share
  // chunks and large shards split across workers.
  std::vector<uint64_t> offsets(snap.num_shards() + 1, 0);
  for (uint32_t s = 0; s < snap.num_shards(); ++s) {
    offsets[s + 1] = offsets[s] + snap.ShardSize(s);
  }
  ParallelFor(offsets.back(), num_threads,
              [&](size_t begin, size_t end, int worker) {
                for (uint32_t s = 0; s < snap.num_shards(); ++s) {
                  uint64_t lo = std::max<uint64_t>(begin, offsets[s]);
                  uint64_t hi = std::min<uint64_t>(end, offsets[s + 1]);
                  if (lo < hi) {
                    fn(s, lo - offsets[s], hi - offsets[s], worker);
                  }
                }
              });
}

std::vector<NodeId> ParallelReach(const GraphSnapshot& snap,
                                  std::span<const NodeId> seeds,
                                  TraverseDirection dir, int num_threads,
                                  VisitedSet& visited) {
  std::vector<NodeId> result;
  if (num_threads <= 1) {
    Traverse(snap, seeds, dir, visited, [&result](NodeId n, NodeId) {
      result.push_back(n);
      return Visit::kExpand;
    });
    return result;
  }

  obs::ObsSpan span("query", "parallel_reach");
  const int workers = num_threads;
  std::vector<NodeId> frontier(seeds.begin(), seeds.end());
  std::vector<std::vector<NodeId>> next(workers);
  std::atomic<size_t> cursor{0};
  std::atomic<bool> done{false};
  constexpr size_t kGrab = 128;  // frontier entries claimed per fetch_add

  // Level-synchronous BFS: workers expand disjoint slices of the current
  // frontier into private next-frontiers; the barrier's completion step
  // (run by exactly one thread) concatenates them into the next level.
  std::barrier sync(workers, [&]() noexcept {
    frontier.clear();
    for (std::vector<NodeId>& local : next) {
      frontier.insert(frontier.end(), local.begin(), local.end());
      local.clear();
    }
    result.insert(result.end(), frontier.begin(), frontier.end());
    cursor.store(0, std::memory_order_relaxed);
    if (frontier.empty()) done.store(true, std::memory_order_relaxed);
  });

  // Workers poll the spawner's cancel token once per expanded frontier
  // node; after it fires they stop producing next-frontier entries, the
  // frontier drains, and every worker exits through the normal barrier.
  CancelToken* token = CurrentCancelToken();
  RunWorkers(workers, [&](int w) {
    CancelScope scope(token);
    bool cancelled = false;
    while (true) {
      size_t start;
      while (!cancelled &&
             (start = cursor.fetch_add(kGrab, std::memory_order_relaxed)) <
                 frontier.size()) {
        size_t end = std::min(frontier.size(), start + kGrab);
        for (size_t i = start; i < end; ++i) {
          if (token != nullptr && token->Poll()) {
            cancelled = true;
            break;
          }
          for (NodeId n : Neighbors(snap, frontier[i], dir)) {
            if (!snap.Contains(n) || visited.TestAndSetAtomic(n)) continue;
            next[w].push_back(n);
          }
        }
      }
      sync.arrive_and_wait();
      if (done.load(std::memory_order_relaxed)) break;
    }
  });

  span.Arg("visited", static_cast<uint64_t>(result.size()));
  span.Arg("threads", static_cast<uint64_t>(workers));
  internal::RecordTraversal(dir, result.size(), workers);
  return result;
}

}  // namespace lipstick

#include "provenance/semiring.h"

#include "common/str_util.h"

namespace lipstick {

Monomial Monomial::Var(const std::string& token) {
  Monomial m;
  m.vars_[token] = 1;
  return m;
}

Monomial Monomial::Times(const Monomial& other) const {
  Monomial out = *this;
  for (const auto& [tok, exp] : other.vars_) out.vars_[tok] += exp;
  return out;
}

std::string Monomial::ToString() const {
  if (vars_.empty()) return "1";
  std::vector<std::string> parts;
  for (const auto& [tok, exp] : vars_) {
    parts.push_back(exp == 1 ? tok : StrCat(tok, "^", exp));
  }
  return Join(parts, "*");
}

Polynomial Polynomial::One() {
  Polynomial p;
  p.terms_[Monomial()] = 1;
  return p;
}

Polynomial Polynomial::Var(const std::string& token) {
  Polynomial p;
  p.terms_[Monomial::Var(token)] = 1;
  return p;
}

Polynomial Polynomial::Plus(const Polynomial& other) const {
  Polynomial out = *this;
  for (const auto& [m, c] : other.terms_) out.terms_[m] += c;
  return out;
}

Polynomial Polynomial::Times(const Polynomial& other) const {
  Polynomial out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : other.terms_) {
      out.terms_[ma.Times(mb)] += ca * cb;
    }
  }
  return out;
}

uint64_t Polynomial::Eval(
    const std::map<std::string, uint64_t>& assignment) const {
  uint64_t total = 0;
  for (const auto& [m, c] : terms_) {
    uint64_t term = c;
    for (const auto& [tok, exp] : m.vars()) {
      auto it = assignment.find(tok);
      uint64_t v = it == assignment.end() ? 1 : it->second;
      for (uint32_t e = 0; e < exp; ++e) term *= v;
    }
    total += term;
  }
  return total;
}

std::string Polynomial::ToString() const {
  if (terms_.empty()) return "0";
  std::vector<std::string> parts;
  for (const auto& [m, c] : terms_) {
    if (c == 1) {
      parts.push_back(m.ToString());
    } else if (m.vars().empty()) {
      parts.push_back(StrCat(c));
    } else {
      parts.push_back(StrCat(c, "*", m.ToString()));
    }
  }
  return Join(parts, " + ");
}

namespace {

std::string ExprString(const GraphSnapshot& g, NodeId id, int depth) {
  if (depth <= 0) return "...";
  NodeView n = g.node(id);
  auto join_parents = [&](const char* sep) {
    std::vector<std::string> parts;
    for (NodeId p : g.ParentsOf(id)) {
      if (g.Contains(p)) parts.push_back(ExprString(g, p, depth - 1));
    }
    return Join(parts, sep);
  };
  switch (n.label()) {
    case NodeLabel::kToken:
      return n.payload().empty() ? std::string("x?") : std::string(n.payload());
    case NodeLabel::kPlus:
      return StrCat("(", join_parents(" + "), ")");
    case NodeLabel::kTimes:
      return StrCat("(", join_parents(" * "), ")");
    case NodeLabel::kDelta:
      return StrCat("delta(", join_parents(" + "), ")");
    case NodeLabel::kTensor:
      return StrCat("(", join_parents(" (x) "), ")");
    case NodeLabel::kAggregate:
      return StrCat(n.payload(), "[", join_parents(", "), "]");
    case NodeLabel::kConstValue:
      return n.value().ToString();
    case NodeLabel::kBlackBox:
      return StrCat(n.payload(), "(", join_parents(", "), ")");
    case NodeLabel::kModuleInvocation:
      return StrCat("m<", n.payload(), ">");
    case NodeLabel::kZoomedModule:
      return StrCat("M<", n.payload(), ">(", join_parents(", "), ")");
  }
  return "?";
}

}  // namespace

std::string ProvExpressionString(const GraphSnapshot& snap, NodeId node,
                                 int max_depth) {
  if (!snap.Contains(node)) return "0";
  return ExprString(snap, node, max_depth);
}

std::string ProvExpressionString(const ProvenanceGraph& graph, NodeId node,
                                 int max_depth) {
  // Expression rendering follows parent edges only.
  GraphSnapshot snap = GraphSnapshot::CaptureForParents(graph);
  return ProvExpressionString(snap, node, max_depth);
}

}  // namespace lipstick

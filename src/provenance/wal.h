#ifndef LIPSTICK_PROVENANCE_WAL_H_
#define LIPSTICK_PROVENANCE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"
#include "provenance/graph.h"

namespace lipstick {

/// Write-ahead logging for provenance graphs: the durability half of the
/// paper's Tracker/Query-Processor split. Attached to a ProvenanceGraph
/// (GraphWalSink), a Wal records every mutation as a length-prefixed,
/// CRC32-checked binary record into segmented log files under one
/// directory, batched through a group-commit buffer. recovery.h replays
/// the log back into an identical graph after a crash.
///
/// Directory layout:
///   wal-<seq>.log   log segments, strictly increasing sequence numbers
///   ckpt-<seq>.pg   checkpoint: provio v2 snapshot of the graph at the
///                   instant segment <seq> was opened
/// A checkpoint supersedes every earlier segment; Checkpoint() deletes
/// them once the snapshot and the new segment head are durable. Open()
/// never appends to an existing segment (its tail may be torn): it always
/// starts a fresh segment after the highest sequence number present.
///
/// Crash-consistency contract: a record is recoverable once it is flushed
/// and (per FsyncPolicy) fsynced. Savepoint records mark committed
/// execution boundaries; recovery restores the prefix up to the last
/// durable savepoint, so a torn tail never yields a half-executed graph.
///
/// Error handling is sticky and non-fatal: the first write/fsync failure
/// marks the log dead, subsequent hooks no-op, and execution continues
/// untouched — durability degrades, correctness of the in-memory graph
/// does not. Callers observe failures via status() and obs metrics
/// (wal.errors).

/// When the group-commit buffer is fsynced to stable storage.
enum class FsyncPolicy : uint8_t {
  kNever,        // flush only; the OS decides when bytes hit the platter
  kOnCommit,     // fsync on every invocation commit (and savepoints)
  kOnSavepoint,  // fsync on execution savepoints only (the default)
};

const char* FsyncPolicyToString(FsyncPolicy policy);

struct WalOptions {
  FsyncPolicy fsync = FsyncPolicy::kOnSavepoint;
  /// Group-commit buffer: records accumulate in memory and are written
  /// out when the buffer exceeds this many bytes (or at commit /
  /// savepoint / checkpoint boundaries).
  size_t buffer_bytes = 256 * 1024;
  /// Roll to a new segment after the current one exceeds this size.
  size_t segment_bytes = 8 * 1024 * 1024;
  /// Take a checkpoint automatically (at the next savepoint) once this
  /// many log bytes accumulated since the last one. 0: only explicit
  /// Checkpoint() calls.
  size_t checkpoint_bytes = 0;
};

/// Binary framing shared by the writer (wal.cc), the recovery reader
/// (recovery.cc), and tests that need to inspect or corrupt segments.
namespace walfmt {

/// Segment header: magic, format version (u32), sequence number (u64).
inline constexpr char kMagic[] = "LIPSTICKWAL1";  // 12 chars + NUL unused
inline constexpr size_t kMagicBytes = 12;
inline constexpr uint32_t kVersion = 1;
inline constexpr size_t kHeaderBytes = kMagicBytes + 4 + 8;
/// Frame: u32 payload length, u32 CRC32 over (type byte + payload), u8
/// record type, payload. Lengths beyond this cap mean a torn/corrupt
/// frame, not a huge record.
inline constexpr size_t kFrameBytes = 8;
inline constexpr uint32_t kMaxRecordBytes = 1u << 26;

enum class RecordType : uint8_t {
  kIntern = 1,            // u32 id, u32 len, bytes
  kNodeAppend = 2,        // u64 id, u8 label, u8 role, u8 flags,
                          // u32 invocation, u32 payload, u32 n, u64[n]
  kNodeValue = 3,         // u64 id, value (tag byte + payload)
  kSetParents = 4,        // u64 id, u32 n, u64[n]
  kSetAlive = 5,          // u64 id, u8 alive
  kKillShardTail = 6,     // u32 shard, u64 from
  kBeginInvocation = 7,   // u32 inv, u32 module, u32 instance,
                          // u32 execution, u64 m_node
  kInvocationNode = 8,    // u32 inv, u8 kind(0=in,1=out,2=state), u64 node
  kAbortInvocation = 9,   // u32 inv
  kTruncateInvocations = 10,  // u64 count
  kCommitInvocation = 11,     // u32 inv
  kSavepoint = 12,        // u32 execution, u64 inv_count, u32 n, u64[n]
};

uint32_t Crc32(const void* data, size_t n);

/// Binary scalar-value codec shared by kNodeValue writers and the
/// recovery replayer (tag byte + payload; nested values degrade to null,
/// matching provio).
void EncodeValue(std::string* out, const Value& v);
struct Cursor;
Result<Value> DecodeValue(Cursor* c);

/// Formats "wal-0000000042.log" / "ckpt-0000000042.pg".
std::string SegmentFileName(uint64_t seq);
std::string CheckpointFileName(uint64_t seq);
/// Parses the sequence number out of a directory entry; returns false for
/// files that are neither segments nor checkpoints.
bool ParseSegmentName(std::string_view name, uint64_t* seq);
bool ParseCheckpointName(std::string_view name, uint64_t* seq);

/// One decoded frame of a segment.
struct Record {
  RecordType type;
  std::string_view payload;  // into the scanned buffer
  uint64_t offset = 0;       // frame start offset within the segment
};

/// Iterates the records of one in-memory segment image, stopping at the
/// first invalid frame (short header, bad length, short record, bad CRC).
class SegmentScanner {
 public:
  explicit SegmentScanner(std::string_view data);

  /// Header validation result; scanning a bad-header segment yields no
  /// records and torn_reason() explains why.
  const Status& header_status() const { return header_status_; }
  uint64_t sequence() const { return sequence_; }

  /// Advances to the next valid record. Returns false at the end of the
  /// valid prefix; check torn_reason() to distinguish a clean end from a
  /// torn tail.
  bool Next(Record* out);

  /// Empty if the segment ends exactly at a frame boundary; otherwise a
  /// description of the torn tail ("bad crc", "short record", ...).
  const std::string& torn_reason() const { return torn_reason_; }
  /// Offset of the first invalid byte — the truncation point that drops
  /// the torn tail while keeping every valid record.
  uint64_t valid_prefix() const { return offset_; }

 private:
  std::string_view data_;
  uint64_t offset_ = 0;
  uint64_t sequence_ = 0;
  Status header_status_;
  std::string torn_reason_;
};

/// Little-endian payload cursor used to decode record payloads. Reads past
/// the end set ok = false and return zeros rather than trapping, so the
/// replayer can validate once at the end of each record.
struct Cursor {
  const char* p;
  const char* end;
  bool ok = true;

  explicit Cursor(std::string_view s) : p(s.data()), end(s.data() + s.size()) {}
  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  std::string_view Bytes(size_t n);
  bool AtEnd() const { return p == end; }
};

}  // namespace walfmt

/// The write-ahead log writer. Implements GraphWalSink; attach with
/// Attach() and every subsequent graph mutation is logged. All methods are
/// thread-safe (ShardWriters on worker threads append concurrently).
class Wal final : public GraphWalSink {
 public:
  /// Opens (creating if needed) the log directory and starts a fresh
  /// segment after the highest existing sequence number.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const WalOptions& options = {});
  ~Wal() override;

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Attaches the log to `graph`: subsequent mutations are recorded.
  /// `executions_run` seeds the execution counter carried by savepoint
  /// records (pass executor.executions_run()). A non-empty graph is
  /// checkpointed immediately so the log alone can always reproduce it;
  /// an empty graph just gets a durable initial savepoint. The graph must
  /// not be moved or destroyed while attached.
  Status Attach(ProvenanceGraph* graph, uint32_t executions_run = 0);
  /// Detaches from the graph (hooks stop firing). Close() also detaches.
  void Detach();
  ProvenanceGraph* attached_graph() const { return graph_; }

  /// Durability boundaries, called by WorkflowExecutor. CommitInvocation
  /// flushes the buffer (fsync under kOnCommit); MarkSavepoint records the
  /// graph extent at a committed execution boundary and flushes (fsync
  /// under kOnSavepoint / kOnCommit).
  Status CommitInvocation(uint32_t invocation);
  Status MarkSavepoint(uint32_t execution);

  /// Snapshots the attached graph as a provio v2 checkpoint, rolls to a
  /// new segment, and deletes the superseded segments. Call at a quiescent
  /// point (no concurrent writers), e.g. right after MarkSavepoint.
  Status Checkpoint();
  /// Checkpoint() iff options.checkpoint_bytes accumulated since the last.
  Status MaybeCheckpoint();

  /// Writes the group-commit buffer to the segment (no fsync).
  Status Flush();
  /// Flush + fsync regardless of policy.
  Status Sync();
  /// Flushes, fsyncs (unless kNever), closes the segment, detaches.
  Status Close();

  /// Sticky error state: OK until the first write/fsync failure, after
  /// which the log stops accepting records.
  Status status() const;
  const std::string& dir() const { return dir_; }
  uint64_t bytes_appended() const;
  uint64_t records_appended() const;
  uint64_t checkpoints_taken() const;

  // GraphWalSink implementation (called by the attached graph).
  void OnIntern(StrId id, std::string_view s) override;
  void OnNodeAppend(NodeId id, NodeLabel label, NodeRole role, uint8_t flags,
                    uint32_t invocation, StrId payload,
                    std::span<const NodeId> parents) override;
  void OnNodeValue(NodeId id, const Value& value) override;
  void OnSetParents(NodeId id, std::span<const NodeId> parents) override;
  void OnSetAlive(NodeId id, bool alive) override;
  void OnKillShardTail(uint32_t shard, uint64_t from) override;
  void OnBeginInvocation(uint32_t invocation,
                         const InvocationInfo& info) override;
  void OnInvocationNode(uint32_t invocation, int kind, NodeId node) override;
  void OnAbortInvocation(uint32_t invocation) override;
  void OnTruncateInvocations(uint64_t count) override;

 private:
  Wal(std::string dir, const WalOptions& options)
      : dir_(std::move(dir)), options_(options) {}

  /// Appends one framed record to the buffer; flushes past the threshold.
  void AppendRecord(walfmt::RecordType type, std::string_view payload);
  void AppendRecordLocked(walfmt::RecordType type, std::string_view payload);
  void AppendSavepointLocked(uint32_t execution,
                             const ProvenanceGraph::Savepoint& extent);
  Status OpenSegmentLocked(uint64_t seq);
  Status FlushLocked();
  Status SyncLocked();
  Status CheckpointLocked(const ProvenanceGraph::Savepoint& extent);
  void MarkDeadLocked(Status why);

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  ProvenanceGraph* graph_ = nullptr;
  int fd_ = -1;
  uint64_t seq_ = 0;
  std::string segment_name_;       // fault-injection / diagnostics key
  std::string buffer_;             // pending framed records
  uint64_t segment_written_ = 0;   // bytes flushed into the open segment
  uint64_t bytes_appended_ = 0;    // framed bytes accepted, process total
  uint64_t records_appended_ = 0;
  uint64_t bytes_since_checkpoint_ = 0;
  uint64_t checkpoints_ = 0;
  uint32_t last_execution_ = 0;    // execution count at the last savepoint
  Status status_;                  // sticky; dead once !ok
  bool closed_ = false;
};

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_WAL_H_

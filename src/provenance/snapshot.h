#ifndef LIPSTICK_PROVENANCE_SNAPSHOT_H_
#define LIPSTICK_PROVENANCE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"

namespace lipstick {

/// Per-shard visited bitmap used by every traversal in the read path. One
/// bit per node replaces a heap allocation per unordered_set insert on the
/// BFS hot path. Obtained through GraphSnapshot::AcquireVisited(), which
/// pools the backing storage so repeated queries stop re-allocating.
class VisitedSet {
 public:
  /// Marks `id`; returns true if it was already marked. Single-reader form.
  bool TestAndSet(NodeId id) {
    uint64_t& word = bits_[NodeShard(id)][NodeIndex(id) >> 6];
    uint64_t mask = 1ull << (NodeIndex(id) & 63);
    if (word & mask) return true;
    word |= mask;
    return false;
  }

  /// Marks `id` from concurrent workers; returns true if already marked.
  /// Safe against itself and Test() on other threads, not against the
  /// non-atomic TestAndSet().
  bool TestAndSetAtomic(NodeId id) {
    uint64_t& word = bits_[NodeShard(id)][NodeIndex(id) >> 6];
    uint64_t mask = 1ull << (NodeIndex(id) & 63);
    std::atomic_ref<uint64_t> ref(word);
    if (ref.load(std::memory_order_relaxed) & mask) return true;
    return (ref.fetch_or(mask, std::memory_order_acq_rel) & mask) != 0;
  }

  bool Test(NodeId id) const {
    return (bits_[NodeShard(id)][NodeIndex(id) >> 6] &
            (1ull << (NodeIndex(id) & 63))) != 0;
  }

  /// Pre-marks `id` (e.g. traversal seeds that must never be reported).
  void Set(NodeId id) {
    bits_[NodeShard(id)][NodeIndex(id) >> 6] |= 1ull << (NodeIndex(id) & 63);
  }

  void Clear() {
    for (std::vector<uint64_t>& shard : bits_) {
      std::fill(shard.begin(), shard.end(), 0);
    }
  }

  /// Copies another bitmap's marks wholesale. Both sets must come from
  /// snapshots of the same graph extent (identical shard geometry) — the
  /// cloning path of composed GraphViews.
  void CopyFrom(const VisitedSet& other) { bits_ = other.bits_; }

 private:
  friend class GraphSnapshot;

  explicit VisitedSet(std::span<const size_t> shard_sizes) {
    bits_.resize(shard_sizes.size());
    for (size_t s = 0; s < shard_sizes.size(); ++s) {
      bits_[s].assign((shard_sizes[s] + 63) / 64, 0);
    }
  }

  std::vector<std::vector<uint64_t>> bits_;
};

/// RAII lease of a pooled VisitedSet. On destruction the bitmap is cleared
/// and returned to the owning snapshot's pool for reuse. Leases may outlive
/// the snapshot they came from (the pool is reference-counted).
class VisitedLease {
 public:
  VisitedLease(VisitedLease&&) = default;
  VisitedLease& operator=(VisitedLease&&) = default;
  ~VisitedLease();

  VisitedSet& operator*() { return *set_; }
  VisitedSet* operator->() { return set_.get(); }
  const VisitedSet& operator*() const { return *set_; }
  const VisitedSet* operator->() const { return set_.get(); }

 private:
  friend class GraphSnapshot;
  struct Pool;
  VisitedLease(std::shared_ptr<Pool> pool, std::unique_ptr<VisitedSet> set)
      : pool_(std::move(pool)), set_(std::move(set)) {}

  std::shared_ptr<Pool> pool_;
  std::unique_ptr<VisitedSet> set_;
};

/// Immutable view over a sealed ProvenanceGraph: the entry point of the
/// unified read path (subgraph / zoom / deletion / query / export all run
/// on a snapshot). The snapshot borrows the graph's columnar storage and
/// CSR children index — no copies are made.
///
/// Thread-safety contract: any number of threads may read through one
/// GraphSnapshot concurrently (all accessors are const and the underlying
/// columns are never written), as long as the graph is not mutated while
/// the snapshot is in use. Appends, SetAlive/SetParents, Seal() and
/// RollbackTo() all invalidate every outstanding snapshot, exactly like
/// iterators; capture a fresh snapshot after mutating. String-pool reads
/// (payload resolution) are lock-free and safe concurrently with each
/// other.
class GraphSnapshot {
 public:
  /// Captures a read view of `graph`. Fails with kInvalidArgument if the
  /// graph is not sealed (the CSR children index would be stale).
  static Result<GraphSnapshot> Capture(const ProvenanceGraph& graph);

  /// Shared-ownership capture: the snapshot holds a reference on `graph`,
  /// so copies of the snapshot keep the columns alive on their own — the
  /// backbone of the serve daemon's hot-swappable GraphRegistry, where a
  /// `reload` drops the registry's reference while in-flight requests
  /// still read the old epoch through theirs. Same sealed requirement.
  static Result<GraphSnapshot> Capture(
      std::shared_ptr<const ProvenanceGraph> graph);

  /// The shared owner, when captured with the shared-ownership overload
  /// (nullptr for plain borrowed captures).
  const std::shared_ptr<const ProvenanceGraph>& owner() const {
    return owner_;
  }

  /// Captures a parent-edges-only view of a possibly unsealed graph:
  /// everything except ChildrenOf() works (ancestor traversals, rendering,
  /// validation). ChildrenOf() on an unsealed snapshot aborts, mirroring
  /// ProvenanceGraph::ChildrenOf.
  static GraphSnapshot CaptureForParents(const ProvenanceGraph& graph);

  // ----------------------------------------------------------------
  // Read API, mirroring ProvenanceGraph. See graph.h for semantics.
  // ----------------------------------------------------------------
  NodeView node(NodeId id) const { return graph_->node(id); }
  bool Contains(NodeId id) const { return graph_->Contains(id); }
  bool InGraph(NodeId id) const { return graph_->InGraph(id); }
  std::span<const NodeId> ParentsOf(NodeId id) const {
    return graph_->ParentsOf(id);
  }
  std::span<const NodeId> ChildrenOf(NodeId id) const {
    return graph_->ChildrenOf(id);
  }
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    graph_->ForEachNode(std::forward<Fn>(fn));
  }
  template <typename Fn>
  void ForEachAliveNode(Fn&& fn) const {
    graph_->ForEachAliveNode(std::forward<Fn>(fn));
  }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shard_sizes_.size());
  }
  size_t ShardSize(uint32_t shard) const { return shard_sizes_[shard]; }
  size_t num_nodes() const { return num_nodes_; }
  bool sealed() const { return graph_->sealed(); }
  const StringPool& strings() const { return graph_->strings(); }
  std::string_view str(StrId id) const { return graph_->str(id); }
  const std::vector<InvocationInfo>& invocations() const {
    return graph_->invocations();
  }
  /// The underlying graph, for layers that still take ProvenanceGraph&.
  const ProvenanceGraph& graph() const { return *graph_; }

  /// Leases a visited bitmap sized to this snapshot from the pool,
  /// allocating only when the pool is empty. Thread-safe: concurrent
  /// readers each lease their own bitmap.
  VisitedLease AcquireVisited() const;

 private:
  explicit GraphSnapshot(const ProvenanceGraph& graph);

  const ProvenanceGraph* graph_;
  // Non-null only for shared-ownership captures; keeps graph_ alive.
  std::shared_ptr<const ProvenanceGraph> owner_;
  std::vector<size_t> shard_sizes_;  // sizes at capture, for bitmap sizing
  size_t num_nodes_ = 0;
  std::shared_ptr<VisitedLease::Pool> pool_;
};

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_SNAPSHOT_H_

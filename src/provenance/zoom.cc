#include "provenance/zoom.h"

#include <array>
#include <deque>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lipstick {

Result<std::unordered_set<NodeId>> IntermediateNodesByDefinition(
    const ProvenanceGraph& graph, const std::string& module_name) {
  LIPSTICK_RETURN_IF_ERROR(
      RequireSealed(graph, "IntermediateNodesByDefinition"));
  // Seed the reachability with the input and state nodes of every invocation
  // of the module; expand through children, stopping at (and excluding)
  // module output nodes, per Definition 4.1.
  StrId want = graph.strings().Find(module_name);
  std::deque<NodeId> queue;
  std::unordered_set<NodeId> seeds;
  for (const InvocationInfo& inv : graph.invocations()) {
    if (want == kStrNotFound || inv.module_name != want) continue;
    for (NodeId n : inv.input_nodes) {
      if (graph.Contains(n)) {
        queue.push_back(n);
        seeds.insert(n);
      }
    }
    for (NodeId n : inv.state_nodes) {
      if (graph.Contains(n)) {
        queue.push_back(n);
        seeds.insert(n);
      }
    }
  }
  std::unordered_set<NodeId> result;
  std::unordered_set<NodeId> visited(queue.begin(), queue.end());
  while (!queue.empty()) {
    NodeId id = queue.front();
    queue.pop_front();
    for (NodeId child : graph.ChildrenOf(id)) {
      if (!graph.Contains(child)) continue;
      if (graph.node(child).role() == NodeRole::kModuleOutput) continue;
      if (!visited.insert(child).second) continue;
      result.insert(child);
      queue.push_back(child);
    }
  }
  // Input/state seeds themselves are not intermediate nodes.
  for (NodeId s : seeds) result.erase(s);
  // Closure for condition (iii): parentless value nodes (the constants
  // created for aggregation) belong to an intermediate computation when
  // everything they feed does.
  bool changed = true;
  while (changed) {
    changed = false;
    graph.ForEachAliveNode([&](NodeId id) {
      if (result.count(id)) return;
      if (graph.node(id).label() != NodeLabel::kConstValue) return;
      std::span<const NodeId> children = graph.ChildrenOf(id);
      if (children.empty()) return;
      bool all_intermediate = true;
      for (NodeId c : children) {
        if (graph.Contains(c) && !result.count(c)) {
          all_intermediate = false;
          break;
        }
      }
      if (all_intermediate) {
        result.insert(id);
        changed = true;
      }
    });
  }
  return result;
}

Status Zoomer::ZoomOut(const std::set<std::string>& module_names) {
  obs::ObsSpan span("query", "zoomout");
  static const obs::MetricId kZoomOutUs =
      obs::MetricsRegistry::Global().RegisterHistogram("query.zoomout_us");
  obs::ScopedHistTimer obs_timer(kZoomOutUs);
  span.Arg("modules", static_cast<uint64_t>(module_names.size()));

  if (!graph_->sealed()) graph_->Seal();
  auto writer = graph_->writer();

  for (const std::string& module : module_names) {
    if (IsZoomedOut(module)) continue;
    // Collapsing the previous module appended zoom nodes, which dirties
    // the children adjacency this module's passes read.
    if (!graph_->sealed()) graph_->Seal();
    std::vector<InvocationDetail> details;

    // Pass 1: gather all live invocation ids of this module. Aborted
    // invocations (failed attempts whose provenance was rolled back) carry
    // no structure to collapse.
    StrId want = graph_->strings().Find(module);
    std::vector<uint32_t> inv_ids;
    for (uint32_t i = 0; i < graph_->invocations().size(); ++i) {
      const InvocationInfo& inv = graph_->invocations()[i];
      if (want != kStrNotFound && inv.module_name == want && !inv.aborted()) {
        inv_ids.push_back(i);
      }
    }
    if (inv_ids.empty()) {
      return Status::NotFound(
          StrCat("no invocations of module '", module, "' in graph"));
    }
    std::unordered_set<uint32_t> inv_set(inv_ids.begin(), inv_ids.end());

    // Pass 2: intermediate nodes are tagged with their invocation id during
    // tracking; collect the ones belonging to zoomed invocations.
    std::unordered_set<NodeId> removed;
    graph_->ForEachAliveNode([&](NodeId id) {
      NodeView n = graph_->node(id);
      if (n.role() == NodeRole::kIntermediate &&
          n.invocation() != kNoInvocation && inv_set.count(n.invocation())) {
        removed.insert(id);
      }
    });

    // Pass 3: state nodes, and state-base tokens used only by removed
    // state nodes ("the basic tuple nodes ... adjacent to those state
    // nodes", ZoomOut step 4).
    std::unordered_set<NodeId> removed_state;
    for (uint32_t inv : inv_ids) {
      for (NodeId s : graph_->invocations()[inv].state_nodes) {
        if (graph_->Contains(s)) removed_state.insert(s);
      }
    }
    removed.insert(removed_state.begin(), removed_state.end());
    // State-base tokens of zoomed invocations go too, unless something
    // outside the removal set still derives from them. Bases that were
    // never used (lazy "s" wrapping means they have no children) are part
    // of the hidden module state and disappear with it.
    graph_->ForEachAliveNode([&](NodeId id) {
      NodeView n = graph_->node(id);
      if (n.role() != NodeRole::kStateBase) return;
      if (n.invocation() == kNoInvocation || !inv_set.count(n.invocation())) {
        return;
      }
      bool only_removed_uses = true;
      for (NodeId child : graph_->ChildrenOf(id)) {
        if (graph_->Contains(child) && !removed.count(child)) {
          only_removed_uses = false;
          break;
        }
      }
      if (only_removed_uses) removed.insert(id);
    });

    // Pass 4: per invocation, create the collapsed module p-node and rewire
    // outputs through it.
    for (uint32_t inv_id : inv_ids) {
      const InvocationInfo& inv = graph_->invocations()[inv_id];
      InvocationDetail detail;
      detail.invocation = inv_id;

      std::vector<NodeId> zoom_parents;
      for (NodeId in : inv.input_nodes) {
        if (graph_->Contains(in)) zoom_parents.push_back(in);
      }
      // Appending via the writer keeps id allocation uniform.
      detail.zoom_node =
          writer.ZoomedModule(module, std::move(zoom_parents), inv_id);

      for (NodeId out : inv.output_nodes) {
        if (!graph_->Contains(out)) continue;
        std::span<const NodeId> old = graph_->ParentsOf(out);
        detail.output_parents.emplace_back(
            out, std::vector<NodeId>(old.begin(), old.end()));
        std::array<NodeId, 2> rewired{detail.zoom_node, inv.m_node};
        graph_->SetParents(out, rewired);
      }
      details.push_back(std::move(detail));
    }

    // Record removals on the module's first detail entry for restoration.
    for (NodeId id : removed) graph_->SetAlive(id, false);
    if (!details.empty()) {
      details.front().removed.assign(removed.begin(), removed.end());
    }
    store_[module] = std::move(details);
  }

  graph_->Seal();
  return Status::OK();
}

Status Zoomer::ZoomIn(const std::set<std::string>& module_names) {
  obs::ObsSpan span("query", "zoomin");
  static const obs::MetricId kZoomInUs =
      obs::MetricsRegistry::Global().RegisterHistogram("query.zoomin_us");
  obs::ScopedHistTimer obs_timer(kZoomInUs);
  span.Arg("modules", static_cast<uint64_t>(module_names.size()));

  for (const std::string& module : module_names) {
    auto it = store_.find(module);
    if (it == store_.end()) {
      return Status::InvalidArgument(
          StrCat("module '", module, "' is not zoomed out"));
    }
    for (const InvocationDetail& detail : it->second) {
      for (NodeId id : detail.removed) graph_->SetAlive(id, true);
      for (const auto& [out, parents] : detail.output_parents) {
        graph_->SetParents(out, parents);
      }
      graph_->SetAlive(detail.zoom_node, false);
    }
    store_.erase(it);
  }
  graph_->Seal();
  return Status::OK();
}

Status Zoomer::ZoomOutAll() {
  std::set<std::string> names;
  for (const InvocationInfo& inv : graph_->invocations()) {
    names.insert(std::string(graph_->str(inv.module_name)));
  }
  return ZoomOut(names);
}

}  // namespace lipstick

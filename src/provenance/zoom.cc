#include "provenance/zoom.h"

#include <algorithm>
#include <array>
#include <utility>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/traverse.h"

namespace lipstick {

Result<std::unordered_set<NodeId>> IntermediateNodesByDefinition(
    const GraphSnapshot& snap, const std::string& module_name) {
  LIPSTICK_RETURN_IF_ERROR(
      RequireSealed(snap.graph(), "IntermediateNodesByDefinition"));
  // Seed the reachability with the input and state nodes of every invocation
  // of the module; expand through children, stopping at (and excluding)
  // module output nodes, per Definition 4.1.
  StrId want = snap.strings().Find(module_name);
  std::vector<NodeId> seeds;
  for (const InvocationInfo& inv : snap.invocations()) {
    if (want == kStrNotFound || inv.module_name != want) continue;
    for (NodeId n : inv.input_nodes) {
      if (snap.Contains(n)) seeds.push_back(n);
    }
    for (NodeId n : inv.state_nodes) {
      if (snap.Contains(n)) seeds.push_back(n);
    }
  }
  std::unordered_set<NodeId> result;
  VisitedLease visited = snap.AcquireVisited();
  // Input/state seeds themselves are not intermediate nodes: pre-mark them
  // so the traversal never reports them.
  for (NodeId s : seeds) visited->Set(s);
  Traverse(snap, seeds, TraverseDirection::kForward, *visited,
           [&](NodeId n, NodeId) {
             if (snap.node(n).role() == NodeRole::kModuleOutput) {
               return Visit::kSkip;
             }
             result.insert(n);
             return Visit::kExpand;
           });
  // Closure for condition (iii): parentless value nodes (the constants
  // created for aggregation) belong to an intermediate computation when
  // everything they feed does.
  bool changed = true;
  while (changed) {
    changed = false;
    snap.ForEachAliveNode([&](NodeId id) {
      if (result.count(id)) return;
      if (snap.node(id).label() != NodeLabel::kConstValue) return;
      std::span<const NodeId> children = snap.ChildrenOf(id);
      if (children.empty()) return;
      bool all_intermediate = true;
      for (NodeId c : children) {
        if (snap.Contains(c) && !result.count(c)) {
          all_intermediate = false;
          break;
        }
      }
      if (all_intermediate) {
        result.insert(id);
        changed = true;
      }
    });
  }
  return result;
}

Result<std::unordered_set<NodeId>> IntermediateNodesByDefinition(
    const ProvenanceGraph& graph, const std::string& module_name) {
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  if (!snap.ok()) {
    return Status::InvalidArgument(
        "IntermediateNodesByDefinition requires a sealed graph");
  }
  return IntermediateNodesByDefinition(*snap, module_name);
}

namespace internal {

Result<ZoomPlan> PlanZoomOut(const GraphSnapshot& snap,
                             const std::string& module,
                             VisitedSet& removed_so_far, int num_threads) {
  // A node is live for this plan iff it is alive in the snapshot and not
  // removed by a previously planned module of the same zoom. The eager path
  // re-seals between modules, so "dead in the graph" and "marked in
  // removed_so_far" are the same predicate there.
  auto live = [&](NodeId id) {
    return snap.Contains(id) && !removed_so_far.Test(id);
  };
  if (num_threads < 1) num_threads = 1;

  // Pass 1: gather all live invocation ids of this module. Aborted
  // invocations (failed attempts whose provenance was rolled back) carry
  // no structure to collapse.
  StrId want = snap.strings().Find(module);
  std::vector<uint32_t> inv_ids;
  for (uint32_t i = 0; i < snap.invocations().size(); ++i) {
    const InvocationInfo& inv = snap.invocations()[i];
    if (want != kStrNotFound && inv.module_name == want && !inv.aborted()) {
      inv_ids.push_back(i);
    }
  }
  if (inv_ids.empty()) {
    return Status::NotFound(
        StrCat("no invocations of module '", module, "' in graph"));
  }
  std::unordered_set<uint32_t> inv_set(inv_ids.begin(), inv_ids.end());

  ZoomPlan plan;

  // Pass 2: intermediate nodes are tagged with their invocation id during
  // tracking; collect the ones belonging to zoomed invocations. Pure column
  // scan, fanned out over the work-stealing engine. removed_so_far is only
  // read here; marks land after the scan.
  {
    std::vector<std::vector<NodeId>> found(num_threads);
    ParallelForNodes(snap, num_threads,
                     [&](uint32_t s, uint64_t b, uint64_t e, int w) {
                       for (uint64_t i = b; i < e; ++i) {
                         NodeId id = MakeNodeId(s, i);
                         if (!live(id)) continue;
                         NodeView n = snap.node(id);
                         if (n.role() == NodeRole::kIntermediate &&
                             n.invocation() != kNoInvocation &&
                             inv_set.count(n.invocation())) {
                           found[w].push_back(id);
                         }
                       }
                     });
    for (const std::vector<NodeId>& v : found) {
      plan.removed.insert(plan.removed.end(), v.begin(), v.end());
    }
    for (NodeId id : plan.removed) removed_so_far.Set(id);
  }

  // Pass 3: state nodes, and state-base tokens used only by removed state
  // nodes ("the basic tuple nodes ... adjacent to those state nodes",
  // ZoomOut step 4). Marking as we go deduplicates state shared across
  // invocations of the module.
  for (uint32_t inv : inv_ids) {
    for (NodeId s : snap.invocations()[inv].state_nodes) {
      if (!live(s)) continue;
      removed_so_far.Set(s);
      plan.removed.push_back(s);
    }
  }
  // State-base tokens of zoomed invocations go too, unless something
  // outside the removal set still derives from them. Bases that were never
  // used (lazy "s" wrapping means they have no children) are part of the
  // hidden module state and disappear with it. Bases are parentless tokens
  // and never children of other bases, so the scan is order-free and safe
  // to parallelize.
  {
    std::vector<std::vector<NodeId>> found(num_threads);
    ParallelForNodes(snap, num_threads,
                     [&](uint32_t s, uint64_t b, uint64_t e, int w) {
                       for (uint64_t i = b; i < e; ++i) {
                         NodeId id = MakeNodeId(s, i);
                         if (!live(id)) continue;
                         NodeView n = snap.node(id);
                         if (n.role() != NodeRole::kStateBase) continue;
                         if (n.invocation() == kNoInvocation ||
                             !inv_set.count(n.invocation())) {
                           continue;
                         }
                         bool only_removed_uses = true;
                         for (NodeId child : snap.ChildrenOf(id)) {
                           if (live(child)) {
                             only_removed_uses = false;
                             break;
                           }
                         }
                         if (only_removed_uses) found[w].push_back(id);
                       }
                     });
    for (const std::vector<NodeId>& v : found) {
      for (NodeId id : v) {
        removed_so_far.Set(id);
        plan.removed.push_back(id);
      }
    }
  }
  // Deterministic plan regardless of worker interleaving.
  std::sort(plan.removed.begin(), plan.removed.end());

  // Pass 4: per invocation, the collapsed module p-node's inputs and the
  // outputs to rewire through it. Input/output/m nodes are never in any
  // removal set, so live() here matches the eager path's Contains().
  for (uint32_t inv_id : inv_ids) {
    const InvocationInfo& inv = snap.invocations()[inv_id];
    ZoomInvocationPlan ip;
    ip.invocation = inv_id;
    ip.m_node = inv.m_node;
    for (NodeId in : inv.input_nodes) {
      if (live(in)) ip.zoom_parents.push_back(in);
    }
    for (NodeId out : inv.output_nodes) {
      if (live(out)) ip.outputs.push_back(out);
    }
    plan.invocations.push_back(std::move(ip));
  }
  return plan;
}

}  // namespace internal

Status Zoomer::ZoomOut(const std::set<std::string>& module_names) {
  obs::ObsSpan span("query", "zoomout");
  static const obs::MetricId kZoomOutUs =
      obs::MetricsRegistry::Global().RegisterHistogram("query.zoomout_us");
  obs::ScopedHistTimer obs_timer(kZoomOutUs);
  span.Arg("modules", static_cast<uint64_t>(module_names.size()));

  if (!graph_->sealed()) graph_->Seal();
  auto writer = graph_->writer();

  for (const std::string& module : module_names) {
    if (IsZoomedOut(module)) continue;
    // Collapsing the previous module appended zoom nodes, which dirties
    // the children adjacency this module's passes read.
    if (!graph_->sealed()) graph_->Seal();
    Result<GraphSnapshot> snap = GraphSnapshot::Capture(*graph_);
    if (!snap.ok()) return snap.status();
    VisitedLease removed = snap->AcquireVisited();
    Result<internal::ZoomPlan> plan =
        internal::PlanZoomOut(*snap, module, *removed, num_threads_);
    if (!plan.ok()) return plan.status();

    // Apply: append the collapsed p-nodes, rewire outputs, kill removals.
    std::vector<InvocationDetail> details;
    for (internal::ZoomInvocationPlan& ip : plan->invocations) {
      InvocationDetail detail;
      detail.invocation = ip.invocation;
      // Appending via the writer keeps id allocation uniform.
      detail.zoom_node =
          writer.ZoomedModule(module, std::move(ip.zoom_parents),
                              ip.invocation);
      for (NodeId out : ip.outputs) {
        std::span<const NodeId> old = graph_->ParentsOf(out);
        detail.output_parents.emplace_back(
            out, std::vector<NodeId>(old.begin(), old.end()));
        std::array<NodeId, 2> rewired{detail.zoom_node, ip.m_node};
        graph_->SetParents(out, rewired);
      }
      details.push_back(std::move(detail));
    }

    // Record removals on the module's first detail entry for restoration.
    for (NodeId id : plan->removed) graph_->SetAlive(id, false);
    if (!details.empty()) {
      details.front().removed = std::move(plan->removed);
    }
    store_[module] = std::move(details);
  }

  graph_->Seal();
  return Status::OK();
}

Status Zoomer::ZoomIn(const std::set<std::string>& module_names) {
  obs::ObsSpan span("query", "zoomin");
  static const obs::MetricId kZoomInUs =
      obs::MetricsRegistry::Global().RegisterHistogram("query.zoomin_us");
  obs::ScopedHistTimer obs_timer(kZoomInUs);
  span.Arg("modules", static_cast<uint64_t>(module_names.size()));

  for (const std::string& module : module_names) {
    auto it = store_.find(module);
    if (it == store_.end()) {
      return Status::InvalidArgument(
          StrCat("module '", module, "' is not zoomed out"));
    }
    for (const InvocationDetail& detail : it->second) {
      for (NodeId id : detail.removed) graph_->SetAlive(id, true);
      for (const auto& [out, parents] : detail.output_parents) {
        graph_->SetParents(out, parents);
      }
      graph_->SetAlive(detail.zoom_node, false);
    }
    store_.erase(it);
  }
  graph_->Seal();
  return Status::OK();
}

Status Zoomer::ZoomOutAll() {
  std::set<std::string> names;
  for (const InvocationInfo& inv : graph_->invocations()) {
    names.insert(std::string(graph_->str(inv.module_name)));
  }
  return ZoomOut(names);
}

}  // namespace lipstick

#ifndef LIPSTICK_PROVENANCE_SEMIRING_H_
#define LIPSTICK_PROVENANCE_SEMIRING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick {

/// ----------------------------------------------------------------------
/// Provenance polynomials N[X] (Green, Karvounarakis, Tannen, PODS'07).
///
/// The graph is Lipstick's primary representation; this polynomial layer
/// implements the underlying formal semantics and is used by unit and
/// property tests to validate the graph construction (evaluating a node's
/// subgraph under a token assignment must agree with evaluating its
/// polynomial).
/// ----------------------------------------------------------------------

/// A monomial: product of tokens with exponents, e.g. x^2·y.
class Monomial {
 public:
  Monomial() = default;
  static Monomial Var(const std::string& token);

  Monomial Times(const Monomial& other) const;
  const std::map<std::string, uint32_t>& vars() const { return vars_; }
  bool operator<(const Monomial& other) const { return vars_ < other.vars_; }
  bool operator==(const Monomial& other) const { return vars_ == other.vars_; }
  std::string ToString() const;

 private:
  std::map<std::string, uint32_t> vars_;
};

/// A polynomial with natural-number coefficients: formal sum of monomials.
class Polynomial {
 public:
  Polynomial() = default;

  static Polynomial Zero() { return Polynomial(); }
  static Polynomial One();
  static Polynomial Var(const std::string& token);

  Polynomial Plus(const Polynomial& other) const;
  Polynomial Times(const Polynomial& other) const;

  bool IsZero() const { return terms_.empty(); }
  bool operator==(const Polynomial& other) const {
    return terms_ == other.terms_;
  }

  const std::map<Monomial, uint64_t>& terms() const { return terms_; }

  /// Evaluates in N under `assignment` (absent tokens default to 1).
  uint64_t Eval(const std::map<std::string, uint64_t>& assignment) const;

  /// Canonical rendering, e.g. "2*x*y^2 + z".
  std::string ToString() const;

 private:
  std::map<Monomial, uint64_t> terms_;
};

/// ----------------------------------------------------------------------
/// Graph evaluation in arbitrary commutative semirings with δ.
/// ----------------------------------------------------------------------

/// Counting semiring (N, +, ·, 0, 1) with δ(n) = [n > 0]: the reference
/// semantics for bag multiplicity and for deletion propagation (a node
/// survives the deletion of token t iff its value with t := 0 is nonzero).
struct CountingSemiring {
  using ValueType = uint64_t;
  static ValueType Zero() { return 0; }
  static ValueType One() { return 1; }
  static ValueType Plus(ValueType a, ValueType b) { return a + b; }
  static ValueType Times(ValueType a, ValueType b) { return a * b; }
  static ValueType Delta(ValueType a) { return a > 0 ? 1 : 0; }
};

/// Boolean ("set/possibility") semiring: tracks mere existence.
struct BooleanSemiring {
  using ValueType = bool;
  static ValueType Zero() { return false; }
  static ValueType One() { return true; }
  static ValueType Plus(ValueType a, ValueType b) { return a || b; }
  static ValueType Times(ValueType a, ValueType b) { return a && b; }
  static ValueType Delta(ValueType a) { return a; }
};

/// Trust semiring ([0,1], max, min, 0, 1): the trust in a derived tuple is
/// the best alternative derivation, each worth its least-trusted joint
/// input. One of the semiring applications the paper cites as motivation
/// for building workflow provenance on the [17] foundations.
struct TrustSemiring {
  using ValueType = double;
  static ValueType Zero() { return 0.0; }
  static ValueType One() { return 1.0; }
  static ValueType Plus(ValueType a, ValueType b) { return a > b ? a : b; }
  static ValueType Times(ValueType a, ValueType b) { return a < b ? a : b; }
  static ValueType Delta(ValueType a) { return a; }
};

/// Access-control ("security") semiring: clearance levels ordered
/// public < confidential < secret < top-secret < never. Joint use requires
/// the most restrictive input (max); alternatives admit the least
/// restrictive derivation (min). Evaluating an output node yields the
/// clearance required to see it.
struct SecuritySemiring {
  enum Level : int {
    kPublic = 0,
    kConfidential = 1,
    kSecret = 2,
    kTopSecret = 3,
    kNever = 4,
  };
  using ValueType = Level;
  static ValueType Zero() { return kNever; }
  static ValueType One() { return kPublic; }
  static ValueType Plus(ValueType a, ValueType b) { return a < b ? a : b; }
  static ValueType Times(ValueType a, ValueType b) { return a > b ? a : b; }
  static ValueType Delta(ValueType a) { return a; }
};

/// Why-provenance semiring: sets of contributing token sets ("witnesses").
struct WhySemiring {
  using ValueType = std::set<std::set<std::string>>;
  static ValueType Zero() { return {}; }
  static ValueType One() { return {{}}; }
  static ValueType Plus(ValueType a, const ValueType& b) {
    a.insert(b.begin(), b.end());
    return a;
  }
  static ValueType Times(const ValueType& a, const ValueType& b) {
    ValueType out;
    for (const auto& wa : a) {
      for (const auto& wb : b) {
        std::set<std::string> w = wa;
        w.insert(wb.begin(), wb.end());
        out.insert(std::move(w));
      }
    }
    return out;
  }
  static ValueType Delta(ValueType a) { return a; }
};

/// Evaluates the provenance of `node` in semiring S under a token
/// assignment keyed by token *node id* (tokens absent from the map get
/// S::One()). Structural rules:
///   token             -> assignment (or One)
///   +, δ-args, agg, blackbox, zoomed-module -> Plus over parents
///     (δ additionally applies S::Delta to the sum)
///   ·, ⊗              -> Times over parents
///   const value       -> One
///   module invocation -> One (invocations are never data-dependent)
/// These match Definition 4.2's deletion semantics: a node survives iff its
/// counting value is nonzero after zeroing the deleted token.
template <typename S>
class GraphEvaluator {
 public:
  using V = typename S::ValueType;

  /// Evaluation reads parent edges only, so the snapshot works unsealed.
  explicit GraphEvaluator(const ProvenanceGraph& graph,
                          std::unordered_map<NodeId, V> token_assignment = {})
      : snap_(GraphSnapshot::CaptureForParents(graph)),
        assignment_(std::move(token_assignment)) {}
  explicit GraphEvaluator(const GraphSnapshot& snap,
                          std::unordered_map<NodeId, V> token_assignment = {})
      : snap_(snap), assignment_(std::move(token_assignment)) {}

  V Eval(NodeId id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    NodeView n = snap_.node(id);
    std::span<const NodeId> parents = snap_.ParentsOf(id);
    V result = S::Zero();
    switch (n.label()) {
      case NodeLabel::kToken: {
        auto a = assignment_.find(id);
        result = a == assignment_.end() ? S::One() : a->second;
        break;
      }
      case NodeLabel::kModuleInvocation:
      case NodeLabel::kConstValue:
        result = S::One();
        break;
      case NodeLabel::kTimes:
      case NodeLabel::kTensor: {
        result = S::One();
        for (NodeId p : parents) {
          if (snap_.Contains(p)) result = S::Times(result, Eval(p));
        }
        break;
      }
      case NodeLabel::kPlus:
      case NodeLabel::kAggregate:
      case NodeLabel::kBlackBox:
      case NodeLabel::kZoomedModule: {
        for (NodeId p : parents) {
          if (snap_.Contains(p)) result = S::Plus(result, Eval(p));
        }
        break;
      }
      case NodeLabel::kDelta: {
        for (NodeId p : parents) {
          if (snap_.Contains(p)) result = S::Plus(result, Eval(p));
        }
        result = S::Delta(result);
        break;
      }
    }
    memo_.emplace(id, result);
    return result;
  }

 private:
  GraphSnapshot snap_;
  std::unordered_map<NodeId, V> assignment_;
  std::unordered_map<NodeId, V> memo_;
};

/// Renders the provenance expression rooted at `node` as a string, e.g.
/// "delta(x1 + x2) * m0". For human consumption and golden tests;
/// `max_depth` truncates deep derivations with "...".
std::string ProvExpressionString(const ProvenanceGraph& graph, NodeId node,
                                 int max_depth = 32);
std::string ProvExpressionString(const GraphSnapshot& snap, NodeId node,
                                 int max_depth = 32);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_SEMIRING_H_

#include "provenance/dot.h"

#include <fstream>
#include <map>
#include <ostream>

#include "common/str_util.h"

namespace lipstick {

namespace {

std::string EscapeLabel(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string NodeLabelText(const NodeView& n, bool show_id, NodeId id) {
  std::string label;
  switch (n.label()) {
    case NodeLabel::kToken:
      label = n.payload().empty() ? std::string("x") : std::string(n.payload());
      break;
    case NodeLabel::kPlus:
      label = "+";
      break;
    case NodeLabel::kTimes:
      label = "\xC2\xB7";  // ·
      break;
    case NodeLabel::kDelta:
      label = "\xCE\xB4";  // δ
      break;
    case NodeLabel::kTensor:
      label = "\xE2\x8A\x97";  // ⊗
      break;
    case NodeLabel::kAggregate:
      label = StrCat(n.payload(), "=", n.value().ToString());
      break;
    case NodeLabel::kConstValue:
      label = n.value().ToString();
      break;
    case NodeLabel::kBlackBox:
      label = std::string(n.payload());
      break;
    case NodeLabel::kModuleInvocation:
      label = StrCat("m<", n.payload(), ">");
      break;
    case NodeLabel::kZoomedModule:
      label = StrCat("M<", n.payload(), ">");
      break;
  }
  const char* role = nullptr;
  switch (n.role()) {
    case NodeRole::kModuleInput:
      role = "i";
      break;
    case NodeRole::kModuleOutput:
      role = "o";
      break;
    case NodeRole::kModuleState:
      role = "s";
      break;
    case NodeRole::kWorkflowInput:
      role = "I";
      break;
    default:
      break;
  }
  if (role != nullptr) label = StrCat(role, ": ", label);
  if (show_id) label = StrCat(label, " #", id);
  return EscapeLabel(label);
}

const char* NodeStyle(const NodeView& n) {
  if (n.label() == NodeLabel::kModuleInvocation) {
    return "shape=house,style=filled,fillcolor=lightsteelblue";
  }
  if (n.label() == NodeLabel::kZoomedModule) {
    return "shape=component,style=filled,fillcolor=lightgoldenrod";
  }
  if (n.is_value_node()) return "shape=box,style=filled,fillcolor=white";
  switch (n.role()) {
    case NodeRole::kWorkflowInput:
      return "shape=circle,style=filled,fillcolor=palegreen";
    case NodeRole::kModuleInput:
    case NodeRole::kModuleOutput:
      return "shape=circle,style=filled,fillcolor=lightyellow";
    case NodeRole::kModuleState:
    case NodeRole::kStateBase:
      return "shape=circle,style=filled,fillcolor=mistyrose";
    default:
      return "shape=circle";
  }
}

}  // namespace

Status WriteDot(const ProvenanceGraph& graph, std::ostream& os,
                const DotOptions& options) {
  auto included = [&](NodeId id) {
    if (!graph.Contains(id)) return false;
    return options.subset.empty() || options.subset.count(id) > 0;
  };

  os << "digraph provenance {\n  rankdir=BT;\n  node [fontsize=10];\n";

  // Cluster nodes per invocation (the shaded boxes of Figure 2(c)).
  std::map<uint32_t, std::vector<NodeId>> by_invocation;
  std::vector<NodeId> unclustered;
  graph.ForEachNode([&](NodeId id) {
    if (!included(id)) return;
    uint32_t inv = graph.node(id).invocation();
    if (options.cluster_by_invocation && inv != kNoInvocation &&
        inv < graph.invocations().size()) {
      by_invocation[inv].push_back(id);
    } else {
      unclustered.push_back(id);
    }
  });

  auto emit_node = [&](NodeId id) {
    NodeView n = graph.node(id);
    os << "    n" << id << " [label=\""
       << NodeLabelText(n, options.show_ids, id) << "\"," << NodeStyle(n)
       << "];\n";
  };

  for (const auto& [inv, ids] : by_invocation) {
    const InvocationInfo& info = graph.invocations()[inv];
    os << "  subgraph cluster_inv" << inv << " {\n"
       << "    label=\"" << EscapeLabel(graph.str(info.instance_name))
       << " (exec " << info.execution << ")\";\n    style=dashed;\n";
    for (NodeId id : ids) emit_node(id);
    os << "  }\n";
  }
  os << "  subgraph top {\n";
  for (NodeId id : unclustered) emit_node(id);
  os << "  }\n";

  graph.ForEachNode([&](NodeId id) {
    if (!included(id)) return;
    for (NodeId p : graph.ParentsOf(id)) {
      if (!included(p)) continue;
      os << "  n" << p << " -> n" << id << ";\n";
    }
  });
  os << "}\n";
  if (!os.good()) return Status::IOError("DOT write failed");
  return Status::OK();
}

Status WriteDotToFile(const ProvenanceGraph& graph, const std::string& path,
                      const DotOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError(StrCat("cannot open ", path, " for writing"));
  }
  return WriteDot(graph, out, options);
}

}  // namespace lipstick

#include "provenance/dot.h"

#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "common/str_util.h"

namespace lipstick {

namespace {

/// Escapes straight into the stream: only '"' and '\\' need a backslash in
/// DOT labels; multibyte UTF-8 label glyphs (· δ ⊗) pass through untouched.
void EscapeTo(std::ostream& os, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// What the renderer needs to know about a node, whether it is an
/// underlying column record or a view's synthetic zoom node. Payloads are
/// resolved with bounds checking, so ids from a corrupt file degrade to
/// empty labels.
struct NodeFacts {
  NodeLabel label = NodeLabel::kToken;
  NodeRole role = NodeRole::kIntermediate;
  bool is_value_node = false;
  uint32_t invocation = kNoInvocation;
  std::string_view payload;
  const Value* value = &NullValue();
};

NodeFacts FactsOf(const GraphSnapshot& snap, NodeId id) {
  NodeView n = snap.node(id);
  NodeFacts f;
  f.label = n.label();
  f.role = n.role();
  f.is_value_node = n.is_value_node();
  f.invocation = n.invocation();
  f.payload = snap.strings().GetChecked(n.payload_id());
  f.value = &n.value();
  return f;
}

NodeFacts FactsOf(const GraphView::SyntheticNode& z) {
  NodeFacts f;
  f.label = NodeLabel::kZoomedModule;
  f.role = NodeRole::kZoom;
  f.invocation = z.invocation;
  f.payload = z.module;
  return f;
}

void EmitLabelText(std::ostream& os, const NodeFacts& f, bool show_id,
                   NodeId id) {
  const char* role = nullptr;
  switch (f.role) {
    case NodeRole::kModuleInput:
      role = "i";
      break;
    case NodeRole::kModuleOutput:
      role = "o";
      break;
    case NodeRole::kModuleState:
      role = "s";
      break;
    case NodeRole::kWorkflowInput:
      role = "I";
      break;
    default:
      break;
  }
  if (role != nullptr) os << role << ": ";
  switch (f.label) {
    case NodeLabel::kToken:
      if (f.payload.empty()) {
        os << 'x';
      } else {
        EscapeTo(os, f.payload);
      }
      break;
    case NodeLabel::kPlus:
      os << '+';
      break;
    case NodeLabel::kTimes:
      os << "\xC2\xB7";  // ·
      break;
    case NodeLabel::kDelta:
      os << "\xCE\xB4";  // δ
      break;
    case NodeLabel::kTensor:
      os << "\xE2\x8A\x97";  // ⊗
      break;
    case NodeLabel::kAggregate:
      EscapeTo(os, f.payload);
      os << '=';
      EscapeTo(os, f.value->ToString());
      break;
    case NodeLabel::kConstValue:
      EscapeTo(os, f.value->ToString());
      break;
    case NodeLabel::kBlackBox:
      EscapeTo(os, f.payload);
      break;
    case NodeLabel::kModuleInvocation:
      os << "m<";
      EscapeTo(os, f.payload);
      os << '>';
      break;
    case NodeLabel::kZoomedModule:
      os << "M<";
      EscapeTo(os, f.payload);
      os << '>';
      break;
  }
  if (show_id) os << " #" << id;
}

const char* NodeStyle(const NodeFacts& f) {
  if (f.label == NodeLabel::kModuleInvocation) {
    return "shape=house,style=filled,fillcolor=lightsteelblue";
  }
  if (f.label == NodeLabel::kZoomedModule) {
    return "shape=component,style=filled,fillcolor=lightgoldenrod";
  }
  if (f.is_value_node) return "shape=box,style=filled,fillcolor=white";
  switch (f.role) {
    case NodeRole::kWorkflowInput:
      return "shape=circle,style=filled,fillcolor=palegreen";
    case NodeRole::kModuleInput:
    case NodeRole::kModuleOutput:
      return "shape=circle,style=filled,fillcolor=lightyellow";
    case NodeRole::kModuleState:
    case NodeRole::kStateBase:
      return "shape=circle,style=filled,fillcolor=mistyrose";
    default:
      return "shape=circle";
  }
}

/// The render core, shared by the snapshot and view paths. `Source` binds
/// the iteration order, facts, parent lists, and inclusion predicate of
/// one of the two; rendering a view through its source is byte-identical
/// to materializing it first, because a view's iteration order *is* the
/// materialized graph's ForEachNode order.
template <typename Source>
Status WriteDotCore(const Source& src, std::ostream& os,
                    const DotOptions& options) {
  auto included = [&](NodeId id) {
    if (!src.Alive(id)) return false;
    return options.subset.empty() || options.subset.count(id) > 0;
  };

  os << "digraph provenance {\n  rankdir=BT;\n  node [fontsize=10];\n";

  // Cluster nodes per invocation (the shaded boxes of Figure 2(c)).
  std::map<uint32_t, std::vector<NodeId>> by_invocation;
  std::vector<NodeId> unclustered;
  const std::vector<InvocationInfo>& invocations = src.invocations();
  src.ForEachRenderNode([&](NodeId id) {
    if (!included(id)) return;
    uint32_t inv = src.Facts(id).invocation;
    if (options.cluster_by_invocation && inv != kNoInvocation &&
        inv < invocations.size()) {
      by_invocation[inv].push_back(id);
    } else {
      unclustered.push_back(id);
    }
  });

  auto emit_node = [&](NodeId id) {
    NodeFacts f = src.Facts(id);
    os << "    n" << id << " [label=\"";
    EmitLabelText(os, f, options.show_ids, id);
    os << "\"," << NodeStyle(f) << "];\n";
  };

  for (const auto& [inv, ids] : by_invocation) {
    const InvocationInfo& info = invocations[inv];
    os << "  subgraph cluster_inv" << inv << " {\n    label=\"";
    EscapeTo(os, src.str(info.instance_name));
    os << " (exec " << info.execution << ")\";\n    style=dashed;\n";
    for (NodeId id : ids) emit_node(id);
    os << "  }\n";
  }
  os << "  subgraph top {\n";
  for (NodeId id : unclustered) emit_node(id);
  os << "  }\n";

  src.ForEachRenderNode([&](NodeId id) {
    if (!included(id)) return;
    for (NodeId p : src.Parents(id)) {
      if (!included(p)) continue;
      os << "  n" << p << " -> n" << id << ";\n";
    }
  });
  os << "}\n";
  if (!os.good()) return Status::IOError("DOT write failed");
  return Status::OK();
}

struct SnapshotSource {
  const GraphSnapshot& snap;

  bool Alive(NodeId id) const { return snap.Contains(id); }
  NodeFacts Facts(NodeId id) const { return FactsOf(snap, id); }
  std::span<const NodeId> Parents(NodeId id) const {
    return snap.ParentsOf(id);
  }
  const std::vector<InvocationInfo>& invocations() const {
    return snap.invocations();
  }
  std::string_view str(StrId id) const {
    return snap.strings().GetChecked(id);
  }
  template <typename Fn>
  void ForEachRenderNode(Fn&& fn) const {
    snap.ForEachNode(std::forward<Fn>(fn));
  }
};

struct ViewSource {
  const GraphView& view;

  bool Alive(NodeId id) const { return view.VisibleOrSynthetic(id); }
  NodeFacts Facts(NodeId id) const {
    if (view.IsSynthetic(id)) {
      return FactsOf(view.synthetic_nodes()[view.SyntheticIndex(id)]);
    }
    return FactsOf(view.snapshot(), id);
  }
  std::span<const NodeId> Parents(NodeId id) const {
    return view.ParentsOf(id);
  }
  const std::vector<InvocationInfo>& invocations() const {
    return view.snapshot().invocations();
  }
  std::string_view str(StrId id) const {
    return view.snapshot().strings().GetChecked(id);
  }
  template <typename Fn>
  void ForEachRenderNode(Fn&& fn) const {
    view.ForEachVisibleNode(
        [&fn](NodeId id, const GraphView::SyntheticNode*) { fn(id); });
  }
};

}  // namespace

Status WriteDot(const GraphSnapshot& snap, std::ostream& os,
                const DotOptions& options) {
  return WriteDotCore(SnapshotSource{snap}, os, options);
}

Status WriteDot(const ProvenanceGraph& graph, std::ostream& os,
                const DotOptions& options) {
  // Rendering reads parent edges only, so unsealed graphs stay writable.
  GraphSnapshot snap = GraphSnapshot::CaptureForParents(graph);
  return WriteDot(snap, os, options);
}

Status WriteDot(const GraphView& view, std::ostream& os,
                const DotOptions& options) {
  return WriteDotCore(ViewSource{view}, os, options);
}

Status WriteDotToFile(const ProvenanceGraph& graph, const std::string& path,
                      const DotOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError(StrCat("cannot open ", path, " for writing"));
  }
  return WriteDot(graph, out, options);
}

Status WriteDotToFile(const GraphView& view, const std::string& path,
                      const DotOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError(StrCat("cannot open ", path, " for writing"));
  }
  return WriteDot(view, out, options);
}

}  // namespace lipstick

#include "provenance/query.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "provenance/deletion.h"
#include "provenance/traverse.h"

namespace lipstick {

NodePredicate ByLabel(NodeLabel label) {
  return [label](NodeId, const NodeView& n) { return n.label() == label; };
}

NodePredicate ByRole(NodeRole role) {
  return [role](NodeId, const NodeView& n) { return n.role() == role; };
}

NodePredicate ByPayload(const std::string& substring) {
  return [substring](NodeId, const NodeView& n) {
    return n.payload().find(substring) != std::string_view::npos;
  };
}

NodePredicate ByModule(const ProvenanceGraph& graph, std::string module) {
  const ProvenanceGraph* g = &graph;
  // Interned names make this an integer comparison per node; a module
  // name absent from the pool can never match.
  StrId module_id = graph.strings().Find(module);
  return [g, module_id](NodeId, const NodeView& n) {
    if (module_id == kStrNotFound) return false;
    uint32_t inv = n.invocation();
    if (inv == kNoInvocation) return false;
    if (inv >= g->invocations().size()) return false;
    return g->invocations()[inv].module_name == module_id;
  };
}

NodePredicate ByModule(const GraphSnapshot& snap, std::string module) {
  return ByModule(snap.graph(), std::move(module));
}

NodePredicate And(NodePredicate a, NodePredicate b) {
  return [a = std::move(a), b = std::move(b)](NodeId id, const NodeView& n) {
    return a(id, n) && b(id, n);
  };
}

NodePredicate Or(NodePredicate a, NodePredicate b) {
  return [a = std::move(a), b = std::move(b)](NodeId id, const NodeView& n) {
    return a(id, n) || b(id, n);
  };
}

NodePredicate Not(NodePredicate p) {
  return [p = std::move(p)](NodeId id, const NodeView& n) {
    return !p(id, n);
  };
}

std::vector<NodeId> FindNodes(const GraphSnapshot& snap,
                              const NodePredicate& pred, int num_threads) {
  if (num_threads < 1) num_threads = 1;
  if (num_threads == 1) {
    std::vector<NodeId> out;
    snap.ForEachAliveNode([&](NodeId id) {
      if (pred(id, snap.node(id))) out.push_back(id);
    });
    return out;
  }
  std::vector<std::vector<NodeId>> found(num_threads);
  ParallelForNodes(snap, num_threads,
                   [&](uint32_t s, uint64_t b, uint64_t e, int w) {
                     for (uint64_t i = b; i < e; ++i) {
                       NodeId id = MakeNodeId(s, i);
                       if (!snap.Contains(id)) continue;
                       if (pred(id, snap.node(id))) found[w].push_back(id);
                     }
                   });
  std::vector<NodeId> out;
  for (const std::vector<NodeId>& v : found) {
    out.insert(out.end(), v.begin(), v.end());
  }
  // NodeId encodes (shard, index) in scan order: sorting restores the
  // sequential ForEachAliveNode order exactly.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> FindNodes(const ProvenanceGraph& graph,
                              const NodePredicate& pred) {
  GraphSnapshot snap = GraphSnapshot::CaptureForParents(graph);
  return FindNodes(snap, pred, 1);
}

Result<std::vector<NodeId>> ShortestDerivationPath(const GraphSnapshot& snap,
                                                   NodeId from, NodeId to) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "path queries"));
  if (!snap.Contains(from) || !snap.Contains(to)) {
    return std::vector<NodeId>{};
  }
  if (from == to) return std::vector<NodeId>{from};
  std::unordered_map<NodeId, NodeId> parent_of;  // BFS predecessor
  parent_of[from] = from;
  VisitedLease visited = snap.AcquireVisited();
  visited->Set(from);
  std::array<NodeId, 1> seeds{from};
  bool found = false;
  // Traverse() is level-synchronous, so the first visit of `to` closes a
  // shortest derivation path.
  Traverse(snap, seeds, TraverseDirection::kForward, *visited,
           [&](NodeId child, NodeId via) {
             parent_of[child] = via;
             if (child == to) {
               found = true;
               return Visit::kStop;
             }
             return Visit::kExpand;
           });
  if (!found) return std::vector<NodeId>{};
  std::vector<NodeId> path{to};
  for (NodeId at = to; at != from;) {
    at = parent_of[at];
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<std::vector<NodeId>> ShortestDerivationPath(
    const ProvenanceGraph& graph, NodeId from, NodeId to) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "path queries"));
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  if (!snap.ok()) return snap.status();
  return ShortestDerivationPath(*snap, from, to);
}

Result<bool> PathExists(const GraphSnapshot& snap, NodeId from, NodeId to) {
  LIPSTICK_ASSIGN_OR_RETURN(std::vector<NodeId> path,
                            ShortestDerivationPath(snap, from, to));
  return !path.empty();
}

Result<bool> PathExists(const ProvenanceGraph& graph, NodeId from,
                        NodeId to) {
  LIPSTICK_ASSIGN_OR_RETURN(std::vector<NodeId> path,
                            ShortestDerivationPath(graph, from, to));
  return !path.empty();
}

Result<bool> DependsOnSet(const GraphSnapshot& snap, NodeId target,
                          const std::vector<NodeId>& sources) {
  if (!snap.Contains(target)) return false;
  LIPSTICK_ASSIGN_OR_RETURN(std::unordered_set<NodeId> deleted,
                            ComputeDeletionSet(snap, sources));
  return deleted.count(target) > 0;
}

Result<bool> DependsOnSet(const ProvenanceGraph& graph, NodeId target,
                          const std::vector<NodeId>& sources) {
  if (!graph.Contains(target)) return false;
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "deletion propagation"));
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  if (!snap.ok()) return snap.status();
  return DependsOnSet(*snap, target, sources);
}

Result<GraphStats> ComputeGraphStats(const GraphSnapshot& snap) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(snap.graph(), "ComputeGraphStats"));
  GraphStats stats;
  stats.invocations = snap.graph().num_live_invocations();
  // Longest path via DP over a topological order; the construction order
  // within each shard is already topological (parents precede children),
  // but cross-shard edges may go either way, so iterate to a fixpoint.
  // Depths live in dense per-shard columns instead of a hash map: the
  // fixpoint reads every parent's depth once per round.
  std::vector<std::vector<size_t>> depth(snap.num_shards());
  for (uint32_t s = 0; s < snap.num_shards(); ++s) {
    depth[s].assign(snap.ShardSize(s), 0);
  }
  auto depth_at = [&depth](NodeId id) -> size_t& {
    return depth[NodeShard(id)][NodeIndex(id)];
  };
  bool changed = true;
  while (changed) {
    changed = false;
    snap.ForEachAliveNode([&](NodeId id) {
      size_t best = 0;
      for (NodeId p : snap.ParentsOf(id)) {
        if (snap.Contains(p)) best = std::max(best, depth_at(p) + 1);
      }
      if (best > depth_at(id)) {
        depth_at(id) = best;
        changed = true;
      }
    });
  }
  snap.ForEachAliveNode([&](NodeId id) {
    ++stats.nodes;
    size_t fan_in = 0;
    for (NodeId p : snap.ParentsOf(id)) fan_in += snap.Contains(p) ? 1 : 0;
    stats.edges += fan_in;
    stats.max_fan_in = std::max(stats.max_fan_in, fan_in);
    stats.max_fan_out =
        std::max(stats.max_fan_out, snap.ChildrenOf(id).size());
    stats.tokens += snap.node(id).label() == NodeLabel::kToken ? 1 : 0;
    stats.depth = std::max(stats.depth, depth_at(id));
  });
  return stats;
}

Result<GraphStats> ComputeGraphStats(const ProvenanceGraph& graph) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "ComputeGraphStats"));
  Result<GraphSnapshot> snap = GraphSnapshot::Capture(graph);
  if (!snap.ok()) return snap.status();
  return ComputeGraphStats(*snap);
}

}  // namespace lipstick

#include "provenance/query.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "provenance/deletion.h"

namespace lipstick {

NodePredicate ByLabel(NodeLabel label) {
  return [label](NodeId, const NodeView& n) { return n.label() == label; };
}

NodePredicate ByRole(NodeRole role) {
  return [role](NodeId, const NodeView& n) { return n.role() == role; };
}

NodePredicate ByPayload(const std::string& substring) {
  return [substring](NodeId, const NodeView& n) {
    return n.payload().find(substring) != std::string_view::npos;
  };
}

NodePredicate ByModule(const ProvenanceGraph& graph, std::string module) {
  const ProvenanceGraph* g = &graph;
  // Interned names make this an integer comparison per node; a module
  // name absent from the pool can never match.
  StrId module_id = graph.strings().Find(module);
  return [g, module_id](NodeId, const NodeView& n) {
    if (module_id == kStrNotFound) return false;
    uint32_t inv = n.invocation();
    if (inv == kNoInvocation) return false;
    if (inv >= g->invocations().size()) return false;
    return g->invocations()[inv].module_name == module_id;
  };
}

NodePredicate And(NodePredicate a, NodePredicate b) {
  return [a = std::move(a), b = std::move(b)](NodeId id, const NodeView& n) {
    return a(id, n) && b(id, n);
  };
}

NodePredicate Or(NodePredicate a, NodePredicate b) {
  return [a = std::move(a), b = std::move(b)](NodeId id, const NodeView& n) {
    return a(id, n) || b(id, n);
  };
}

NodePredicate Not(NodePredicate p) {
  return [p = std::move(p)](NodeId id, const NodeView& n) {
    return !p(id, n);
  };
}

std::vector<NodeId> FindNodes(const ProvenanceGraph& graph,
                              const NodePredicate& pred) {
  std::vector<NodeId> out;
  graph.ForEachAliveNode([&](NodeId id) {
    if (pred(id, graph.node(id))) out.push_back(id);
  });
  return out;
}

Result<bool> PathExists(const ProvenanceGraph& graph, NodeId from,
                        NodeId to) {
  LIPSTICK_ASSIGN_OR_RETURN(std::vector<NodeId> path,
                            ShortestDerivationPath(graph, from, to));
  return !path.empty();
}

Result<std::vector<NodeId>> ShortestDerivationPath(
    const ProvenanceGraph& graph, NodeId from, NodeId to) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "path queries"));
  if (!graph.Contains(from) || !graph.Contains(to)) {
    return std::vector<NodeId>{};
  }
  if (from == to) return std::vector<NodeId>{from};
  std::unordered_map<NodeId, NodeId> parent_of;  // BFS predecessor
  std::deque<NodeId> queue{from};
  parent_of[from] = from;
  while (!queue.empty()) {
    NodeId id = queue.front();
    queue.pop_front();
    for (NodeId child : graph.ChildrenOf(id)) {
      if (!graph.Contains(child) || parent_of.count(child)) continue;
      parent_of[child] = id;
      if (child == to) {
        std::vector<NodeId> path{to};
        for (NodeId at = to; at != from;) {
          at = parent_of[at];
          path.push_back(at);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(child);
    }
  }
  return std::vector<NodeId>{};
}

Result<bool> DependsOnSet(const ProvenanceGraph& graph, NodeId target,
                          const std::vector<NodeId>& sources) {
  if (!graph.Contains(target)) return false;
  LIPSTICK_ASSIGN_OR_RETURN(std::unordered_set<NodeId> deleted,
                            ComputeDeletionSet(graph, sources));
  return deleted.count(target) > 0;
}

Result<GraphStats> ComputeGraphStats(const ProvenanceGraph& graph) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "ComputeGraphStats"));
  GraphStats stats;
  stats.invocations = graph.num_live_invocations();
  // Longest path via DP over a topological order; the construction order
  // within each shard is already topological (parents precede children),
  // but cross-shard edges may go either way, so iterate to a fixpoint.
  std::unordered_map<NodeId, size_t> depth;
  bool changed = true;
  while (changed) {
    changed = false;
    graph.ForEachAliveNode([&](NodeId id) {
      size_t best = 0;
      for (NodeId p : graph.ParentsOf(id)) {
        if (graph.Contains(p)) best = std::max(best, depth[p] + 1);
      }
      if (best > depth[id]) {
        depth[id] = best;
        changed = true;
      }
    });
  }
  graph.ForEachAliveNode([&](NodeId id) {
    ++stats.nodes;
    size_t fan_in = 0;
    for (NodeId p : graph.ParentsOf(id)) fan_in += graph.Contains(p) ? 1 : 0;
    stats.edges += fan_in;
    stats.max_fan_in = std::max(stats.max_fan_in, fan_in);
    stats.max_fan_out = std::max(stats.max_fan_out,
                                 graph.ChildrenOf(id).size());
    stats.tokens += graph.node(id).label() == NodeLabel::kToken ? 1 : 0;
    stats.depth = std::max(stats.depth, depth[id]);
  });
  return stats;
}

}  // namespace lipstick

#include "provenance/query.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "provenance/deletion.h"

namespace lipstick {

NodePredicate ByLabel(NodeLabel label) {
  return [label](NodeId, const ProvNode& n) { return n.label == label; };
}

NodePredicate ByRole(NodeRole role) {
  return [role](NodeId, const ProvNode& n) { return n.role == role; };
}

NodePredicate ByPayload(const std::string& substring) {
  return [substring](NodeId, const ProvNode& n) {
    return n.payload.find(substring) != std::string::npos;
  };
}

NodePredicate ByModule(const ProvenanceGraph& graph, std::string module) {
  const ProvenanceGraph* g = &graph;
  return [g, module = std::move(module)](NodeId, const ProvNode& n) {
    if (n.invocation == kNoInvocation) return false;
    if (n.invocation >= g->invocations().size()) return false;
    return g->invocations()[n.invocation].module_name == module;
  };
}

NodePredicate And(NodePredicate a, NodePredicate b) {
  return [a = std::move(a), b = std::move(b)](NodeId id, const ProvNode& n) {
    return a(id, n) && b(id, n);
  };
}

NodePredicate Or(NodePredicate a, NodePredicate b) {
  return [a = std::move(a), b = std::move(b)](NodeId id, const ProvNode& n) {
    return a(id, n) || b(id, n);
  };
}

NodePredicate Not(NodePredicate p) {
  return [p = std::move(p)](NodeId id, const ProvNode& n) {
    return !p(id, n);
  };
}

std::vector<NodeId> FindNodes(const ProvenanceGraph& graph,
                              const NodePredicate& pred) {
  std::vector<NodeId> out;
  for (NodeId id : graph.AllNodeIds()) {
    if (!graph.Contains(id)) continue;
    if (pred(id, graph.node(id))) out.push_back(id);
  }
  return out;
}

Result<bool> PathExists(const ProvenanceGraph& graph, NodeId from,
                        NodeId to) {
  LIPSTICK_ASSIGN_OR_RETURN(std::vector<NodeId> path,
                            ShortestDerivationPath(graph, from, to));
  return !path.empty();
}

Result<std::vector<NodeId>> ShortestDerivationPath(
    const ProvenanceGraph& graph, NodeId from, NodeId to) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "path queries"));
  if (!graph.Contains(from) || !graph.Contains(to)) {
    return std::vector<NodeId>{};
  }
  if (from == to) return std::vector<NodeId>{from};
  std::unordered_map<NodeId, NodeId> parent_of;  // BFS predecessor
  std::deque<NodeId> queue{from};
  parent_of[from] = from;
  while (!queue.empty()) {
    NodeId id = queue.front();
    queue.pop_front();
    for (NodeId child : graph.Children(id)) {
      if (!graph.Contains(child) || parent_of.count(child)) continue;
      parent_of[child] = id;
      if (child == to) {
        std::vector<NodeId> path{to};
        for (NodeId at = to; at != from;) {
          at = parent_of[at];
          path.push_back(at);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(child);
    }
  }
  return std::vector<NodeId>{};
}

Result<bool> DependsOnSet(const ProvenanceGraph& graph, NodeId target,
                          const std::vector<NodeId>& sources) {
  if (!graph.Contains(target)) return false;
  LIPSTICK_ASSIGN_OR_RETURN(std::unordered_set<NodeId> deleted,
                            ComputeDeletionSet(graph, sources));
  return deleted.count(target) > 0;
}

Result<GraphStats> ComputeGraphStats(const ProvenanceGraph& graph) {
  LIPSTICK_RETURN_IF_ERROR(RequireSealed(graph, "ComputeGraphStats"));
  GraphStats stats;
  stats.invocations = graph.num_live_invocations();
  // Longest path via DP over a topological order; the construction order
  // within each shard is already topological (parents precede children),
  // but cross-shard edges may go either way, so iterate to a fixpoint.
  std::unordered_map<NodeId, size_t> depth;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : graph.AllNodeIds()) {
      if (!graph.Contains(id)) continue;
      const ProvNode& n = graph.node(id);
      size_t best = 0;
      for (NodeId p : n.parents) {
        if (graph.Contains(p)) best = std::max(best, depth[p] + 1);
      }
      if (best > depth[id]) {
        depth[id] = best;
        changed = true;
      }
    }
  }
  for (NodeId id : graph.AllNodeIds()) {
    if (!graph.Contains(id)) continue;
    const ProvNode& n = graph.node(id);
    ++stats.nodes;
    size_t fan_in = 0;
    for (NodeId p : n.parents) fan_in += graph.Contains(p) ? 1 : 0;
    stats.edges += fan_in;
    stats.max_fan_in = std::max(stats.max_fan_in, fan_in);
    stats.max_fan_out = std::max(stats.max_fan_out,
                                 graph.Children(id).size());
    stats.tokens += n.label == NodeLabel::kToken ? 1 : 0;
    stats.depth = std::max(stats.depth, depth[id]);
  }
  return stats;
}

}  // namespace lipstick

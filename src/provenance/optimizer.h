#ifndef LIPSTICK_PROVENANCE_OPTIMIZER_H_
#define LIPSTICK_PROVENANCE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "provenance/plan.h"

namespace lipstick {

/// One rewrite the optimizer applied (or one execution strategy it
/// selected), reported by `lipstick explain`.
struct PlanRewrite {
  std::string rule;    // e.g. "restrict_fusion"
  std::string detail;  // human-readable description
};

/// A plan after rule-based rewriting, plus the metadata the executor and
/// the cache need: which rewrites fired and the canonical string of every
/// view-operator prefix (the cacheable subplans — a later request whose
/// pipeline shares a prefix reuses the composed view mask instead of
/// recomputing it).
struct OptimizedPlan {
  Plan plan;
  std::vector<PlanRewrite> rewrites;
  // view_prefixes[i] == canonical string of plan.ops[0..i] (view ops only),
  // longest last. Empty when the plan has no view operators.
  std::vector<std::string> view_prefixes;
};

/// Rule-based rewriting:
///   - no-op elimination: an empty Restrict (matches everything) is dropped;
///   - restrict fusion: adjacent Restricts AND-merge into one predicate;
///   - mask fusion: all view operators execute against one composed
///     GraphView, never materializing between stages (recorded, since it is
///     the executor's strategy rather than a plan mutation);
///   - predicate pushdown: a trailing Find evaluates during the composed
///     view's single visible-node enumeration pass;
///   - cache-aware subplan split: every view prefix is published as a
///     cacheable unit (view_prefixes).
/// Rewrites never reorder DeleteProp or ZoomOut stages — their results
/// depend on what is visible when they run.
OptimizedPlan OptimizePlan(const Plan& plan);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_OPTIMIZER_H_

#include "provenance/recovery.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "provenance/provio.h"
#include "provenance/wal.h"

namespace lipstick {

namespace {

using walfmt::Cursor;
using walfmt::Record;
using walfmt::RecordType;

struct RecoveryMetrics {
  obs::MetricId replayed;
  obs::MetricId discarded;
  obs::MetricId torn;
  obs::MetricId us;

  static const RecoveryMetrics& Get() {
    static const RecoveryMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      RecoveryMetrics r;
      r.replayed = reg.RegisterCounter("recovery.replayed_records");
      r.discarded = reg.RegisterCounter("recovery.discarded_records");
      r.torn = reg.RegisterCounter("recovery.torn_segments");
      r.us = reg.RegisterHistogram("recovery.us");
      return r;
    }();
    return m;
  }
};

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError(StrCat("cannot open ", path));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError(StrCat("read failed: ", path));
  return std::move(buf).str();
}

/// One scanned segment, held in memory for the two replay passes.
struct ScannedSegment {
  uint64_t seq = 0;
  std::string path;
  std::string data;               // raw file image; records point into it
  std::vector<Record> records;
  std::string torn_reason;        // empty: ends cleanly at a frame boundary
  uint64_t valid_prefix = 0;      // bytes of valid header + frames
};

/// The savepoint extent a kSavepoint record describes.
struct SavepointExtent {
  uint32_t execution = 0;
  uint64_t invocation_count = 0;
  std::vector<uint64_t> shard_sizes;
};

Result<SavepointExtent> ParseSavepoint(const Record& rec) {
  Cursor c(rec.payload);
  SavepointExtent sp;
  sp.execution = c.U32();
  sp.invocation_count = c.U64();
  uint32_t n = c.U32();
  if (c.ok && n <= 0x10000) {
    sp.shard_sizes.reserve(n);
    for (uint32_t i = 0; i < n; ++i) sp.shard_sizes.push_back(c.U64());
  } else {
    c.ok = false;
  }
  if (!c.ok || !c.AtEnd()) {
    return Status::ParseError("wal replay: malformed savepoint record");
  }
  return sp;
}

Status MalformedRecord(const Record& rec) {
  return Status::ParseError(
      StrCat("wal replay: malformed record type ",
             static_cast<int>(rec.type), " at offset ", rec.offset));
}

/// Applies one record to the graph under reconstruction. `committed`
/// collects kCommitInvocation ids (no graph effect of their own).
Status ApplyRecord(ProvenanceGraph* graph, const Record& rec,
                   std::vector<uint32_t>* committed) {
  Cursor c(rec.payload);
  switch (rec.type) {
    case RecordType::kIntern: {
      StrId id = c.U32();
      uint32_t len = c.U32();
      std::string_view s = c.Bytes(len);
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      StrId got = graph->InternString(s);
      if (got != id) {
        return Status::Internal(StrCat("wal replay: intern id mismatch: log ",
                                       id, ", graph ", got));
      }
      return Status::OK();
    }
    case RecordType::kNodeAppend: {
      NodeId id = c.U64();
      uint8_t label = c.U8();
      uint8_t role = c.U8();
      uint8_t flags = c.U8();
      uint32_t invocation = c.U32();
      StrId payload = c.U32();
      uint32_t n = c.U32();
      std::vector<NodeId> parents;
      if (c.ok && n <= (1u << 24)) {
        parents.reserve(n);
        for (uint32_t i = 0; i < n; ++i) parents.push_back(c.U64());
      } else {
        c.ok = false;
      }
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      if (label > static_cast<uint8_t>(NodeLabel::kZoomedModule) ||
          role > static_cast<uint8_t>(NodeRole::kZoom) ||
          payload >= graph->strings().size()) {
        return Status::ParseError(
            StrCat("wal replay: node ", id, " has out-of-range columns"));
      }
      uint32_t shard = NodeShard(id);
      if (shard > 0xffff) {
        return Status::ParseError(
            StrCat("wal replay: node ", id, " names absurd shard ", shard));
      }
      while (graph->num_shards() <= shard) (void)graph->AddShard();
      if (NodeIndex(id) != graph->ShardSize(shard)) {
        return Status::Internal(
            StrCat("wal replay: node ", id, " out of append order (shard ",
                   shard, " holds ", graph->ShardSize(shard), " nodes)"));
      }
      ShardWriter writer(graph, shard);
      NodeId got = writer.AppendRaw(static_cast<NodeLabel>(label),
                                    static_cast<NodeRole>(role), flags,
                                    invocation, payload, parents);
      if (got != id) {
        return Status::Internal(
            StrCat("wal replay: node id mismatch: log ", id, ", graph ", got));
      }
      return Status::OK();
    }
    case RecordType::kNodeValue: {
      NodeId id = c.U64();
      LIPSTICK_ASSIGN_OR_RETURN(Value value, walfmt::DecodeValue(&c));
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      if (!graph->InGraph(id)) {
        return Status::Internal(
            StrCat("wal replay: value for unknown node ", id));
      }
      graph->SetNodeValue(id, std::move(value));
      return Status::OK();
    }
    case RecordType::kSetParents: {
      NodeId id = c.U64();
      uint32_t n = c.U32();
      std::vector<NodeId> parents;
      if (c.ok && n <= (1u << 24)) {
        parents.reserve(n);
        for (uint32_t i = 0; i < n; ++i) parents.push_back(c.U64());
      } else {
        c.ok = false;
      }
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      if (!graph->InGraph(id)) {
        return Status::Internal(
            StrCat("wal replay: parents for unknown node ", id));
      }
      graph->SetParents(id, parents);
      return Status::OK();
    }
    case RecordType::kSetAlive: {
      NodeId id = c.U64();
      uint8_t alive = c.U8();
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      if (!graph->InGraph(id)) {
        return Status::Internal(
            StrCat("wal replay: liveness for unknown node ", id));
      }
      graph->SetAlive(id, alive != 0);
      return Status::OK();
    }
    case RecordType::kKillShardTail: {
      uint32_t shard = c.U32();
      uint64_t from = c.U64();
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      if (shard >= graph->num_shards()) {
        return Status::Internal(
            StrCat("wal replay: kill-tail on unknown shard ", shard));
      }
      graph->KillShardTail(shard, from);
      return Status::OK();
    }
    case RecordType::kBeginInvocation: {
      uint32_t inv = c.U32();
      InvocationInfo info;
      info.module_name = c.U32();
      info.instance_name = c.U32();
      info.execution = c.U32();
      info.m_node = c.U64();
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      if (inv != graph->invocations().size() ||
          info.module_name >= graph->strings().size() ||
          info.instance_name >= graph->strings().size() ||
          !graph->InGraph(info.m_node)) {
        return Status::Internal(
            StrCat("wal replay: inconsistent invocation ", inv));
      }
      NodeId m_node = info.m_node;
      uint32_t got = graph->RestoreInvocation(std::move(info));
      LIPSTICK_CHECK(got == inv, "invocation id drifted during replay");
      // The m-node is appended before the invocation id exists; the graph
      // patches its invocation column afterwards, and so does replay.
      graph->SetInvocationTag(m_node, inv);
      return Status::OK();
    }
    case RecordType::kInvocationNode: {
      uint32_t inv = c.U32();
      uint8_t kind = c.U8();
      NodeId node = c.U64();
      if (!c.ok || !c.AtEnd() || kind > 2) return MalformedRecord(rec);
      if (inv >= graph->invocations().size() || !graph->InGraph(node)) {
        return Status::Internal(
            StrCat("wal replay: structural node for unknown invocation ",
                   inv));
      }
      InvocationInfo& info = graph->mutable_invocation(inv);
      (kind == 0   ? info.input_nodes
       : kind == 1 ? info.output_nodes
                   : info.state_nodes)
          .push_back(node);
      return Status::OK();
    }
    case RecordType::kAbortInvocation: {
      uint32_t inv = c.U32();
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      if (inv >= graph->invocations().size()) {
        return Status::Internal(
            StrCat("wal replay: abort of unknown invocation ", inv));
      }
      graph->AbortInvocation(inv);
      return Status::OK();
    }
    case RecordType::kTruncateInvocations: {
      uint64_t count = c.U64();
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      if (count > graph->invocations().size()) {
        return Status::Internal("wal replay: truncation grows invocations");
      }
      graph->TruncateInvocations(count);
      return Status::OK();
    }
    case RecordType::kCommitInvocation: {
      uint32_t inv = c.U32();
      if (!c.ok || !c.AtEnd()) return MalformedRecord(rec);
      committed->push_back(inv);
      return Status::OK();
    }
    case RecordType::kSavepoint:
      // Boundaries are interpreted by the caller; validate shape only.
      return ParseSavepoint(rec).status();
  }
  return Status::ParseError(
      StrCat("wal replay: unknown record type ",
             static_cast<int>(rec.type)));
}

/// Verifies the graph matches a savepoint's recorded extent — the
/// cross-check that replay reproduced exactly what the tracker saw.
Status VerifyExtent(const ProvenanceGraph& graph, const SavepointExtent& sp) {
  if (graph.invocations().size() != sp.invocation_count) {
    return Status::Internal(
        StrCat("wal replay: savepoint expects ", sp.invocation_count,
               " invocations, graph has ", graph.invocations().size()));
  }
  if (graph.num_shards() < sp.shard_sizes.size()) {
    return Status::Internal("wal replay: savepoint names missing shards");
  }
  for (uint32_t s = 0; s < graph.num_shards(); ++s) {
    uint64_t want = s < sp.shard_sizes.size() ? sp.shard_sizes[s] : 0;
    if (graph.ShardSize(s) != want) {
      return Status::Internal(
          StrCat("wal replay: savepoint expects ", want, " nodes in shard ",
                 s, ", graph has ", graph.ShardSize(s)));
    }
  }
  return Status::OK();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream os;
  os << "recovery of " << dir << "\n";
  if (checkpoint_seq != 0) {
    os << "  checkpoint:   " << checkpoint_file << "\n";
  } else {
    os << "  checkpoint:   none (replayed from log origin)\n";
  }
  os << "  segments:     " << segments_scanned << " scanned, "
     << torn_segments << " torn\n";
  os << "  records:      " << records_applied << " applied, "
     << records_discarded << " discarded\n";
  os << "  restored:     " << executions_recovered << " executions, "
     << invocations_recovered << " live invocations";
  if (invocations_aborted > 0) {
    os << ", " << invocations_aborted << " uncommitted aborted";
  }
  os << "\n";
  if (bytes_truncated > 0) {
    os << "  repaired:     " << bytes_truncated << " torn bytes truncated\n";
  }
  for (const std::string& note : notes) {
    os << "  note:         " << note << "\n";
  }
  return os.str();
}

Result<ProvenanceGraph> RecoverGraph(const std::string& dir,
                                     RecoveryReport* report,
                                     const RecoveryOptions& options) {
  namespace fs = std::filesystem;
  obs::ObsSpan span("wal", "recover");
  WallTimer timer;
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport();
  rep.dir = dir;

  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IOError(StrCat("wal recovery: not a directory: ", dir));
  }
  std::vector<uint64_t> segment_seqs;
  std::vector<uint64_t> checkpoint_seqs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t seq = 0;
    std::string name = entry.path().filename().string();
    if (walfmt::ParseSegmentName(name, &seq)) segment_seqs.push_back(seq);
    if (walfmt::ParseCheckpointName(name, &seq)) {
      checkpoint_seqs.push_back(seq);
    }
  }
  if (ec) {
    return Status::IOError(
        StrCat("wal recovery: cannot list ", dir, ": ", ec.message()));
  }
  if (segment_seqs.empty() && checkpoint_seqs.empty()) {
    return Status::NotFound(
        StrCat("wal recovery: no log segments or checkpoints in ", dir));
  }
  std::sort(segment_seqs.begin(), segment_seqs.end());
  std::sort(checkpoint_seqs.begin(), checkpoint_seqs.end());

  // Seed from the newest readable checkpoint; fall back to older ones
  // (e.g. a checkpoint torn mid-write before its rename would not parse,
  // but a *.pg that renamed yet fails to load is still survivable as long
  // as the previous one plus its segments remain).
  ProvenanceGraph graph;
  uint64_t base_seq = 0;
  for (auto it = checkpoint_seqs.rbegin(); it != checkpoint_seqs.rend();
       ++it) {
    std::string name = walfmt::CheckpointFileName(*it);
    Result<ProvenanceGraph> loaded = LoadGraphFromFile(dir + "/" + name);
    if (loaded.ok()) {
      graph = std::move(loaded).value();
      base_seq = *it;
      rep.checkpoint_seq = *it;
      rep.checkpoint_file = name;
      break;
    }
    rep.notes.push_back(StrCat("checkpoint ", name, " unreadable (",
                               loaded.status().message(), "), trying older"));
  }
  if (rep.checkpoint_seq == 0 && !checkpoint_seqs.empty()) {
    rep.notes.push_back("no readable checkpoint; replaying from log origin");
  }

  // Collect the segments at or after the base, stopping at a sequence gap
  // (segments beyond a gap describe state we cannot reconstruct).
  std::vector<ScannedSegment> segments;
  uint64_t prev_seq = 0;
  for (uint64_t seq : segment_seqs) {
    if (seq < base_seq) continue;  // superseded by the checkpoint
    if (prev_seq != 0 && seq != prev_seq + 1) {
      rep.notes.push_back(StrCat("sequence gap: segment ", prev_seq + 1,
                                 " missing; ignoring segment ", seq,
                                 " and later"));
      break;
    }
    ScannedSegment seg;
    seg.seq = seq;
    seg.path = dir + "/" + walfmt::SegmentFileName(seq);
    Result<std::string> data = ReadFileToString(seg.path);
    if (!data.ok()) return data.status();
    seg.data = std::move(data).value();
    walfmt::SegmentScanner scanner(seg.data);
    if (!scanner.header_status().ok()) {
      // An unreadable header cannot result from a torn append (headers are
      // written whole at segment creation) — except for the freshly
      // created segment at the very tail, where a crash can race the
      // header write itself.
      if (seq == segment_seqs.back()) {
        rep.notes.push_back(StrCat(walfmt::SegmentFileName(seq), ": ",
                                   scanner.torn_reason(),
                                   " (crash during segment creation)"));
        ++rep.torn_segments;
        break;
      }
      return Status::ParseError(StrCat("wal recovery: ", seg.path, ": ",
                                       scanner.header_status().message()));
    }
    if (scanner.sequence() != seq) {
      return Status::ParseError(
          StrCat("wal recovery: ", seg.path, ": header sequence ",
                 scanner.sequence(), " does not match file name"));
    }
    Record rec;
    while (scanner.Next(&rec)) seg.records.push_back(rec);
    seg.torn_reason = scanner.torn_reason();
    seg.valid_prefix = scanner.valid_prefix();
    ++rep.segments_scanned;
    bool torn = !seg.torn_reason.empty();
    if (torn) {
      ++rep.torn_segments;
      rep.notes.push_back(StrCat(walfmt::SegmentFileName(seq), ": torn tail (",
                                 seg.torn_reason, ") at byte ",
                                 seg.valid_prefix));
    }
    prev_seq = seq;
    segments.push_back(std::move(seg));
    if (torn) {
      // Frames after an invalid one cannot be trusted (no resync marker);
      // later segments would also describe unreachable state.
      if (seq != segment_seqs.back()) {
        rep.notes.push_back(
            StrCat("ignoring segments after torn ",
                   walfmt::SegmentFileName(seq)));
      }
      break;
    }
  }

  // Pass 1: find the last savepoint — the recovery boundary.
  size_t sp_seg = segments.size();  // index of the boundary segment
  size_t sp_rec = 0;                // index of the savepoint record within it
  uint64_t total_records = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    total_records += segments[i].records.size();
    for (size_t j = 0; j < segments[i].records.size(); ++j) {
      if (segments[i].records[j].type == RecordType::kSavepoint) {
        sp_seg = i;
        sp_rec = j;
      }
    }
  }
  if (sp_seg == segments.size()) {
    // No durable execution boundary: the crash predates the first
    // savepoint. With a checkpoint the snapshot itself is the boundary;
    // without one the committed prefix is empty — recover the empty
    // graph rather than fail, since that is exactly what had committed.
    rep.notes.push_back(
        rep.checkpoint_seq == 0
            ? "crash predates the first durable savepoint; nothing committed"
            : "no savepoint in log; restored checkpoint only");
  }

  // Pass 2: apply records through the boundary (and beyond it, when the
  // caller wants the uncommitted tail kept as dead structure). With no
  // savepoint in the log the checkpoint itself is the boundary.
  const bool found_sp = sp_seg < segments.size();
  SavepointExtent boundary;  // default: the empty extent (nothing committed)
  if (rep.checkpoint_seq != 0) {
    ProvenanceGraph::Savepoint sp = graph.TakeSavepoint();
    boundary.invocation_count = sp.invocation_count;
    boundary.shard_sizes.assign(sp.shard_sizes.begin(),
                                sp.shard_sizes.end());
  }
  std::vector<uint32_t> committed;
  uint64_t applied = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (!options.keep_uncommitted && (!found_sp || i > sp_seg)) break;
    const ScannedSegment& seg = segments[i];
    for (size_t j = 0; j < seg.records.size(); ++j) {
      bool past_boundary =
          !found_sp || i > sp_seg || (i == sp_seg && j > sp_rec);
      if (past_boundary && !options.keep_uncommitted) break;
      const Record& rec = seg.records[j];
      Status st = ApplyRecord(&graph, rec, &committed);
      if (!st.ok()) {
        return st.WithContext(
            StrCat("in ", walfmt::SegmentFileName(seg.seq)));
      }
      ++applied;
      if (rec.type == RecordType::kSavepoint && found_sp && i == sp_seg &&
          j == sp_rec) {
        LIPSTICK_ASSIGN_OR_RETURN(boundary, ParseSavepoint(rec));
        // AddShard is not logged: a worker shard that had appended
        // nothing by this boundary exists only as a zero-size entry in
        // the extent. Create those so the recovered graph matches the
        // tracker's shard-for-shard.
        while (graph.num_shards() < boundary.shard_sizes.size() &&
               boundary.shard_sizes[graph.num_shards()] == 0) {
          (void)graph.AddShard();
        }
        // The extent check: replay must land exactly where the tracker
        // was when it marked the boundary.
        LIPSTICK_RETURN_IF_ERROR(VerifyExtent(graph, boundary));
      }
    }
  }
  rep.records_applied = applied;
  rep.records_discarded = total_records - applied;

  rep.executions_recovered = boundary.execution;
  if (options.keep_uncommitted) {
    // Mark the replayed-but-uncommitted tail dead with the same
    // machinery the executor uses to discard failed attempts: kill the
    // nodes past the boundary extent, abort the invocation records.
    for (uint32_t s = 0; s < graph.num_shards(); ++s) {
      uint64_t keep =
          s < boundary.shard_sizes.size() ? boundary.shard_sizes[s] : 0;
      if (graph.ShardSize(s) > keep) graph.KillShardTail(s, keep);
    }
    for (uint32_t inv = static_cast<uint32_t>(boundary.invocation_count);
         inv < graph.invocations().size(); ++inv) {
      if (!graph.invocations()[inv].aborted()) {
        graph.AbortInvocation(inv);
        ++rep.invocations_aborted;
      }
    }
  }
  rep.invocations_recovered = graph.num_live_invocations();

  if (options.repair) {
    for (const ScannedSegment& seg : segments) {
      if (seg.torn_reason.empty()) continue;
      if (seg.valid_prefix >= seg.data.size()) continue;
      if (::truncate(seg.path.c_str(),
                     static_cast<off_t>(seg.valid_prefix)) != 0) {
        rep.notes.push_back(StrCat("repair: cannot truncate ", seg.path));
        continue;
      }
      rep.bytes_truncated += seg.data.size() - seg.valid_prefix;
    }
  }

  if (obs::MetricsRegistry::Enabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.CounterAdd(RecoveryMetrics::Get().replayed, rep.records_applied);
    reg.CounterAdd(RecoveryMetrics::Get().discarded, rep.records_discarded);
    reg.CounterAdd(RecoveryMetrics::Get().torn, rep.torn_segments);
    reg.Observe(RecoveryMetrics::Get().us, timer.ElapsedMicros());
  }
  if (span.active()) {
    span.Arg("applied", rep.records_applied);
    span.Arg("executions", rep.executions_recovered);
  }
  return graph;
}

}  // namespace lipstick

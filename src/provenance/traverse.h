#ifndef LIPSTICK_PROVENANCE_TRAVERSE_H_
#define LIPSTICK_PROVENANCE_TRAVERSE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/cancel.h"
#include "provenance/snapshot.h"

namespace lipstick {

/// The shared frontier-based traversal engine of the read path. Every
/// operator that used to hand-roll a BFS (subgraph, zoom, deletion, path
/// queries, stats) now sits on these primitives; see DESIGN.md §5g.

enum class TraverseDirection : uint8_t {
  kForward,   // derivation order: follow children (requires sealed CSR)
  kBackward,  // follow parents (always available)
};

/// Adjacency of `id` in the requested direction.
inline std::span<const NodeId> Neighbors(const GraphSnapshot& snap, NodeId id,
                                         TraverseDirection dir) {
  return dir == TraverseDirection::kForward ? snap.ChildrenOf(id)
                                            : snap.ParentsOf(id);
}

/// Visitor verdict for Traverse(): expand through the node, record it but
/// stop expanding there, or terminate the whole traversal (early exit).
enum class Visit : uint8_t { kExpand, kSkip, kStop };

namespace internal {
/// Observability hook (metrics + trace span args) shared by all traversal
/// entry points; defined in traverse.cc so the template stays lean.
void RecordTraversal(TraverseDirection dir, size_t visited, int threads);
}  // namespace internal

/// Frontier BFS from `seeds` over alive nodes. `visit(node, via)` is called
/// exactly once for every alive node first reached through an alive edge
/// (`via` is the node it was reached from); its verdict controls expansion
/// and early exit. Seeds themselves are not visited unless re-reached
/// (pre-mark them in `visited` to suppress reporting entirely). Frontier
/// order is level-synchronous, so the first visit of a node is along a
/// shortest edge path from the seed set. Returns the number of visited
/// nodes.
///
/// Cancellation: the calling thread's CancelToken (see common/cancel.h) is
/// polled once per expanded frontier node; a fired token stops the
/// traversal early. The caller that installed the token is responsible
/// for checking it afterwards and discarding the partial result.
template <typename Fn>
size_t Traverse(const GraphSnapshot& snap, std::span<const NodeId> seeds,
                TraverseDirection dir, VisitedSet& visited, Fn&& visit) {
  std::vector<NodeId> queue(seeds.begin(), seeds.end());
  size_t head = 0;
  size_t reported = 0;
  while (head < queue.size()) {
    if (PollCurrentCancel()) break;
    NodeId id = queue[head++];
    for (NodeId n : Neighbors(snap, id, dir)) {
      if (!snap.Contains(n) || visited.TestAndSet(n)) continue;
      ++reported;
      Visit v = visit(n, id);
      if (v == Visit::kStop) {
        internal::RecordTraversal(dir, reported, 1);
        return reported;
      }
      if (v == Visit::kExpand) queue.push_back(n);
    }
  }
  internal::RecordTraversal(dir, reported, 1);
  return reported;
}

/// Every alive node reachable from `seeds` (seeds excluded unless
/// re-reached), collected with the work-stealing parallel BFS when
/// `num_threads` > 1. Result order is unspecified in parallel mode; the
/// result *set* equals the single-threaded traversal. `visited` must use
/// a bitmap leased from `snap`; on return it marks exactly the result.
std::vector<NodeId> ParallelReach(const GraphSnapshot& snap,
                                  std::span<const NodeId> seeds,
                                  TraverseDirection dir, int num_threads,
                                  VisitedSet& visited);

/// Runs `fn(begin, end, worker)` over disjoint chunks covering [0, n) on
/// `num_threads` workers with work stealing (workers that drain their
/// slice steal half of a victim's remainder). `fn` must be thread-safe
/// across distinct chunks. Blocks until all chunks are processed. The
/// backbone of batch query serving and parallel column scans.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t, int)>& fn);

/// Work-stealing parallel scan over every (shard, index range) of the
/// snapshot: `fn(shard, begin, end, worker)`.
void ParallelForNodes(const GraphSnapshot& snap, int num_threads,
                      const std::function<void(uint32_t, uint64_t, uint64_t,
                                               int)>& fn);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_TRAVERSE_H_

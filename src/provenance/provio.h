#ifndef LIPSTICK_PROVENANCE_PROVIO_H_
#define LIPSTICK_PROVENANCE_PROVIO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "provenance/graph.h"

namespace lipstick {

/// Serialization of provenance graphs. This implements the paper's
/// Lipstick architecture split: the Provenance Tracker writes
/// provenance-annotated output to the file system, and the Query Processor
/// later reads it back and builds the in-memory graph (Section 5.1).
///
/// Format: line-oriented text. Node ids, shard structure, and invocation
/// metadata are preserved exactly, so Load(Save(g)) reproduces g.

/// Writes `graph` to `os`. Only scalar values in v-nodes are supported.
Status SaveGraph(const ProvenanceGraph& graph, std::ostream& os);
/// Writes `graph` to the file at `path`.
Status SaveGraphToFile(const ProvenanceGraph& graph, const std::string& path);

/// Reads a graph previously written by SaveGraph. The result is unsealed;
/// call Seal() before querying (benchmarks measure exactly this
/// read + build + seal cost, cf. Figure 6).
Result<ProvenanceGraph> LoadGraph(std::istream& is);
Result<ProvenanceGraph> LoadGraphFromFile(const std::string& path);

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_PROVIO_H_

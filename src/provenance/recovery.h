#ifndef LIPSTICK_PROVENANCE_RECOVERY_H_
#define LIPSTICK_PROVENANCE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/graph.h"

namespace lipstick {

/// Crash recovery for WAL directories written by provenance/wal.h: load the
/// newest readable checkpoint, replay the log tail, stop at the last
/// durable savepoint (a committed execution boundary), and report what was
/// kept, what was discarded, and why.

struct RecoveryOptions {
  /// Default (false): restore exactly the committed prefix — records past
  /// the last savepoint are discarded, yielding a graph byte-identical to
  /// the one a clean run of the recovered executions would produce.
  /// True: also replay the uncommitted tail, then use the rollback
  /// machinery to mark it dead (KillShardTail + AbortInvocation), keeping
  /// the partial work visible for forensics without poisoning queries.
  bool keep_uncommitted = false;
  /// Truncate torn bytes off segment files on disk after a successful
  /// recovery, so subsequent scans see only valid frames.
  bool repair = false;
};

/// What recovery found and did. ToString() renders the human-readable
/// report printed by `lipstick recover`.
struct RecoveryReport {
  std::string dir;
  /// Checkpoint the graph was seeded from; 0 = recovered from logs alone.
  uint64_t checkpoint_seq = 0;
  std::string checkpoint_file;  // empty if none
  uint64_t segments_scanned = 0;
  uint64_t torn_segments = 0;   // segments ending in an invalid frame
  uint64_t records_applied = 0;
  /// Valid records past the recovery boundary (committed-prefix mode) or
  /// unreachable behind a torn/missing segment.
  uint64_t records_discarded = 0;
  /// Executions restored (the savepoint's execution counter) — resume the
  /// workflow sequence from here.
  uint64_t executions_recovered = 0;
  uint64_t invocations_recovered = 0;  // live invocations in the result
  uint64_t invocations_aborted = 0;    // uncommitted tail (keep_uncommitted)
  uint64_t bytes_truncated = 0;        // torn bytes removed (repair)
  /// Diagnostics worth a human's attention: torn tails, skipped
  /// checkpoints, sequence gaps.
  std::vector<std::string> notes;

  std::string ToString() const;
};

/// Rebuilds the provenance graph from the WAL directory `dir`. The result
/// is unsealed; call Seal() before querying. Fails (non-OK) only when the
/// directory is unusable or the log is inconsistent beyond what a crash
/// can explain (bad magic, replay mismatch); mere torn tails are handled
/// and reported. `report` (optional) receives the recovery report even on
/// some failures.
Result<ProvenanceGraph> RecoverGraph(const std::string& dir,
                                     RecoveryReport* report = nullptr,
                                     const RecoveryOptions& options = {});

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_RECOVERY_H_

#ifndef LIPSTICK_PROVENANCE_STRING_POOL_H_
#define LIPSTICK_PROVENANCE_STRING_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lipstick {

/// Id of an interned string in a StringPool. Id 0 is always the empty
/// string; kStrNotFound is returned by Find() for strings never interned.
using StrId = uint32_t;
inline constexpr StrId kEmptyStr = 0;
inline constexpr StrId kStrNotFound = 0xffffffffu;

/// Interns strings into a chunked arena and hands out dense 32-bit ids.
///
/// Provenance graphs repeat the same payloads (token prefixes, module and
/// function names, aggregate ops) thousands of times; interning stores each
/// distinct string once and lets the node columns carry 4-byte ids instead
/// of 32-byte std::strings. Views returned by Get() stay valid for the
/// lifetime of the pool (strings never move: the arena grows by adding
/// chunks, never by reallocating one) and across moves of the pool.
///
/// Thread safety: Intern() may be called from concurrent ShardWriters and
/// takes an internal mutex. Get()/Find() are lock-free reads and must not
/// race Intern() — in this codebase interning happens only while tracking
/// appends nodes, and payload lookups only on the sealed graph.
class StringPool {
 public:
  StringPool() { spans_.push_back({nullptr, 0}); }  // id 0: empty string

  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Returns the id of `s`, interning it on first use.
  StrId Intern(std::string_view s);

  /// Returns the id of `s` if already interned, else kStrNotFound. Lets
  /// lookups by name (zoom, ByModule, ByPayload prefilters) run as integer
  /// comparisons against node columns.
  StrId Find(std::string_view s) const;

  /// The interned string. `id` must come from this pool.
  std::string_view Get(StrId id) const {
    const Span& sp = spans_[id];
    return {sp.data, sp.size};
  }

  /// Bounds-checked Get for ids of untrusted provenance (e.g. read back
  /// from a .pg file): out-of-range ids resolve to the empty string
  /// instead of indexing past the span table. Renderers use this so a
  /// corrupt payload id cannot crash an export.
  std::string_view GetChecked(StrId id) const {
    if (id >= spans_.size()) return {};
    return Get(id);
  }

  /// Number of distinct strings, including the implicit empty string.
  size_t size() const { return spans_.size(); }

  /// Bytes held by the pool: arena chunks, span table, and hash index.
  size_t MemoryBytes() const;

  /// Observer of first-time interns, used by the write-ahead log to record
  /// string-pool growth. Called under the pool's intern lock, so events
  /// arrive in id order and strictly before any node referencing the new
  /// id can be appended. Plain function pointer + context (not
  /// std::function) so the unobserved path stays one null check.
  using InternObserver = void (*)(void* ctx, StrId id, std::string_view s);
  void SetInternObserver(InternObserver fn, void* ctx) {
    observer_ = fn;
    observer_ctx_ = ctx;
  }

 private:
  struct Span {
    const char* data;
    uint32_t size;
  };

  static constexpr size_t kChunkSize = 64 * 1024;

  const char* Store(std::string_view s);

  std::vector<std::unique_ptr<char[]>> chunks_;
  char* tail_ = nullptr;            // write cursor into the last open chunk
  size_t tail_left_ = 0;
  size_t arena_bytes_ = 0;          // total bytes allocated across chunks
  std::vector<Span> spans_;         // indexed by StrId
  std::unordered_map<std::string_view, StrId> index_;
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  InternObserver observer_ = nullptr;
  void* observer_ctx_ = nullptr;
};

}  // namespace lipstick

#endif  // LIPSTICK_PROVENANCE_STRING_POOL_H_

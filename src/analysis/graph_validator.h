#ifndef LIPSTICK_ANALYSIS_GRAPH_VALIDATOR_H_
#define LIPSTICK_ANALYSIS_GRAPH_VALIDATOR_H_

#include "analysis/diagnostics.h"
#include "common/result.h"
#include "provenance/graph.h"
#include "provenance/snapshot.h"

namespace lipstick::analysis {

/// Post-construction invariant checker for provenance graphs: verifies the
/// structural rules of the Section-3 construction that every graph emitted
/// by the interpreter/executor must satisfy, catching corruption from bad
/// rollbacks, manual graph surgery, or deserialization of damaged files.
///
/// Diagnostic codes (all locations are invalid — graphs have no source
/// text; messages name the offending node as shard#index):
///   G0301  parent reference outside the graph (dangling NodeId)
///   G0302  alive node derived from a dead node
///   G0303  source node (token / const / m-node) with parents
///   G0304  derivation p-node (+ / · / δ) with no parents, or p/v kind
///          flag inconsistent with the label
///   G0305  ⊗ node not pairing exactly (value v-node, tuple p-node)
///   G0306  malformed value-node structure (aggregate without operands,
///          aggregate fed by another aggregate/const directly)
///   G0307  node tagged with an unknown or aborted invocation
///   G0308  invocation record inconsistent (bad m-node; listed i/o/s node
///          dead, wrong role, wrong invocation tag, or not ·(x, m))
///   G0309  derivation cycle among alive nodes
///   G0310  graph not sealed, or children adjacency stale w.r.t. parents
///
/// All findings are errors except G0310's "not sealed" form, which is a
/// warning (an unsealed graph is legal mid-construction).
void ValidateGraph(const ProvenanceGraph& graph, DiagnosticSink* sink);
/// Snapshot form — the unified-read-path core the graph form delegates to;
/// safe to run concurrently with other readers of the same snapshot.
void ValidateGraph(const GraphSnapshot& snap, DiagnosticSink* sink);

/// Convenience wrapper: runs ValidateGraph and folds any errors into a
/// kInternal Status carrying the rendered findings. Used by the executor's
/// debug-build self-check and the CLI.
Status CheckGraphInvariants(const ProvenanceGraph& graph);

}  // namespace lipstick::analysis

#endif  // LIPSTICK_ANALYSIS_GRAPH_VALIDATOR_H_

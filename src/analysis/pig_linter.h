#ifndef LIPSTICK_ANALYSIS_PIG_LINTER_H_
#define LIPSTICK_ANALYSIS_PIG_LINTER_H_

#include <map>
#include <set>
#include <string>

#include "analysis/diagnostics.h"
#include "pig/ast.h"
#include "pig/udf.h"
#include "relational/schema.h"

namespace lipstick::analysis {

/// Configuration for one LintProgram pass.
struct PigLintOptions {
  /// Relations bound before the program runs (module inputs and state),
  /// name -> schema. These may be read and rebound freely.
  std::map<std::string, SchemaPtr> env;

  /// Names whose final binding is consumed by the caller (module outputs,
  /// state relations): they are exempt from the unused-alias check.
  std::set<std::string> required_outputs;

  const pig::UdfRegistry* udfs = nullptr;

  /// Prefix for messages, e.g. "Qout of module stats: " (may be empty).
  std::string context;
};

/// Pre-execution semantic lint of a Pig Latin program: nested-schema type
/// inference over every statement (reusing the engine's own inference, so
/// the linter can never disagree with execution) plus use/def bookkeeping
/// the engine does not track. Unlike pig::AnalyzeProgram, the linter
/// recovers after an error: a statement with an undefined source poisons
/// its target instead of aborting, so one mistake yields one diagnostic.
///
/// Diagnostic codes:
///   L0101  reference to an alias that is never bound           (error)
///   L0102  rebinding an alias whose previous value was unread  (warning)
///   L0103  unknown or ambiguous field name                     (error)
///   L0104  operator type mismatch (arith/logic/compare/cond)   (error)
///   L0105  call to an unknown function                         (error)
///   L0106  aggregate/UDF arity or argument-type error          (error)
///   L0107  alias bound but never used                          (warning)
///   L0108  positional reference $n out of range                (error)
///   L0109  duplicate field alias in a GENERATE list            (warning)
///   L0110  statement rejected by schema inference (other)      (error)
void LintProgram(const pig::Program& program, const PigLintOptions& options,
                 DiagnosticSink* sink);

}  // namespace lipstick::analysis

#endif  // LIPSTICK_ANALYSIS_PIG_LINTER_H_

#include "analysis/plan_cost.h"

#include <algorithm>
#include <set>

namespace lipstick::analysis {

namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

/// One deterministic column scan estimating a ZoomOut stage: how many
/// alive nodes the named modules would collapse away (intermediates +
/// state, with state-base tokens as slack) and how many synthetic zoom
/// nodes they would add (one per live invocation).
struct ZoomEstimate {
  uint64_t removed_lo = 0;  // intermediates + state nodes
  uint64_t removed_hi = 0;  // + state-base tokens possibly stranded
  uint64_t added = 0;       // one synthetic node per invocation
};

ZoomEstimate EstimateZoom(const GraphSnapshot& snap,
                          const std::vector<std::string>& modules) {
  std::set<std::string> names(modules.begin(), modules.end());
  const ProvenanceGraph& g = snap.graph();
  std::vector<uint8_t> inv_selected(g.invocations().size(), 0);
  ZoomEstimate est;
  for (size_t i = 0; i < g.invocations().size(); ++i) {
    const InvocationInfo& inv = g.invocations()[i];
    if (inv.aborted()) continue;
    std::string_view module = snap.str(inv.module_name);
    if (names.count(std::string(module)) == 0) continue;
    inv_selected[i] = 1;
    ++est.added;
  }
  snap.ForEachAliveNode([&](NodeId id) {
    NodeView n = snap.node(id);
    uint32_t inv = n.invocation();
    if (inv == kNoInvocation || inv >= inv_selected.size()) return;
    if (!inv_selected[inv]) return;
    switch (n.role()) {
      case NodeRole::kIntermediate:
      case NodeRole::kModuleState:
        ++est.removed_lo;
        ++est.removed_hi;
        break;
      case NodeRole::kStateBase:
        // Removed only when no surviving state node still reads it.
        ++est.removed_hi;
        break;
      default:
        break;
    }
  });
  return est;
}

/// Upper bound for a pattern stage from the label histogram: the tightest
/// label conjunct caps the output (role/payload conjuncts only narrow it
/// further, which the interval already expresses through lo = 0).
uint64_t PatternUpperBound(const GraphSnapshot& snap,
                           const PlanPattern& pattern, uint64_t rows_in) {
  uint64_t hi = rows_in;
  bool has_label = false;
  for (const PatternAtom& atom : pattern.atoms) {
    if (atom.kind != PatternAtom::Kind::kLabel) continue;
    has_label = true;
    uint64_t count = 0;
    for (const auto& [label, n] : snap.graph().LabelHistogram()) {
      if (label == NodeLabelToString(atom.label)) count = n;
    }
    hi = std::min(hi, count);
  }
  return has_label ? hi : rows_in;
}

}  // namespace

PlanCostReport EstimatePlanCost(const GraphSnapshot& snap, const Plan& plan) {
  PlanCostReport report;
  const ProvenanceGraph& g = snap.graph();
  uint64_t alive = g.num_alive();
  CostReport storage = PredictFromEmission(MeasureEmission(g),
                                           MeasureInvocations(g),
                                           /*concrete=*/true);
  report.bytes_per_node =
      alive == 0 ? 0.0
                 : static_cast<double>(storage.est_bytes) /
                       static_cast<double>(alive);

  CardInterval rows = CardInterval::Exact(alive);
  double est = static_cast<double>(alive);
  for (const PlanOp& op : plan.ops) {
    switch (op.kind) {
      case PlanOpKind::kZoomOut: {
        ZoomEstimate zoom = EstimateZoom(snap, op.modules);
        rows = CardInterval::Range(
            SatSub(rows.lo, zoom.removed_hi) + zoom.added,
            SatSub(rows.hi, zoom.removed_lo) + zoom.added);
        est = std::max(0.0, est - static_cast<double>(zoom.removed_lo) +
                                static_cast<double>(zoom.added));
        break;
      }
      case PlanOpKind::kSubgraph:
      case PlanOpKind::kDeleteProp:
        // Reachability-bounded: anywhere from nothing surviving to the
        // whole input. Midpoint as the point estimate.
        rows = CardInterval::Range(0, rows.hi);
        est = est / 2.0;
        break;
      case PlanOpKind::kRestrict:
      case PlanOpKind::kFind: {
        uint64_t hi = PatternUpperBound(snap, op.pattern, rows.hi);
        rows = CardInterval::Range(0, hi);
        est = std::min(est, static_cast<double>(hi));
        break;
      }
      case PlanOpKind::kStats:
        // Full enumeration; output cardinality is the input's.
        break;
      case PlanOpKind::kExpr:
      case PlanOpKind::kDepends:
        rows = CardInterval::Range(0, 1);
        est = 1.0;
        break;
    }
    PlanCostRow row;
    row.op = op.Canonical();
    row.rows = rows;
    row.est_rows = est;
    row.est_bytes = static_cast<uint64_t>(est * report.bytes_per_node);
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace lipstick::analysis

#ifndef LIPSTICK_ANALYSIS_DATAFLOW_H_
#define LIPSTICK_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/result.h"
#include "common/source_loc.h"
#include "pig/udf.h"
#include "relational/value.h"
#include "workflow/workflow.h"

namespace lipstick::analysis {

/// Static dataflow analysis: forward abstract interpretation of Pig
/// programs and workflow DSL graphs, run to fixpoint over per-relation
/// facts (schema, nullability, uniqueness, cardinality intervals). The
/// facts feed three consumers:
///   - the provenance cost model (cost_model.h): predicted node / edge /
///     byte footprint per module invocation and for the whole workflow,
///   - a deletion-propagation safety pass classifying each workflow input
///     as safe (bounded transitive fan-out under the Section-3 graph
///     construction) or amplifying (unbounded fan-out: JOIN/CROSS/FLATTEN
///     consumption or cross-execution state accumulation),
///   - dataflow-powered diagnostics (codes D04xx below).
///
/// Two abstract domains share the same transfer functions:
///   - interval mode (no sample data): cardinalities are [lo, hi] ranges
///     with selectivity-based point estimates; sound over-approximations,
///   - concrete mode (sample inputs provided): the value domain — the
///     analyzer replays the executor's invocation protocol through the
///     real interpreter against a scratch provenance graph, so predicted
///     counts are exact by construction (the same reuse-the-engine trick
///     AnalyzeProgram plays for schemas).
///
/// Code range D04xx (see Diagnostic):
///   D0401  join/group key type mismatch across BY clauses
///   D0402  cross-product cardinality blowup (CROSS over unbounded inputs)
///   D0403  statically-empty relation consumed by a derivation
///   D0404  dead relation: bound but never reaching an output or state
///   D0405  input/state field pruned by a FOREACH without ever being read
///   D0406  statically-constant FILTER/SPLIT condition
///   D0407  comparison over mismatched scalar types
///   D0408  deletion-amplifying workflow input (note; see deletion facts)

/// Upper bound sentinel for an unbounded cardinality interval.
inline constexpr uint64_t kCardInf = std::numeric_limits<uint64_t>::max();

/// A [lo, hi] interval of row (or node/edge) counts. hi == kCardInf means
/// unbounded. Arithmetic saturates at kCardInf.
struct CardInterval {
  uint64_t lo = 0;
  uint64_t hi = kCardInf;

  static CardInterval Exact(uint64_t n) { return {n, n}; }
  static CardInterval Range(uint64_t lo, uint64_t hi) { return {lo, hi}; }
  static CardInterval Zero() { return {0, 0}; }
  static CardInterval Unknown() { return {0, kCardInf}; }

  bool exact() const { return lo == hi; }
  bool Contains(uint64_t n) const { return lo <= n && n <= hi; }

  CardInterval operator+(const CardInterval& o) const;
  CardInterval operator*(const CardInterval& o) const;
  CardInterval& operator+=(const CardInterval& o) { return *this = *this + o; }

  /// Lattice join: the smallest interval containing both.
  CardInterval Join(const CardInterval& o) const;
  /// Pointwise min against a bound (used to cap by a known population).
  CardInterval CapAt(const CardInterval& o) const;

  bool operator==(const CardInterval& o) const {
    return lo == o.lo && hi == o.hi;
  }

  /// "7", "[2, 9]", or "[0, inf)".
  std::string ToString() const;
};

/// Per-field facts of a relation.
struct FieldFact {
  bool nullable = true;  // may hold nulls
  bool unique = false;   // no two tuples share a value (key-ness)
};

/// A population of tuples, tracking how many of them originate from each
/// state relation of the current module instance. State origins matter
/// because consuming a state-annotated tuple in a derivation creates one
/// lazily-cached "s" wrapper node per invocation (graph.cc ResolveParent).
struct CardSet {
  CardInterval total = CardInterval::Zero();
  /// state relation name -> how many of `total` carry state annotations.
  std::map<std::string, CardInterval> state;

  CardSet Add(const CardSet& o) const;
  CardSet Join(const CardSet& o) const;
  /// Scale down (e.g. FILTER): keeps lo = 0, caps hi.
  CardSet Filtered() const;
  /// Drops state origins (crossing a module boundary re-wraps tuples).
  CardSet WithoutState() const { return CardSet{total, {}}; }
};

/// Facts about one bag-valued field of a relation.
struct BagFacts {
  /// Total members summed across every tuple of the relation (exactly the
  /// population an aggregate over this field consumes).
  CardSet members;
  double est = 0;  // point estimate of members.total
  /// Every tuple's bag is non-empty (single-input GROUP guarantees this):
  /// rules out the empty-group aggregate fallback edge.
  bool min_one = false;
};

/// Abstract state for one relation binding.
struct RelationFacts {
  SchemaPtr schema;
  CardSet card;
  double est = 0;  // point estimate of card.total under default selectivities
  std::vector<FieldFact> fields;         // parallel to schema fields
  std::map<size_t, BagFacts> bags;       // facts per bag-valued field index
  /// Fields dropped by an upstream FOREACH: name -> pruning site (D0405).
  std::map<std::string, SourceLoc> pruned;

  FieldFact FieldAt(size_t i) const {
    return i < fields.size() ? fields[i] : FieldFact{};
  }
};

/// Predicted provenance-graph emission. In concrete mode every interval is
/// exact; in interval mode these are sound bounds with `est_*` midpoints.
struct Emission {
  CardInterval nodes = CardInterval::Zero();
  CardInterval edges = CardInterval::Zero();
  /// Nodes with more than kInlineParents parents (spill to the edge arena)
  /// and the total parents of those nodes (the arena entries).
  CardInterval wide_nodes = CardInterval::Zero();
  CardInterval wide_edges = CardInterval::Zero();
  /// Stored Values (aggregate/const v-nodes with non-null payloads).
  CardInterval values = CardInterval::Zero();
  /// Invocation wrapper-node bookkeeping (InvocationInfo vectors).
  CardInterval input_nodes = CardInterval::Zero();
  CardInterval output_nodes = CardInterval::Zero();
  CardInterval state_nodes = CardInterval::Zero();
  /// Interned payload strings (tokens, op names) and their total bytes.
  CardInterval interned_strings = CardInterval::Zero();
  CardInterval interned_chars = CardInterval::Zero();
  double est_nodes = 0;
  double est_edges = 0;

  Emission& operator+=(const Emission& o);
};

/// One module invocation's predicted emission.
struct InvocationProfile {
  std::string node_id;
  std::string module;
  std::string instance;
  int execution = 0;
  Emission emission;
};

/// Deletion-propagation classification of one workflow input relation
/// (Definition 4.2 semantics: · and ⊗ nodes die on any parent death, all
/// others only when every parent dies).
struct DeletionFact {
  std::string node_id;    // workflow input node
  std::string relation;   // input relation name
  bool amplifying = false;
  bool reaches_state = false;  // tuples accumulate in module state
  std::string reason;     // first amplification witness, human-readable
  SourceLoc loc;          // site of the witness (or the consuming module)
};

/// Default selectivities for the interval domain's point estimates,
/// System R-style: FILTER keeps 1/3, an equijoin clause keeps 1/10,
/// grouping halves the population, FLATTEN fans out 4x.
struct Selectivities {
  double filter = 1.0 / 3.0;
  double join = 0.1;
  double group = 0.5;
  double flatten = 4.0;
  /// Assumed rows per workflow input relation when no sample is given.
  double input_rows = 100.0;
};

struct AnalyzeOptions {
  /// Number of workflow executions to model (state accumulates across
  /// executions; inputs are re-presented each execution).
  int executions = 1;
  /// Sample inputs: node id -> input relation -> data. When non-empty the
  /// analyzer runs in concrete mode and emission counts are exact.
  std::map<std::string, std::map<std::string, Bag>> inputs;
  /// Initial module state: instance -> state relation -> data.
  std::map<std::string, std::map<std::string, Bag>> initial_state;
  /// Stay in the interval domain even when sample inputs are provided
  /// (their cardinalities still seed the input intervals).
  bool force_interval = false;
  const pig::UdfRegistry* udfs = nullptr;
  Selectivities selectivities;
};

/// Everything the analysis derived about one workflow.
struct WorkflowFacts {
  /// True when emission counts came from the concrete (value) domain and
  /// are exact; false for interval bounds.
  bool concrete = false;
  int executions = 1;
  std::vector<InvocationProfile> invocations;
  /// Fixpoint facts per workflow node: relation name -> facts. Includes
  /// inputs, state, intermediates and outputs of the node's module
  /// programs, joined over all executions.
  std::map<std::string, std::map<std::string, RelationFacts>> relations;
  std::vector<DeletionFact> deletion;
  /// Emission shared across invocations: module/instance/op names interned
  /// once per graph plus the per-graph fixed costs.
  Emission shared;
  /// Analysis caveats (places the concrete replay had to fall back).
  std::vector<std::string> notes;

  Emission Total() const;
};

/// Runs the dataflow analysis over `workflow`. Diagnostics (D04xx) are
/// reported into `sink` when non-null; the returned facts power the cost
/// model and the CLI `analyze` report. Fails only on malformed workflows
/// (Validate errors) — analysis of lint-dirty programs degrades to
/// Unknown facts instead of failing.
Result<WorkflowFacts> AnalyzeDataflow(const Workflow& workflow,
                                      const AnalyzeOptions& options,
                                      DiagnosticSink* sink);

}  // namespace lipstick::analysis

#endif  // LIPSTICK_ANALYSIS_DATAFLOW_H_

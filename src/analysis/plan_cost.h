#ifndef LIPSTICK_ANALYSIS_PLAN_COST_H_
#define LIPSTICK_ANALYSIS_PLAN_COST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "provenance/plan.h"
#include "provenance/snapshot.h"

namespace lipstick::analysis {

/// Predicted output of one plan operator: the visible-node cardinality
/// after the operator runs and its estimated byte footprint under the
/// PR-6 storage formulas. Rendered by `lipstick explain`.
struct PlanCostRow {
  std::string op;          // canonical operator string
  CardInterval rows;       // predicted visible nodes after this operator
  double est_rows = 0;     // point estimate (interval midpoint / scan count)
  uint64_t est_bytes = 0;  // est_rows x measured bytes per node
};

struct PlanCostReport {
  /// One row per plan operator, in execution order.
  std::vector<PlanCostRow> rows;
  /// Measured storage density of the input graph (PredictFromEmission over
  /// MeasureEmission, divided by the alive-node count).
  double bytes_per_node = 0;
};

/// Estimates per-operator cardinalities for `plan` over the live graph
/// behind `snap`, without executing anything: ZoomOut from one column scan
/// counting the named modules' intermediate/state nodes, Restrict/Find
/// from the label histogram, Subgraph/DeleteProp as [0, input] bounds.
/// Byte costs reuse the PR-6 predictive model's formulas, calibrated on
/// the graph itself.
PlanCostReport EstimatePlanCost(const GraphSnapshot& snap, const Plan& plan);

}  // namespace lipstick::analysis

#endif  // LIPSTICK_ANALYSIS_PLAN_COST_H_

#include "analysis/graph_validator.h"

#include <unordered_map>
#include <vector>

#include "common/str_util.h"

namespace lipstick::analysis {

namespace {

std::string NodeDesc(const GraphSnapshot& graph, NodeId id) {
  return StrCat(NodeLabelToString(graph.node(id).label()), " node ",
                NodeShard(id), "#", NodeIndex(id));
}

bool IsJointNode(const NodeView& n) {
  return n.label() == NodeLabel::kTimes || n.label() == NodeLabel::kTensor;
}

struct Validator {
  const GraphSnapshot& graph;
  DiagnosticSink* sink;

  void Error(const char* code, std::string message, std::string note = "") {
    sink->Report(code, Severity::kError, SourceLoc{}, std::move(message),
                 std::move(note));
  }
  void Warn(const char* code, std::string message, std::string note = "") {
    sink->Report(code, Severity::kWarning, SourceLoc{}, std::move(message),
                 std::move(note));
  }

  // O(1) structural probes against the columnar storage; the old
  // implementation materialized a NodeId -> alive map up front.
  bool Alive(NodeId id) const { return graph.Contains(id); }
  bool Present(NodeId id) const { return graph.InGraph(id); }

  void CheckParentRefs(NodeId id) {
    NodeView n = graph.node(id);
    std::span<const NodeId> parents = graph.ParentsOf(id);
    size_t alive_parents = 0;
    for (NodeId p : parents) {
      if (!Present(p)) {
        Error("G0301",
              StrCat(NodeDesc(graph, id), " has dangling parent id ", p),
              "the referenced node was never created in this graph");
        continue;
      }
      if (Alive(p)) {
        ++alive_parents;
      } else if (IsJointNode(n)) {
        // Joint derivations (· and ⊗) die with any operand; deletion
        // propagation enforces this, so an alive joint node over a dead
        // parent means a rollback or manual mutation skipped propagation.
        Error("G0302",
              StrCat(NodeDesc(graph, id), " is a joint derivation over dead ",
                     NodeDesc(graph, p)),
              "deleting an operand of a · or ⊗ node must delete the node");
      }
    }
    // Alternative derivations (+ / δ) survive losing operands but not all
    // of them; an aggregate likewise needs at least one surviving operand.
    bool needs_survivor = n.label() == NodeLabel::kPlus ||
                          n.label() == NodeLabel::kDelta ||
                          n.label() == NodeLabel::kAggregate;
    if (needs_survivor && !parents.empty() && alive_parents == 0) {
      Error("G0302",
            StrCat(NodeDesc(graph, id), " survives with no alive parents"),
            "all alternatives were deleted; the node should be dead too");
    }
  }

  void CheckNodeShape(NodeId id) {
    NodeView n = graph.node(id);
    std::span<const NodeId> parents = graph.ParentsOf(id);
    bool should_be_value = n.label() == NodeLabel::kTensor ||
                           n.label() == NodeLabel::kAggregate ||
                           n.label() == NodeLabel::kConstValue;
    if (n.is_value_node() != should_be_value) {
      Error("G0304",
            StrCat(NodeDesc(graph, id), " has is_value_node=",
                   n.is_value_node() ? "true" : "false",
                   " inconsistent with its label"));
    }
    switch (n.label()) {
      case NodeLabel::kToken:
      case NodeLabel::kConstValue:
      case NodeLabel::kModuleInvocation:
        if (!parents.empty()) {
          Error("G0303",
                StrCat(NodeDesc(graph, id), " is a source node but has ",
                       parents.size(), " parent(s)"),
                "tokens, constants and m-nodes must be derivation roots");
        }
        break;
      case NodeLabel::kPlus:
      case NodeLabel::kTimes:
      case NodeLabel::kDelta:
        if (parents.empty()) {
          Error("G0304",
                StrCat(NodeDesc(graph, id),
                       " is a derivation node with no parents"),
                "+ / · / δ nodes must derive from at least one node");
        }
        break;
      case NodeLabel::kTensor: {
        if (parents.size() != 2) {
          Error("G0305",
                StrCat(NodeDesc(graph, id), " has ", parents.size(),
                       " parent(s); ⊗ pairs exactly (value, provenance)"));
          break;
        }
        if (Alive(parents[0]) && !graph.node(parents[0]).is_value_node()) {
          Error("G0305",
                StrCat(NodeDesc(graph, id), ": first operand ",
                       NodeDesc(graph, parents[0]), " is not a v-node"));
        }
        if (Alive(parents[1]) && graph.node(parents[1]).is_value_node()) {
          Error("G0305",
                StrCat(NodeDesc(graph, id), ": second operand ",
                       NodeDesc(graph, parents[1]), " is not a p-node"));
        }
        break;
      }
      case NodeLabel::kAggregate: {
        if (parents.empty()) {
          Error("G0306",
                StrCat(NodeDesc(graph, id), " aggregates nothing"),
                "aggregate v-nodes must consume ⊗ pairs or tuple p-nodes");
        }
        for (NodeId p : parents) {
          if (!Alive(p)) continue;
          NodeView pn = graph.node(p);
          bool ok_operand = pn.label() == NodeLabel::kTensor ||
                            !pn.is_value_node();
          if (!ok_operand) {
            Error("G0306",
                  StrCat(NodeDesc(graph, id), " aggregates ",
                         NodeDesc(graph, p)),
                  "aggregate operands must be ⊗ pairs or tuple p-nodes");
          }
        }
        break;
      }
      case NodeLabel::kBlackBox:
      case NodeLabel::kZoomedModule:
        break;  // variadic p-nodes; no arity constraint
    }
  }

  void CheckInvocationTag(NodeId id) {
    NodeView n = graph.node(id);
    if (n.invocation() == kNoInvocation) return;
    if (n.invocation() >= graph.invocations().size()) {
      Error("G0307",
            StrCat(NodeDesc(graph, id), " is tagged with unknown invocation ",
                   n.invocation()));
      return;
    }
    if (graph.invocations()[n.invocation()].aborted()) {
      Error("G0307",
            StrCat(NodeDesc(graph, id), " belongs to aborted invocation ",
                   n.invocation()),
            "aborted invocations must leave no alive nodes behind");
    }
  }

  void CheckInvocationRecord(uint32_t inv_id, const InvocationInfo& info) {
    std::string_view module = graph.str(info.module_name);
    if (info.aborted()) {
      if (!info.input_nodes.empty() || !info.output_nodes.empty() ||
          !info.state_nodes.empty()) {
        Error("G0308",
              StrCat("aborted invocation ", inv_id, " of module '", module,
                     "' still lists structural nodes"));
      }
      return;
    }
    if (!Alive(info.m_node)) {
      Error("G0308", StrCat("invocation ", inv_id, " of module '", module,
                            "' has a dead or missing m-node"));
      return;
    }
    NodeView m = graph.node(info.m_node);
    if (m.label() != NodeLabel::kModuleInvocation ||
        m.role() != NodeRole::kInvocation) {
      Error("G0308",
            StrCat("invocation ", inv_id, ": recorded m-node is a ",
                   NodeDesc(graph, info.m_node)));
    }
    auto check_list = [&](const std::vector<NodeId>& list, NodeRole role,
                          const char* kind) {
      for (NodeId id : list) {
        if (!Alive(id)) continue;  // deletion/zoom may legitimately remove
        NodeView n = graph.node(id);
        if (n.label() != NodeLabel::kTimes || n.role() != role) {
          Error("G0308",
                StrCat("invocation ", inv_id, ": recorded ", kind, " node ",
                       NodeDesc(graph, id), " has role ",
                       NodeRoleToString(n.role())));
          continue;
        }
        if (n.invocation() != inv_id) {
          Error("G0308",
                StrCat("invocation ", inv_id, ": ", kind, " node ",
                       NodeDesc(graph, id), " is tagged with invocation ",
                       n.invocation()));
        }
        bool has_m = false;
        for (NodeId p : graph.ParentsOf(id)) has_m = has_m || p == info.m_node;
        if (!has_m) {
          Error("G0308",
                StrCat("invocation ", inv_id, ": ", kind, " node ",
                       NodeDesc(graph, id),
                       " does not derive from the invocation's m-node"),
            "i/o/s nodes are ·(tuple, m) per the Section 3.1 construction");
        }
      }
    };
    check_list(info.input_nodes, NodeRole::kModuleInput, "input");
    check_list(info.output_nodes, NodeRole::kModuleOutput, "output");
    check_list(info.state_nodes, NodeRole::kModuleState, "state");
  }

  void CheckAcyclic() {
    // Iterative three-color DFS over alive nodes following parent edges.
    enum : uint8_t { kWhite, kGray, kBlack };
    std::unordered_map<NodeId, uint8_t> color;
    std::vector<NodeId> stack;
    bool cycle_found = false;
    graph.ForEachAliveNode([&](NodeId root) {
      if (cycle_found || color[root] != kWhite) return;
      stack.push_back(root);
      while (!stack.empty()) {
        NodeId id = stack.back();
        uint8_t& c = color[id];
        if (c == kWhite) {
          c = kGray;
          for (NodeId p : graph.ParentsOf(id)) {
            if (!Alive(p)) continue;
            uint8_t pc = color[p];
            if (pc == kGray) {
              Error("G0309",
                    StrCat("derivation cycle through ", NodeDesc(graph, id),
                           " and ", NodeDesc(graph, p)),
                    "provenance graphs must be acyclic (Section 3)");
              cycle_found = true;  // one cycle report is enough
              stack.clear();
              return;
            }
            if (pc == kWhite) stack.push_back(p);
          }
        } else {
          c = kBlack;
          stack.pop_back();
        }
      }
    });
  }

  void CheckSealConsistency() {
    if (!graph.sealed()) {
      Warn("G0310", "graph is not sealed",
           "call Seal() before queries; children adjacency was not checked");
      return;
    }
    // The children adjacency must mirror the parent edges of alive nodes.
    // Count-based comparison is O(nodes + edges).
    std::unordered_map<NodeId, size_t> expected;
    graph.ForEachAliveNode([&](NodeId id) {
      for (NodeId p : graph.ParentsOf(id)) {
        if (Alive(p)) ++expected[p];
      }
    });
    graph.ForEachNode([&](NodeId id) {
      size_t actual = 0;
      for (NodeId child : graph.ChildrenOf(id)) {
        actual += Alive(child) ? 1 : 0;
      }
      size_t want = 0;
      if (auto it = expected.find(id); it != expected.end()) want = it->second;
      if (Alive(id) && actual != want) {
        Error("G0310",
              StrCat(NodeDesc(graph, id), " has ", actual,
                     " sealed children but ", want, " alive parent edges"),
              "the graph was mutated after Seal() without resealing");
      }
    });
  }

  void Run() {
    graph.ForEachAliveNode([&](NodeId id) {
      CheckParentRefs(id);
      CheckNodeShape(id);
      CheckInvocationTag(id);
    });
    for (uint32_t i = 0; i < graph.invocations().size(); ++i) {
      CheckInvocationRecord(i, graph.invocations()[i]);
    }
    CheckAcyclic();
    CheckSealConsistency();
  }
};

}  // namespace

void ValidateGraph(const GraphSnapshot& snap, DiagnosticSink* sink) {
  Validator{snap, sink}.Run();
}

void ValidateGraph(const ProvenanceGraph& graph, DiagnosticSink* sink) {
  // Validation reads parent edges unconditionally and touches the children
  // adjacency only when the graph reports sealed, so the parents-only
  // capture covers both cases.
  GraphSnapshot snap = GraphSnapshot::CaptureForParents(graph);
  ValidateGraph(snap, sink);
}

Status CheckGraphInvariants(const ProvenanceGraph& graph) {
  DiagnosticSink sink;
  ValidateGraph(graph, &sink);
  if (!sink.HasErrors()) return Status::OK();
  return Status::Internal(
      StrCat("provenance graph violates structural invariants:\n",
             sink.RenderText()));
}

}  // namespace lipstick::analysis

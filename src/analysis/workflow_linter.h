#ifndef LIPSTICK_ANALYSIS_WORKFLOW_LINTER_H_
#define LIPSTICK_ANALYSIS_WORKFLOW_LINTER_H_

#include "analysis/diagnostics.h"
#include "pig/udf.h"
#include "workflow/workflow.h"

namespace lipstick::analysis {

/// Pre-execution semantic lint of a workflow (Definition 2.2) and of every
/// module's Pig Latin programs (via analysis/pig_linter.h, whose L01xx
/// findings are reported with a "module <name> <query>:" prefix).
/// Subsumes Workflow::Validate — everything Validate rejects produces a
/// diagnostic here, plus softer findings Validate does not check — while
/// recovering after each problem so one pass reports them all.
///
/// Diagnostic codes:
///   W0201  node references an unregistered module                  (error)
///   W0202  workflow graph contains a cycle                         (error)
///   W0203  edge endpoint or relation does not exist                (error)
///   W0204  edge connects relations with incompatible schemas       (error)
///   W0205  module input relation not fed by any incoming edge      (error)
///   W0206  module output relation never routed anywhere          (warning)
///   W0207  module registered but never instantiated              (warning)
///   W0208  instance name bound to two different modules            (error)
///   W0209  state relation never rebound by Qstate                   (note)
///   W0210  module specification invalid (output unbound, schema
///          mismatch on rebind, empty workflow, ...)                (error)
///   W0211  workflow graph is not (weakly) connected                (error)
void LintWorkflow(const Workflow& workflow, const pig::UdfRegistry* udfs,
                  DiagnosticSink* sink);

}  // namespace lipstick::analysis

#endif  // LIPSTICK_ANALYSIS_WORKFLOW_LINTER_H_

#include "analysis/pig_linter.h"

#include <optional>
#include <vector>

#include "common/str_util.h"
#include "pig/interpreter.h"

namespace lipstick::analysis {

namespace {

using pig::Expr;
using pig::ExprKind;
using pig::Statement;
using pig::StatementKind;

struct BindInfo {
  SourceLoc loc;
  bool used_since = false;
};

class Linter {
 public:
  Linter(const PigLintOptions& options, DiagnosticSink* sink)
      : options_(options), sink_(sink), interp_(options.udfs) {
    for (const auto& [name, schema] : options.env) {
      env_.Bind(name, Relation(name, schema));
    }
  }

  void Run(const pig::Program& program) {
    for (const Statement& stmt : program.statements) {
      LintStatement(stmt);
    }
    // Final sweep: aliases whose last binding was never read and is not
    // consumed by the caller.
    for (const auto& [name, bind] : binds_) {
      if (bind.used_since || options_.required_outputs.count(name)) continue;
      Warn("L0107", bind.loc, StrCat("alias '", name, "' is never used"),
           "it is not an output or state relation; drop the statement or "
           "consume the alias");
    }
  }

 private:
  void Report(const char* code, Severity severity, SourceLoc loc,
              std::string message, std::string note = "") {
    sink_->Report(code, severity, loc, options_.context + std::move(message),
                  std::move(note));
  }
  void Error(const char* code, SourceLoc loc, std::string message,
             std::string note = "") {
    Report(code, Severity::kError, loc, std::move(message), std::move(note));
  }
  void Warn(const char* code, SourceLoc loc, std::string message,
            std::string note = "") {
    Report(code, Severity::kWarning, loc, std::move(message),
           std::move(note));
  }

  bool Known(const std::string& name) const { return env_.Contains(name); }

  const Schema* SchemaOf(const std::string& name) const {
    auto rel = env_.Lookup(name);
    return rel.ok() ? (*rel)->schema.get() : nullptr;
  }

  /// Registers a read of `name` at `loc`. Returns true if its schema is
  /// available for expression checking.
  bool ReadAlias(const std::string& name, SourceLoc loc) {
    if (auto it = binds_.find(name); it != binds_.end()) {
      it->second.used_since = true;
    }
    if (Known(name)) return true;
    if (!poisoned_.count(name)) {
      Error("L0101", loc, StrCat("undefined alias '", name, "'"),
            "it is not a module input/state relation and no earlier "
            "statement binds it");
      // Poison so later readers of the same name stay quiet.
      poisoned_.insert(name);
    }
    return false;
  }

  /// Registers the binding of `target` by the statement at `loc`.
  void BindAlias(const std::string& target, SourceLoc loc) {
    auto it = binds_.find(target);
    if (it != binds_.end() && !it->second.used_since) {
      Warn("L0102", loc,
           StrCat("alias '", target, "' is rebound but its previous value "
                  "was never read"),
           StrCat("previous binding at ", it->second.loc.ToString(),
                  " is dead"));
    }
    binds_[target] = BindInfo{loc, false};
  }

  /// -------------------- expression type checking ----------------------
  /// Mirrors pig::InferExprType but reports typed diagnostics and keeps
  /// going after a problem (result nullopt suppresses dependent checks).
  std::optional<FieldType> LintExpr(const Expr& expr, const Schema& schema) {
    switch (expr.kind) {
      case ExprKind::kConst: {
        const Value& v = expr.literal;
        if (v.is_bool()) return FieldType::Bool();
        if (v.is_int()) return FieldType::Int();
        if (v.is_double()) return FieldType::Double();
        return FieldType::String();
      }
      case ExprKind::kFieldRef: {
        Result<size_t> idx = schema.ResolveField(expr.name);
        if (!idx.ok()) {
          Error("L0103", expr.loc, idx.status().message(),
                StrCat("available fields: ", schema.ToString()));
          return std::nullopt;
        }
        return schema.field(*idx).type;
      }
      case ExprKind::kPositional: {
        if (expr.position < 0 ||
            static_cast<size_t>(expr.position) >= schema.num_fields()) {
          Error("L0108", expr.loc,
                StrCat("positional reference $", expr.position,
                       " out of range"),
                StrCat("the input has ", schema.num_fields(), " field(s): ",
                       schema.ToString()));
          return std::nullopt;
        }
        return schema.field(expr.position).type;
      }
      case ExprKind::kBagProject: {
        Result<size_t> idx = schema.ResolveField(expr.name);
        if (!idx.ok()) {
          Error("L0103", expr.loc, idx.status().message(),
                StrCat("available fields: ", schema.ToString()));
          return std::nullopt;
        }
        const FieldType& bag_type = schema.field(*idx).type;
        if (bag_type.kind() != FieldType::Kind::kBag || !bag_type.nested()) {
          Error("L0104", expr.loc,
                StrCat("'", expr.name, "' is not a bag field"),
                "Bag.field projection needs a bag-valued operand");
          return std::nullopt;
        }
        Result<size_t> sub = bag_type.nested()->ResolveField(expr.sub_name);
        if (!sub.ok()) {
          Error("L0103", expr.loc, sub.status().message(),
                StrCat("fields of bag '", expr.name,
                       "': ", bag_type.nested()->ToString()));
          return std::nullopt;
        }
        return FieldType::Bag(Schema::Make(
            {Field(expr.sub_name, bag_type.nested()->field(*sub).type)}));
      }
      case ExprKind::kUnaryOp:
        return LintUnary(expr, schema);
      case ExprKind::kBinaryOp:
        return LintBinary(expr, schema);
      case ExprKind::kFuncCall:
        return LintCall(expr, schema);
    }
    return std::nullopt;
  }

  std::optional<FieldType> LintUnary(const Expr& expr, const Schema& schema) {
    std::optional<FieldType> t = LintExpr(*expr.children[0], schema);
    if (!t) return std::nullopt;
    using pig::UnOp;
    if (expr.un_op == UnOp::kIsNull || expr.un_op == UnOp::kIsNotNull) {
      if (!t->is_scalar()) {
        Error("L0104", expr.loc, "IS NULL requires a scalar operand");
        return std::nullopt;
      }
      return FieldType::Bool();
    }
    if (expr.un_op == UnOp::kNot) {
      if (t->kind() != FieldType::Kind::kBool) {
        Error("L0104", expr.loc, "NOT requires a boolean operand",
              StrCat("operand has type ", t->ToString()));
        return std::nullopt;
      }
      return FieldType::Bool();
    }
    if (!t->is_numeric()) {
      Error("L0104", expr.loc, "unary '-' requires a numeric operand",
            StrCat("operand has type ", t->ToString()));
      return std::nullopt;
    }
    return t;
  }

  std::optional<FieldType> LintBinary(const Expr& expr, const Schema& schema) {
    std::optional<FieldType> lt = LintExpr(*expr.children[0], schema);
    std::optional<FieldType> rt = LintExpr(*expr.children[1], schema);
    if (!lt || !rt) return std::nullopt;
    auto types_note = [&] {
      return StrCat("operands have types ", lt->ToString(), " and ",
                    rt->ToString());
    };
    using pig::BinOp;
    switch (expr.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
        if (!lt->is_numeric() || !rt->is_numeric()) {
          Error("L0104", expr.loc, "arithmetic requires numeric operands",
                types_note());
          return std::nullopt;
        }
        if (lt->kind() == FieldType::Kind::kDouble ||
            rt->kind() == FieldType::Kind::kDouble) {
          return FieldType::Double();
        }
        return FieldType::Int();
      case BinOp::kMod:
        if (lt->kind() != FieldType::Kind::kInt ||
            rt->kind() != FieldType::Kind::kInt) {
          Error("L0104", expr.loc, "'%' requires integer operands",
                types_note());
          return std::nullopt;
        }
        return FieldType::Int();
      case BinOp::kAnd:
      case BinOp::kOr:
        if (lt->kind() != FieldType::Kind::kBool ||
            rt->kind() != FieldType::Kind::kBool) {
          Error("L0104", expr.loc, "AND/OR require boolean operands",
                types_note());
          return std::nullopt;
        }
        return FieldType::Bool();
      default:  // comparisons
        if (!lt->is_scalar() || !rt->is_scalar()) {
          Error("L0104", expr.loc, "comparisons require scalar operands",
                types_note());
          return std::nullopt;
        }
        return FieldType::Bool();
    }
  }

  std::optional<FieldType> LintCall(const Expr& expr, const Schema& schema) {
    if (pig::IsAggregateFunction(expr.name)) {
      if (expr.children.size() != 1) {
        Error("L0106", expr.loc,
              StrCat(expr.name, " takes exactly one argument, got ",
                     expr.children.size()));
        return std::nullopt;
      }
      std::optional<FieldType> arg = LintExpr(*expr.children[0], schema);
      if (!arg) return std::nullopt;
      if (arg->kind() != FieldType::Kind::kBag || !arg->nested()) {
        Error("L0106", expr.loc,
              StrCat(expr.name, " requires a bag argument"),
              StrCat("argument has type ", arg->ToString(),
                     "; aggregates run after GROUP"));
        return std::nullopt;
      }
      std::string op = ToUpper(expr.name);
      if (op == "COUNT") return FieldType::Int();
      if (op == "AVG") return FieldType::Double();
      if (arg->nested()->num_fields() != 1) {
        Error("L0106", expr.loc,
              StrCat(expr.name,
                     " requires a single-attribute bag (use Bag.field)"));
        return std::nullopt;
      }
      const FieldType& elem = arg->nested()->field(0).type;
      if (!elem.is_numeric()) {
        Error("L0106", expr.loc,
              StrCat(expr.name, " requires numeric values"),
              StrCat("bag elements have type ", elem.ToString()));
        return std::nullopt;
      }
      return elem;
    }
    const pig::UdfEntry* udf =
        options_.udfs ? options_.udfs->Lookup(expr.name) : nullptr;
    if (udf == nullptr) {
      Error("L0105", expr.loc,
            StrCat("unknown function '", expr.name, "'"),
            "not a built-in aggregate and not in the UDF registry");
      return std::nullopt;
    }
    std::vector<FieldType> arg_types;
    for (const pig::ExprPtr& child : expr.children) {
      std::optional<FieldType> t = LintExpr(*child, schema);
      if (!t) return std::nullopt;
      arg_types.push_back(std::move(*t));
    }
    Result<FieldType> ret = udf->return_type(arg_types);
    if (!ret.ok()) {
      Error("L0106", expr.loc,
            StrCat("bad call to UDF '", expr.name,
                   "': ", ret.status().message()));
      return std::nullopt;
    }
    return *ret;
  }

  /// ------------------------ statement checking ------------------------

  void LintStatement(const Statement& stmt) {
    // 1. Register reads (before the bind, so `S = UNION S, In;` counts as
    //    a use of the previous S) and find out whether every source
    //    relation has a usable schema.
    bool sources_ok = true;
    std::vector<std::string> sources = stmt.inputs;
    for (const pig::ByClause& by : stmt.by_clauses) {
      sources.push_back(by.relation);
    }
    for (const std::string& name : sources) {
      sources_ok = ReadAlias(name, stmt.loc) && sources_ok;
    }

    // 2. Expression-level checks against the source schemas.
    size_t before = sink_->size();
    if (sources_ok) LintStatementExprs(stmt);
    bool reported = sink_->size() > before;

    // 3. Schema propagation: run the statement over empty relations using
    //    the engine's own interpreter (the authority on schema rules). On
    //    failure the target is poisoned, and a generic L0110 is emitted
    //    unless a more specific diagnostic already covers the statement.
    std::vector<std::string> targets;
    if (stmt.kind == StatementKind::kSplit) {
      for (const auto& [name, cond] : stmt.split_targets) {
        targets.push_back(name);
      }
    } else {
      targets.push_back(stmt.target);
    }
    bool bound = false;
    if (sources_ok) {
      Result<const Relation*> result =
          interp_.RunStatement(stmt, &env_, nullptr);
      if (result.ok()) {
        bound = true;
      } else if (!reported) {
        Error("L0110", stmt.loc, result.status().message());
      }
    }
    for (const std::string& target : targets) {
      BindAlias(target, stmt.loc);
      if (!bound) poisoned_.insert(target);
      else poisoned_.erase(target);
    }
  }

  void LintStatementExprs(const Statement& stmt) {
    switch (stmt.kind) {
      case StatementKind::kForEach: {
        const Schema* schema = SchemaOf(stmt.inputs[0]);
        if (schema == nullptr) return;
        std::map<std::string, SourceLoc> aliases;
        for (const pig::GenItem& item : stmt.gen_items) {
          LintExpr(*item.expr, *schema);
          if (item.alias.empty()) continue;
          auto [it, inserted] = aliases.emplace(item.alias, item.expr->loc);
          if (!inserted) {
            Warn("L0109", item.expr->loc,
                 StrCat("duplicate field alias '", item.alias,
                        "' in GENERATE list"),
                 StrCat("first defined at ", it->second.ToString()));
          }
        }
        break;
      }
      case StatementKind::kFilter: {
        const Schema* schema = SchemaOf(stmt.inputs[0]);
        if (schema == nullptr || stmt.condition == nullptr) return;
        std::optional<FieldType> t = LintExpr(*stmt.condition, *schema);
        if (t && t->kind() != FieldType::Kind::kBool) {
          Error("L0104", stmt.condition->loc,
                "FILTER condition must be boolean",
                StrCat("condition has type ", t->ToString()));
        }
        break;
      }
      case StatementKind::kGroup:
      case StatementKind::kCogroup:
      case StatementKind::kJoin: {
        for (const pig::ByClause& by : stmt.by_clauses) {
          const Schema* schema = SchemaOf(by.relation);
          if (schema == nullptr) continue;
          for (const pig::ExprPtr& key : by.keys) {
            LintExpr(*key, *schema);
          }
        }
        break;
      }
      case StatementKind::kOrderBy: {
        const Schema* schema = SchemaOf(stmt.inputs[0]);
        if (schema == nullptr) return;
        for (const pig::OrderKey& key : stmt.order_keys) {
          if (!schema->FindField(key.field)) {
            Error("L0103", stmt.loc,
                  StrCat("unknown or ambiguous field '", key.field,
                         "' in ORDER BY"),
                  StrCat("available fields: ", schema->ToString()));
          }
        }
        break;
      }
      case StatementKind::kSplit: {
        const Schema* schema = SchemaOf(stmt.inputs[0]);
        if (schema == nullptr) return;
        for (const auto& [name, cond] : stmt.split_targets) {
          std::optional<FieldType> t = LintExpr(*cond, *schema);
          if (t && t->kind() != FieldType::Kind::kBool) {
            Error("L0104", cond->loc,
                  StrCat("SPLIT condition for '", name, "' must be boolean"),
                  StrCat("condition has type ", t->ToString()));
          }
        }
        break;
      }
      case StatementKind::kCross:
      case StatementKind::kUnion:
      case StatementKind::kDistinct:
      case StatementKind::kLimit:
      case StatementKind::kAlias:
        break;  // no embedded expressions
    }
  }

  const PigLintOptions& options_;
  DiagnosticSink* sink_;
  pig::Interpreter interp_;
  pig::Environment env_;                  // empty relations, schema truth
  std::set<std::string> poisoned_;        // bound, but schema unknown
  std::map<std::string, BindInfo> binds_; // statement-bound aliases
};

}  // namespace

void LintProgram(const pig::Program& program, const PigLintOptions& options,
                 DiagnosticSink* sink) {
  Linter linter(options, sink);
  linter.Run(program);
}

}  // namespace lipstick::analysis

#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>

#include "common/str_util.h"

namespace lipstick::analysis {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

size_t DiagnosticSink::CountAtLeast(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity >= severity) ++n;
  }
  return n;
}

const Diagnostic* DiagnosticSink::Find(std::string_view code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

void DiagnosticSink::Sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                     if (a.loc.column != b.loc.column) {
                       return a.loc.column < b.loc.column;
                     }
                     return a.code < b.code;
                   });
}

std::string DiagnosticSink::RenderText(const std::string& file) const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    if (!file.empty()) {
      out += file;
      out += ':';
    }
    if (d.loc.valid()) {
      out += d.loc.ToString();
      out += ':';
    }
    if (!file.empty() || d.loc.valid()) out += ' ';
    out += SeverityToString(d.severity);
    out += ": ";
    out += d.message;
    out += " [";
    out += d.code;
    out += "]\n";
    if (!d.note.empty()) {
      out += "    note: ";
      out += d.note;
      out += '\n';
    }
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string DiagnosticSink::RenderJson(const std::string& file) const {
  std::string out = "[";
  bool first = true;
  for (const Diagnostic& d : diags_) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"code\": ";
    AppendJsonString(&out, d.code);
    out += ", \"severity\": ";
    AppendJsonString(&out, SeverityToString(d.severity));
    if (!file.empty()) {
      out += ", \"file\": ";
      AppendJsonString(&out, file);
    }
    out += StrCat(", \"line\": ", d.loc.line, ", \"column\": ", d.loc.column);
    out += ", \"message\": ";
    AppendJsonString(&out, d.message);
    if (!d.note.empty()) {
      out += ", \"note\": ";
      AppendJsonString(&out, d.note);
    }
    out += "}";
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

}  // namespace lipstick::analysis

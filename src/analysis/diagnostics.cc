#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>

#include "common/str_util.h"

namespace lipstick::analysis {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

size_t DiagnosticSink::CountAtLeast(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity >= severity) ++n;
  }
  return n;
}

const Diagnostic* DiagnosticSink::Find(std::string_view code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

namespace {

bool DiagnosticBefore(const Diagnostic& a, const Diagnostic& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
  if (a.loc.column != b.loc.column) return a.loc.column < b.loc.column;
  return a.code < b.code;
}

/// Indices of `diags` in render order. Both renderers sort through this
/// (never the member vector), so output is byte-stable no matter what
/// order passes emitted in or whether Sort() ran.
std::vector<size_t> RenderOrder(const std::vector<Diagnostic>& diags) {
  std::vector<size_t> order(diags.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&diags](size_t a, size_t b) {
    return DiagnosticBefore(diags[a], diags[b]);
  });
  return order;
}

}  // namespace

void DiagnosticSink::Sort() {
  std::stable_sort(diags_.begin(), diags_.end(), DiagnosticBefore);
}

std::string DiagnosticSink::RenderText(const std::string& file) const {
  std::string out;
  for (size_t i : RenderOrder(diags_)) {
    const Diagnostic& d = diags_[i];
    const std::string& f = d.file.empty() ? file : d.file;
    if (!f.empty()) {
      out += f;
      out += ':';
    }
    if (d.loc.valid()) {
      out += d.loc.ToString();
      out += ':';
    }
    if (!f.empty() || d.loc.valid()) out += ' ';
    out += SeverityToString(d.severity);
    out += ": ";
    out += d.message;
    out += " [";
    out += d.code;
    out += "]\n";
    if (!d.note.empty()) {
      out += "    note: ";
      out += d.note;
      out += '\n';
    }
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string DiagnosticSink::RenderJson(const std::string& file) const {
  std::string out = "[";
  bool first = true;
  for (size_t i : RenderOrder(diags_)) {
    const Diagnostic& d = diags_[i];
    const std::string& f = d.file.empty() ? file : d.file;
    if (!first) out += ",";
    first = false;
    out += "\n  {\"code\": ";
    AppendJsonString(&out, d.code);
    out += ", \"severity\": ";
    AppendJsonString(&out, SeverityToString(d.severity));
    if (!f.empty()) {
      out += ", \"file\": ";
      AppendJsonString(&out, f);
    }
    out += StrCat(", \"line\": ", d.loc.line, ", \"column\": ", d.loc.column);
    out += ", \"message\": ";
    AppendJsonString(&out, d.message);
    if (!d.note.empty()) {
      out += ", \"note\": ";
      AppendJsonString(&out, d.note);
    }
    out += "}";
  }
  out += first ? "]\n" : "\n]\n";
  return out;
}

}  // namespace lipstick::analysis

#include "analysis/cost_model.h"

#include <bit>
#include <map>

#include "provenance/string_pool.h"

namespace lipstick::analysis {

namespace {

/// Capacity a std::vector holding `n` elements reaches under push_back
/// doubling: the next power of two, except an empty vector never
/// allocates.
uint64_t Cap(uint64_t n) {
  if (n == 0) return 0;
  if (n == kCardInf) return kCardInf;
  return std::bit_ceil(n);
}

CardInterval CapI(CardInterval c) {
  // bit_ceil is monotone, so capping the endpoints caps the interval.
  return {Cap(c.lo), Cap(c.hi)};
}

CardInterval Scale(CardInterval c, uint64_t k) {
  return c * CardInterval::Exact(k);
}

/// Bytes per node across the fixed-width columns: labels/roles/flags
/// (1 each), invocations (4), payloads (4), value_idx (4), parent slots.
constexpr uint64_t kColumnBytesPerNode =
    3 * sizeof(uint8_t) + sizeof(uint32_t) + sizeof(StrId) +
    sizeof(uint32_t) + sizeof(internal::ParentSlot);

constexpr uint64_t kInternerChunk = 64 * 1024;
/// StringPool::MemoryBytes per index entry: string_view + StrId + two
/// pointers of approximated bucket overhead.
constexpr uint64_t kIndexEntryBytes =
    sizeof(std::string_view) + sizeof(StrId) + 2 * sizeof(void*);
constexpr uint64_t kSpanBytes = 16;  // StringPool::Span (private): ptr + u32

uint64_t ArenaBytes(uint64_t chars) {
  if (chars == 0) return 0;
  if (chars == kCardInf) return kCardInf;
  return kInternerChunk * ((chars + kInternerChunk - 1) / kInternerChunk);
}

}  // namespace

CostReport PredictFromEmission(
    const Emission& total,
    const std::vector<InvocationProfile>& invocations, bool concrete) {
  CostReport r;
  r.concrete = concrete;
  r.nodes = total.nodes;
  r.edges = total.edges;
  r.est_nodes = total.est_nodes;
  r.est_edges = total.est_edges;

  r.column_bytes = Scale(CapI(total.nodes), kColumnBytesPerNode);
  // The edge arena grows by bulk inserts (libstdc++: new capacity =
  // size + max(size, n)), so its final capacity is run-history dependent:
  // between an exact fit and twice the live wide-parent count.
  CardInterval arena_fit = Scale(total.wide_edges, sizeof(NodeId));
  r.edge_arena_bytes =
      CardInterval{arena_fit.lo, (arena_fit * CardInterval::Exact(2)).hi};
  // Seal() sizes the CSR with assign/resize, so capacities are exact:
  // (N+1) offsets + E child edges per shard (single shard assumed).
  r.csr_bytes = Scale(total.nodes + CardInterval::Exact(1),
                      sizeof(uint32_t)) +
                Scale(total.edges, sizeof(NodeId));
  r.value_bytes = Scale(CapI(total.values), sizeof(Value));

  // Interner: chunked arena + span table (incl. the id-0 empty sentinel)
  // + hash index.
  CardInterval strings = total.interned_strings;
  CardInterval chars = total.interned_chars;
  r.interner_bytes =
      CardInterval{ArenaBytes(chars.lo), ArenaBytes(chars.hi)} +
      Scale(CapI(strings + CardInterval::Exact(1)), kSpanBytes) +
      Scale(strings, kIndexEntryBytes);

  for (const InvocationProfile& p : invocations) {
    r.invocation_bytes += CardInterval::Exact(sizeof(InvocationInfo)) +
                          Scale(CapI(p.emission.input_nodes) +
                                    CapI(p.emission.output_nodes) +
                                    CapI(p.emission.state_nodes),
                                sizeof(NodeId));
  }

  r.total_bytes = r.column_bytes + r.edge_arena_bytes + r.csr_bytes +
                  r.value_bytes + r.interner_bytes + r.invocation_bytes;
  // Point estimate: midpoint-free — reuse the est node/edge counts with
  // the same constants, falling back to interval lows for components whose
  // estimate equals their bound.
  uint64_t est_n = total.nodes.exact()
                       ? total.nodes.lo
                       : static_cast<uint64_t>(total.est_nodes);
  uint64_t est_e = total.edges.exact()
                       ? total.edges.lo
                       : static_cast<uint64_t>(total.est_edges);
  r.est_bytes = Cap(est_n) * kColumnBytesPerNode +
                (est_n + 1) * sizeof(uint32_t) + est_e * sizeof(NodeId) +
                Cap(total.values.hi == kCardInf ? total.values.lo
                                                : total.values.hi) *
                    sizeof(Value) +
                r.interner_bytes.lo + r.invocation_bytes.lo +
                r.edge_arena_bytes.lo;
  return r;
}

CostReport PredictCost(const WorkflowFacts& facts) {
  CostReport r = PredictFromEmission(facts.Total(), facts.invocations,
                                     facts.concrete);

  std::map<std::string, size_t> index;
  for (const InvocationProfile& p : facts.invocations) {
    auto [it, fresh] = index.try_emplace(p.node_id, r.per_node.size());
    if (fresh) {
      ModuleCost mc;
      mc.node_id = p.node_id;
      mc.module = p.module;
      mc.instance = p.instance;
      r.per_node.push_back(std::move(mc));
    }
    ModuleCost& mc = r.per_node[it->second];
    ++mc.invocations;
    mc.nodes += p.emission.nodes;
    mc.edges += p.emission.edges;
    mc.est_nodes += p.emission.est_nodes;
    mc.est_edges += p.emission.est_edges;
  }
  return r;
}

Emission MeasureEmission(const ProvenanceGraph& graph) {
  Emission em;
  graph.ForEachNode([&](NodeId id) {
    NodeView n = graph.node(id);
    em.nodes += CardInterval::Exact(1);
    size_t parents = n.num_parents();
    if (n.alive()) em.edges += CardInterval::Exact(parents);
    if (parents > internal::kInlineParents) {
      em.wide_nodes += CardInterval::Exact(1);
      em.wide_edges += CardInterval::Exact(parents);
    }
    if (n.is_value_node() && !n.value().is_null()) {
      em.values += CardInterval::Exact(1);
    }
  });
  for (const InvocationInfo& inv : graph.invocations()) {
    em.input_nodes += CardInterval::Exact(inv.input_nodes.size());
    em.output_nodes += CardInterval::Exact(inv.output_nodes.size());
    em.state_nodes += CardInterval::Exact(inv.state_nodes.size());
  }
  const StringPool& pool = graph.strings();
  uint64_t chars = 0;
  for (size_t i = 1; i < pool.size(); ++i) {
    chars += pool.Get(static_cast<StrId>(i)).size();
  }
  em.interned_strings = CardInterval::Exact(pool.size() - 1);
  em.interned_chars = CardInterval::Exact(chars);
  em.est_nodes = static_cast<double>(em.nodes.lo);
  em.est_edges = static_cast<double>(em.edges.lo);
  return em;
}

std::vector<InvocationProfile> MeasureInvocations(
    const ProvenanceGraph& graph) {
  std::vector<InvocationProfile> out;
  for (const InvocationInfo& inv : graph.invocations()) {
    InvocationProfile p;
    p.module = std::string(graph.str(inv.module_name));
    p.instance = std::string(graph.str(inv.instance_name));
    p.execution = static_cast<int>(inv.execution);
    p.emission.input_nodes = CardInterval::Exact(inv.input_nodes.size());
    p.emission.output_nodes = CardInterval::Exact(inv.output_nodes.size());
    p.emission.state_nodes = CardInterval::Exact(inv.state_nodes.size());
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace lipstick::analysis

#ifndef LIPSTICK_ANALYSIS_COST_MODEL_H_
#define LIPSTICK_ANALYSIS_COST_MODEL_H_

#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "provenance/graph.h"

namespace lipstick::analysis {

/// Predictive provenance cost model: converts the dataflow analysis's
/// emission facts (dataflow.h) into the byte footprint the columnar graph
/// storage of PR-3 will occupy — per module invocation and for the whole
/// workflow. The byte formulas mirror ProvenanceGraph::ComputeMemoryStats
/// exactly: struct-of-arrays columns with push_back doubling (capacity =
/// bit_ceil), inline ≤2-parent slots with an edge arena for wider nodes,
/// the sealed CSR children index, sparse v-node value storage, the
/// interner (64 KiB chunk arena + span table + hash index), and the
/// per-invocation bookkeeping vectors.

/// Aggregated predicted emission of one workflow node across executions.
struct ModuleCost {
  std::string node_id;
  std::string module;
  std::string instance;
  int invocations = 0;  // executions of this node that were modeled
  CardInterval nodes = CardInterval::Zero();
  CardInterval edges = CardInterval::Zero();
  double est_nodes = 0;
  double est_edges = 0;
};

/// Predicted storage footprint, mirroring MemoryStats component by
/// component. Intervals are exact in concrete mode.
struct CostReport {
  bool concrete = false;

  CardInterval nodes = CardInterval::Zero();
  CardInterval edges = CardInterval::Zero();
  double est_nodes = 0;
  double est_edges = 0;

  CardInterval column_bytes = CardInterval::Zero();
  CardInterval edge_arena_bytes = CardInterval::Zero();
  CardInterval csr_bytes = CardInterval::Zero();
  CardInterval value_bytes = CardInterval::Zero();
  CardInterval interner_bytes = CardInterval::Zero();
  CardInterval invocation_bytes = CardInterval::Zero();
  CardInterval total_bytes = CardInterval::Zero();
  /// Point estimate of total_bytes under the default selectivities.
  uint64_t est_bytes = 0;

  /// Per workflow node, summed over the modeled executions.
  std::vector<ModuleCost> per_node;
};

/// Predicts the storage cost of running the analyzed workflow, assuming a
/// single-shard graph (the reference executor's default).
CostReport PredictCost(const WorkflowFacts& facts);

/// Profiles an existing graph through the same accounting the predictor
/// uses: node/edge/wide/value counts, invocation vector sizes, interner
/// totals. Feeding the result through the byte formulas yields a
/// prediction for *this* graph, which lets tests validate the formulas
/// against ComputeMemoryStats independently of the dataflow analysis.
Emission MeasureEmission(const ProvenanceGraph& graph);

/// Per-invocation profiles of an existing graph (module/instance names
/// resolved, input/output/state vector sizes recorded) — the companion of
/// MeasureEmission for feeding PredictFromEmission's invocation formulas.
std::vector<InvocationProfile> MeasureInvocations(
    const ProvenanceGraph& graph);

/// The byte formulas alone: `total` is a whole-graph emission,
/// `invocation_sizes` the per-invocation (input, output, state) vector
/// lengths. Exposed for the formula-validation test; PredictCost wraps it.
CostReport PredictFromEmission(
    const Emission& total,
    const std::vector<InvocationProfile>& invocations, bool concrete);

}  // namespace lipstick::analysis

#endif  // LIPSTICK_ANALYSIS_COST_MODEL_H_

#include "analysis/dataflow.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"
#include "pig/ast.h"
#include "pig/interpreter.h"
#include "provenance/graph.h"

namespace lipstick::analysis {

/// ------------------------- interval arithmetic -------------------------

namespace {

uint64_t AddSat(uint64_t a, uint64_t b) {
  if (a == kCardInf || b == kCardInf) return kCardInf;
  uint64_t s = a + b;
  return s < a ? kCardInf : s;
}

uint64_t MulSat(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kCardInf || b == kCardInf) return kCardInf;
  if (a > kCardInf / b) return kCardInf;
  return a * b;
}

uint64_t SubFloor(uint64_t a, uint64_t b) {
  if (a == kCardInf) return kCardInf;
  return a > b ? a - b : 0;
}

}  // namespace

CardInterval CardInterval::operator+(const CardInterval& o) const {
  return {AddSat(lo, o.lo), AddSat(hi, o.hi)};
}

CardInterval CardInterval::operator*(const CardInterval& o) const {
  return {MulSat(lo, o.lo), MulSat(hi, o.hi)};
}

CardInterval CardInterval::Join(const CardInterval& o) const {
  return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

CardInterval CardInterval::CapAt(const CardInterval& o) const {
  return {std::min(lo, o.lo), std::min(hi, o.hi)};
}

std::string CardInterval::ToString() const {
  if (exact()) return StrCat(lo);
  if (hi == kCardInf) return StrCat("[", lo, ", inf)");
  return StrCat("[", lo, ", ", hi, "]");
}

CardSet CardSet::Add(const CardSet& o) const {
  CardSet out{total + o.total, state};
  for (const auto& [rel, c] : o.state) {
    auto [it, fresh] = out.state.try_emplace(rel, c);
    if (!fresh) it->second += c;
  }
  return out;
}

CardSet CardSet::Join(const CardSet& o) const {
  CardSet out{total.Join(o.total), {}};
  // A state origin absent on one side joins against zero.
  for (const auto& [rel, c] : state) {
    auto it = o.state.find(rel);
    out.state[rel] =
        c.Join(it == o.state.end() ? CardInterval::Zero() : it->second);
  }
  for (const auto& [rel, c] : o.state) {
    if (!state.count(rel)) out.state[rel] = CardInterval::Zero().Join(c);
  }
  return out;
}

CardSet CardSet::Filtered() const {
  CardSet out{{0, total.hi}, {}};
  for (const auto& [rel, c] : state) out.state[rel] = {0, c.hi};
  return out;
}

Emission& Emission::operator+=(const Emission& o) {
  nodes += o.nodes;
  edges += o.edges;
  wide_nodes += o.wide_nodes;
  wide_edges += o.wide_edges;
  values += o.values;
  input_nodes += o.input_nodes;
  output_nodes += o.output_nodes;
  state_nodes += o.state_nodes;
  interned_strings += o.interned_strings;
  interned_chars += o.interned_chars;
  est_nodes += o.est_nodes;
  est_edges += o.est_edges;
  return *this;
}

Emission WorkflowFacts::Total() const {
  Emission total = shared;
  for (const InvocationProfile& p : invocations) total += p.emission;
  return total;
}

namespace {

using pig::ByClause;
using pig::Expr;
using pig::ExprKind;
using pig::GenItem;
using pig::Statement;
using pig::StatementKind;

/// Sum of decimal-digit counts of 0..n-1 (bytes the index part of token
/// payloads like "I0.src.Ext[17]" contributes when n tuples are named).
uint64_t DigitChars(uint64_t n) {
  if (n == kCardInf) return kCardInf;
  uint64_t total = 0;
  uint64_t low = 1;
  for (int digits = 1; low < n || (digits == 1 && n > 0); ++digits) {
    uint64_t high = (low > kCardInf / 10) ? kCardInf : low * 10;  // 10^digits
    uint64_t first = (digits == 1) ? 0 : low;
    if (first >= n) break;
    uint64_t count = std::min(n, high) - first;
    total = AddSat(total, MulSat(count, static_cast<uint64_t>(digits)));
    low = high;
  }
  return total;
}

/// Interned bytes of n tokens "<prefix><i>]" for i in 0..n-1.
CardInterval TokenChars(size_t prefix_len, CardInterval n) {
  uint64_t fixed = static_cast<uint64_t>(prefix_len) + 1;  // prefix + ']'
  return {AddSat(MulSat(n.lo, fixed), DigitChars(n.lo)),
          AddSat(MulSat(n.hi, fixed), DigitChars(n.hi))};
}

double EstOf(const CardInterval& c, double fallback) {
  if (c.exact()) return static_cast<double>(c.lo);
  return fallback;
}

/// Scalar type family for D0401/D0407: numeric kinds compare by value
/// (Value::Compare ranks int and double together), everything else only
/// matches its own kind.
enum class TypeFamily { kNumeric, kString, kBool, kOther };

TypeFamily FamilyOf(const FieldType& t) {
  switch (t.kind()) {
    case FieldType::Kind::kInt:
    case FieldType::Kind::kDouble:
      return TypeFamily::kNumeric;
    case FieldType::Kind::kString:
      return TypeFamily::kString;
    case FieldType::Kind::kBool:
      return TypeFamily::kBool;
    default:
      return TypeFamily::kOther;
  }
}

const char* FamilyName(TypeFamily f) {
  switch (f) {
    case TypeFamily::kNumeric: return "numeric";
    case TypeFamily::kString: return "string";
    case TypeFamily::kBool: return "boolean";
    case TypeFamily::kOther: return "non-scalar";
  }
  return "?";
}

/// ----------------------- expression site scanning ----------------------

struct AggSite {
  std::string op;         // upper-cased
  const Expr* arg;        // children[0]
  SourceLoc loc;
};

struct UdfSite {
  const Expr* expr;
  SourceLoc loc;
};

void ScanSites(const Expr& e, std::vector<AggSite>* aggs,
               std::vector<UdfSite>* udfs) {
  if (e.kind == ExprKind::kFuncCall) {
    if (pig::IsAggregateFunction(e.name)) {
      if (!e.children.empty()) {
        aggs->push_back(AggSite{ToUpper(e.name), e.children[0].get(), e.loc});
      }
    } else {
      udfs->push_back(UdfSite{&e, e.loc});
    }
  }
  for (const pig::ExprPtr& c : e.children) ScanSites(*c, aggs, udfs);
}

bool ExprReferencesData(const Expr& e) {
  if (e.kind == ExprKind::kFieldRef || e.kind == ExprKind::kPositional ||
      e.kind == ExprKind::kBagProject || e.kind == ExprKind::kFuncCall) {
    return true;
  }
  for (const pig::ExprPtr& c : e.children) {
    if (ExprReferencesData(*c)) return true;
  }
  return false;
}

void CollectFieldRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFieldRef || e.kind == ExprKind::kBagProject) {
    out->push_back(&e);
  }
  for (const pig::ExprPtr& c : e.children) CollectFieldRefs(*c, out);
}

/// Collects every name an expression reads: field refs (with the bare
/// field of "A::f" qualifications), bag-project bases and projected
/// fields. Used to decide whether a pruned field was ever consumed.
void CollectReadNames(const Expr& e, std::set<std::string>* out) {
  if (e.kind == ExprKind::kFieldRef) {
    out->insert(e.name);
    size_t sep = e.name.rfind("::");
    if (sep != std::string::npos) out->insert(e.name.substr(sep + 2));
  } else if (e.kind == ExprKind::kBagProject) {
    out->insert(e.name);
    out->insert(e.sub_name);
  }
  for (const pig::ExprPtr& c : e.children) CollectReadNames(*c, out);
}

bool IsComparison(pig::BinOp op) {
  switch (op) {
    case pig::BinOp::kEq:
    case pig::BinOp::kNe:
    case pig::BinOp::kLt:
    case pig::BinOp::kLe:
    case pig::BinOp::kGt:
    case pig::BinOp::kGe:
      return true;
    default:
      return false;
  }
}

/// -------------------------- module interpretation ----------------------

/// Abstract interpretation context for one module invocation.
struct ModuleCtx {
  const Workflow* wf = nullptr;
  const WorkflowNode* node = nullptr;
  const ModuleSpec* spec = nullptr;
  const AnalyzeOptions* opt = nullptr;
  /// Schema truth: the real interpreter over empty relations, statement by
  /// statement (the AnalyzeProgram trick, interleaved with the abstract
  /// transfer so each statement sees authoritative input schemas).
  pig::Environment schema_env;
  std::map<std::string, RelationFacts> facts;
  /// Current state population and how much of it is already s-wrapped in
  /// this invocation (ResolveParent caches per invocation).
  std::map<std::string, CardInterval> state_card;
  std::map<std::string, CardInterval> wrapped;
  Emission em;
  DiagnosticSink* sink = nullptr;  // diagnostics pass only
  std::string file;
  std::set<std::string>* static_names = nullptr;

  RelationFacts GetFacts(const std::string& name) const {
    auto it = facts.find(name);
    if (it != facts.end()) return it->second;
    RelationFacts unknown;
    unknown.card.total = CardInterval::Unknown();
    return unknown;
  }

  void Report(std::string code, Severity sev, SourceLoc loc, std::string msg,
              std::string note = "") {
    if (sink == nullptr) return;
    Diagnostic d{std::move(code), sev, loc, std::move(msg), std::move(note),
                 file};
    sink->Report(std::move(d));
  }

  void InternStatic(const std::string& name) {
    if (static_names != nullptr) static_names->insert(name);
  }

  /// Every name read by any expression across the module's programs
  /// (memoized; used by the D0405 pruned-without-reading check).
  const std::set<std::string>& ReadNames() {
    if (!read_names_ready_) {
      read_names_ready_ = true;
      auto scan = [&](const pig::Program& prog) {
        for (const Statement& s : prog.statements) {
          for (const pig::GenItem& g : s.gen_items) {
            CollectReadNames(*g.expr, &read_names_);
          }
          if (s.condition != nullptr) {
            CollectReadNames(*s.condition, &read_names_);
          }
          for (const pig::ByClause& c : s.by_clauses) {
            for (const pig::ExprPtr& k : c.keys) {
              CollectReadNames(*k, &read_names_);
            }
          }
          for (const auto& [unused, cond] : s.split_targets) {
            CollectReadNames(*cond, &read_names_);
          }
          for (const pig::OrderKey& k : s.order_keys) {
            read_names_.insert(k.field);
          }
        }
      };
      if (spec != nullptr) {
        scan(spec->qstate);
        scan(spec->qout);
      }
    }
    return read_names_;
  }

  /// Accounts the lazy "s" wrappers created when `consumed` state-origin
  /// tuples feed a derivation: each un-wrapped one costs a ·(base, m) node.
  void ConsumeState(const CardSet& consumed) {
    for (const auto& [rel, c] : consumed.state) {
      CardInterval have = state_card.count(rel) ? state_card[rel]
                                                : CardInterval::Zero();
      CardInterval& w = wrapped[rel];
      CardInterval fresh{SubFloor(c.lo, w.hi),
                         std::min(c.hi, SubFloor(have.hi, w.lo))};
      if (fresh.hi == 0) continue;
      em.nodes += fresh;
      em.edges += fresh * CardInterval::Exact(2);
      em.state_nodes += fresh;
      em.est_nodes += EstOf(fresh, 0);
      em.est_edges += 2 * EstOf(fresh, 0);
      w = (w + fresh).CapAt(have);
    }
  }

 private:
  std::set<std::string> read_names_;
  bool read_names_ready_ = false;
};

/// Resolves the bag facts an aggregate/flatten argument ranges over.
BagFacts ArgBagFacts(const ModuleCtx& cx, const RelationFacts& in,
                     const Expr& arg) {
  if ((arg.kind == ExprKind::kFieldRef || arg.kind == ExprKind::kBagProject) &&
      in.schema != nullptr) {
    if (auto idx = in.schema->FindField(arg.name)) {
      auto it = in.bags.find(*idx);
      if (it != in.bags.end()) return it->second;
    }
  }
  BagFacts unknown;
  unknown.members.total = CardInterval::Unknown();
  unknown.est = cx.opt->selectivities.flatten;
  return unknown;
}

/// Emission of the per-tuple "specials" (aggregate and black-box nodes)
/// the expressions of one statement create. `n` is the statement's input
/// cardinality: each input tuple evaluates every site once.
void TallySpecials(ModuleCtx& cx, const RelationFacts& in, CardInterval n,
                   double n_est, const std::vector<AggSite>& aggs,
                   const std::vector<UdfSite>& udfs) {
  for (const AggSite& a : aggs) {
    BagFacts bag = ArgBagFacts(cx, in, *a.arg);
    CardInterval t = bag.members.total;
    double t_est = bag.est;
    // Input tuples whose bag is empty fall back to one edge from the
    // group tuple itself.
    CardInterval empties = CardInterval::Zero();
    if (t.hi == 0) {
      empties = n;
    } else if (!bag.min_one) {
      empties = {0, n.hi};
    }
    cx.InternStatic(a.op);
    if (a.op == "COUNT") {
      cx.em.nodes += n;
      cx.em.edges += t + empties;
      cx.em.values += n;
      cx.em.est_nodes += n_est;
      cx.em.est_edges += t_est;
    } else {
      // Per member: a const v-node and a ⊗ pairing it with the tuple
      // (2 nodes, 2 edges), plus one aggregate edge; per input tuple: the
      // aggregate v-node itself.
      cx.em.nodes += n + t * CardInterval::Exact(2);
      cx.em.edges += t * CardInterval::Exact(3) + empties;
      cx.em.values += CardInterval{0, AddSat(t.hi, n.hi)};
      cx.em.est_nodes += n_est + 2 * t_est;
      cx.em.est_edges += 3 * t_est;
    }
    cx.ConsumeState(bag.members);
  }
  for (const UdfSite& u : udfs) {
    CardSet bag_members;
    bool scalar_arg = false;
    for (const pig::ExprPtr& child : u.expr->children) {
      bool is_bag_arg = false;
      if (in.schema != nullptr &&
          (child->kind == ExprKind::kFieldRef ||
           child->kind == ExprKind::kBagProject)) {
        if (auto idx = in.schema->FindField(child->name)) {
          if (in.schema->field(*idx).type.kind() == FieldType::Kind::kBag ||
              child->kind == ExprKind::kBagProject) {
            is_bag_arg = true;
            bag_members = bag_members.Add(ArgBagFacts(cx, in, *child).members);
          }
        }
      }
      if (!is_bag_arg) scalar_arg = true;
    }
    cx.InternStatic(ToLower(u.expr->name));
    cx.em.nodes += n;
    cx.em.est_nodes += n_est;
    CardInterval edges = bag_members.total;
    if (scalar_arg) edges += n;
    cx.em.edges += edges;
    cx.em.est_edges += EstOf(edges, n_est);
    cx.ConsumeState(bag_members);
    if (scalar_arg) cx.ConsumeState(in.card);
  }
}

/// Checks comparisons in `e` for mismatched scalar type families (D0407).
void CheckComparisons(ModuleCtx& cx, const Expr& e, const Schema* schema) {
  if (schema != nullptr && e.kind == ExprKind::kBinaryOp &&
      IsComparison(e.bin_op) && e.children.size() == 2) {
    Result<FieldType> lt =
        pig::InferExprType(*e.children[0], *schema, cx.opt->udfs);
    Result<FieldType> rt =
        pig::InferExprType(*e.children[1], *schema, cx.opt->udfs);
    if (lt.ok() && rt.ok()) {
      TypeFamily lf = FamilyOf(lt.value());
      TypeFamily rf = FamilyOf(rt.value());
      if (lf != rf && lf != TypeFamily::kOther && rf != TypeFamily::kOther) {
        cx.Report("D0407", Severity::kWarning, e.loc,
                  StrCat("comparison mixes ", FamilyName(lf), " and ",
                         FamilyName(rf), " operands"),
                  "values of different kinds never compare equal; the "
                  "condition is constant in practice");
      }
    }
  }
  for (const pig::ExprPtr& c : e.children) CheckComparisons(cx, *c, schema);
}

/// Checks field references in `e` against facts (D0405: pruned upstream).
void CheckFieldRefs(ModuleCtx& cx, const Expr& e, const RelationFacts& in) {
  if (in.schema == nullptr) return;
  std::vector<const Expr*> refs;
  CollectFieldRefs(e, &refs);
  for (const Expr* ref : refs) {
    if (in.schema->FindField(ref->name)) continue;
    auto it = in.pruned.find(ref->name);
    if (it == in.pruned.end()) continue;
    cx.Report("D0405", Severity::kNote, ref->loc,
              StrCat("field '", ref->name,
                     "' was pruned by the FOREACH at line ", it->second.line),
              "add the field to that statement's GENERATE list to keep it");
  }
}

/// Reports D0403 when a derivation consumes a statically-empty relation.
void CheckEmptyInput(ModuleCtx& cx, const Statement& stmt,
                     const std::string& name) {
  auto it = cx.facts.find(name);
  if (it == cx.facts.end()) return;  // unbound: the linter's department
  if (it->second.card.total.hi == 0) {
    cx.Report("D0403", Severity::kWarning, stmt.loc,
              StrCat("relation '", name, "' is statically empty here"),
              "every upstream path yields zero tuples; this derivation "
              "can never produce output");
  }
}

/// Key type family per BY clause, for D0401.
void CheckKeyFamilies(ModuleCtx& cx, const Statement& stmt) {
  if (cx.sink == nullptr || stmt.by_clauses.size() < 2) return;
  size_t arity = stmt.by_clauses[0].keys.size();
  for (size_t pos = 0; pos < arity; ++pos) {
    TypeFamily first = TypeFamily::kOther;
    const Expr* first_expr = nullptr;
    for (const ByClause& clause : stmt.by_clauses) {
      if (pos >= clause.keys.size()) break;
      RelationFacts in = cx.GetFacts(clause.relation);
      if (in.schema == nullptr) continue;
      Result<FieldType> t =
          pig::InferExprType(*clause.keys[pos], *in.schema, cx.opt->udfs);
      if (!t.ok()) continue;
      TypeFamily f = FamilyOf(t.value());
      if (f == TypeFamily::kOther) continue;
      if (first_expr == nullptr) {
        first = f;
        first_expr = clause.keys[pos].get();
      } else if (f != first) {
        cx.Report("D0401", Severity::kWarning, clause.keys[pos]->loc,
                  StrCat("key #", pos + 1, " is ", FamilyName(f), " here but ",
                         FamilyName(first), " in the first BY clause"),
                  "keys of different kinds never match, so this "
                  "join/cogroup degenerates");
      }
    }
  }
}

/// Schema of the statement's target per the real interpreter (empty-
/// relation execution); null when the statement does not type-check.
SchemaPtr InferTargetSchema(ModuleCtx& cx, const Statement& stmt) {
  pig::Interpreter interp(cx.opt->udfs);
  Result<const Relation*> bound =
      interp.RunStatement(stmt, &cx.schema_env, nullptr);
  if (!bound.ok()) return nullptr;
  return bound.value()->schema;
}

FieldFact FieldFactOfItem(const RelationFacts& in, const GenItem& item,
                          bool out_is_input_bijection) {
  FieldFact f;
  const Expr& e = *item.expr;
  if (e.kind == ExprKind::kConst) {
    f.nullable = e.literal.is_null();
    f.unique = false;
    return f;
  }
  if (e.kind == ExprKind::kFieldRef && in.schema != nullptr) {
    if (auto idx = in.schema->FindField(e.name)) {
      FieldFact src = in.FieldAt(*idx);
      f.nullable = src.nullable;
      f.unique = src.unique && out_is_input_bijection;
      return f;
    }
  }
  if (e.kind == ExprKind::kFuncCall && pig::IsAggregateFunction(e.name)) {
    std::string op = ToUpper(e.name);
    // COUNT and SUM always produce a value; MIN/MAX/AVG are null on an
    // empty bag.
    if (op == "COUNT" || op == "SUM") f.nullable = false;
    return f;
  }
  return f;  // nullable, not unique
}

void TransferForEach(ModuleCtx& cx, const Statement& stmt) {
  RelationFacts in = cx.GetFacts(stmt.inputs[0]);
  CardInterval n = in.card.total;
  double n_est = in.est;

  std::vector<AggSite> aggs;
  std::vector<UdfSite> udfs;
  for (const GenItem& item : stmt.gen_items) {
    ScanSites(*item.expr, &aggs, &udfs);
    if (cx.sink != nullptr) {
      CheckComparisons(cx, *item.expr, in.schema.get());
      CheckFieldRefs(cx, *item.expr, in);
    }
  }
  TallySpecials(cx, in, n, n_est, aggs, udfs);
  size_t specials = aggs.size() + udfs.size();

  // FLATTEN of bag-typed items drives the output cross product.
  size_t flat_bags = 0;       // bag-flatten items (join-style parents)
  size_t flat_known = 0;      // ... whose parent annots are distinct
  CardInterval out = n;
  double out_est = n_est;
  for (const GenItem& item : stmt.gen_items) {
    if (!item.flatten || in.schema == nullptr) continue;
    Result<FieldType> t =
        pig::InferExprType(*item.expr, *in.schema, cx.opt->udfs);
    if (!t.ok() || t.value().kind() != FieldType::Kind::kBag) continue;
    ++flat_bags;
    BagFacts f = ArgBagFacts(cx, in, *item.expr);
    bool udf_origin = item.expr->kind == ExprKind::kFuncCall;
    if (!udf_origin) ++flat_known;
    if (flat_bags == 1) {
      out = f.members.total;
      out_est = f.est;
    } else {
      out = CardInterval{0, MulSat(out.hi, f.members.total.hi)};
      out_est *= f.est / std::max(1.0, n_est);
    }
    if (!udf_origin) cx.ConsumeState(f.members);
  }
  if (flat_bags == 0) {
    cx.ConsumeState(in.card);  // src resolved for every tuple
  } else {
    cx.ConsumeState(in.card.Filtered());  // only tuples that emit output
  }

  // Output + / · nodes: parents = src, the specials, one per distinct
  // flattened inner annotation (UDF-returned bags dedup against their
  // black-box special).
  uint64_t p = 1 + specials + flat_known;
  uint64_t p_min = 1 + specials + (flat_bags > 0 ? 1u : 0u);
  cx.em.nodes += out;
  cx.em.edges += CardInterval{MulSat(out.lo, p_min), MulSat(out.hi, p)};
  cx.em.est_nodes += out_est;
  cx.em.est_edges += out_est * static_cast<double>(p);
  if (p > internal::kInlineParents) {
    if (flat_bags <= 1) {
      cx.em.wide_nodes += out;
      cx.em.wide_edges += out * CardInterval::Exact(p);
    } else {
      cx.em.wide_nodes += CardInterval{0, out.hi};
      cx.em.wide_edges += CardInterval{0, MulSat(out.hi, p)};
    }
  }

  RelationFacts target;
  target.schema = InferTargetSchema(cx, stmt);
  target.card.total = out;
  target.est = out_est;
  bool bijection = flat_bags == 0;
  if (target.schema != nullptr) {
    size_t out_idx = 0;
    for (const GenItem& item : stmt.gen_items) {
      if (item.flatten && in.schema != nullptr) {
        Result<FieldType> t =
            pig::InferExprType(*item.expr, *in.schema, cx.opt->udfs);
        if (t.ok() && t.value().nested() != nullptr &&
            (t.value().kind() == FieldType::Kind::kBag ||
             t.value().kind() == FieldType::Kind::kTuple)) {
          out_idx += t.value().nested()->num_fields();
          continue;
        }
      }
      if (out_idx < target.schema->num_fields()) {
        while (target.fields.size() < out_idx) target.fields.push_back({});
        target.fields.push_back(FieldFactOfItem(in, item, bijection));
        // Bag-valued pass-through keeps its member facts only when the
        // output is tuple-per-tuple (no flatten multiplying rows).
        if (bijection &&
            target.schema->field(out_idx).type.kind() ==
                FieldType::Kind::kBag &&
            (item.expr->kind == ExprKind::kFieldRef ||
             item.expr->kind == ExprKind::kBagProject)) {
          target.bags[out_idx] = ArgBagFacts(cx, in, *item.expr);
        }
      }
      ++out_idx;
    }
    while (target.fields.size() < target.schema->num_fields()) {
      target.fields.push_back({});
    }
    // Fields of the input that no longer resolve in the output were pruned
    // here; remember the site, and flag D0405 when a field that crossed
    // the module boundary (declared input/state schema) is dropped without
    // any expression in the module ever reading it — the upstream work
    // that produced and shipped the field is wasted.
    target.pruned = in.pruned;
    if (in.schema != nullptr) {
      bool from_declared =
          cx.spec != nullptr &&
          (cx.spec->input_schemas.count(stmt.inputs[0]) > 0 ||
           cx.spec->state_schemas.count(stmt.inputs[0]) > 0);
      for (const Field& f : in.schema->fields()) {
        if (!target.schema->FindField(f.name)) {
          target.pruned[f.name] = stmt.loc;
          if (from_declared && cx.ReadNames().count(f.name) == 0) {
            cx.Report("D0405", Severity::kNote, stmt.loc,
                      StrCat("field '", f.name, "' of '", stmt.inputs[0],
                             "' is dropped here without ever being read"),
                      "the upstream module pays to produce and ship it; "
                      "drop it from the schema instead");
          }
        }
      }
    }
  }
  cx.facts[stmt.target] = std::move(target);
}

void TransferGroup(ModuleCtx& cx, const Statement& stmt) {
  if (stmt.by_clauses.empty()) return;
  CheckKeyFamilies(cx, stmt);
  std::vector<RelationFacts> ins;
  CardSet total;
  double total_est = 0;
  for (const ByClause& clause : stmt.by_clauses) {
    ins.push_back(cx.GetFacts(clause.relation));
    total = total.Add(ins.back().card);
    total_est += ins.back().est;
  }
  bool group_all = stmt.by_clauses[0].keys.empty();
  bool single = ins.size() == 1;

  CardInterval g;
  double g_est;
  bool unique_key = false;
  if (single && !group_all && stmt.by_clauses[0].keys.size() == 1 &&
      stmt.by_clauses[0].keys[0]->kind == ExprKind::kFieldRef &&
      ins[0].schema != nullptr) {
    if (auto idx = ins[0].schema->FindField(stmt.by_clauses[0].keys[0]->name)) {
      unique_key = ins[0].FieldAt(*idx).unique;
    }
  }
  if (group_all) {
    g = CardInterval{total.total.lo > 0 ? 1u : 0u, total.total.hi > 0 ? 1u : 0u};
    g_est = total.total.hi > 0 ? 1 : 0;
  } else if (unique_key) {
    g = total.total;
    g_est = total_est;
  } else {
    g = CardInterval{total.total.lo > 0 ? 1u : 0u, total.total.hi};
    g_est = std::max(1.0, total_est * cx.opt->selectivities.group);
  }

  cx.em.nodes += g;
  cx.em.edges += total.total;
  cx.em.est_nodes += g_est;
  cx.em.est_edges += total_est;
  if (g.hi <= 1 && g.exact() && total.total.exact()) {
    if (total.total.lo > internal::kInlineParents) {
      cx.em.wide_nodes += g;
      cx.em.wide_edges += total.total;
    }
  } else if (unique_key && single) {
    // each group has exactly one member: never wide
  } else {
    cx.em.wide_nodes += CardInterval{0, g.hi};
    cx.em.wide_edges += CardInterval{0, total.total.hi};
  }
  cx.ConsumeState(total);

  RelationFacts target;
  target.schema = InferTargetSchema(cx, stmt);
  target.card.total = g;
  target.est = g_est;
  if (target.schema != nullptr) {
    target.fields.resize(target.schema->num_fields());
    target.fields[0] = FieldFact{/*nullable=*/!group_all, /*unique=*/true};
    for (size_t i = 0; i < ins.size() && i + 1 < target.schema->num_fields();
         ++i) {
      BagFacts bag;
      bag.members = ins[i].card;  // member annotations survive into the bag
      bag.est = ins[i].est;
      bag.min_one = single;
      target.bags[i + 1] = std::move(bag);
    }
  }
  cx.facts[stmt.target] = std::move(target);
}

void TransferJoin(ModuleCtx& cx, const Statement& stmt) {
  if (stmt.by_clauses.empty()) return;
  CheckKeyFamilies(cx, stmt);
  std::vector<RelationFacts> ins;
  std::vector<bool> unique;
  for (const ByClause& clause : stmt.by_clauses) {
    ins.push_back(cx.GetFacts(clause.relation));
    bool u = false;
    if (clause.keys.size() == 1 &&
        clause.keys[0]->kind == ExprKind::kFieldRef &&
        ins.back().schema != nullptr) {
      if (auto idx = ins.back().schema->FindField(clause.keys[0]->name)) {
        u = ins.back().FieldAt(*idx).unique;
      }
    }
    unique.push_back(u);
  }
  size_t k = ins.size();

  uint64_t hi = 1;
  for (const RelationFacts& in : ins) hi = MulSat(hi, in.card.total.hi);
  // A clause with a unique key contributes at most one match per probe:
  // the output is bounded by each input whose counterparts are all unique.
  for (size_t j = 0; j < k; ++j) {
    uint64_t bound = ins[j].card.total.hi;
    bool all_unique = true;
    for (size_t i = 0; i < k; ++i) {
      if (i != j && !unique[i]) all_unique = false;
    }
    if (all_unique) hi = std::min(hi, bound);
  }
  CardInterval out{0, hi};
  double out_est = ins.empty() ? 0 : ins[0].est;
  for (size_t i = 1; i < k; ++i) {
    out_est *= ins[i].est * cx.opt->selectivities.join;
  }

  cx.em.nodes += out;
  cx.em.edges += out * CardInterval::Exact(k);
  cx.em.est_nodes += out_est;
  cx.em.est_edges += out_est * static_cast<double>(k);
  if (k > internal::kInlineParents) {
    cx.em.wide_nodes += out;
    cx.em.wide_edges += out * CardInterval::Exact(k);
  }
  for (const RelationFacts& in : ins) cx.ConsumeState(in.card.Filtered());

  RelationFacts target;
  target.schema = InferTargetSchema(cx, stmt);
  target.card.total = out;
  target.est = out_est;
  if (target.schema != nullptr) {
    for (const RelationFacts& in : ins) {
      for (size_t i = 0; in.schema != nullptr && i < in.schema->num_fields();
           ++i) {
        FieldFact f = in.FieldAt(i);
        f.unique = false;
        target.fields.push_back(f);
      }
    }
    target.fields.resize(target.schema->num_fields());
    for (const RelationFacts& in : ins) {
      for (const auto& [name, loc] : in.pruned) target.pruned[name] = loc;
    }
  }
  cx.facts[stmt.target] = std::move(target);
}

void TransferCross(ModuleCtx& cx, const Statement& stmt) {
  std::vector<RelationFacts> ins;
  CardInterval out = CardInterval::Exact(1);
  double out_est = 1;
  for (const std::string& name : stmt.inputs) {
    ins.push_back(cx.GetFacts(name));
    out = out * ins.back().card.total;
    out_est *= ins.back().est;
  }
  size_t k = ins.size();
  if (cx.sink != nullptr &&
      (out.hi == kCardInf || out_est >= 100000.0)) {
    cx.Report("D0402", Severity::kWarning, stmt.loc,
              StrCat("CROSS may produce ", out.ToString(),
                     " tuples (estimated ", static_cast<uint64_t>(out_est),
                     ")"),
              "every output tuple is a · node with one edge per input; "
              "consider a keyed JOIN");
  }
  cx.em.nodes += out;
  cx.em.edges += out * CardInterval::Exact(k);
  cx.em.est_nodes += out_est;
  cx.em.est_edges += out_est * static_cast<double>(k);
  if (k > internal::kInlineParents) {
    cx.em.wide_nodes += out;
    cx.em.wide_edges += out * CardInterval::Exact(k);
  }
  for (const RelationFacts& in : ins) cx.ConsumeState(in.card.Filtered());

  RelationFacts target;
  target.schema = InferTargetSchema(cx, stmt);
  target.card.total = out;
  target.est = out_est;
  cx.facts[stmt.target] = std::move(target);
}

void TransferUnion(ModuleCtx& cx, const Statement& stmt) {
  RelationFacts target;
  target.schema = InferTargetSchema(cx, stmt);
  CardSet card;
  double est = 0;
  bool first = true;
  for (const std::string& name : stmt.inputs) {
    RelationFacts in = cx.GetFacts(name);
    card = card.Add(in.card);
    est += in.est;
    if (first) {
      target.fields = in.fields;
      target.bags = in.bags;
      target.pruned = in.pruned;
      first = false;
    } else {
      for (size_t i = 0; i < target.fields.size(); ++i) {
        FieldFact other = in.FieldAt(i);
        target.fields[i].nullable |= other.nullable;
        target.fields[i].unique = false;
      }
      for (auto& [idx, bag] : target.bags) {
        auto it = in.bags.find(idx);
        if (it != in.bags.end()) {
          bag.members = bag.members.Add(it->second.members);
          bag.est += it->second.est;
          bag.min_one &= it->second.min_one;
        } else {
          bag.min_one = false;
        }
      }
      for (const auto& [name2, loc] : in.pruned) target.pruned[name2] = loc;
    }
  }
  target.card = card;
  target.est = est;
  cx.facts[stmt.target] = std::move(target);
}

void TransferFilterLike(ModuleCtx& cx, const Expr& condition,
                        const std::string& target_name,
                        const RelationFacts& in, bool tally_condition) {
  if (cx.sink != nullptr) {
    CheckComparisons(cx, condition, in.schema.get());
    CheckFieldRefs(cx, condition, in);
    if (!ExprReferencesData(condition)) {
      cx.Report("D0406", Severity::kWarning, condition.loc,
                "condition is statically constant",
                "it references no field, so it keeps either every tuple or "
                "none");
    }
  }
  if (tally_condition) {
    std::vector<AggSite> aggs;
    std::vector<UdfSite> udfs;
    ScanSites(condition, &aggs, &udfs);
    TallySpecials(cx, in, in.card.total, in.est, aggs, udfs);
  }

  // Uniqueness survives a subset; nullability is unchanged.
  RelationFacts target = in;
  target.card = in.card.Filtered();
  target.est = in.est * cx.opt->selectivities.filter;
  for (auto& [idx, bag] : target.bags) {
    bag.members = bag.members.Filtered();
    bag.est *= cx.opt->selectivities.filter;
  }
  cx.facts[target_name] = std::move(target);
}

void TransferStatement(ModuleCtx& cx, const Statement& stmt) {
  if (cx.sink != nullptr) {
    // D0403 on every consumed relation.
    if (stmt.kind == StatementKind::kGroup ||
        stmt.kind == StatementKind::kCogroup ||
        stmt.kind == StatementKind::kJoin) {
      for (const ByClause& c : stmt.by_clauses) CheckEmptyInput(cx, stmt, c.relation);
    } else if (stmt.kind == StatementKind::kForEach ||
               stmt.kind == StatementKind::kDistinct ||
               stmt.kind == StatementKind::kCross) {
      for (const std::string& name : stmt.inputs) CheckEmptyInput(cx, stmt, name);
    }
  }
  switch (stmt.kind) {
    case StatementKind::kForEach:
      TransferForEach(cx, stmt);
      break;
    case StatementKind::kGroup:
    case StatementKind::kCogroup:
      TransferGroup(cx, stmt);
      break;
    case StatementKind::kJoin:
      TransferJoin(cx, stmt);
      break;
    case StatementKind::kCross:
      TransferCross(cx, stmt);
      break;
    case StatementKind::kUnion:
      TransferUnion(cx, stmt);
      break;
    case StatementKind::kFilter: {
      RelationFacts in = cx.GetFacts(stmt.inputs[0]);
      TransferFilterLike(cx, *stmt.condition, stmt.target, in, true);
      break;
    }
    case StatementKind::kSplit: {
      RelationFacts in = cx.GetFacts(stmt.inputs[0]);
      for (const auto& [name, cond] : stmt.split_targets) {
        TransferFilterLike(cx, *cond, name, in, true);
      }
      break;
    }
    case StatementKind::kDistinct: {
      RelationFacts in = cx.GetFacts(stmt.inputs[0]);
      CardInterval n = in.card.total;
      CardInterval out{n.lo > 0 ? 1u : 0u, n.hi};
      cx.em.nodes += out;
      cx.em.edges += n;
      cx.em.est_nodes += std::max(n.lo > 0 ? 1.0 : 0.0,
                                  in.est * cx.opt->selectivities.group);
      cx.em.est_edges += in.est;
      cx.em.wide_nodes += CardInterval{0, out.hi};
      cx.em.wide_edges += CardInterval{0, n.hi};
      cx.ConsumeState(in.card);
      RelationFacts target = in;
      target.card = CardSet{out, {}};
      target.est = std::max(1.0, in.est * cx.opt->selectivities.group);
      target.bags.clear();
      if (target.fields.size() == 1) target.fields[0].unique = true;
      cx.facts[stmt.target] = std::move(target);
      break;
    }
    case StatementKind::kOrderBy:
    case StatementKind::kAlias: {
      cx.facts[stmt.target] = cx.GetFacts(stmt.inputs[0]);
      break;
    }
    case StatementKind::kLimit: {
      RelationFacts in = cx.GetFacts(stmt.inputs[0]);
      uint64_t limit = stmt.limit < 0 ? 0 : static_cast<uint64_t>(stmt.limit);
      RelationFacts target = in;
      target.card.total = {std::min(in.card.total.lo, limit),
                           std::min(in.card.total.hi, limit)};
      for (auto& [rel, c] : target.card.state) c = {0, c.hi};
      target.est = std::min(in.est, static_cast<double>(limit));
      for (auto& [idx, bag] : target.bags) {
        bag.members = bag.members.Filtered();
      }
      cx.facts[stmt.target] = std::move(target);
      break;
    }
  }
  // Keep the schema environment in sync for statements whose transfer did
  // not call InferTargetSchema (pass-through kinds bind their target too).
  if (!cx.schema_env.Contains(stmt.target) ||
      cx.facts.count(stmt.target) == 0 ||
      cx.facts[stmt.target].schema == nullptr) {
    pig::Interpreter interp(cx.opt->udfs);
    Result<const Relation*> bound =
        interp.RunStatement(stmt, &cx.schema_env, nullptr);
    if (bound.ok() && cx.facts.count(stmt.target) &&
        cx.facts[stmt.target].schema == nullptr) {
      cx.facts[stmt.target].schema = bound.value()->schema;
    }
  }
}

/// ----------------------- D0404: dead relations -------------------------

void CheckDeadRelations(const ModuleSpec& spec, const std::string& file,
                        DiagnosticSink* sink) {
  std::vector<const Statement*> stmts;
  for (const Statement& s : spec.qstate.statements) stmts.push_back(&s);
  for (const Statement& s : spec.qout.statements) stmts.push_back(&s);

  std::set<std::string> live;
  for (const auto& [name, schema] : spec.output_schemas) live.insert(name);
  for (const auto& [name, schema] : spec.state_schemas) live.insert(name);

  auto stmt_inputs = [](const Statement& s) {
    std::vector<std::string> in = s.inputs;
    for (const ByClause& c : s.by_clauses) in.push_back(c.relation);
    return in;
  };
  auto stmt_targets = [](const Statement& s) {
    std::vector<std::string> t;
    if (s.kind == StatementKind::kSplit) {
      for (const auto& [name, cond] : s.split_targets) t.push_back(name);
    } else {
      t.push_back(s.target);
    }
    return t;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Statement* s : stmts) {
      bool any_live = false;
      for (const std::string& t : stmt_targets(*s)) {
        if (live.count(t)) any_live = true;
      }
      if (!any_live) continue;
      for (const std::string& in : stmt_inputs(*s)) {
        if (live.insert(in).second) changed = true;
      }
    }
  }
  for (const Statement* s : stmts) {
    for (const std::string& t : stmt_targets(*s)) {
      if (!live.count(t)) {
        Diagnostic d{"D0404", Severity::kWarning, s->loc,
                     StrCat("relation '", t, "' never reaches an output or "
                            "state relation"),
                     StrCat("module '", spec.name, "' computes it and drops "
                            "it; its provenance nodes are dead weight"),
                     file};
        sink->Report(std::move(d));
      }
    }
  }
}

/// -------------------- deletion-propagation analysis --------------------

struct TaintResult {
  std::set<std::string> outputs;  // tainted output relations
  std::set<std::string> state;    // tainted state relations (as persisted)
  bool bounded = true;
  bool consumed = false;  // a tainted relation fed a node-creating operator
  std::string site;       // first unbounded witness
  SourceLoc loc;
};

bool IsNodeCreating(StatementKind k) {
  switch (k) {
    case StatementKind::kForEach:
    case StatementKind::kGroup:
    case StatementKind::kCogroup:
    case StatementKind::kJoin:
    case StatementKind::kCross:
    case StatementKind::kDistinct:
      return true;
    default:
      return false;
  }
}

/// Taints `source` and pushes it through the module's statements under
/// Definition 4.2 (· and ⊗ die on any parent death; +, δ, aggregates and
/// black boxes only when all parents die — still a possible singleton, so
/// taint continues but stays bounded).
TaintResult TaintModule(const ModuleSpec& spec, const std::string& source,
                        const std::map<std::string, RelationFacts>& facts) {
  TaintResult r;
  std::set<std::string> tainted{source};

  auto is_unique_key = [&facts](const ByClause& clause) {
    if (clause.keys.size() != 1 ||
        clause.keys[0]->kind != ExprKind::kFieldRef) {
      return false;
    }
    auto it = facts.find(clause.relation);
    if (it == facts.end() || it->second.schema == nullptr) return false;
    auto idx = it->second.schema->FindField(clause.keys[0]->name);
    return idx.has_value() && it->second.FieldAt(*idx).unique;
  };

  auto process = [&](const Statement& s) {
    std::vector<std::string> inputs = s.inputs;
    for (const ByClause& c : s.by_clauses) inputs.push_back(c.relation);
    bool any = false;
    std::vector<bool> in_tainted;
    for (const std::string& in : inputs) {
      bool t = tainted.count(in) > 0;
      in_tainted.push_back(t);
      any |= t;
    }
    auto mark_unbounded = [&](const char* what) {
      if (r.bounded) {
        r.bounded = false;
        r.site = what;
        r.loc = s.loc;
      }
    };
    if (any) {
      if (IsNodeCreating(s.kind)) r.consumed = true;
      switch (s.kind) {
        case StatementKind::kForEach:
          for (const GenItem& item : s.gen_items) {
            if (item.flatten) mark_unbounded("FLATTEN fan-out");
          }
          break;
        case StatementKind::kJoin: {
          // Deleting a tuple of input j kills one · node per match
          // combination of the other inputs — bounded only when every
          // other clause has a unique key.
          for (size_t j = 0; j < s.by_clauses.size(); ++j) {
            if (!in_tainted[j]) continue;
            for (size_t i = 0; i < s.by_clauses.size(); ++i) {
              if (i != j && !is_unique_key(s.by_clauses[i])) {
                mark_unbounded("JOIN fan-out");
              }
            }
          }
          break;
        }
        case StatementKind::kCross:
          if (s.inputs.size() > 1) mark_unbounded("CROSS fan-out");
          break;
        default:
          break;
      }
    }
    // Rebind target taint (last binding wins for later statements).
    if (s.kind == StatementKind::kSplit) {
      for (const auto& [name, cond] : s.split_targets) {
        bool keep = name == source && tainted.count(name) > 0;
        if (any || keep) {
          tainted.insert(name);
        } else {
          tainted.erase(name);
        }
      }
    } else {
      if (any) {
        tainted.insert(s.target);
      } else if (s.target != source) {
        tainted.erase(s.target);
      }
    }
  };
  for (const Statement& s : spec.qstate.statements) process(s);
  for (const Statement& s : spec.qout.statements) process(s);

  for (const auto& [name, schema] : spec.output_schemas) {
    if (tainted.count(name)) r.outputs.insert(name);
  }
  for (const auto& [name, schema] : spec.state_schemas) {
    if (tainted.count(name)) r.state.insert(name);
  }
  return r;
}

}  // namespace

/// --------------------------- the driver --------------------------------

namespace {

struct NodeRound {
  std::map<std::string, RelationFacts> outputs;  // output rel -> facts
  Emission em;
};

/// Interval interpretation of one workflow round (one execution). Mutates
/// `state_facts`; returns per-node output facts and per-node emission.
class IntervalDriver {
 public:
  IntervalDriver(const Workflow& wf, const AnalyzeOptions& opt,
                 const std::vector<std::string>& topo,
                 std::set<std::string>* static_names)
      : wf_(wf), opt_(opt), topo_(topo), static_names_(static_names) {}

  /// State facts: instance -> state relation -> facts.
  using StateFacts = std::map<std::string, std::map<std::string, RelationFacts>>;

  StateFacts InitialState() const {
    StateFacts state;
    for (const WorkflowNode& n : wf_.nodes()) {
      const ModuleSpec* spec = *wf_.FindModule(n.module);
      for (const auto& [rel, schema] : spec->state_schemas) {
        RelationFacts f;
        f.schema = schema;
        f.fields.resize(schema->num_fields());
        auto inst = opt_.initial_state.find(n.instance);
        if (inst != opt_.initial_state.end() &&
            inst->second.count(rel)) {
          uint64_t sz = inst->second.at(rel).size();
          f.card.total = CardInterval::Exact(sz);
          f.est = static_cast<double>(sz);
          for (FieldFact& ff : f.fields) ff.nullable = false;
        } else {
          f.card.total = CardInterval::Zero();
        }
        state[n.instance][rel] = std::move(f);
      }
    }
    return state;
  }

  /// Runs one round. `exec` tags profiles; negative exec = fixpoint round
  /// (no base-token accounting, since first-bind bookkeeping is unknown).
  std::map<std::string, NodeRound> RunRound(
      StateFacts* state, int exec, DiagnosticSink* sink,
      const std::string& file,
      std::map<std::string, std::map<std::string, RelationFacts>>* merged) {
    std::map<std::string, NodeRound> rounds;
    for (const std::string& node_id : topo_) {
      const WorkflowNode* node = *wf_.FindNode(node_id);
      const ModuleSpec* spec = *wf_.FindModule(node->module);
      ModuleCtx cx;
      cx.wf = &wf_;
      cx.node = node;
      cx.spec = spec;
      cx.opt = &opt_;
      cx.sink = sink;
      cx.file = file;
      cx.static_names = static_names_;
      cx.InternStatic(spec->name);
      cx.InternStatic(node->instance);

      cx.em.nodes += CardInterval::Exact(1);  // the "m" node
      cx.em.est_nodes += 1;

      bool is_input_node = wf_.IncomingEdges(node_id).empty();

      // Bind inputs.
      for (const auto& [rel, schema] : spec->input_schemas) {
        RelationFacts f;
        f.schema = schema;
        f.fields.resize(schema->num_fields());
        if (is_input_node) {
          auto node_it = opt_.inputs.find(node_id);
          bool have = node_it != opt_.inputs.end() &&
                      node_it->second.count(rel);
          if (have) {
            uint64_t sz = node_it->second.at(rel).size();
            f.card.total = CardInterval::Exact(sz);
            f.est = static_cast<double>(sz);
            for (FieldFact& ff : f.fields) ff.nullable = false;
          } else if (opt_.inputs.empty()) {
            f.card.total = CardInterval::Unknown();
            f.est = opt_.selectivities.input_rows;
          } else {
            // Inputs were given but not for this port: it receives none.
            f.card.total = CardInterval::Zero();
          }
        } else {
          int contributions = 0;
          for (const WorkflowEdge* e : wf_.IncomingEdges(node_id)) {
            for (const EdgeRelation& er : e->relations) {
              if (er.to_relation != rel) continue;
              auto up = rounds.find(e->from);
              if (up == rounds.end()) continue;
              auto out_it = up->second.outputs.find(er.from_relation);
              if (out_it == up->second.outputs.end()) continue;
              const RelationFacts& src = out_it->second;
              f.card = f.card.Add(src.card.WithoutState());
              f.est += src.est;
              ++contributions;
              for (size_t i = 0; i < f.fields.size(); ++i) {
                FieldFact sf = src.FieldAt(i);
                if (contributions == 1) {
                  f.fields[i] = sf;
                } else {
                  f.fields[i].nullable |= sf.nullable;
                  f.fields[i].unique &= sf.unique;
                }
              }
              for (const auto& [idx, bag] : src.bags) {
                BagFacts b = bag;
                b.members = b.members.WithoutState();
                f.bags[idx] = std::move(b);
              }
            }
          }
          if (contributions != 1) {
            // Unions of several upstream ports (or none) lose key facts.
            for (FieldFact& ff : f.fields) ff.unique = false;
          }
        }
        // Wrapping: I tokens (input nodes) + i nodes for every tuple.
        CardInterval c = f.card.total;
        double c_est = f.est;
        if (is_input_node) {
          cx.em.nodes += c;  // "I" tokens
          cx.em.est_nodes += c_est;
          size_t prefix = StrCat("I", exec < 0 ? 0 : exec, ".", node_id, ".",
                                 rel, "[")
                              .size();
          cx.em.interned_strings += c;
          cx.em.interned_chars += TokenChars(prefix, c);
        }
        cx.em.nodes += c;  // "i" wrappers
        cx.em.edges += c * CardInterval::Exact(2);
        cx.em.input_nodes += c;
        cx.em.est_nodes += c_est;
        cx.em.est_edges += 2 * c_est;
        cx.facts[rel] = std::move(f);
      }

      // Bind state.
      auto& inst_state = (*state)[node->instance];
      for (auto& [rel, f] : inst_state) {
        cx.state_card[rel] = f.card.total;
        RelationFacts bound = f;
        bound.card.state.clear();
        bound.card.state[rel] = f.card.total;
        if (exec == 0) {
          // Initial tuples have never been annotated: base tokens.
          CardInterval c = f.card.total;
          cx.em.nodes += c;
          cx.em.est_nodes += EstOf(c, f.est);
          size_t prefix =
              StrCat(node->instance, ".", rel, "[").size();
          cx.em.interned_strings += c;
          cx.em.interned_chars += TokenChars(prefix, c);
        }
        cx.facts[rel] = std::move(bound);
      }

      // Seed the schema environment with empty relations.
      for (const auto& [rel, f] : cx.facts) {
        if (f.schema != nullptr) {
          cx.schema_env.Bind(rel, Relation(rel, f.schema));
        }
      }

      for (const pig::Program* prog : {&spec->qstate, &spec->qout}) {
        for (const Statement& stmt : prog->statements) {
          TransferStatement(cx, stmt);
        }
      }

      // Persist state facts.
      for (auto& [rel, f] : inst_state) {
        auto it = cx.facts.find(rel);
        if (it != cx.facts.end()) {
          f = it->second;
          f.card.state.clear();
        }
      }

      // Wrap outputs.
      NodeRound round;
      for (const auto& [rel, schema] : spec->output_schemas) {
        RelationFacts f = cx.GetFacts(rel);
        CardInterval c = f.card.total;
        cx.em.nodes += c;
        cx.em.edges += c * CardInterval::Exact(2);
        cx.em.output_nodes += c;
        cx.em.est_nodes += f.est;
        cx.em.est_edges += 2 * f.est;
        f.card.state.clear();
        round.outputs[rel] = std::move(f);
      }
      round.em = cx.em;

      if (merged != nullptr) {
        auto& dst = (*merged)[node_id];
        for (const auto& [rel, f] : cx.facts) {
          auto [it, fresh] = dst.try_emplace(rel, f);
          if (!fresh) {
            RelationFacts& m = it->second;
            m.card = m.card.Join(f.card);
            m.est = std::max(m.est, f.est);
            if (m.schema == nullptr) m.schema = f.schema;
            if (m.fields.size() < f.fields.size()) {
              m.fields.resize(f.fields.size());
            }
            for (size_t i = 0; i < f.fields.size(); ++i) {
              m.fields[i].nullable |= f.fields[i].nullable;
              m.fields[i].unique &= f.fields[i].unique;
            }
            for (const auto& [idx, bag] : f.bags) {
              auto bit = m.bags.find(idx);
              if (bit == m.bags.end()) {
                m.bags[idx] = bag;
              } else {
                bit->second.members = bit->second.members.Join(bag.members);
                bit->second.est = std::max(bit->second.est, bag.est);
                bit->second.min_one &= bag.min_one;
              }
            }
            for (const auto& [name, loc] : f.pruned) m.pruned[name] = loc;
          }
        }
      }
      rounds[node_id] = std::move(round);
    }
    return rounds;
  }

 private:
  const Workflow& wf_;
  const AnalyzeOptions& opt_;
  const std::vector<std::string>& topo_;
  std::set<std::string>* static_names_;
};

bool StateEquals(const IntervalDriver::StateFacts& a,
                 const IntervalDriver::StateFacts& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [inst, rels] : a) {
    auto it = b.find(inst);
    if (it == b.end() || it->second.size() != rels.size()) return false;
    for (const auto& [rel, f] : rels) {
      auto rit = it->second.find(rel);
      if (rit == it->second.end()) return false;
      if (!(f.card.total == rit->second.card.total)) return false;
      for (const auto& [idx, bag] : f.bags) {
        auto bit = rit->second.bags.find(idx);
        if (bit == rit->second.bags.end() ||
            !(bag.members.total == bit->second.members.total)) {
          return false;
        }
      }
    }
  }
  return true;
}

/// Joins `next` into `cur`, widening intervals that are still growing to
/// infinity so the state fixpoint always terminates.
void JoinState(IntervalDriver::StateFacts* cur,
               const IntervalDriver::StateFacts& next, bool widen) {
  for (auto& [inst, rels] : *cur) {
    auto nit = next.find(inst);
    if (nit == next.end()) continue;
    for (auto& [rel, f] : rels) {
      auto rit = nit->second.find(rel);
      if (rit == nit->second.end()) continue;
      const RelationFacts& nf = rit->second;
      CardInterval joined = f.card.total.Join(nf.card.total);
      if (widen && !(joined == f.card.total)) joined.hi = kCardInf;
      f.card.total = joined;
      f.est = std::max(f.est, nf.est);
      if (f.schema == nullptr) f.schema = nf.schema;
      for (const auto& [idx, bag] : nf.bags) {
        auto bit = f.bags.find(idx);
        if (bit == f.bags.end()) {
          f.bags[idx] = bag;
        } else {
          CardInterval bj = bit->second.members.total.Join(bag.members.total);
          if (widen && !(bj == bit->second.members.total)) bj.hi = kCardInf;
          bit->second.members.total = bj;
          bit->second.min_one &= bag.min_one;
        }
      }
    }
  }
}

void RunDeletionPass(const Workflow& wf, const WorkflowFacts& facts,
                     const std::string& file, WorkflowFacts* out,
                     DiagnosticSink* sink) {
  // Taint summaries are computed per (node, source relation) on demand.
  auto node_facts = [&facts](const std::string& node_id)
      -> const std::map<std::string, RelationFacts>& {
    static const std::map<std::string, RelationFacts> kEmpty;
    auto it = facts.relations.find(node_id);
    return it == facts.relations.end() ? kEmpty : it->second;
  };

  for (const std::string& input_node : wf.InputNodes()) {
    const WorkflowNode* node = *wf.FindNode(input_node);
    const ModuleSpec* spec = *wf.FindModule(node->module);
    for (const auto& [input_rel, schema] : spec->input_schemas) {
      DeletionFact fact;
      fact.node_id = input_node;
      fact.relation = input_rel;
      fact.loc = node->loc;

      // BFS over (node, tainted module-input relation).
      std::set<std::pair<std::string, std::string>> seen;
      std::vector<std::pair<std::string, std::string>> frontier{
          {input_node, input_rel}};
      while (!frontier.empty() && !fact.amplifying) {
        auto [nid, rel] = frontier.back();
        frontier.pop_back();
        if (!seen.insert({nid, rel}).second) continue;
        const WorkflowNode* n = *wf.FindNode(nid);
        const ModuleSpec* sp = *wf.FindModule(n->module);
        TaintResult t = TaintModule(*sp, rel, node_facts(nid));
        if (!t.bounded) {
          fact.amplifying = true;
          fact.reason = StrCat(t.site, " in module '", sp->name, "'");
          fact.loc = t.loc;
          break;
        }
        for (const std::string& srel : t.state) {
          fact.reaches_state = true;
          // A tuple parked in state is consumed (or re-exported) afresh by
          // every later execution: unbounded fan-out over the execution
          // sequence.
          TaintResult st = TaintModule(*sp, srel, node_facts(nid));
          if (st.consumed || !st.outputs.empty()) {
            fact.amplifying = true;
            fact.reason = StrCat("state accumulation in '", n->instance, ".",
                                 srel, "' (used by every later execution)");
            fact.loc = n->loc;
            break;
          }
        }
        if (fact.amplifying) break;
        for (const std::string& orel : t.outputs) {
          for (const WorkflowEdge* e : wf.OutgoingEdges(nid)) {
            for (const EdgeRelation& er : e->relations) {
              if (er.from_relation == orel) {
                frontier.push_back({e->to, er.to_relation});
              }
            }
          }
        }
      }
      if (fact.amplifying && sink != nullptr) {
        Diagnostic d{"D0408", Severity::kNote, fact.loc,
                     StrCat("deleting a tuple of input '", input_node, ".",
                            input_rel, "' propagates without bound: ",
                            fact.reason),
                     "deletion propagation (Definition 4.2) may cascade "
                     "through · and ⊗ nodes; budget reruns accordingly",
                     file};
        sink->Report(std::move(d));
      }
      out->deletion.push_back(std::move(fact));
    }
  }
}

}  // namespace

/// --------------------- concrete (value-domain) replay ------------------

namespace {

/// Replays the executor's invocation protocol (executor.cc NodeRun::Run)
/// against a scratch provenance graph, using the real interpreter — the
/// value domain of the abstract interpretation, where every transfer
/// function is the concrete semantics and the predicted emission is exact.
class ConcreteReplay {
 public:
  ConcreteReplay(const Workflow& wf, const AnalyzeOptions& opt,
                 const std::vector<std::string>& topo)
      : wf_(wf), opt_(opt), topo_(topo) {}

  Status Run(WorkflowFacts* out) {
    // Materialize state like WorkflowExecutor::Initialize.
    for (const WorkflowNode& n : wf_.nodes()) {
      auto& inst = state_[n.instance];
      const ModuleSpec* spec = *wf_.FindModule(n.module);
      for (const auto& [rel, schema] : spec->state_schemas) {
        if (inst[rel].schema == nullptr) inst[rel] = Relation(rel, schema);
      }
    }
    for (const auto& [instance, rels] : opt_.initial_state) {
      auto it = state_.find(instance);
      if (it == state_.end()) {
        return Status::NotFound(
            StrCat("initial state for unknown instance '", instance, "'"));
      }
      for (const auto& [rel, bag] : rels) {
        auto rit = it->second.find(rel);
        if (rit == it->second.end()) {
          return Status::NotFound(StrCat("instance '", instance,
                                         "' has no state relation '", rel,
                                         "'"));
        }
        rit->second.bag = bag;
      }
    }

    for (int e = 0; e < opt_.executions; ++e) {
      std::map<std::string, std::map<std::string, Relation>> outputs;
      for (const std::string& node_id : topo_) {
        LIPSTICK_RETURN_IF_ERROR(RunNode(node_id, e, &outputs, out));
      }
    }
    scratch_.Seal();
    Harvest(out);
    return Status::OK();
  }

 private:
  Status RunNode(
      const std::string& node_id, int exec,
      std::map<std::string, std::map<std::string, Relation>>* outputs,
      WorkflowFacts* out) {
    const WorkflowNode* node = *wf_.FindNode(node_id);
    const ModuleSpec* spec = *wf_.FindModule(node->module);
    ShardWriter writer = scratch_.writer();

    uint32_t inv = writer.BeginInvocation(spec->name, node->instance,
                                          static_cast<uint32_t>(exec));
    writer.set_current_invocation(inv);
    inv_meta_.push_back({node_id, spec->name, node->instance, exec});

    pig::Environment env;
    bool is_input_node = wf_.IncomingEdges(node_id).empty();

    // Union the bags arriving over in-edges (executor GatherEdgeInputs).
    std::map<std::string, Bag> edge_inputs;
    for (const WorkflowEdge* e : wf_.IncomingEdges(node_id)) {
      auto from_it = outputs->find(e->from);
      if (from_it == outputs->end()) continue;
      for (const EdgeRelation& rel : e->relations) {
        auto rel_it = from_it->second.find(rel.from_relation);
        if (rel_it == from_it->second.end()) continue;
        Bag& dst = edge_inputs[rel.to_relation];
        for (const AnnotatedTuple& t : rel_it->second.bag) dst.Add(t);
      }
    }

    // Bind inputs with "I" tokens / "i" wrappers.
    for (const auto& [rel_name, schema] : spec->input_schemas) {
      Bag bag;
      const Bag* source = nullptr;
      if (is_input_node) {
        auto node_it = opt_.inputs.find(node_id);
        if (node_it != opt_.inputs.end()) {
          auto rel_it = node_it->second.find(rel_name);
          if (rel_it != node_it->second.end()) source = &rel_it->second;
        }
      } else {
        auto it = edge_inputs.find(rel_name);
        if (it != edge_inputs.end()) source = &it->second;
      }
      if (source != nullptr) {
        bag.Reserve(source->size());
        size_t i = 0;
        for (const AnnotatedTuple& t : *source) {
          NodeId base = t.annot;
          if (is_input_node || base == kNoProvenance) {
            base = writer.WorkflowInput(StrCat("I", exec, ".", node_id, ".",
                                               rel_name, "[", i, "]"));
            // "I" tokens are created untagged (graph.cc WorkflowInput);
            // remember the owner so Harvest can attribute them.
            untagged_owner_[base] = inv;
          }
          bag.Add(t.tuple, writer.ModuleInput(inv, base));
          ++i;
        }
      }
      env.Bind(rel_name, Relation(rel_name, schema, std::move(bag)));
    }

    // Bind state; unannotated tuples get one-time base tokens.
    std::unordered_set<NodeId> state_eligible;
    auto& inst_state = state_[node->instance];
    for (auto& [rel_name, rel] : inst_state) {
      Bag rebuilt;
      rebuilt.Reserve(rel.bag.size());
      size_t i = 0;
      for (const AnnotatedTuple& t : rel.bag) {
        ProvAnnotation annot = t.annot;
        if (annot == kNoProvenance) {
          annot = writer.Token(StrCat(node->instance, ".", rel_name, "[", i,
                                      "]"),
                               NodeRole::kStateBase);
        }
        state_eligible.insert(annot);
        rebuilt.Add(t.tuple, annot);
        ++i;
      }
      rel.bag = std::move(rebuilt);
      env.Bind(rel_name, rel);
    }
    writer.BeginStateScope(inv, &state_eligible);

    pig::Interpreter interp(opt_.udfs);
    Status status = interp.Run(spec->qstate, &env, &writer);
    if (status.ok()) status = interp.Run(spec->qout, &env, &writer);
    writer.EndStateScope();
    if (!status.ok()) {
      return status.WithContext(StrCat("analysis replay of node ", node_id,
                                       " (execution ", exec, ")"));
    }

    // Record exact relation cardinalities for the facts table.
    for (const auto& [rel_name, rel] : env.relations()) {
      RecordFact(out, node_id, rel_name, rel);
    }

    for (auto& [rel_name, rel] : inst_state) {
      Result<const Relation*> bound = env.Lookup(rel_name);
      if (bound.ok()) rel.bag = bound.value()->bag;
    }

    std::map<std::string, Relation>& node_out = (*outputs)[node_id];
    for (const auto& [rel_name, schema] : spec->output_schemas) {
      Result<const Relation*> bound = env.Lookup(rel_name);
      if (!bound.ok()) {
        return Status::ExecutionError(
            StrCat("analysis replay: node ", node_id,
                   ": Qout did not bind output '", rel_name, "'"));
      }
      Relation rel(rel_name, schema);
      rel.bag.Reserve(bound.value()->bag.size());
      for (const AnnotatedTuple& t : bound.value()->bag) {
        rel.bag.Add(t.tuple, writer.ModuleOutput(inv, t.annot));
      }
      node_out[rel_name] = std::move(rel);
    }
    return Status::OK();
  }

  void RecordFact(WorkflowFacts* out, const std::string& node_id,
                  const std::string& rel_name, const Relation& rel) {
    RelationFacts& f = out->relations[node_id][rel_name];
    CardInterval sz = CardInterval::Exact(rel.bag.size());
    auto key = std::make_pair(node_id, rel_name);
    if (observed_.insert(key).second) {
      f.card.total = sz;
    } else {
      f.card.total = f.card.total.Join(sz);
    }
    f.card.state.clear();
    f.est = static_cast<double>(rel.bag.size());
    if (f.schema == nullptr) f.schema = rel.schema;
  }

  /// Converts the scratch graph into exact per-invocation emissions.
  void Harvest(WorkflowFacts* out) {
    out->invocations.clear();
    const auto& invs = scratch_.invocations();
    std::vector<Emission> per_inv(invs.size());
    std::unordered_map<NodeId, size_t> m_nodes;
    for (size_t i = 0; i < invs.size(); ++i) {
      m_nodes[invs[i].m_node] = i;
      per_inv[i].input_nodes =
          CardInterval::Exact(invs[i].input_nodes.size());
      per_inv[i].output_nodes =
          CardInterval::Exact(invs[i].output_nodes.size());
      per_inv[i].state_nodes =
          CardInterval::Exact(invs[i].state_nodes.size());
    }
    scratch_.ForEachNode([&](NodeId id) {
      NodeView n = scratch_.node(id);
      uint32_t inv = n.invocation();
      if (inv == kNoInvocation) {
        // "m" nodes and "I" tokens are created untagged; attribute them
        // via the invocation registry / the replay's ownership map.
        auto it = m_nodes.find(id);
        if (it != m_nodes.end()) {
          inv = static_cast<uint32_t>(it->second);
        } else {
          auto ut = untagged_owner_.find(id);
          if (ut == untagged_owner_.end()) return;
          inv = ut->second;
        }
      }
      if (inv >= per_inv.size()) return;
      Emission& em = per_inv[inv];
      std::span<const NodeId> parents = scratch_.ParentsOf(id);
      em.nodes += CardInterval::Exact(1);
      em.edges += CardInterval::Exact(parents.size());
      em.est_nodes += 1;
      em.est_edges += static_cast<double>(parents.size());
      if (parents.size() > internal::kInlineParents) {
        em.wide_nodes += CardInterval::Exact(1);
        em.wide_edges += CardInterval::Exact(parents.size());
      }
      if (n.is_value_node() && !n.value().is_null()) {
        em.values += CardInterval::Exact(1);
      }
    });
    for (size_t i = 0; i < invs.size() && i < inv_meta_.size(); ++i) {
      InvocationProfile p;
      p.node_id = inv_meta_[i].node_id;
      p.module = inv_meta_[i].module;
      p.instance = inv_meta_[i].instance;
      p.execution = inv_meta_[i].execution;
      p.emission = per_inv[i];
      out->invocations.push_back(std::move(p));
    }
    // Interner totals are global (payloads dedup across invocations).
    Emission shared;
    const StringPool& pool = scratch_.strings();
    uint64_t chars = 0;
    for (size_t i = 1; i < pool.size(); ++i) {
      chars += pool.Get(static_cast<StrId>(i)).size();
    }
    shared.interned_strings = CardInterval::Exact(pool.size() - 1);
    shared.interned_chars = CardInterval::Exact(chars);
    out->shared = shared;
    out->concrete = true;
  }

  struct InvMeta {
    std::string node_id, module, instance;
    int execution;
  };

  const Workflow& wf_;
  const AnalyzeOptions& opt_;
  const std::vector<std::string>& topo_;
  ProvenanceGraph scratch_;
  std::map<std::string, std::map<std::string, Relation>> state_;
  std::vector<InvMeta> inv_meta_;
  std::set<std::pair<std::string, std::string>> observed_;
  /// Untagged nodes ("I" tokens) -> owning invocation, for Harvest.
  std::unordered_map<NodeId, uint32_t> untagged_owner_;
};

}  // namespace

Result<WorkflowFacts> AnalyzeDataflow(const Workflow& workflow,
                                      const AnalyzeOptions& options,
                                      DiagnosticSink* sink) {
  LIPSTICK_RETURN_IF_ERROR(workflow.Validate(options.udfs));
  LIPSTICK_ASSIGN_OR_RETURN(std::vector<std::string> topo,
                            workflow.TopologicalOrder());

  WorkflowFacts facts;
  facts.executions = std::max(1, options.executions);
  AnalyzeOptions opt = options;
  opt.executions = facts.executions;

  std::set<std::string> static_names;
  IntervalDriver driver(workflow, opt, topo, &static_names);

  // Per-execution interval profiles (state accumulates across rounds).
  {
    auto state = driver.InitialState();
    for (int e = 0; e < facts.executions; ++e) {
      auto rounds = driver.RunRound(&state, e, nullptr, "", &facts.relations);
      for (const std::string& node_id : topo) {
        const WorkflowNode* node = *workflow.FindNode(node_id);
        InvocationProfile p;
        p.node_id = node_id;
        p.module = node->module;
        p.instance = node->instance;
        p.execution = e;
        p.emission = rounds[node_id].em;
        facts.invocations.push_back(std::move(p));
      }
    }
  }

  // Fixpoint over an unbounded execution sequence: diagnostics and the
  // deletion pass must hold for any number of executions, not just the
  // modeled ones (state is empty on round one but grows later).
  {
    auto state = driver.InitialState();
    for (int round = 0; round < 12; ++round) {
      auto prev = state;
      driver.RunRound(&state, -1, nullptr, "", nullptr);
      JoinState(&state, prev, /*widen=*/round >= 3);
      if (StateEquals(prev, state)) break;
    }
    // One diagnostic round over the fixpoint state; also merge its facts
    // so reported relations reflect all reachable executions.
    driver.RunRound(&state, -1, sink, "", &facts.relations);
  }

  if (sink != nullptr) {
    std::set<std::string> checked;
    for (const WorkflowNode& n : workflow.nodes()) {
      if (checked.insert(n.module).second) {
        const ModuleSpec* spec = *workflow.FindModule(n.module);
        CheckDeadRelations(*spec, "", sink);
      }
    }
  }

  RunDeletionPass(workflow, facts, "", &facts, sink);

  // Shared interned statics (module/instance/op names, one intern each).
  {
    uint64_t chars = 0;
    for (const std::string& s : static_names) chars += s.size();
    facts.shared.interned_strings =
        CardInterval::Exact(static_names.size());
    facts.shared.interned_chars = CardInterval::Exact(chars);
  }

  // Concrete refinement: with sample inputs the value domain collapses
  // every interval to a point.
  if (!opt.inputs.empty() && !opt.force_interval) {
    ConcreteReplay replay(workflow, opt, topo);
    Status status = replay.Run(&facts);
    if (!status.ok()) {
      facts.notes.push_back(StrCat("concrete replay unavailable: ",
                                   status.message(),
                                   " — falling back to interval bounds"));
    }
  }
  return facts;
}

}  // namespace lipstick::analysis

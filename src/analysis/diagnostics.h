#ifndef LIPSTICK_ANALYSIS_DIAGNOSTICS_H_
#define LIPSTICK_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/source_loc.h"

namespace lipstick::analysis {

/// How bad a diagnostic is. kNote is informational (does not fail a lint
/// gate); kWarning flags something suspicious but executable; kError means
/// the artifact is wrong and will misbehave or be rejected at runtime.
enum class Severity : uint8_t { kNote, kWarning, kError };

const char* SeverityToString(Severity severity);

/// One finding of an analyzer. `code` is a stable identifier from the
/// registry below (e.g. "L0103"); messages may change between versions,
/// codes never do — tests and suppression lists key on them.
///
/// Code ranges:
///   L01xx  Pig Latin linter        (analysis/pig_linter.h)
///   W02xx  workflow linter         (analysis/workflow_linter.h)
///   G03xx  provenance-graph validator (analysis/graph_validator.h)
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kError;
  SourceLoc loc;        // invalid ({0,0}) for artifacts without source text
  std::string message;
  std::string note;     // optional secondary line (context, fix hint)
  std::string file;     // source file; empty -> the renderer's `file` param
};

/// Collects diagnostics from one or more analyzer passes over the same
/// artifact and renders them for humans (text) or tools (JSON lines).
class DiagnosticSink {
 public:
  void Report(Diagnostic diag) { diags_.push_back(std::move(diag)); }
  void Report(std::string code, Severity severity, SourceLoc loc,
              std::string message, std::string note = "") {
    diags_.push_back(Diagnostic{std::move(code), severity, loc,
                                std::move(message), std::move(note), {}});
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }

  size_t CountAtLeast(Severity severity) const;
  bool HasErrors() const { return CountAtLeast(Severity::kError) > 0; }

  /// First diagnostic with `code`, or nullptr.
  const Diagnostic* Find(std::string_view code) const;
  bool Has(std::string_view code) const { return Find(code) != nullptr; }

  /// Orders diagnostics by (file, line, column, code), stable for ties.
  /// Analyzer passes append in discovery order. Rendering sorts internally,
  /// so calling this is optional — it only affects diagnostics() order.
  void Sort();

  /// Human-readable rendering, one finding per line:
  ///   file:line:col: severity: message [code]
  ///       note: ...
  /// `file` prefixes each line when non-empty (a diagnostic's own `file`
  /// wins over the parameter). Output is byte-stable: findings render in
  /// (file, line, column, code) order regardless of emission order.
  std::string RenderText(const std::string& file = "") const;

  /// Machine-readable rendering: a JSON array of objects with keys
  /// code/severity/file/line/column/message/note (note omitted when empty).
  /// Sorted like RenderText, so output is byte-stable across runs.
  std::string RenderJson(const std::string& file = "") const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace lipstick::analysis

#endif  // LIPSTICK_ANALYSIS_DIAGNOSTICS_H_

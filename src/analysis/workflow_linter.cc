#include "analysis/workflow_linter.h"

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/pig_linter.h"
#include "common/str_util.h"

namespace lipstick::analysis {

namespace {

class WorkflowLinter {
 public:
  WorkflowLinter(const Workflow& workflow, const pig::UdfRegistry* udfs,
                 DiagnosticSink* sink)
      : wf_(workflow), udfs_(udfs), sink_(sink) {}

  void Run() {
    if (wf_.nodes().empty()) {
      sink_->Report("W0210", Severity::kError, SourceLoc{},
                    "workflow has no nodes");
      return;
    }
    CheckNodesAndInstances();
    CheckModules();
    CheckEdges();
    CheckInputCoverage();
    CheckDanglingOutputs();
    CheckAcyclicity();
    CheckConnectivity();
  }

 private:
  void Error(const char* code, SourceLoc loc, std::string message,
             std::string note = "") {
    sink_->Report(code, Severity::kError, loc, std::move(message),
                  std::move(note));
  }
  void Warn(const char* code, SourceLoc loc, std::string message,
            std::string note = "") {
    sink_->Report(code, Severity::kWarning, loc, std::move(message),
                  std::move(note));
  }

  /// Module spec for a node, or nullptr (after a W0201 was reported).
  const ModuleSpec* SpecOf(const WorkflowNode& node) const {
    auto spec = wf_.FindModule(node.module);
    return spec.ok() ? *spec : nullptr;
  }

  void CheckNodesAndInstances() {
    std::map<std::string, const WorkflowNode*> instance_owner;
    for (const WorkflowNode& node : wf_.nodes()) {
      if (!wf_.FindModule(node.module).ok()) {
        Error("W0201", node.loc,
              StrCat("node '", node.id, "' references unknown module '",
                     node.module, "'"));
      } else {
        used_modules_.insert(node.module);
      }
      auto [it, inserted] = instance_owner.emplace(node.instance, &node);
      if (!inserted && it->second->module != node.module) {
        Error("W0208", node.loc,
              StrCat("instance '", node.instance, "' is bound to modules '",
                     it->second->module, "' and '", node.module, "'"),
              StrCat("first bound at node '", it->second->id, "' (",
                     it->second->loc.ToString(), ")"));
      }
    }
  }

  void CheckModules() {
    for (const auto& [name, spec] : ModuleMap()) {
      if (!used_modules_.count(name)) {
        Warn("W0207", spec->loc,
             StrCat("module '", name, "' is never instantiated by a node"));
      }
      LintModule(*spec);
    }
  }

  /// Name -> spec map over the registered modules (the Workflow API only
  /// exposes per-name lookup, so walk the nodes plus a probe of declared
  /// names captured through FindModule on node labels — supplemented by
  /// the DSL, which registers modules before nodes).
  std::map<std::string, const ModuleSpec*> ModuleMap() const {
    std::map<std::string, const ModuleSpec*> out;
    for (const std::string& name : wf_.ModuleNames()) {
      auto spec = wf_.FindModule(name);
      if (spec.ok()) out.emplace(name, *spec);
    }
    return out;
  }

  void LintModule(const ModuleSpec& spec) {
    std::string prefix = StrCat("module ", spec.name, " ");
    PigLintOptions options;
    options.udfs = udfs_;
    for (const auto& [name, schema] : spec.input_schemas) {
      options.env.emplace(name, schema);
    }
    for (const auto& [name, schema] : spec.state_schemas) {
      options.env.emplace(name, schema);
    }

    size_t before_errors = sink_->CountAtLeast(Severity::kError);

    // Qstate: the final binding of each state name becomes the new state;
    // state names it leaves untouched keep their previous instances.
    options.context = prefix + "qstate: ";
    options.required_outputs.clear();
    for (const auto& [name, schema] : spec.state_schemas) {
      options.required_outputs.insert(name);
    }
    LintProgram(spec.qstate, options, sink_);

    std::set<std::string> qstate_targets;
    for (const pig::Statement& stmt : spec.qstate.statements) {
      if (stmt.kind == pig::StatementKind::kSplit) {
        for (const auto& [name, cond] : stmt.split_targets) {
          qstate_targets.insert(name);
        }
      } else {
        qstate_targets.insert(stmt.target);
      }
    }
    for (const auto& [name, schema] : spec.state_schemas) {
      if (!qstate_targets.count(name)) {
        sink_->Report(
            "W0209", Severity::kNote,
            spec.qstate_loc.valid() ? spec.qstate_loc : spec.loc,
            StrCat(prefix, "state relation '", name,
                   "' is never rebound by qstate"),
            "read-only state is legal but never changes between executions");
      }
    }

    // Qout must bind every output relation.
    options.context = prefix + "qout: ";
    options.required_outputs.clear();
    for (const auto& [name, schema] : spec.output_schemas) {
      options.required_outputs.insert(name);
    }
    LintProgram(spec.qout, options, sink_);

    std::set<std::string> qout_targets;
    for (const pig::Statement& stmt : spec.qout.statements) {
      if (stmt.kind == pig::StatementKind::kSplit) {
        for (const auto& [name, cond] : stmt.split_targets) {
          qout_targets.insert(name);
        }
      } else {
        qout_targets.insert(stmt.target);
      }
    }
    for (const auto& [name, schema] : spec.output_schemas) {
      if (!qout_targets.count(name)) {
        Error("W0210",
              spec.qout_loc.valid() ? spec.qout_loc : spec.loc,
              StrCat(prefix, "qout never binds output relation '", name,
                     "'"));
      }
    }

    // Residual spec-level problems the linter passes above do not model
    // (e.g. a state rebind whose schema drifts from the declaration):
    // fall back to the engine's own validation, suppressed when a more
    // specific diagnostic already fired for this module.
    if (sink_->CountAtLeast(Severity::kError) == before_errors) {
      Status status = spec.Validate(udfs_);
      if (!status.ok()) {
        Error("W0210", spec.loc,
              StrCat("module ", spec.name, " rejected: ", status.message()));
      }
    }
  }

  void CheckEdges() {
    for (const WorkflowEdge& edge : wf_.edges()) {
      auto from = wf_.FindNode(edge.from);
      auto to = wf_.FindNode(edge.to);
      if (!from.ok()) {
        Error("W0203", edge.loc,
              StrCat("edge references unknown node '", edge.from, "'"));
      }
      if (!to.ok()) {
        Error("W0203", edge.loc,
              StrCat("edge references unknown node '", edge.to, "'"));
      }
      if (!from.ok() || !to.ok()) continue;
      const ModuleSpec* from_spec = SpecOf(**from);
      const ModuleSpec* to_spec = SpecOf(**to);
      for (const EdgeRelation& rel : edge.relations) {
        const SchemaPtr* out_schema = nullptr;
        const SchemaPtr* in_schema = nullptr;
        if (from_spec != nullptr) {
          auto it = from_spec->output_schemas.find(rel.from_relation);
          if (it == from_spec->output_schemas.end()) {
            Error("W0203", edge.loc,
                  StrCat("edge ", edge.from, "->", edge.to, ": '",
                         rel.from_relation, "' is not an output of module ",
                         from_spec->name));
          } else {
            out_schema = &it->second;
          }
        }
        if (to_spec != nullptr) {
          auto it = to_spec->input_schemas.find(rel.to_relation);
          if (it == to_spec->input_schemas.end()) {
            Error("W0203", edge.loc,
                  StrCat("edge ", edge.from, "->", edge.to, ": '",
                         rel.to_relation, "' is not an input of module ",
                         to_spec->name));
          } else {
            in_schema = &it->second;
          }
        }
        if (out_schema != nullptr && in_schema != nullptr &&
            !(*out_schema)->EqualsIgnoreNames(**in_schema)) {
          Error("W0204", edge.loc,
                StrCat("edge ", edge.from, "->", edge.to,
                       ": schema mismatch on ", rel.from_relation, " -> ",
                       rel.to_relation),
                StrCat((*out_schema)->ToString(), " vs ",
                       (*in_schema)->ToString()));
        }
      }
    }
  }

  void CheckInputCoverage() {
    for (const WorkflowNode& node : wf_.nodes()) {
      std::vector<const WorkflowEdge*> incoming = wf_.IncomingEdges(node.id);
      if (incoming.empty()) continue;  // In node: fed externally
      const ModuleSpec* spec = SpecOf(node);
      if (spec == nullptr) continue;
      for (const auto& [in_name, schema] : spec->input_schemas) {
        bool covered = false;
        for (const WorkflowEdge* edge : incoming) {
          for (const EdgeRelation& rel : edge->relations) {
            covered = covered || rel.to_relation == in_name;
          }
        }
        if (!covered) {
          Error("W0205", node.loc,
                StrCat("node '", node.id, "': input relation '", in_name,
                       "' is not fed by any incoming edge"),
                "every input of a non-In node must be covered "
                "(Definition 2.2)");
        }
      }
    }
  }

  void CheckDanglingOutputs() {
    for (const WorkflowNode& node : wf_.nodes()) {
      std::vector<const WorkflowEdge*> outgoing = wf_.OutgoingEdges(node.id);
      if (outgoing.empty()) continue;  // Out node: outputs read externally
      const ModuleSpec* spec = SpecOf(node);
      if (spec == nullptr) continue;
      for (const auto& [out_name, schema] : spec->output_schemas) {
        bool routed = false;
        for (const WorkflowEdge* edge : outgoing) {
          for (const EdgeRelation& rel : edge->relations) {
            routed = routed || rel.from_relation == out_name;
          }
        }
        if (!routed) {
          Warn("W0206", node.loc,
               StrCat("node '", node.id, "': output relation '", out_name,
                      "' is not routed to any successor"),
               "its tuples are computed and then dropped");
        }
      }
    }
  }

  void CheckAcyclicity() {
    std::map<std::string, int> in_degree;
    for (const WorkflowNode& node : wf_.nodes()) in_degree[node.id] = 0;
    for (const WorkflowEdge& edge : wf_.edges()) {
      if (in_degree.count(edge.to) && in_degree.count(edge.from)) {
        ++in_degree[edge.to];
      }
    }
    std::deque<std::string> ready;
    for (const auto& [id, deg] : in_degree) {
      if (deg == 0) ready.push_back(id);
    }
    size_t ordered = 0;
    while (!ready.empty()) {
      std::string id = ready.front();
      ready.pop_front();
      ++ordered;
      for (const WorkflowEdge* edge : wf_.OutgoingEdges(id)) {
        auto it = in_degree.find(edge->to);
        if (it != in_degree.end() && --it->second == 0) {
          ready.push_back(edge->to);
        }
      }
    }
    if (ordered == wf_.nodes().size()) return;
    std::vector<std::string> in_cycle;
    for (const auto& [id, deg] : in_degree) {
      if (deg > 0) in_cycle.push_back(id);
    }
    SourceLoc loc;
    for (const WorkflowEdge& edge : wf_.edges()) {
      bool from_in = in_degree.count(edge.from) && in_degree[edge.from] > 0;
      bool to_in = in_degree.count(edge.to) && in_degree[edge.to] > 0;
      if (from_in && to_in) {
        loc = edge.loc;
        break;
      }
    }
    Error("W0202", loc, "workflow graph contains a cycle",
          StrCat("nodes on cycles: ", Join(in_cycle, ", "),
                 "; unfold bounded loops into chains (Definition 2.2)"));
  }

  void CheckConnectivity() {
    if (wf_.nodes().size() < 2) return;
    std::map<std::string, std::vector<std::string>> undirected;
    for (const WorkflowEdge& edge : wf_.edges()) {
      undirected[edge.from].push_back(edge.to);
      undirected[edge.to].push_back(edge.from);
    }
    std::set<std::string> seen{wf_.nodes()[0].id};
    std::deque<std::string> queue{wf_.nodes()[0].id};
    while (!queue.empty()) {
      std::string id = queue.front();
      queue.pop_front();
      for (const std::string& next : undirected[id]) {
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
    if (seen.size() >= wf_.nodes().size()) return;
    for (const WorkflowNode& node : wf_.nodes()) {
      if (!seen.count(node.id)) {
        Error("W0211", node.loc,
              StrCat("node '", node.id, "' is disconnected from the rest "
                     "of the workflow"),
              "Definition 2.2 requires a connected DAG");
      }
    }
  }

  const Workflow& wf_;
  const pig::UdfRegistry* udfs_;
  DiagnosticSink* sink_;
  std::set<std::string> used_modules_;
};

}  // namespace

void LintWorkflow(const Workflow& workflow, const pig::UdfRegistry* udfs,
                  DiagnosticSink* sink) {
  WorkflowLinter(workflow, udfs, sink).Run();
}

}  // namespace lipstick::analysis

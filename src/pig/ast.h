#ifndef LIPSTICK_PIG_AST_H_
#define LIPSTICK_PIG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/source_loc.h"
#include "relational/value.h"

namespace lipstick::pig {

/// Source location for diagnostics (1-based line/column); shared with the
/// workflow DSL and the analysis layer.
using ::lipstick::SourceLoc;

/// ----------------------------- Expressions -----------------------------

enum class ExprKind {
  kConst,       // literal: int / double / string / bool / null
  kFieldRef,    // named field reference, possibly "A::f" qualified
  kPositional,  // $n positional field reference
  kBagProject,  // Bag.f — projects one field over a bag-valued field
  kUnaryOp,     // - e | NOT e
  kBinaryOp,    // arithmetic / comparison / logical
  kFuncCall,    // aggregate (COUNT/SUM/MIN/MAX/AVG) or UDF
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp { kNeg, kNot, kIsNull, kIsNotNull };

const char* BinOpToString(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // kConst
  Value literal;
  // kFieldRef: field name; kBagProject: bag field name + projected field;
  // kFuncCall: function name.
  std::string name;
  std::string sub_name;  // kBagProject projected field
  // kPositional
  int position = -1;
  // kUnaryOp / kBinaryOp
  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;
  // Children: operands / call arguments.
  std::vector<ExprPtr> children;

  std::string ToString() const;
};

ExprPtr MakeConst(Value v, SourceLoc loc = {});
ExprPtr MakeFieldRef(std::string name, SourceLoc loc = {});
ExprPtr MakePositional(int pos, SourceLoc loc = {});
ExprPtr MakeBagProject(std::string bag, std::string field, SourceLoc loc = {});
ExprPtr MakeUnary(UnOp op, ExprPtr operand, SourceLoc loc = {});
ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc = {});
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args,
                     SourceLoc loc = {});

/// ----------------------------- Statements ------------------------------

enum class StatementKind {
  kForEach,   // FOREACH A GENERATE items
  kFilter,    // FILTER A BY cond
  kGroup,     // GROUP A BY keys
  kCogroup,   // COGROUP A BY keys, B BY keys, ...
  kJoin,      // JOIN A BY keys, B BY keys, ...
  kCross,     // CROSS A, B, ...
  kUnion,     // UNION A, B, ...
  kDistinct,  // DISTINCT A
  kOrderBy,   // ORDER A BY f [ASC|DESC], ...
  kLimit,     // LIMIT A n
  kAlias,     // plain copy: B = A
  kSplit,     // SPLIT A INTO B IF cond, C IF cond, ...
};

/// One item in a FOREACH ... GENERATE list.
struct GenItem {
  ExprPtr expr;
  std::string alias;     // output field name ("AS alias"); may be empty
  bool flatten = false;  // FLATTEN(expr): expand bag-valued expr
};

/// One (relation, keys) pair in GROUP/COGROUP/JOIN.
struct ByClause {
  std::string relation;
  std::vector<ExprPtr> keys;  // key expressions (usually field refs)
};

struct OrderKey {
  std::string field;
  bool ascending = true;
};

struct Statement {
  StatementKind kind;
  SourceLoc loc;
  std::string target;  // name being assigned

  // Operator-specific payload. `inputs` lists the referenced relations in
  // order for kCross/kUnion/kAlias; kForEach/kFilter/kDistinct/kOrderBy/
  // kLimit use inputs[0]; kGroup/kCogroup/kJoin use by_clauses.
  std::vector<std::string> inputs;
  std::vector<GenItem> gen_items;    // kForEach
  ExprPtr condition;                 // kFilter
  std::vector<ByClause> by_clauses;  // kGroup / kCogroup / kJoin
  std::vector<OrderKey> order_keys;  // kOrderBy
  int64_t limit = 0;                 // kLimit
  // kSplit: (target relation, routing condition) pairs; a tuple is copied
  // into every target whose condition evaluates to true.
  std::vector<std::pair<std::string, ExprPtr>> split_targets;

  std::string ToString() const;
};

/// A parsed Pig Latin program: an ordered list of assignments.
struct Program {
  std::vector<Statement> statements;

  std::string ToString() const;
};

}  // namespace lipstick::pig

#endif  // LIPSTICK_PIG_AST_H_

#ifndef LIPSTICK_PIG_PARSER_H_
#define LIPSTICK_PIG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "pig/ast.h"

namespace lipstick::pig {

/// Parses a Pig Latin program: a ';'-terminated list of assignments
///   Target = FOREACH A GENERATE ...;
///   Target = FILTER A BY cond;
///   Target = GROUP A BY key;  |  COGROUP A BY k, B BY k, ...;
///   Target = JOIN A BY k, B BY k, ...;
///   Target = CROSS A, B;  |  UNION A, B;  |  DISTINCT A;
///   Target = ORDER A BY f [ASC|DESC], ...;  |  LIMIT A n;  |  A;
/// Keywords are case-insensitive. Errors carry line:column positions.
Result<Program> ParseProgram(std::string_view source);

/// Parses a single expression (used by tests).
Result<ExprPtr> ParseExpression(std::string_view source);

}  // namespace lipstick::pig

#endif  // LIPSTICK_PIG_PARSER_H_

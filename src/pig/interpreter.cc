#include "pig/interpreter.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/fault.h"
#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lipstick::pig {

namespace {

Status ExecErr(const SourceLoc& loc, const std::string& msg) {
  return Status::ExecutionError(
      StrCat("line ", loc.line, ":", loc.column, ": ", msg));
}

Status TypeErr(const SourceLoc& loc, const std::string& msg) {
  return Status::TypeError(
      StrCat("line ", loc.line, ":", loc.column, ": ", msg));
}

/// Unqualified tail of a possibly "A::B::f"-qualified name.
std::string Unqualify(const std::string& name) {
  size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

/// Hashable key wrapper for grouping / joining on evaluated key values.
struct ValueVec {
  std::vector<Value> values;

  bool operator==(const ValueVec& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (!values[i].Equals(other.values[i])) return false;
    }
    return true;
  }
};

struct ValueVecHash {
  size_t operator()(const ValueVec& key) const {
    size_t h = 0x9e3779b9;
    for (const Value& v : key.values) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

bool IsAggregateFunction(const std::string& name) {
  std::string lower = ToLower(name);
  return lower == "count" || lower == "sum" || lower == "min" ||
         lower == "max" || lower == "avg";
}

/// ------------------------- type inference ------------------------------

Result<FieldType> InferExprType(const Expr& expr, const Schema& schema,
                                const UdfRegistry* udfs) {
  switch (expr.kind) {
    case ExprKind::kConst: {
      const Value& v = expr.literal;
      if (v.is_bool()) return FieldType::Bool();
      if (v.is_int()) return FieldType::Int();
      if (v.is_double()) return FieldType::Double();
      return FieldType::String();  // strings and null literals
    }
    case ExprKind::kFieldRef: {
      LIPSTICK_ASSIGN_OR_RETURN(size_t idx, schema.ResolveField(expr.name));
      return schema.field(idx).type;
    }
    case ExprKind::kPositional: {
      if (expr.position < 0 ||
          static_cast<size_t>(expr.position) >= schema.num_fields()) {
        return TypeErr(expr.loc, StrCat("positional reference $",
                                        expr.position, " out of range for ",
                                        schema.ToString()));
      }
      return schema.field(expr.position).type;
    }
    case ExprKind::kBagProject: {
      LIPSTICK_ASSIGN_OR_RETURN(size_t idx, schema.ResolveField(expr.name));
      const FieldType& bag_type = schema.field(idx).type;
      if (bag_type.kind() != FieldType::Kind::kBag || !bag_type.nested()) {
        return TypeErr(expr.loc,
                       StrCat("'", expr.name, "' is not a bag field"));
      }
      LIPSTICK_ASSIGN_OR_RETURN(size_t sub,
                                bag_type.nested()->ResolveField(expr.sub_name));
      return FieldType::Bag(Schema::Make(
          {Field(expr.sub_name, bag_type.nested()->field(sub).type)}));
    }
    case ExprKind::kUnaryOp: {
      LIPSTICK_ASSIGN_OR_RETURN(FieldType t,
                                InferExprType(*expr.children[0], schema, udfs));
      if (expr.un_op == UnOp::kIsNull || expr.un_op == UnOp::kIsNotNull) {
        if (!t.is_scalar()) {
          return TypeErr(expr.loc, "IS NULL requires a scalar operand");
        }
        return FieldType::Bool();
      }
      if (expr.un_op == UnOp::kNot) {
        if (t.kind() != FieldType::Kind::kBool) {
          return TypeErr(expr.loc, "NOT requires a boolean operand");
        }
        return FieldType::Bool();
      }
      if (!t.is_numeric()) {
        return TypeErr(expr.loc, "unary '-' requires a numeric operand");
      }
      return t;
    }
    case ExprKind::kBinaryOp: {
      LIPSTICK_ASSIGN_OR_RETURN(FieldType lt,
                                InferExprType(*expr.children[0], schema, udfs));
      LIPSTICK_ASSIGN_OR_RETURN(FieldType rt,
                                InferExprType(*expr.children[1], schema, udfs));
      switch (expr.bin_op) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
          if (!lt.is_numeric() || !rt.is_numeric()) {
            return TypeErr(expr.loc, "arithmetic requires numeric operands");
          }
          // Pig semantics: int op int stays int (including '/').
          if (lt.kind() == FieldType::Kind::kDouble ||
              rt.kind() == FieldType::Kind::kDouble) {
            return FieldType::Double();
          }
          return FieldType::Int();
        case BinOp::kMod:
          if (lt.kind() != FieldType::Kind::kInt ||
              rt.kind() != FieldType::Kind::kInt) {
            return TypeErr(expr.loc, "'%' requires integer operands");
          }
          return FieldType::Int();
        case BinOp::kAnd:
        case BinOp::kOr:
          if (lt.kind() != FieldType::Kind::kBool ||
              rt.kind() != FieldType::Kind::kBool) {
            return TypeErr(expr.loc, "AND/OR require boolean operands");
          }
          return FieldType::Bool();
        default:  // comparisons
          if (!lt.is_scalar() || !rt.is_scalar()) {
            return TypeErr(expr.loc, "comparisons require scalar operands");
          }
          return FieldType::Bool();
      }
    }
    case ExprKind::kFuncCall: {
      if (IsAggregateFunction(expr.name)) {
        if (expr.children.size() != 1) {
          return TypeErr(expr.loc,
                         StrCat(expr.name, " takes exactly one argument"));
        }
        LIPSTICK_ASSIGN_OR_RETURN(
            FieldType arg, InferExprType(*expr.children[0], schema, udfs));
        if (arg.kind() != FieldType::Kind::kBag || !arg.nested()) {
          return TypeErr(expr.loc,
                         StrCat(expr.name, " requires a bag argument"));
        }
        std::string op = ToUpper(expr.name);
        if (op == "COUNT") return FieldType::Int();
        if (op == "AVG") return FieldType::Double();
        if (arg.nested()->num_fields() != 1) {
          return TypeErr(
              expr.loc,
              StrCat(expr.name,
                     " requires a single-attribute bag (use Bag.field)"));
        }
        const FieldType& elem = arg.nested()->field(0).type;
        if (!elem.is_numeric()) {
          return TypeErr(expr.loc,
                         StrCat(expr.name, " requires numeric values"));
        }
        return elem;
      }
      const UdfEntry* udf = udfs ? udfs->Lookup(expr.name) : nullptr;
      if (udf == nullptr) {
        return TypeErr(expr.loc,
                       StrCat("unknown function '", expr.name, "'"));
      }
      std::vector<FieldType> arg_types;
      for (const ExprPtr& child : expr.children) {
        LIPSTICK_ASSIGN_OR_RETURN(FieldType t,
                                  InferExprType(*child, schema, udfs));
        arg_types.push_back(std::move(t));
      }
      return udf->return_type(arg_types);
    }
  }
  return Status::Internal("unhandled expression kind");
}

/// --------------------------- evaluation --------------------------------

namespace {

struct EvalContext {
  const Schema* schema = nullptr;
  const Tuple* tuple = nullptr;
  ProvAnnotation annot = kNoProvenance;
  ShardWriter* writer = nullptr;           // null -> no tracking
  std::vector<NodeId>* specials = nullptr; // agg/BB nodes for this tuple
  const UdfRegistry* udfs = nullptr;
};

void AddSpecial(EvalContext& ctx, NodeId node) {
  if (ctx.specials != nullptr) ctx.specials->push_back(node);
}

Result<Value> EvalExpr(const Expr& expr, EvalContext& ctx);

Result<Value> EvalAggregate(const Expr& expr, EvalContext& ctx) {
  LIPSTICK_ASSIGN_OR_RETURN(Value arg, EvalExpr(*expr.children[0], ctx));
  if (!arg.is_bag()) {
    return ExecErr(expr.loc, StrCat(expr.name, " requires a bag argument"));
  }
  const Bag& bag = *arg.bag();
  std::string op = ToUpper(expr.name);

  Value result;
  if (op == "COUNT") {
    result = Value::Int(static_cast<int64_t>(bag.size()));
  } else if (bag.empty()) {
    result = op == "SUM" ? Value::Int(0) : Value::Null();
  } else {
    // Single-attribute bags: aggregate field 0.
    bool all_int = true;
    double dsum = 0;
    int64_t isum = 0;
    const Value* best = nullptr;
    for (const AnnotatedTuple& t : bag) {
      if (t.tuple.size() != 1) {
        return ExecErr(expr.loc,
                       StrCat(expr.name, " requires single-attribute tuples"));
      }
      const Value& v = t.tuple.at(0);
      if (v.is_null()) continue;
      if (!v.is_numeric()) {
        return ExecErr(expr.loc, StrCat(expr.name, " over non-numeric value"));
      }
      if (v.is_double()) all_int = false;
      dsum += v.AsDouble();
      if (v.is_int()) isum += v.int_value();
      if (op == "MIN" && (best == nullptr || v.Compare(*best) < 0)) best = &v;
      if (op == "MAX" && (best == nullptr || v.Compare(*best) > 0)) best = &v;
    }
    if (op == "SUM") {
      result = all_int ? Value::Int(isum) : Value::Double(dsum);
    } else if (op == "AVG") {
      result = Value::Double(dsum / static_cast<double>(bag.size()));
    } else {
      result = best == nullptr ? Value::Null() : *best;
    }
  }

  if (ctx.writer != nullptr) {
    // Provenance (Section 3.2, FOREACH-aggregation): the aggregate result
    // is a v-node; each contributing tuple feeds it through a ⊗ v-node
    // pairing the aggregated value with the tuple's provenance. COUNT uses
    // the paper's simplified construction with direct tuple edges.
    std::vector<NodeId> parents;
    for (const AnnotatedTuple& t : bag) {
      if (t.annot == kNoProvenance) continue;
      NodeId tannot = ctx.writer->ResolveParent(t.annot);
      if (op == "COUNT") {
        parents.push_back(tannot);
      } else {
        NodeId vnode = ctx.writer->ConstValue(t.tuple.at(0));
        parents.push_back(ctx.writer->Tensor(vnode, tannot));
      }
    }
    if (parents.empty() && ctx.annot != kNoProvenance) {
      // Empty group: the (zero/null) aggregate derives from the group tuple.
      parents.push_back(ctx.writer->ResolveParent(ctx.annot));
    }
    NodeId agg = ctx.writer->Aggregate(op, std::move(parents), result);
    AddSpecial(ctx, agg);
  }
  return result;
}

Result<Value> EvalUdf(const Expr& expr, EvalContext& ctx) {
  const UdfEntry* udf = ctx.udfs ? ctx.udfs->Lookup(expr.name) : nullptr;
  if (udf == nullptr) {
    return ExecErr(expr.loc, StrCat("unknown function '", expr.name, "'"));
  }
  // UDFs are external black boxes — the boundary most likely to fail in a
  // real deployment, and the one tests inject failures into.
  LIPSTICK_RETURN_IF_ERROR(FaultInjector::Fire("pig.udf", ToLower(expr.name))
                               .WithContext(StrCat("UDF ", expr.name,
                                                   " at line ",
                                                   expr.loc.line)));
  std::vector<Value> args;
  args.reserve(expr.children.size());
  for (const ExprPtr& child : expr.children) {
    LIPSTICK_ASSIGN_OR_RETURN(Value v, EvalExpr(*child, ctx));
    args.push_back(std::move(v));
  }
  Result<Value> result = udf->fn(args);
  if (!result.ok()) {
    return result.status().WithContext(
        StrCat("UDF ", expr.name, " at line ", expr.loc.line));
  }
  Value value = std::move(result).value();

  if (ctx.writer != nullptr) {
    // Black-box rule: one node labeled with the function name, fed by the
    // provenance of every tuple the arguments carry (bag arguments), plus
    // the current tuple for scalar arguments derived from it.
    std::vector<NodeId> parents;
    bool scalar_arg = false;
    for (const Value& arg : args) {
      if (arg.is_bag()) {
        for (const AnnotatedTuple& t : *arg.bag()) {
          if (t.annot != kNoProvenance) {
            parents.push_back(ctx.writer->ResolveParent(t.annot));
          }
        }
      } else {
        scalar_arg = true;
      }
    }
    if (scalar_arg && ctx.annot != kNoProvenance) {
      parents.push_back(ctx.writer->ResolveParent(ctx.annot));
    }
    NodeId bb = ctx.writer->BlackBox(ToLower(expr.name), std::move(parents));
    AddSpecial(ctx, bb);
    if (value.is_bag()) {
      // Returned tuples derive from the black box.
      auto annotated = std::make_shared<Bag>();
      annotated->Reserve(value.bag()->size());
      for (const AnnotatedTuple& t : *value.bag()) {
        annotated->Add(t.tuple, bb);
      }
      value = Value::OfBag(std::move(annotated));
    }
  }
  return value;
}

Result<Value> EvalExpr(const Expr& expr, EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kConst:
      return expr.literal;
    case ExprKind::kFieldRef: {
      LIPSTICK_ASSIGN_OR_RETURN(size_t idx,
                                ctx.schema->ResolveField(expr.name));
      return ctx.tuple->at(idx);
    }
    case ExprKind::kPositional: {
      if (expr.position < 0 ||
          static_cast<size_t>(expr.position) >= ctx.tuple->size()) {
        return ExecErr(expr.loc, "positional reference out of range");
      }
      return ctx.tuple->at(expr.position);
    }
    case ExprKind::kBagProject: {
      LIPSTICK_ASSIGN_OR_RETURN(size_t idx,
                                ctx.schema->ResolveField(expr.name));
      const Value& v = ctx.tuple->at(idx);
      if (!v.is_bag()) {
        return ExecErr(expr.loc, StrCat("'", expr.name, "' is not a bag"));
      }
      const FieldType& ft = ctx.schema->field(idx).type;
      if (!ft.nested()) return ExecErr(expr.loc, "bag without schema");
      LIPSTICK_ASSIGN_OR_RETURN(size_t sub,
                                ft.nested()->ResolveField(expr.sub_name));
      auto out = std::make_shared<Bag>();
      out->Reserve(v.bag()->size());
      for (const AnnotatedTuple& t : *v.bag()) {
        out->Add(Tuple({t.tuple.at(sub)}), t.annot);
      }
      return Value::OfBag(std::move(out));
    }
    case ExprKind::kUnaryOp: {
      LIPSTICK_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], ctx));
      if (expr.un_op == UnOp::kIsNull) return Value::Bool(v.is_null());
      if (expr.un_op == UnOp::kIsNotNull) return Value::Bool(!v.is_null());
      if (v.is_null()) return Value::Null();
      if (expr.un_op == UnOp::kNot) {
        if (!v.is_bool()) return ExecErr(expr.loc, "NOT of non-boolean");
        return Value::Bool(!v.bool_value());
      }
      if (v.is_int()) return Value::Int(-v.int_value());
      if (v.is_double()) return Value::Double(-v.double_value());
      return ExecErr(expr.loc, "unary '-' of non-numeric");
    }
    case ExprKind::kBinaryOp: {
      // AND/OR: short-circuit on the left operand.
      if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
        LIPSTICK_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.children[0], ctx));
        if (l.is_null()) return Value::Bool(false);
        if (!l.is_bool()) return ExecErr(expr.loc, "AND/OR of non-boolean");
        if (expr.bin_op == BinOp::kAnd && !l.bool_value()) {
          return Value::Bool(false);
        }
        if (expr.bin_op == BinOp::kOr && l.bool_value()) {
          return Value::Bool(true);
        }
        LIPSTICK_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.children[1], ctx));
        if (r.is_null()) return Value::Bool(false);
        if (!r.is_bool()) return ExecErr(expr.loc, "AND/OR of non-boolean");
        return Value::Bool(r.bool_value());
      }
      LIPSTICK_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.children[0], ctx));
      LIPSTICK_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.children[1], ctx));
      switch (expr.bin_op) {
        case BinOp::kEq:
          return Value::Bool(l.Equals(r));
        case BinOp::kNe:
          return Value::Bool(!l.Equals(r));
        case BinOp::kLt:
          return Value::Bool(l.Compare(r) < 0);
        case BinOp::kLe:
          return Value::Bool(l.Compare(r) <= 0);
        case BinOp::kGt:
          return Value::Bool(l.Compare(r) > 0);
        case BinOp::kGe:
          return Value::Bool(l.Compare(r) >= 0);
        default:
          break;
      }
      // Arithmetic.
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.is_numeric() || !r.is_numeric()) {
        return ExecErr(expr.loc, "arithmetic on non-numeric operands");
      }
      if (expr.bin_op == BinOp::kMod) {
        if (!l.is_int() || !r.is_int()) {
          return ExecErr(expr.loc, "'%' requires integers");
        }
        if (r.int_value() == 0) return Value::Null();
        return Value::Int(l.int_value() % r.int_value());
      }
      if (expr.bin_op == BinOp::kDiv) {
        if (l.is_int() && r.is_int()) {
          if (r.int_value() == 0) return Value::Null();
          return Value::Int(l.int_value() / r.int_value());
        }
        double denom = r.AsDouble();
        if (denom == 0) return Value::Null();
        return Value::Double(l.AsDouble() / denom);
      }
      bool use_double = l.is_double() || r.is_double();
      switch (expr.bin_op) {
        case BinOp::kAdd:
          return use_double ? Value::Double(l.AsDouble() + r.AsDouble())
                            : Value::Int(l.int_value() + r.int_value());
        case BinOp::kSub:
          return use_double ? Value::Double(l.AsDouble() - r.AsDouble())
                            : Value::Int(l.int_value() - r.int_value());
        case BinOp::kMul:
          return use_double ? Value::Double(l.AsDouble() * r.AsDouble())
                            : Value::Int(l.int_value() * r.int_value());
        default:
          return Status::Internal("unhandled arithmetic op");
      }
    }
    case ExprKind::kFuncCall:
      if (IsAggregateFunction(expr.name)) return EvalAggregate(expr, ctx);
      return EvalUdf(expr, ctx);
  }
  return Status::Internal("unhandled expression kind");
}

/// --------------------------- operators ---------------------------------

struct OpContext {
  const Environment* env;
  ShardWriter* writer;
  const UdfRegistry* udfs;
};

Result<const Relation*> LookupInput(const Statement& stmt,
                                    const Environment& env,
                                    const std::string& name) {
  Result<const Relation*> rel = env.Lookup(name);
  if (!rel.ok()) {
    return ExecErr(stmt.loc, StrCat("unknown relation '", name, "'"));
  }
  return rel;
}

/// Output field name for an unaliased GENERATE item.
std::string DefaultItemName(const Expr& expr, const Schema& schema,
                            size_t index) {
  switch (expr.kind) {
    case ExprKind::kFieldRef:
      return Unqualify(expr.name);
    case ExprKind::kBagProject:
      return expr.sub_name;
    case ExprKind::kPositional:
      if (expr.position >= 0 &&
          static_cast<size_t>(expr.position) < schema.num_fields()) {
        return Unqualify(schema.field(expr.position).name);
      }
      return StrCat("f", index);
    default:
      return StrCat("f", index);
  }
}

Result<SchemaPtr> InferForEachSchema(const Statement& stmt,
                                     const Schema& input,
                                     const UdfRegistry* udfs) {
  std::vector<Field> fields;
  for (size_t i = 0; i < stmt.gen_items.size(); ++i) {
    const GenItem& item = stmt.gen_items[i];
    LIPSTICK_ASSIGN_OR_RETURN(FieldType type,
                              InferExprType(*item.expr, input, udfs));
    if (item.flatten) {
      if (type.kind() == FieldType::Kind::kBag ||
          type.kind() == FieldType::Kind::kTuple) {
        if (!type.nested()) {
          return TypeErr(item.expr->loc, "FLATTEN of schemaless collection");
        }
        for (const Field& f : type.nested()->fields()) {
          fields.emplace_back(Unqualify(f.name), f.type);
        }
        continue;
      }
      return TypeErr(item.expr->loc, "FLATTEN requires a bag or tuple");
    }
    std::string name = item.alias.empty()
                           ? DefaultItemName(*item.expr, input, i)
                           : item.alias;
    fields.emplace_back(std::move(name), std::move(type));
  }
  return Schema::Make(std::move(fields));
}

Result<Relation> ExecForEach(const Statement& stmt, const Relation& input,
                             OpContext& op) {
  LIPSTICK_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                            InferForEachSchema(stmt, *input.schema, op.udfs));
  Relation out(stmt.target, out_schema);
  out.bag.Reserve(input.bag.size());

  for (const AnnotatedTuple& src : input.bag) {
    std::vector<NodeId> specials;
    EvalContext ctx{input.schema.get(), &src.tuple, src.annot,
                    op.writer,          &specials,  op.udfs};

    // Evaluate all items; flatten items collect their bags for expansion.
    struct ItemResult {
      bool flatten = false;
      Value value;
    };
    std::vector<ItemResult> results;
    results.reserve(stmt.gen_items.size());
    bool any_field_flatten = false;
    for (const GenItem& item : stmt.gen_items) {
      LIPSTICK_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ctx));
      if (item.flatten && v.is_bag()) any_field_flatten = true;
      results.push_back(ItemResult{item.flatten, std::move(v)});
    }

    // Expand the cross product over flattened bags. `indices[k]` selects a
    // tuple from the k-th flattened bag.
    std::vector<size_t> flat_positions;
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].flatten && results[i].value.is_bag()) {
        flat_positions.push_back(i);
        if (results[i].value.bag()->empty()) {
          // FLATTEN of an empty bag produces no output for this tuple.
          flat_positions.clear();
          break;
        }
      }
    }
    if (any_field_flatten && flat_positions.empty()) continue;

    std::vector<size_t> indices(flat_positions.size(), 0);
    while (true) {
      Tuple tuple;
      std::vector<NodeId> flatten_annots;
      size_t flat_k = 0;
      for (size_t i = 0; i < results.size(); ++i) {
        const ItemResult& r = results[i];
        if (!r.flatten) {
          tuple.Append(r.value);
          continue;
        }
        if (r.value.is_bag()) {
          const AnnotatedTuple& inner =
              r.value.bag()->at(indices[flat_k++]);
          for (const Value& v : inner.tuple.values()) tuple.Append(v);
          if (inner.annot != kNoProvenance) {
            flatten_annots.push_back(inner.annot);
          }
        } else if (r.value.is_tuple()) {
          for (const Value& v : r.value.tuple()->values()) tuple.Append(v);
        } else {
          tuple.Append(r.value);  // FLATTEN of scalar: identity
        }
      }

      ProvAnnotation annot = kNoProvenance;
      if (op.writer != nullptr) {
        std::vector<NodeId> parents;
        if (src.annot != kNoProvenance) {
          parents.push_back(op.writer->ResolveParent(src.annot));
        }
        parents.insert(parents.end(), specials.begin(), specials.end());
        for (NodeId fa : flatten_annots) {
          parents.push_back(op.writer->ResolveParent(fa));
        }
        std::sort(parents.begin(), parents.end());
        parents.erase(std::unique(parents.begin(), parents.end()),
                      parents.end());
        // Projection yields a + node; FLATTEN makes derivation joint (·).
        annot = flatten_annots.empty() ? op.writer->Plus(std::move(parents))
                                       : op.writer->Times(std::move(parents));
      }
      out.bag.Add(std::move(tuple), annot);

      // Advance the cross-product odometer.
      if (indices.empty()) break;
      size_t k = indices.size();
      while (k > 0) {
        --k;
        if (++indices[k] <
            results[flat_positions[k]].value.bag()->size()) {
          break;
        }
        indices[k] = 0;
        if (k == 0) {
          k = SIZE_MAX;
          break;
        }
      }
      if (k == SIZE_MAX) break;
    }
  }
  return out;
}

Result<Relation> ExecFilter(const Statement& stmt, const Relation& input,
                            OpContext& op) {
  LIPSTICK_ASSIGN_OR_RETURN(
      FieldType cond_type,
      InferExprType(*stmt.condition, *input.schema, op.udfs));
  if (cond_type.kind() != FieldType::Kind::kBool) {
    return TypeErr(stmt.loc, "FILTER condition must be boolean");
  }
  Relation out(stmt.target, input.schema);
  for (const AnnotatedTuple& src : input.bag) {
    EvalContext ctx{input.schema.get(), &src.tuple, src.annot,
                    op.writer,          nullptr,    op.udfs};
    LIPSTICK_ASSIGN_OR_RETURN(Value cond, EvalExpr(*stmt.condition, ctx));
    if (cond.is_null()) continue;
    if (!cond.is_bool()) {
      return ExecErr(stmt.loc, "FILTER condition is not boolean");
    }
    if (cond.bool_value()) out.bag.Add(src);
  }
  return out;
}

/// Evaluates the key expressions of a ByClause against one tuple.
Result<ValueVec> EvalKeys(const ByClause& clause, const Schema& schema,
                          const Tuple& tuple, const UdfRegistry* udfs) {
  ValueVec key;
  key.values.reserve(clause.keys.size());
  EvalContext ctx{&schema, &tuple, kNoProvenance, nullptr, nullptr, udfs};
  for (const ExprPtr& k : clause.keys) {
    LIPSTICK_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, ctx));
    key.values.push_back(std::move(v));
  }
  return key;
}

Result<FieldType> KeyFieldType(const ByClause& clause, const Schema& schema,
                               const UdfRegistry* udfs, SourceLoc loc) {
  if (clause.keys.empty()) {
    return FieldType::String();  // GROUP ALL: the group key is 'all'
  }
  if (clause.keys.size() == 1) {
    LIPSTICK_ASSIGN_OR_RETURN(FieldType t,
                              InferExprType(*clause.keys[0], schema, udfs));
    if (!t.is_scalar()) return TypeErr(loc, "group/join key must be scalar");
    return t;
  }
  std::vector<Field> fields;
  for (size_t i = 0; i < clause.keys.size(); ++i) {
    LIPSTICK_ASSIGN_OR_RETURN(FieldType t,
                              InferExprType(*clause.keys[i], schema, udfs));
    if (!t.is_scalar()) return TypeErr(loc, "group/join key must be scalar");
    fields.emplace_back(StrCat("k", i), std::move(t));
  }
  return FieldType::Tuple(Schema::Make(std::move(fields)));
}

Value KeyToValue(const ValueVec& key) {
  if (key.values.empty()) return Value::String("all");  // GROUP ALL
  if (key.values.size() == 1) return key.values[0];
  return Value::OfTuple(std::make_shared<Tuple>(key.values));
}

/// GROUP / COGROUP share this implementation; GROUP is the 1-input case.
Result<Relation> ExecCogroup(const Statement& stmt, OpContext& op) {
  struct GroupData {
    ValueVec key;
    std::vector<std::vector<const AnnotatedTuple*>> members;  // per input
  };
  std::unordered_map<ValueVec, size_t, ValueVecHash> index;
  std::vector<GroupData> groups;
  std::vector<const Relation*> inputs;

  for (size_t in = 0; in < stmt.by_clauses.size(); ++in) {
    const ByClause& clause = stmt.by_clauses[in];
    LIPSTICK_ASSIGN_OR_RETURN(const Relation* rel,
                              LookupInput(stmt, *op.env, clause.relation));
    inputs.push_back(rel);
    for (const AnnotatedTuple& t : rel->bag) {
      LIPSTICK_ASSIGN_OR_RETURN(
          ValueVec key, EvalKeys(clause, *rel->schema, t.tuple, op.udfs));
      auto [it, inserted] = index.try_emplace(key, groups.size());
      if (inserted) {
        groups.push_back(GroupData{std::move(key), {}});
        groups.back().members.resize(stmt.by_clauses.size());
      }
      groups[it->second].members[in].push_back(&t);
    }
  }

  // Schema: "group" key field, then one bag field per input named after it.
  LIPSTICK_ASSIGN_OR_RETURN(
      FieldType key_type,
      KeyFieldType(stmt.by_clauses[0], *inputs[0]->schema, op.udfs, stmt.loc));
  std::vector<Field> fields;
  fields.emplace_back("group", key_type);
  for (size_t in = 0; in < inputs.size(); ++in) {
    fields.emplace_back(stmt.by_clauses[in].relation,
                        FieldType::Bag(inputs[in]->schema));
  }
  Relation out(stmt.target, Schema::Make(std::move(fields)));
  out.bag.Reserve(groups.size());

  for (const GroupData& g : groups) {
    Tuple tuple;
    tuple.Append(KeyToValue(g.key));
    std::vector<NodeId> member_annots;
    for (size_t in = 0; in < g.members.size(); ++in) {
      auto bag = std::make_shared<Bag>();
      bag->Reserve(g.members[in].size());
      for (const AnnotatedTuple* t : g.members[in]) {
        bag->Add(*t);
        if (t->annot != kNoProvenance && op.writer != nullptr) {
          member_annots.push_back(op.writer->ResolveParent(t->annot));
        }
      }
      tuple.Append(Value::OfBag(std::move(bag)));
    }
    ProvAnnotation annot = kNoProvenance;
    if (op.writer != nullptr) {
      // δ over the members (shorthand for δ(t1 + ... + tn)).
      annot = op.writer->Delta(std::move(member_annots));
    }
    out.bag.Add(std::move(tuple), annot);
  }
  return out;
}

Result<Relation> ExecJoin(const Statement& stmt, OpContext& op) {
  std::vector<const Relation*> inputs;
  for (const ByClause& clause : stmt.by_clauses) {
    LIPSTICK_ASSIGN_OR_RETURN(const Relation* rel,
                              LookupInput(stmt, *op.env, clause.relation));
    inputs.push_back(rel);
  }
  // Key lists must agree in arity and kind across all join inputs.
  for (size_t in = 0; in < inputs.size(); ++in) {
    if (stmt.by_clauses[in].keys.size() != stmt.by_clauses[0].keys.size()) {
      return TypeErr(stmt.loc, "JOIN key lists differ in length");
    }
    LIPSTICK_RETURN_IF_ERROR(
        KeyFieldType(stmt.by_clauses[in], *inputs[in]->schema, op.udfs,
                     stmt.loc)
            .status());
  }
  // Output schema: fields of every input, qualified "Rel::field".
  std::vector<Field> fields;
  for (size_t in = 0; in < inputs.size(); ++in) {
    for (const Field& f : inputs[in]->schema->fields()) {
      fields.emplace_back(StrCat(stmt.by_clauses[in].relation, "::", f.name),
                          f.type);
    }
  }
  Relation out(stmt.target, Schema::Make(std::move(fields)));

  // Hash each non-first input by key.
  using Matches = std::vector<const AnnotatedTuple*>;
  std::vector<std::unordered_map<ValueVec, Matches, ValueVecHash>> tables(
      inputs.size());
  for (size_t in = 1; in < inputs.size(); ++in) {
    for (const AnnotatedTuple& t : inputs[in]->bag) {
      LIPSTICK_ASSIGN_OR_RETURN(
          ValueVec key,
          EvalKeys(stmt.by_clauses[in], *inputs[in]->schema, t.tuple,
                   op.udfs));
      tables[in][std::move(key)].push_back(&t);
    }
  }

  // Probe with the first input; emit the cross product of matches.
  for (const AnnotatedTuple& t0 : inputs[0]->bag) {
    LIPSTICK_ASSIGN_OR_RETURN(
        ValueVec key,
        EvalKeys(stmt.by_clauses[0], *inputs[0]->schema, t0.tuple, op.udfs));
    std::vector<const Matches*> match_lists;
    bool missing = false;
    for (size_t in = 1; in < inputs.size(); ++in) {
      auto it = tables[in].find(key);
      if (it == tables[in].end()) {
        missing = true;
        break;
      }
      match_lists.push_back(&it->second);
    }
    if (missing) continue;

    std::vector<size_t> indices(match_lists.size(), 0);
    while (true) {
      Tuple tuple;
      std::vector<NodeId> parents;
      for (const Value& v : t0.tuple.values()) tuple.Append(v);
      if (t0.annot != kNoProvenance && op.writer != nullptr) {
        parents.push_back(op.writer->ResolveParent(t0.annot));
      }
      for (size_t k = 0; k < match_lists.size(); ++k) {
        const AnnotatedTuple* t = (*match_lists[k])[indices[k]];
        for (const Value& v : t->tuple.values()) tuple.Append(v);
        if (t->annot != kNoProvenance && op.writer != nullptr) {
          parents.push_back(op.writer->ResolveParent(t->annot));
        }
      }
      ProvAnnotation annot = kNoProvenance;
      if (op.writer != nullptr) {
        annot = op.writer->Times(std::move(parents));  // joint derivation
      }
      out.bag.Add(std::move(tuple), annot);

      size_t k = indices.size();
      bool done = indices.empty();
      while (k > 0) {
        --k;
        if (++indices[k] < match_lists[k]->size()) break;
        indices[k] = 0;
        if (k == 0) done = true;
      }
      if (done) break;
    }
  }
  return out;
}

Result<Relation> ExecCross(const Statement& stmt, OpContext& op) {
  std::vector<const Relation*> inputs;
  for (const std::string& name : stmt.inputs) {
    LIPSTICK_ASSIGN_OR_RETURN(const Relation* rel,
                              LookupInput(stmt, *op.env, name));
    inputs.push_back(rel);
  }
  std::vector<Field> fields;
  for (size_t in = 0; in < inputs.size(); ++in) {
    for (const Field& f : inputs[in]->schema->fields()) {
      fields.emplace_back(StrCat(stmt.inputs[in], "::", f.name), f.type);
    }
  }
  Relation out(stmt.target, Schema::Make(std::move(fields)));

  std::vector<size_t> indices(inputs.size(), 0);
  for (const Relation* rel : inputs) {
    if (rel->bag.empty()) return out;  // empty cross product
  }
  while (true) {
    Tuple tuple;
    std::vector<NodeId> parents;
    for (size_t in = 0; in < inputs.size(); ++in) {
      const AnnotatedTuple& t = inputs[in]->bag.at(indices[in]);
      for (const Value& v : t.tuple.values()) tuple.Append(v);
      if (t.annot != kNoProvenance && op.writer != nullptr) {
        parents.push_back(op.writer->ResolveParent(t.annot));
      }
    }
    ProvAnnotation annot = kNoProvenance;
    if (op.writer != nullptr) annot = op.writer->Times(std::move(parents));
    out.bag.Add(std::move(tuple), annot);

    size_t k = indices.size();
    bool done = false;
    while (k > 0) {
      --k;
      if (++indices[k] < inputs[k]->bag.size()) break;
      indices[k] = 0;
      if (k == 0) done = true;
    }
    if (done) break;
  }
  return out;
}

Result<Relation> ExecUnion(const Statement& stmt, OpContext& op) {
  std::vector<const Relation*> inputs;
  for (const std::string& name : stmt.inputs) {
    LIPSTICK_ASSIGN_OR_RETURN(const Relation* rel,
                              LookupInput(stmt, *op.env, name));
    inputs.push_back(rel);
  }
  for (size_t in = 1; in < inputs.size(); ++in) {
    if (!inputs[in]->schema->EqualsIgnoreNames(*inputs[0]->schema)) {
      return TypeErr(stmt.loc,
                     StrCat("UNION schema mismatch: ",
                            inputs[0]->schema->ToString(), " vs ",
                            inputs[in]->schema->ToString()));
    }
  }
  Relation out(stmt.target, inputs[0]->schema);
  for (const Relation* rel : inputs) {
    for (const AnnotatedTuple& t : rel->bag) out.bag.Add(t);
  }
  return out;
}

Result<Relation> ExecDistinct(const Statement& stmt, const Relation& input,
                              OpContext& op) {
  Relation out(stmt.target, input.schema);
  std::unordered_map<ValueVec, size_t, ValueVecHash> index;
  std::vector<std::vector<NodeId>> member_annots;
  std::vector<const Tuple*> reps;
  for (const AnnotatedTuple& t : input.bag) {
    ValueVec key{t.tuple.values()};
    auto [it, inserted] = index.try_emplace(std::move(key), reps.size());
    if (inserted) {
      reps.push_back(&t.tuple);
      member_annots.emplace_back();
    }
    if (t.annot != kNoProvenance && op.writer != nullptr) {
      member_annots[it->second].push_back(op.writer->ResolveParent(t.annot));
    }
  }
  for (size_t i = 0; i < reps.size(); ++i) {
    ProvAnnotation annot = kNoProvenance;
    if (op.writer != nullptr) {
      annot = op.writer->Delta(std::move(member_annots[i]));
    }
    out.bag.Add(*reps[i], annot);
  }
  return out;
}

Result<Relation> ExecOrderBy(const Statement& stmt, const Relation& input) {
  std::vector<std::pair<size_t, bool>> keys;  // field index, ascending
  for (const OrderKey& k : stmt.order_keys) {
    LIPSTICK_ASSIGN_OR_RETURN(size_t idx,
                              input.schema->ResolveField(k.field));
    keys.emplace_back(idx, k.ascending);
  }
  Relation out(stmt.target, input.schema, input.bag);
  std::vector<AnnotatedTuple> tuples = out.bag.tuples();
  std::stable_sort(tuples.begin(), tuples.end(),
                   [&keys](const AnnotatedTuple& a, const AnnotatedTuple& b) {
                     for (const auto& [idx, asc] : keys) {
                       int c = a.tuple.at(idx).Compare(b.tuple.at(idx));
                       if (c != 0) return asc ? c < 0 : c > 0;
                     }
                     return false;
                   });
  out.bag = Bag(std::move(tuples));
  return out;
}

}  // namespace

/// SPLIT A INTO B IF c1, C IF c2: every tuple is routed (copied) into each
/// target whose condition holds; annotations pass through like FILTER.
Result<std::vector<Relation>> ExecSplit(const Statement& stmt,
                                        const Relation& input,
                                        OpContext& op) {
  std::vector<Relation> outs;
  for (const auto& [name, cond] : stmt.split_targets) {
    LIPSTICK_ASSIGN_OR_RETURN(FieldType t,
                              InferExprType(*cond, *input.schema, op.udfs));
    if (t.kind() != FieldType::Kind::kBool) {
      return TypeErr(stmt.loc,
                     StrCat("SPLIT condition for '", name,
                            "' must be boolean"));
    }
    outs.emplace_back(name, input.schema);
  }
  for (const AnnotatedTuple& src : input.bag) {
    EvalContext ctx{input.schema.get(), &src.tuple, src.annot,
                    op.writer,          nullptr,    op.udfs};
    for (size_t i = 0; i < stmt.split_targets.size(); ++i) {
      LIPSTICK_ASSIGN_OR_RETURN(Value v,
                                EvalExpr(*stmt.split_targets[i].second, ctx));
      if (v.is_bool() && v.bool_value()) outs[i].bag.Add(src);
    }
  }
  return outs;
}

/// ------------------------- interpreter API -----------------------------

Result<const Relation*> Environment::Lookup(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' is not bound"));
  }
  return &it->second;
}

Result<const Relation*> Interpreter::RunStatement(const Statement& stmt,
                                                  Environment* env,
                                                  ShardWriter* writer) const {
  LIPSTICK_RETURN_IF_ERROR(
      FaultInjector::Fire("pig.statement", stmt.target));
  // Observability: a span per Pig statement (named after its target
  // relation) and a latency histogram. Disarmed cost: two relaxed loads.
  obs::ObsSpan obs_span("pig", stmt.target);
  static const obs::MetricId kStatements =
      obs::MetricsRegistry::Global().RegisterCounter("pig.statements");
  static const obs::MetricId kStatementUs =
      obs::MetricsRegistry::Global().RegisterHistogram("pig.statement_us");
  obs::MetricsRegistry::Global().CounterAdd(kStatements);
  obs::ScopedHistTimer obs_timer(kStatementUs);
  OpContext op{env, writer, udfs_};
  Result<Relation> result = Status::Internal("unhandled statement");
  switch (stmt.kind) {
    case StatementKind::kForEach:
    case StatementKind::kFilter:
    case StatementKind::kDistinct:
    case StatementKind::kOrderBy:
    case StatementKind::kLimit:
    case StatementKind::kAlias: {
      LIPSTICK_ASSIGN_OR_RETURN(const Relation* input,
                                LookupInput(stmt, *env, stmt.inputs[0]));
      switch (stmt.kind) {
        case StatementKind::kForEach:
          result = ExecForEach(stmt, *input, op);
          break;
        case StatementKind::kFilter:
          result = ExecFilter(stmt, *input, op);
          break;
        case StatementKind::kDistinct:
          result = ExecDistinct(stmt, *input, op);
          break;
        case StatementKind::kOrderBy:
          result = ExecOrderBy(stmt, *input);
          break;
        case StatementKind::kLimit: {
          Relation out(stmt.target, input->schema);
          for (size_t i = 0;
               i < input->bag.size() && i < static_cast<size_t>(stmt.limit);
               ++i) {
            out.bag.Add(input->bag.at(i));
          }
          result = std::move(out);
          break;
        }
        default:  // kAlias
          result = Relation(stmt.target, input->schema, input->bag);
          break;
      }
      break;
    }
    case StatementKind::kGroup:
    case StatementKind::kCogroup:
      result = ExecCogroup(stmt, op);
      break;
    case StatementKind::kJoin:
      result = ExecJoin(stmt, op);
      break;
    case StatementKind::kCross:
      result = ExecCross(stmt, op);
      break;
    case StatementKind::kUnion:
      result = ExecUnion(stmt, op);
      break;
    case StatementKind::kSplit: {
      LIPSTICK_ASSIGN_OR_RETURN(const Relation* input,
                                LookupInput(stmt, *env, stmt.inputs[0]));
      LIPSTICK_ASSIGN_OR_RETURN(std::vector<Relation> outs,
                                ExecSplit(stmt, *input, op));
      std::string first = outs.front().name;
      for (Relation& rel : outs) {
        std::string name = rel.name;
        env->Bind(name, std::move(rel));
      }
      return env->Lookup(first);
    }
  }
  if (!result.ok()) return result.status();
  env->Bind(stmt.target, std::move(result).value());
  return env->Lookup(stmt.target);
}

Status Interpreter::Run(const Program& program, Environment* env,
                        ShardWriter* writer,
                        const Deadline* deadline) const {
  for (const Statement& stmt : program.statements) {
    if (deadline != nullptr && deadline->Expired()) {
      return Status::DeadlineExceeded(
          StrCat("statement '", stmt.target, "' not started: wall-clock ",
                 "budget of ", deadline->limit_seconds(), "s exhausted"));
    }
    LIPSTICK_RETURN_IF_ERROR(RunStatement(stmt, env, writer).status());
  }
  return Status::OK();
}

/// ------------------------ schema-only analysis -------------------------

Result<std::map<std::string, SchemaPtr>> AnalyzeProgram(
    const Program& program, std::map<std::string, SchemaPtr> schemas,
    const UdfRegistry* udfs) {
  // Analysis executes the program over empty relations: every operator's
  // schema logic is exercised with zero tuples, reusing the interpreter
  // itself so analysis and execution can never disagree.
  Environment env;
  for (const auto& [name, schema] : schemas) {
    env.Bind(name, Relation(name, schema));
  }
  Interpreter interp(udfs);
  LIPSTICK_RETURN_IF_ERROR(interp.Run(program, &env, nullptr));
  std::map<std::string, SchemaPtr> out;
  for (const auto& [name, rel] : env.relations()) out[name] = rel.schema;
  return out;
}

}  // namespace lipstick::pig

#ifndef LIPSTICK_PIG_LEXER_H_
#define LIPSTICK_PIG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "pig/ast.h"

namespace lipstick::pig {

enum class TokenKind {
  kIdent,       // identifiers and keywords (keywords resolved by parser)
  kInt,         // integer literal
  kDouble,      // floating-point literal
  kString,      // 'single-quoted string'
  kDollar,      // $n positional reference (value in int_value)
  kEquals,      // =
  kSemicolon,   // ;
  kComma,       // ,
  kLParen,      // (
  kRParen,      // )
  kDot,         // .
  kDoubleColon, // ::
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq,          // ==
  kNe,          // !=
  kLt, kLe, kGt, kGe,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier / string contents
  int64_t int_value = 0;  // kInt / kDollar
  double double_value = 0;
  SourceLoc loc;

  /// Case-insensitive keyword test for kIdent tokens.
  bool IsKeyword(std::string_view keyword) const;
};

/// Tokenizes Pig Latin source. Comments: `-- line` and `/* block */`.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace lipstick::pig

#endif  // LIPSTICK_PIG_LEXER_H_

#include "pig/ast.h"

#include "common/str_util.h"

namespace lipstick::pig {

const char* BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

ExprPtr MakeConst(Value v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConst;
  e->literal = std::move(v);
  e->loc = loc;
  return e;
}

ExprPtr MakeFieldRef(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFieldRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr MakePositional(int pos, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kPositional;
  e->position = pos;
  e->loc = loc;
  return e;
}

ExprPtr MakeBagProject(std::string bag, std::string field, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBagProject;
  e->name = std::move(bag);
  e->sub_name = std::move(field);
  e->loc = loc;
  return e;
}

ExprPtr MakeUnary(UnOp op, ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnaryOp;
  e->un_op = op;
  e->children.push_back(std::move(operand));
  e->loc = loc;
  return e;
}

ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinaryOp;
  e->bin_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  e->loc = loc;
  return e;
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args,
                     SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->name = std::move(name);
  e->children = std::move(args);
  e->loc = loc;
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kConst:
      return literal.ToString();
    case ExprKind::kFieldRef:
      return name;
    case ExprKind::kPositional:
      return StrCat("$", position);
    case ExprKind::kBagProject:
      return StrCat(name, ".", sub_name);
    case ExprKind::kUnaryOp:
      switch (un_op) {
        case UnOp::kNeg:
          return StrCat("-", children[0]->ToString());
        case UnOp::kNot:
          return StrCat("NOT ", children[0]->ToString());
        case UnOp::kIsNull:
          return StrCat(children[0]->ToString(), " IS NULL");
        case UnOp::kIsNotNull:
          return StrCat(children[0]->ToString(), " IS NOT NULL");
      }
      return "?";
    case ExprKind::kBinaryOp:
      return StrCat("(", children[0]->ToString(), " ",
                    BinOpToString(bin_op), " ", children[1]->ToString(), ")");
    case ExprKind::kFuncCall: {
      std::vector<std::string> args;
      for (const ExprPtr& c : children) args.push_back(c->ToString());
      return StrCat(name, "(", Join(args, ", "), ")");
    }
  }
  return "?";
}

std::string Statement::ToString() const {
  switch (kind) {
    case StatementKind::kForEach: {
      std::vector<std::string> items;
      for (const GenItem& g : gen_items) {
        std::string s = g.expr->ToString();
        if (g.flatten) s = StrCat("FLATTEN(", s, ")");
        if (!g.alias.empty()) s = StrCat(s, " AS ", g.alias);
        items.push_back(std::move(s));
      }
      return StrCat(target, " = FOREACH ", inputs[0], " GENERATE ",
                    Join(items, ", "), ";");
    }
    case StatementKind::kFilter:
      return StrCat(target, " = FILTER ", inputs[0], " BY ",
                    condition->ToString(), ";");
    case StatementKind::kGroup:
    case StatementKind::kCogroup:
    case StatementKind::kJoin: {
      const char* op = kind == StatementKind::kGroup
                           ? "GROUP"
                           : (kind == StatementKind::kCogroup ? "COGROUP"
                                                              : "JOIN");
      std::vector<std::string> parts;
      for (const ByClause& bc : by_clauses) {
        std::vector<std::string> keys;
        for (const ExprPtr& k : bc.keys) keys.push_back(k->ToString());
        std::string key_s = keys.size() == 1
                                ? keys[0]
                                : StrCat("(", Join(keys, ", "), ")");
        parts.push_back(StrCat(bc.relation, " BY ", key_s));
      }
      return StrCat(target, " = ", op, " ", Join(parts, ", "), ";");
    }
    case StatementKind::kCross:
      return StrCat(target, " = CROSS ", Join(inputs, ", "), ";");
    case StatementKind::kUnion:
      return StrCat(target, " = UNION ", Join(inputs, ", "), ";");
    case StatementKind::kDistinct:
      return StrCat(target, " = DISTINCT ", inputs[0], ";");
    case StatementKind::kOrderBy: {
      std::vector<std::string> keys;
      for (const OrderKey& k : order_keys) {
        keys.push_back(StrCat(k.field, k.ascending ? " ASC" : " DESC"));
      }
      return StrCat(target, " = ORDER ", inputs[0], " BY ", Join(keys, ", "),
                    ";");
    }
    case StatementKind::kLimit:
      return StrCat(target, " = LIMIT ", inputs[0], " ", limit, ";");
    case StatementKind::kAlias:
      return StrCat(target, " = ", inputs[0], ";");
    case StatementKind::kSplit: {
      std::vector<std::string> parts;
      for (const auto& [name, cond] : split_targets) {
        parts.push_back(StrCat(name, " IF ", cond->ToString()));
      }
      return StrCat("SPLIT ", inputs[0], " INTO ", Join(parts, ", "), ";");
    }
  }
  return "?";
}

std::string Program::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(statements.size());
  for (const Statement& s : statements) lines.push_back(s.ToString());
  return Join(lines, "\n");
}

}  // namespace lipstick::pig

#ifndef LIPSTICK_PIG_UDF_H_
#define LIPSTICK_PIG_UDF_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"

namespace lipstick::pig {

/// A user-defined function: takes evaluated argument values (scalars or
/// bags) and returns a Value. UDFs are black boxes for provenance — the
/// engine records a function-name node whose inputs are the tuples the
/// arguments derive from, exactly as prescribed for FOREACH (Black Box).
using UdfFn = std::function<Result<Value>(const std::vector<Value>& args)>;

/// Infers the UDF result type from argument types (for semantic analysis).
using UdfTypeFn =
    std::function<Result<FieldType>(const std::vector<FieldType>& args)>;

struct UdfEntry {
  UdfFn fn;
  UdfTypeFn return_type;
};

/// Name-keyed registry of UDFs. Lookup is case-insensitive, matching Pig
/// Latin's treatment of function names. Thread-compatible: register
/// everything before execution starts.
class UdfRegistry {
 public:
  /// Registers `entry` under `name`; fails if already present.
  Status Register(const std::string& name, UdfEntry entry);

  /// Convenience: register with a fixed return type.
  Status Register(const std::string& name, UdfFn fn, FieldType return_type);

  /// Returns the entry or nullptr.
  const UdfEntry* Lookup(const std::string& name) const;

 private:
  std::map<std::string, UdfEntry> entries_;  // lower-cased keys
};

}  // namespace lipstick::pig

#endif  // LIPSTICK_PIG_UDF_H_

#include "pig/parser.h"

#include "common/str_util.h"
#include "pig/lexer.h"

namespace lipstick::pig {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!Check(TokenKind::kEof)) {
      LIPSTICK_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      program.statements.push_back(std::move(stmt));
    }
    return program;
  }

  Result<ExprPtr> ParseSingleExpression() {
    LIPSTICK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!Check(TokenKind::kEof)) {
      return Err("trailing tokens after expression");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Prev() const { return tokens_[pos_ - 1]; }
  bool Check(TokenKind k) const { return Peek().kind == k; }
  bool CheckKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind k) {
    if (!Check(k)) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }

  /// True if `k` can continue a binary expression after a closing paren.
  static bool IsExprContinuation(TokenKind k) {
    switch (k) {
      case TokenKind::kPlus:
      case TokenKind::kMinus:
      case TokenKind::kStar:
      case TokenKind::kSlash:
      case TokenKind::kPercent:
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return true;
      default:
        return false;
    }
  }

  Status Err(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(
        StrCat("line ", t.loc.line, ":", t.loc.column, ": ", msg,
               t.kind == TokenKind::kEof
                   ? " (at end of input)"
                   : StrCat(" (near '", t.text.empty() ? "?" : t.text, "')")));
  }

  Status Expect(TokenKind k, const char* what) {
    if (Match(k)) return Status::OK();
    return Err(StrCat("expected ", what));
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (!Check(TokenKind::kIdent)) return Err(StrCat("expected ", what));
    return Advance().text;
  }

  Result<Statement> ParseStatement() {
    Statement stmt;
    stmt.loc = Peek().loc;
    // SPLIT is the one statement with no assignment target (unless "split"
    // is being used as a plain relation name on the left of '=').
    if (CheckKeyword("split") && tokens_[pos_ + 1].kind != TokenKind::kEquals) {
      Advance();
      LIPSTICK_RETURN_IF_ERROR(ParseSplit(&stmt));
      LIPSTICK_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
      return stmt;
    }
    LIPSTICK_ASSIGN_OR_RETURN(stmt.target, ExpectIdent("assignment target"));
    LIPSTICK_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'='"));

    if (MatchKeyword("foreach")) {
      LIPSTICK_RETURN_IF_ERROR(ParseForEach(&stmt));
    } else if (MatchKeyword("filter")) {
      LIPSTICK_RETURN_IF_ERROR(ParseFilter(&stmt));
    } else if (MatchKeyword("group")) {
      LIPSTICK_RETURN_IF_ERROR(ParseGrouping(&stmt, StatementKind::kGroup));
    } else if (MatchKeyword("cogroup")) {
      LIPSTICK_RETURN_IF_ERROR(ParseGrouping(&stmt, StatementKind::kCogroup));
    } else if (MatchKeyword("join")) {
      LIPSTICK_RETURN_IF_ERROR(ParseGrouping(&stmt, StatementKind::kJoin));
    } else if (MatchKeyword("cross")) {
      LIPSTICK_RETURN_IF_ERROR(ParseNameList(&stmt, StatementKind::kCross, 2));
    } else if (MatchKeyword("union")) {
      LIPSTICK_RETURN_IF_ERROR(ParseNameList(&stmt, StatementKind::kUnion, 2));
    } else if (MatchKeyword("distinct")) {
      stmt.kind = StatementKind::kDistinct;
      LIPSTICK_ASSIGN_OR_RETURN(std::string in, ExpectIdent("relation name"));
      stmt.inputs.push_back(std::move(in));
    } else if (MatchKeyword("order")) {
      LIPSTICK_RETURN_IF_ERROR(ParseOrder(&stmt));
    } else if (MatchKeyword("limit")) {
      stmt.kind = StatementKind::kLimit;
      LIPSTICK_ASSIGN_OR_RETURN(std::string in, ExpectIdent("relation name"));
      stmt.inputs.push_back(std::move(in));
      if (!Check(TokenKind::kInt)) return Err("expected limit count");
      stmt.limit = Advance().int_value;
    } else if (Check(TokenKind::kIdent)) {
      stmt.kind = StatementKind::kAlias;
      stmt.inputs.push_back(Advance().text);
    } else {
      return Err("expected operator keyword or relation name");
    }
    LIPSTICK_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
    return stmt;
  }

  Status ParseForEach(Statement* stmt) {
    stmt->kind = StatementKind::kForEach;
    LIPSTICK_ASSIGN_OR_RETURN(std::string in, ExpectIdent("relation name"));
    stmt->inputs.push_back(std::move(in));
    if (!MatchKeyword("generate")) return Err("expected GENERATE");
    do {
      GenItem item;
      if (MatchKeyword("flatten")) {
        item.flatten = true;
        LIPSTICK_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
        LIPSTICK_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        LIPSTICK_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      } else {
        LIPSTICK_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (MatchKeyword("as")) {
        LIPSTICK_ASSIGN_OR_RETURN(item.alias, ExpectIdent("field alias"));
      }
      stmt->gen_items.push_back(std::move(item));
    } while (Match(TokenKind::kComma));
    return Status::OK();
  }

  Status ParseFilter(Statement* stmt) {
    stmt->kind = StatementKind::kFilter;
    LIPSTICK_ASSIGN_OR_RETURN(std::string in, ExpectIdent("relation name"));
    stmt->inputs.push_back(std::move(in));
    if (!MatchKeyword("by")) return Err("expected BY");
    LIPSTICK_ASSIGN_OR_RETURN(stmt->condition, ParseExpr());
    return Status::OK();
  }

  Status ParseGrouping(Statement* stmt, StatementKind kind) {
    stmt->kind = kind;
    do {
      ByClause clause;
      LIPSTICK_ASSIGN_OR_RETURN(clause.relation,
                                ExpectIdent("relation name"));
      // GROUP A ALL: single group holding every tuple (aggregation with no
      // grouping, as used by the paper's arithmetic-on-a-relation idiom).
      if (kind == StatementKind::kGroup && MatchKeyword("all")) {
        stmt->by_clauses.push_back(std::move(clause));
        break;
      }
      if (!MatchKeyword("by")) return Err("expected BY");
      // "BY (a, b)" is a key list, but "BY (Month - 1) / 3" is a single
      // parenthesized expression: try the list form first and backtrack if
      // the ')' turns out to be followed by more of an expression.
      size_t saved_pos = pos_;
      bool parsed_list = false;
      if (Match(TokenKind::kLParen)) {
        std::vector<ExprPtr> keys;
        Status list_status = Status::OK();
        do {
          Result<ExprPtr> key = ParseExpr();
          if (!key.ok()) {
            list_status = key.status();
            break;
          }
          keys.push_back(std::move(key).value());
        } while (Match(TokenKind::kComma));
        if (list_status.ok() && Match(TokenKind::kRParen) &&
            !IsExprContinuation(Peek().kind)) {
          clause.keys = std::move(keys);
          parsed_list = true;
        } else {
          pos_ = saved_pos;  // backtrack: single-expression key
        }
      }
      if (!parsed_list) {
        LIPSTICK_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
        clause.keys.push_back(std::move(key));
      }
      stmt->by_clauses.push_back(std::move(clause));
    } while (Match(TokenKind::kComma));
    if (kind == StatementKind::kGroup && stmt->by_clauses.size() != 1) {
      return Err("GROUP takes exactly one relation (use COGROUP)");
    }
    if (kind != StatementKind::kGroup && stmt->by_clauses.size() < 2) {
      return Err("COGROUP/JOIN require at least two relations");
    }
    return Status::OK();
  }

  Status ParseNameList(Statement* stmt, StatementKind kind, size_t min) {
    stmt->kind = kind;
    do {
      LIPSTICK_ASSIGN_OR_RETURN(std::string in, ExpectIdent("relation name"));
      stmt->inputs.push_back(std::move(in));
    } while (Match(TokenKind::kComma));
    if (stmt->inputs.size() < min) {
      return Err(StrCat("operator requires at least ", min, " relations"));
    }
    return Status::OK();
  }

  Status ParseSplit(Statement* stmt) {
    stmt->kind = StatementKind::kSplit;
    LIPSTICK_ASSIGN_OR_RETURN(std::string in, ExpectIdent("relation name"));
    stmt->inputs.push_back(std::move(in));
    if (!MatchKeyword("into")) return Err("expected INTO");
    do {
      LIPSTICK_ASSIGN_OR_RETURN(std::string name,
                                ExpectIdent("split target name"));
      if (!MatchKeyword("if")) return Err("expected IF");
      LIPSTICK_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      stmt->split_targets.emplace_back(std::move(name), std::move(cond));
    } while (Match(TokenKind::kComma));
    if (stmt->split_targets.size() < 2) {
      return Err("SPLIT requires at least two targets");
    }
    return Status::OK();
  }

  Status ParseOrder(Statement* stmt) {
    stmt->kind = StatementKind::kOrderBy;
    LIPSTICK_ASSIGN_OR_RETURN(std::string in, ExpectIdent("relation name"));
    stmt->inputs.push_back(std::move(in));
    if (!MatchKeyword("by")) return Err("expected BY");
    do {
      OrderKey key;
      LIPSTICK_ASSIGN_OR_RETURN(key.field, ParseQualifiedName());
      if (MatchKeyword("desc")) {
        key.ascending = false;
      } else {
        MatchKeyword("asc");
      }
      stmt->order_keys.push_back(std::move(key));
    } while (Match(TokenKind::kComma));
    return Status::OK();
  }

  Result<std::string> ParseQualifiedName() {
    LIPSTICK_ASSIGN_OR_RETURN(std::string name, ExpectIdent("field name"));
    while (Match(TokenKind::kDoubleColon)) {
      LIPSTICK_ASSIGN_OR_RETURN(std::string part,
                                ExpectIdent("qualified field name"));
      name += "::";
      name += part;
    }
    return name;
  }

  // ---- Expressions (precedence climbing) ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    LIPSTICK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (CheckKeyword("or")) {
      SourceLoc loc = Advance().loc;
      LIPSTICK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    LIPSTICK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (CheckKeyword("and")) {
      SourceLoc loc = Advance().loc;
      LIPSTICK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (CheckKeyword("not")) {
      SourceLoc loc = Advance().loc;
      LIPSTICK_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnOp::kNot, std::move(operand), loc);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    LIPSTICK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (CheckKeyword("is")) {
      SourceLoc loc = Advance().loc;
      bool negated = MatchKeyword("not");
      if (!MatchKeyword("null")) return Err("expected NULL after IS");
      return MakeUnary(negated ? UnOp::kIsNotNull : UnOp::kIsNull,
                       std::move(lhs), loc);
    }
    BinOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinOp::kEq; break;
      case TokenKind::kNe: op = BinOp::kNe; break;
      case TokenKind::kLt: op = BinOp::kLt; break;
      case TokenKind::kLe: op = BinOp::kLe; break;
      case TokenKind::kGt: op = BinOp::kGt; break;
      case TokenKind::kGe: op = BinOp::kGe; break;
      default:
        return lhs;
    }
    SourceLoc loc = Advance().loc;
    LIPSTICK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs), loc);
  }

  Result<ExprPtr> ParseAdditive() {
    LIPSTICK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      BinOp op = Check(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      SourceLoc loc = Advance().loc;
      LIPSTICK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    LIPSTICK_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kPercent)) {
      BinOp op = Check(TokenKind::kStar)
                     ? BinOp::kMul
                     : (Check(TokenKind::kSlash) ? BinOp::kDiv : BinOp::kMod);
      SourceLoc loc = Advance().loc;
      LIPSTICK_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      SourceLoc loc = Advance().loc;
      LIPSTICK_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnOp::kNeg, std::move(operand), loc);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    SourceLoc loc = Peek().loc;
    if (Match(TokenKind::kLParen)) {
      LIPSTICK_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      LIPSTICK_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return e;
    }
    if (Check(TokenKind::kInt)) {
      return MakeConst(Value::Int(Advance().int_value), loc);
    }
    if (Check(TokenKind::kDouble)) {
      return MakeConst(Value::Double(Advance().double_value), loc);
    }
    if (Check(TokenKind::kString)) {
      return MakeConst(Value::String(Advance().text), loc);
    }
    if (Check(TokenKind::kDollar)) {
      return MakePositional(static_cast<int>(Advance().int_value), loc);
    }
    if (MatchKeyword("true")) return MakeConst(Value::Bool(true), loc);
    if (MatchKeyword("false")) return MakeConst(Value::Bool(false), loc);
    if (MatchKeyword("null")) return MakeConst(Value::Null(), loc);
    if (Check(TokenKind::kIdent)) {
      LIPSTICK_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
      if (Match(TokenKind::kLParen)) {
        // Function call: aggregate or UDF.
        std::vector<ExprPtr> args;
        if (!Check(TokenKind::kRParen)) {
          do {
            LIPSTICK_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (Match(TokenKind::kComma));
        }
        LIPSTICK_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return MakeFuncCall(std::move(name), std::move(args), loc);
      }
      if (Match(TokenKind::kDot)) {
        LIPSTICK_ASSIGN_OR_RETURN(std::string field, ParseQualifiedName());
        return MakeBagProject(std::move(name), std::move(field), loc);
      }
      return MakeFieldRef(std::move(name), loc);
    }
    return Err("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  LIPSTICK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseProgram();
}

Result<ExprPtr> ParseExpression(std::string_view source) {
  LIPSTICK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseSingleExpression();
}

}  // namespace lipstick::pig

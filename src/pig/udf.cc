#include "pig/udf.h"

#include "common/str_util.h"

namespace lipstick::pig {

Status UdfRegistry::Register(const std::string& name, UdfEntry entry) {
  std::string key = ToLower(name);
  if (entries_.count(key)) {
    return Status::AlreadyExists(StrCat("UDF '", name, "' already registered"));
  }
  entries_.emplace(std::move(key), std::move(entry));
  return Status::OK();
}

Status UdfRegistry::Register(const std::string& name, UdfFn fn,
                             FieldType return_type) {
  UdfEntry entry;
  entry.fn = std::move(fn);
  entry.return_type = [return_type](const std::vector<FieldType>&) {
    return Result<FieldType>(return_type);
  };
  return Register(name, std::move(entry));
}

const UdfEntry* UdfRegistry::Lookup(const std::string& name) const {
  auto it = entries_.find(ToLower(name));
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace lipstick::pig

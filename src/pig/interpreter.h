#ifndef LIPSTICK_PIG_INTERPRETER_H_
#define LIPSTICK_PIG_INTERPRETER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/timer.h"
#include "pig/ast.h"
#include "pig/udf.h"
#include "provenance/graph.h"
#include "relational/value.h"

namespace lipstick::pig {

/// Name -> relation binding environment for program execution. Statements
/// rebind their target name; rebinding an existing name is allowed (used
/// e.g. for accumulating state: `R = UNION R, New;`).
class Environment {
 public:
  void Bind(const std::string& name, Relation relation) {
    relations_[name] = std::move(relation);
  }
  Result<const Relation*> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }
  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

 private:
  std::map<std::string, Relation> relations_;
};

/// Interprets Pig Latin programs over annotated nested relations, with
/// optional fine-grained provenance tracking.
///
/// When a ShardWriter is supplied, every operator emits provenance-graph
/// structure per Section 3.2 of the paper:
///   FOREACH (projection)  -> + node per output tuple
///   JOIN / CROSS          -> · node joining the source tuples
///   GROUP / COGROUP       -> δ node over the group members
///   DISTINCT              -> δ node over the equal tuples
///   FOREACH (aggregation) -> aggregate v-node fed by ⊗ pairs
///   FOREACH (UDF)         -> black-box node labeled with the function
///   FLATTEN               -> joint (·-style) dependence on outer + inner
///   FILTER / UNION / ORDER / LIMIT -> annotations pass through
class Interpreter {
 public:
  explicit Interpreter(const UdfRegistry* udfs) : udfs_(udfs) {}

  /// Executes all statements, binding each target into `env`. If `writer`
  /// is non-null, provenance is recorded into its graph. If `deadline` is
  /// non-null, execution stops with kDeadlineExceeded once it expires
  /// (checked between statements — a cooperative, not preemptive, budget).
  Status Run(const Program& program, Environment* env, ShardWriter* writer,
             const Deadline* deadline = nullptr) const;

  /// Executes one statement and returns the produced relation (also bound
  /// into `env`). Consults the global FaultInjector at the "pig.statement"
  /// failure point (key = target relation) before evaluating.
  Result<const Relation*> RunStatement(const Statement& stmt,
                                       Environment* env,
                                       ShardWriter* writer) const;

 private:
  const UdfRegistry* udfs_;
};

/// Static semantic analysis: infers the schema of every statement target
/// given the schemas of the free input relations. Detects unknown
/// relations/fields and type errors without executing. Returns the map of
/// all bound names (inputs included).
Result<std::map<std::string, SchemaPtr>> AnalyzeProgram(
    const Program& program, std::map<std::string, SchemaPtr> schemas,
    const UdfRegistry* udfs);

/// Infers the result type of `expr` against tuples of `schema`.
Result<FieldType> InferExprType(const Expr& expr, const Schema& schema,
                                const UdfRegistry* udfs);

/// True if `name` is one of the built-in aggregates COUNT/SUM/MIN/MAX/AVG.
bool IsAggregateFunction(const std::string& name);

}  // namespace lipstick::pig

#endif  // LIPSTICK_PIG_INTERPRETER_H_

#include "pig/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace lipstick::pig {

bool Token::IsKeyword(std::string_view keyword) const {
  if (kind != TokenKind::kIdent) return false;
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      LIPSTICK_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      if (AtEnd()) break;
      SourceLoc loc{line_, col_};
      char c = Peek();
      Token tok;
      tok.loc = loc;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.kind = TokenKind::kIdent;
        tok.text = LexIdent();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        LIPSTICK_RETURN_IF_ERROR(LexNumber(&tok));
      } else if (c == '\'') {
        LIPSTICK_RETURN_IF_ERROR(LexString(&tok));
      } else if (c == '$') {
        Advance();
        if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
          return Err(loc, "expected digit after '$'");
        }
        Token num;
        LIPSTICK_RETURN_IF_ERROR(LexNumber(&num));
        if (num.kind != TokenKind::kInt) {
          return Err(loc, "positional reference must be an integer");
        }
        tok.kind = TokenKind::kDollar;
        tok.int_value = num.int_value;
      } else {
        LIPSTICK_RETURN_IF_ERROR(LexSymbol(&tok));
      }
      tokens.push_back(std::move(tok));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.loc = {line_, col_};
    tokens.push_back(eof);
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  static Status Err(SourceLoc loc, const std::string& msg) {
    return Status::ParseError(
        StrCat("line ", loc.line, ":", loc.column, ": ", msg));
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && PeekAt(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && PeekAt(1) == '*') {
        SourceLoc start{line_, col_};
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && PeekAt(1) == '/')) Advance();
        if (AtEnd()) return Err(start, "unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  std::string LexIdent() {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      Advance();
    }
    return std::string(src_.substr(start, pos_ - start));
  }

  Status LexNumber(Token* tok) {
    size_t start = pos_;
    bool is_double = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
      is_double = true;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      size_t save = pos_;
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_double = true;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      } else {
        pos_ = save;  // 'e' belongs to a following identifier
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    if (is_double) {
      tok->kind = TokenKind::kDouble;
      tok->double_value = std::strtod(text.c_str(), nullptr);
    } else {
      tok->kind = TokenKind::kInt;
      tok->int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  Status LexString(Token* tok) {
    SourceLoc start{line_, col_};
    Advance();  // opening quote
    std::string out;
    while (!AtEnd() && Peek() != '\'') {
      if (Peek() == '\\' && (PeekAt(1) == '\'' || PeekAt(1) == '\\')) {
        Advance();
      }
      out += Peek();
      Advance();
    }
    if (AtEnd()) return Err(start, "unterminated string literal");
    Advance();  // closing quote
    tok->kind = TokenKind::kString;
    tok->text = std::move(out);
    return Status::OK();
  }

  Status LexSymbol(Token* tok) {
    SourceLoc loc{line_, col_};
    char c = Peek();
    char c2 = PeekAt(1);
    auto two = [&](TokenKind k) {
      tok->kind = k;
      Advance();
      Advance();
      return Status::OK();
    };
    auto one = [&](TokenKind k) {
      tok->kind = k;
      Advance();
      return Status::OK();
    };
    switch (c) {
      case '=':
        return c2 == '=' ? two(TokenKind::kEq) : one(TokenKind::kEquals);
      case '!':
        if (c2 == '=') return two(TokenKind::kNe);
        return Err(loc, "expected '=' after '!'");
      case '<':
        return c2 == '=' ? two(TokenKind::kLe) : one(TokenKind::kLt);
      case '>':
        return c2 == '=' ? two(TokenKind::kGe) : one(TokenKind::kGt);
      case ':':
        if (c2 == ':') return two(TokenKind::kDoubleColon);
        return Err(loc, "expected ':' after ':'");
      case ';':
        return one(TokenKind::kSemicolon);
      case ',':
        return one(TokenKind::kComma);
      case '(':
        return one(TokenKind::kLParen);
      case ')':
        return one(TokenKind::kRParen);
      case '.':
        return one(TokenKind::kDot);
      case '+':
        return one(TokenKind::kPlus);
      case '-':
        return one(TokenKind::kMinus);
      case '*':
        return one(TokenKind::kStar);
      case '/':
        return one(TokenKind::kSlash);
      case '%':
        return one(TokenKind::kPercent);
      default:
        return Err(loc, StrCat("unexpected character '", std::string(1, c),
                               "'"));
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace lipstick::pig

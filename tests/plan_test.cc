// Plan algebra tests: parser + canonicalization, optimizer rewrites, the
// plan-equivalence suite (the fused executor must render byte-identically
// to materializing a standalone graph between every stage, including dot
// and provio exports), and the composed-view prefix cache.

#include <gtest/gtest.h>

#include <sstream>

#include "common/str_util.h"
#include "provenance/dot.h"
#include "provenance/exec.h"
#include "provenance/optimizer.h"
#include "provenance/plan.h"
#include "provenance/provio.h"
#include "provenance/query.h"
#include "provenance/snapshot.h"
#include "provenance/view.h"
#include "test_util.h"
#include "workflowgen/dealership.h"

namespace lipstick {
namespace {

// ---------------------------------------------------------------------
// Parser + canonicalization
// ---------------------------------------------------------------------

Plan MustParse(const std::string& op,
               const std::vector<std::string>& args = {}) {
  Result<Plan> plan = ParsePlan(op, args);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? *plan : Plan{};
}

std::string ParseError(const std::string& op,
                       const std::vector<std::string>& args = {}) {
  Result<Plan> plan = ParsePlan(op, args);
  EXPECT_FALSE(plan.ok()) << "parsed: " << plan->Canonical();
  return plan.ok() ? "" : std::string(plan.status().message());
}

TEST(PlanParseTest, SingleOpsCanonicalize) {
  EXPECT_EQ(MustParse("stats").Canonical(), "stats");
  EXPECT_EQ(MustParse("zoomout", {"b", "a"}).Canonical(), "zoomout(a,b)");
  EXPECT_EQ(MustParse("subgraph", {"42"}).Canonical(), "subgraph(42)");
  EXPECT_EQ(MustParse("expr", {"7"}).Canonical(), "expr(7)");
  EXPECT_EQ(MustParse("depends", {"7", "9"}).Canonical(), "depends(7,9)");
}

TEST(PlanParseTest, EquivalentRequestsShareOneCanonicalString) {
  // Module order and comma-vs-whitespace spelling don't matter.
  EXPECT_EQ(MustParse("zoomout", {"b", "a"}).Canonical(),
            MustParse("zoomout", {"a,b"}).Canonical());
  // Conjunction order in find/restrict doesn't matter.
  EXPECT_EQ(
      MustParse("find", {"--payload", "x", "--label", "token"}).Canonical(),
      MustParse("find", {"--label", "token", "--payload", "x"}).Canonical());
}

TEST(PlanParseTest, FindTrailingOddFlagIgnored) {
  // The legacy parser consumed flags in pairs and silently dropped a
  // trailing odd flag; the plan parser reproduces that.
  EXPECT_EQ(MustParse("find", {"--label", "token", "--payload"}).Canonical(),
            "find(label=token)");
}

TEST(PlanParseTest, PipelineSplitsOnPipes) {
  Plan plan = MustParse("zoomout m1,m2 | subgraph 42 | stats");
  ASSERT_EQ(plan.ops.size(), 3u);
  EXPECT_EQ(plan.ops[0].kind, PlanOpKind::kZoomOut);
  EXPECT_EQ(plan.ops[1].kind, PlanOpKind::kSubgraph);
  EXPECT_EQ(plan.ops[2].kind, PlanOpKind::kStats);
  EXPECT_EQ(plan.Canonical(), "zoomout(m1,m2)|subgraph(42)|stats");
  EXPECT_EQ(plan.NumViewOps(), 2u);
  EXPECT_TRUE(plan.HasTerminal());
  // Glued pipes split the same way, and args tokens join the op string.
  EXPECT_EQ(MustParse("zoomout a|stats").Canonical(),
            MustParse("zoomout", {"a", "|", "stats"}).Canonical());
}

TEST(PlanParseTest, SubgraphDirectionAndDeleteStage) {
  EXPECT_EQ(MustParse("subgraph", {"9,7", "up"}).Canonical(),
            "subgraph(7,9;up)");
  // delete is only a pipeline view stage; bare `delete` stays the CLI's
  // mutating subcommand.
  EXPECT_EQ(MustParse("delete 42 | stats").Canonical(), "delete(42)|stats");
  EXPECT_EQ(ParseError("delete", {"42"}),
            "unknown query operation 'delete'");
}

TEST(PlanParseTest, ErrorsMatchLegacyStrings) {
  EXPECT_EQ(ParseError("badop"), "unknown query operation 'badop'");
  EXPECT_EQ(ParseError("expr", {"notanid"}), "bad node id 'notanid'");
  EXPECT_EQ(ParseError("zoomout"), "zoomout needs at least one module");
  EXPECT_EQ(ParseError("subgraph", {"1", "2"}), "subgraph needs one node id");
  EXPECT_EQ(ParseError("find", {"--label", "nope"}), "unknown label 'nope'");
  EXPECT_EQ(ParseError("find", {"--role", "state"}), "unknown role 'state'");
}

TEST(PlanParseTest, PipelineShapeErrors) {
  EXPECT_EQ(ParseError("zoomout a | | stats"), "empty pipeline stage");
  EXPECT_EQ(ParseError("stats | zoomout a"),
            "terminal operation 'stats' must be last in pipeline");
  EXPECT_EQ(ParseError(""), "unknown query operation ''");
}

// ---------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------

bool HasRewrite(const OptimizedPlan& opt, const std::string& rule) {
  for (const PlanRewrite& rw : opt.rewrites) {
    if (rw.rule == rule) return true;
  }
  return false;
}

TEST(OptimizerTest, EmptyRestrictDroppedUnlessFinal) {
  OptimizedPlan opt = OptimizePlan(MustParse("restrict | stats"));
  EXPECT_EQ(opt.plan.Canonical(), "stats");
  EXPECT_TRUE(HasRewrite(opt, "noop_elimination"));
  // As the final op it renders the "restricted to N nodes" summary, so it
  // must survive.
  OptimizedPlan last = OptimizePlan(MustParse("restrict"));
  EXPECT_EQ(last.plan.Canonical(), "restrict()");
}

TEST(OptimizerTest, AdjacentRestrictsFuse) {
  OptimizedPlan opt = OptimizePlan(
      MustParse("restrict --label token | restrict --payload x | stats"));
  EXPECT_EQ(opt.plan.Canonical(), "restrict(label=token,payload=x)|stats");
  EXPECT_TRUE(HasRewrite(opt, "restrict_fusion"));
}

TEST(OptimizerTest, FusionPushdownAndPrefixesReported) {
  OptimizedPlan opt =
      OptimizePlan(MustParse("zoomout a | subgraph 42 | find --label token"));
  EXPECT_TRUE(HasRewrite(opt, "mask_fusion"));
  EXPECT_TRUE(HasRewrite(opt, "predicate_pushdown"));
  EXPECT_TRUE(HasRewrite(opt, "cache_split"));
  ASSERT_EQ(opt.view_prefixes.size(), 2u);
  EXPECT_EQ(opt.view_prefixes[0], "zoomout(a)");
  EXPECT_EQ(opt.view_prefixes[1], "zoomout(a)|subgraph(42)");
}

TEST(OptimizerTest, TerminalOnlyPlanHasNoPrefixes) {
  OptimizedPlan opt = OptimizePlan(MustParse("stats"));
  EXPECT_TRUE(opt.view_prefixes.empty());
  EXPECT_TRUE(opt.rewrites.empty());
}

// ---------------------------------------------------------------------
// Plan equivalence: fused executor vs materialize-between-stages
// ---------------------------------------------------------------------

class PlanEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workflowgen::DealershipConfig cfg;
    cfg.num_cars = 240;
    cfg.num_executions = 3;
    cfg.seed = 11;
    cfg.accept_probability = 0;
    auto wf = workflowgen::DealershipWorkflow::Create(cfg);
    ASSERT_TRUE(wf.ok()) << wf.status().ToString();
    graph_ = new ProvenanceGraph();
    ASSERT_TRUE((*wf)->Run(graph_).ok());
    graph_->Seal();
    auto snap = GraphSnapshot::Capture(*graph_);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    snap_ = new GraphSnapshot(std::move(*snap));
    auto tokens = FindNodes(*graph_, ByLabel(NodeLabel::kToken));
    ASSERT_FALSE(tokens.empty());
    token_ = tokens.front();
    auto outs = FindNodes(*graph_, And(ByRole(NodeRole::kModuleOutput),
                                       ByModule(*graph_, "aggregate")));
    ASSERT_FALSE(outs.empty());
    agg_out_ = outs.front();
  }

  static void TearDownTestSuite() {
    delete snap_;
    snap_ = nullptr;
    delete graph_;
    graph_ = nullptr;
  }

  static std::string Fused(const std::string& query, int threads = 1) {
    Result<Plan> plan = ParsePlan(query, {});
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    ExecOptions opts;
    opts.threads = threads;
    Result<std::string> out = ExecutePlan(*snap_, OptimizePlan(*plan), opts);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? *out : "";
  }

  static std::string Naive(const std::string& query, int threads = 1) {
    Result<Plan> plan = ParsePlan(query, {});
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    Result<std::string> out = ExecutePlanNaive(*snap_, *plan, threads);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? *out : "";
  }

  static ProvenanceGraph* graph_;
  static GraphSnapshot* snap_;
  static NodeId token_;
  static NodeId agg_out_;
};

ProvenanceGraph* PlanEquivalenceTest::graph_ = nullptr;
GraphSnapshot* PlanEquivalenceTest::snap_ = nullptr;
NodeId PlanEquivalenceTest::token_ = kInvalidNode;
NodeId PlanEquivalenceTest::agg_out_ = kInvalidNode;

TEST_F(PlanEquivalenceTest, PipelineMatrixRendersIdentically) {
  const std::vector<std::string> queries = {
      "zoomout dealer | stats",
      "zoomout dealer | find --label token",
      "zoomout dealer,aggregate | stats",
      StrCat("zoomout dealer | subgraph ", agg_out_, " | stats"),
      StrCat("subgraph ", agg_out_, " | find --label token"),
      StrCat("subgraph ", token_, " down | stats"),
      StrCat("subgraph ", agg_out_, " up | stats"),
      "restrict --label token | stats",
      "zoomout dealer | restrict --label token | find --payload Honda",
      StrCat("delete ", token_, " | stats"),
      StrCat("delete ", token_, " | find --label token"),
      StrCat("zoomout dealer | expr ", agg_out_),
      StrCat("zoomout dealer | depends ", agg_out_, " ", token_),
      StrCat("depends ", agg_out_, " ", agg_out_),
  };
  for (const std::string& q : queries) {
    EXPECT_EQ(Fused(q), Naive(q)) << "query: " << q;
    EXPECT_FALSE(Fused(q).empty()) << "query: " << q;
  }
}

TEST_F(PlanEquivalenceTest, ViewFinalPipelinesRenderSummaries) {
  // A chain ending in a view op renders that op's legacy summary line.
  const std::vector<std::string> queries = {
      "zoomout dealer",
      StrCat("zoomout dealer | subgraph ", agg_out_),
      "zoomout dealer | restrict --label token",
      StrCat("subgraph ", agg_out_, " | delete ", token_),
  };
  for (const std::string& q : queries) {
    std::string fused = Fused(q);
    EXPECT_EQ(fused, Naive(q)) << "query: " << q;
    EXPECT_NE(fused.find("nodes"), std::string::npos) << fused;
  }
}

TEST_F(PlanEquivalenceTest, ThreadCountDoesNotChangeOutput) {
  const std::string q =
      StrCat("zoomout dealer | subgraph ", agg_out_, " | find --label token");
  EXPECT_EQ(Fused(q, 1), Fused(q, 4));
  EXPECT_EQ(Fused(q, 4), Naive(q, 4));
}

TEST_F(PlanEquivalenceTest, SingleOpsMatchLegacyRenderers) {
  // Plans without view ops render straight off the snapshot; plans with a
  // single view op go through the composed view. Both must agree with the
  // naive executor (which uses the legacy renderers verbatim).
  const std::vector<std::string> queries = {
      "stats",
      "find --label token",
      StrCat("expr ", agg_out_),
      StrCat("depends ", agg_out_, " ", token_),
      StrCat("subgraph ", agg_out_),
      "zoomout dealer",
  };
  for (const std::string& q : queries) {
    EXPECT_EQ(Fused(q), Naive(q)) << "query: " << q;
  }
}

TEST_F(PlanEquivalenceTest, ErrorsPropagateThroughBothExecutors) {
  Result<Plan> plan = ParsePlan("zoomout nosuchmodule | stats", {});
  ASSERT_TRUE(plan.ok());
  Result<std::string> fused = ExecutePlan(*snap_, OptimizePlan(*plan));
  Result<std::string> naive = ExecutePlanNaive(*snap_, *plan);
  ASSERT_FALSE(fused.ok());
  ASSERT_FALSE(naive.ok());
  EXPECT_EQ(fused.status().code(), naive.status().code());
  EXPECT_EQ(std::string(fused.status().message()),
            std::string(naive.status().message()));
}

TEST_F(PlanEquivalenceTest, DotAndProvioExportsMatchNaiveMaterialization) {
  Result<Plan> plan = ParsePlan(
      StrCat("zoomout dealer | subgraph ", agg_out_), {});
  ASSERT_TRUE(plan.ok());

  // Fused: one composed view, rendered / materialized once.
  Result<GraphView> view = BuildPlanView(*snap_, *plan);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  // Naive: materialize a standalone graph after every stage.
  Result<ProvenanceGraph> stage1 = [&]() -> Result<ProvenanceGraph> {
    Plan first;
    first.ops.push_back(plan->ops[0]);
    LIPSTICK_ASSIGN_OR_RETURN(GraphView v, BuildPlanView(*snap_, first));
    return v.Materialize();
  }();
  ASSERT_TRUE(stage1.ok()) << stage1.status().ToString();
  stage1->Seal();
  Result<GraphSnapshot> snap1 = GraphSnapshot::Capture(*stage1);
  ASSERT_TRUE(snap1.ok());
  Result<ProvenanceGraph> naive_final = [&]() -> Result<ProvenanceGraph> {
    Plan second;
    second.ops.push_back(plan->ops[1]);
    LIPSTICK_ASSIGN_OR_RETURN(GraphView v, BuildPlanView(*snap1, second));
    return v.Materialize();
  }();
  ASSERT_TRUE(naive_final.ok()) << naive_final.status().ToString();
  naive_final->Seal();

  // Dot: rendering the composed view directly == rendering the
  // stage-by-stage materialized graph.
  std::ostringstream fused_dot, naive_dot;
  LIPSTICK_ASSERT_OK(WriteDot(*view, fused_dot));
  LIPSTICK_ASSERT_OK(WriteDot(*naive_final, naive_dot));
  EXPECT_EQ(fused_dot.str(), naive_dot.str());

  // Provio: materializing the composed view == the naive chain.
  Result<ProvenanceGraph> fused_mat = view->Materialize();
  ASSERT_TRUE(fused_mat.ok());
  fused_mat->Seal();
  std::ostringstream fused_pg, naive_pg;
  LIPSTICK_ASSERT_OK(SaveGraph(*fused_mat, fused_pg));
  LIPSTICK_ASSERT_OK(SaveGraph(*naive_final, naive_pg));
  EXPECT_EQ(fused_pg.str(), naive_pg.str());
}

// ---------------------------------------------------------------------
// PlanViewCache: composed-view prefix reuse
// ---------------------------------------------------------------------

TEST_F(PlanEquivalenceTest, CachedExecutionMatchesUncached) {
  PlanViewCache cache(8);
  ExecOptions opts;
  opts.cache = &cache;
  opts.scope = "test";

  const std::string q1 = "zoomout dealer | stats";
  const std::string q2 =
      StrCat("zoomout dealer | subgraph ", agg_out_, " | stats");

  Result<Plan> p1 = ParsePlan(q1, {});
  Result<Plan> p2 = ParsePlan(q2, {});
  ASSERT_TRUE(p1.ok() && p2.ok());

  // Cold: miss, publishes the "zoomout(dealer)" prefix.
  Result<std::string> r1 = ExecutePlan(*snap_, OptimizePlan(*p1), opts);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GE(cache.entries(), 1u);

  // q2 shares the zoomout prefix: hit, and output still byte-identical to
  // the uncached run.
  Result<std::string> r2 = ExecutePlan(*snap_, OptimizePlan(*p2), opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(*r2, Fused(q2));

  // Re-running q2 hits its own longest prefix.
  Result<std::string> r3 = ExecutePlan(*snap_, OptimizePlan(*p2), opts);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(*r3, *r2);

  // Re-running q1 also hits; outputs stay stable.
  Result<std::string> r4 = ExecutePlan(*snap_, OptimizePlan(*p1), opts);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(*r4, *r1);
}

TEST_F(PlanEquivalenceTest, CacheCapacityZeroDisables) {
  PlanViewCache cache(0);
  ExecOptions opts;
  opts.cache = &cache;
  opts.scope = "test";
  Result<Plan> plan = ParsePlan("zoomout dealer | stats", {});
  ASSERT_TRUE(plan.ok());
  for (int i = 0; i < 2; ++i) {
    Result<std::string> out = ExecutePlan(*snap_, OptimizePlan(*plan), opts);
    ASSERT_TRUE(out.ok());
  }
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST_F(PlanEquivalenceTest, CacheEvictsLeastRecentlyUsed) {
  PlanViewCache cache(1);
  ExecOptions opts;
  opts.cache = &cache;
  opts.scope = "test";
  Result<Plan> pa = ParsePlan("zoomout dealer | stats", {});
  Result<Plan> pb = ParsePlan("zoomout aggregate | stats", {});
  ASSERT_TRUE(pa.ok() && pb.ok());
  ASSERT_TRUE(ExecutePlan(*snap_, OptimizePlan(*pa), opts).ok());
  ASSERT_TRUE(ExecutePlan(*snap_, OptimizePlan(*pb), opts).ok());
  EXPECT_EQ(cache.entries(), 1u);
  // pa's prefix was evicted by pb's: running pa again misses.
  uint64_t misses_before = cache.misses();
  ASSERT_TRUE(ExecutePlan(*snap_, OptimizePlan(*pa), opts).ok());
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST_F(PlanEquivalenceTest, CacheScopesAreIsolated) {
  PlanViewCache cache(8);
  Result<Plan> plan = ParsePlan("zoomout dealer | stats", {});
  ASSERT_TRUE(plan.ok());
  ExecOptions a;
  a.cache = &cache;
  a.scope = "graph-a";
  ExecOptions b;
  b.cache = &cache;
  b.scope = "graph-b";
  ASSERT_TRUE(ExecutePlan(*snap_, OptimizePlan(*plan), a).ok());
  // Same prefix under a different scope must not hit.
  ASSERT_TRUE(ExecutePlan(*snap_, OptimizePlan(*plan), b).ok());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

}  // namespace
}  // namespace lipstick

#include <gtest/gtest.h>

#include "test_util.h"
#include "workflow/executor.h"
#include "workflow/module.h"
#include "workflow/workflow.h"

namespace lipstick {
namespace {

using ::lipstick::testing::I;
using ::lipstick::testing::MakeSchema;
using ::lipstick::testing::S;
using ::lipstick::testing::T;

SchemaPtr NumSchema() { return MakeSchema({{"x", FieldType::Int()}}); }

/// A module that doubles its input: In(x) -> Out(x*2).
Result<ModuleSpec> DoublerModule() {
  return MakeModule("doubler", {{"In", NumSchema()}}, {},
                    {{"Out", NumSchema()}}, "",
                    "Out = FOREACH In GENERATE x * 2 AS x;");
}

/// A module that accumulates everything it ever saw in state and outputs
/// the running total: In(x), state Seen(x) -> Out(total).
Result<ModuleSpec> AccumulatorModule() {
  return MakeModule("accumulator", {{"In", NumSchema()}},
                    {{"Seen", NumSchema()}},
                    {{"Total", MakeSchema({{"t", FieldType::Int()}})}},
                    "Seen = UNION Seen, In;\n",
                    "G = GROUP Seen ALL;\n"
                    "Total = FOREACH G GENERATE SUM(Seen.x) AS t;\n");
}

TEST(ModuleSpecTest, ValidateAcceptsWellFormed) {
  auto spec = DoublerModule();
  LIPSTICK_ASSERT_OK(spec.status());
  LIPSTICK_EXPECT_OK(spec->Validate(nullptr));
}

TEST(ModuleSpecTest, ValidateRejectsSchemaNameOverlap) {
  auto spec = MakeModule("bad", {{"R", NumSchema()}}, {{"R", NumSchema()}},
                         {}, "", "");
  LIPSTICK_ASSERT_OK(spec.status());
  EXPECT_FALSE(spec->Validate(nullptr).ok());
}

TEST(ModuleSpecTest, ValidateRejectsUnboundOutput) {
  auto spec = MakeModule("bad", {{"In", NumSchema()}}, {},
                         {{"Out", NumSchema()}}, "",
                         "Other = FOREACH In GENERATE x;");
  LIPSTICK_ASSERT_OK(spec.status());
  Status st = spec->Validate(nullptr);
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_NE(st.message().find("does not bind output"), std::string::npos);
}

TEST(ModuleSpecTest, ValidateRejectsWrongOutputSchema) {
  auto spec = MakeModule("bad", {{"In", NumSchema()}}, {},
                         {{"Out", NumSchema()}}, "",
                         "Out = FOREACH In GENERATE x, x AS y;");
  LIPSTICK_ASSERT_OK(spec.status());
  EXPECT_FALSE(spec->Validate(nullptr).ok());
}

TEST(ModuleSpecTest, ValidateRejectsIncompatibleStateRebind) {
  auto spec = MakeModule("bad", {{"In", NumSchema()}}, {{"S", NumSchema()}},
                         {}, "S = FOREACH In GENERATE x, x AS y;", "");
  LIPSTICK_ASSERT_OK(spec.status());
  EXPECT_FALSE(spec->Validate(nullptr).ok());
}

TEST(ModuleSpecTest, ValidateCatchesPigErrors) {
  auto spec = MakeModule("bad", {{"In", NumSchema()}}, {},
                         {{"Out", NumSchema()}}, "",
                         "Out = FOREACH In GENERATE missing_field;");
  LIPSTICK_ASSERT_OK(spec.status());
  EXPECT_FALSE(spec->Validate(nullptr).ok());
}

TEST(ModuleSpecTest, MakeModuleReportsParseErrors) {
  auto spec = MakeModule("bad", {}, {}, {}, "", "Out = FILTER;");
  EXPECT_EQ(spec.status().code(), StatusCode::kParseError);
}

class WorkflowFixture : public ::testing::Test {
 protected:
  // in -> a(doubler) -> b(doubler) -> (out implicitly b)
  void BuildChain(Workflow* w) {
    auto doubler = DoublerModule();
    LIPSTICK_ASSERT_OK(doubler.status());
    LIPSTICK_ASSERT_OK(w->AddModule(std::move(*doubler)));
    auto input = MakeModule("source", {{"Ext", NumSchema()}}, {},
                            {{"Out", NumSchema()}}, "",
                            "Out = FOREACH Ext GENERATE x;");
    LIPSTICK_ASSERT_OK(input.status());
    LIPSTICK_ASSERT_OK(w->AddModule(std::move(*input)));
    LIPSTICK_ASSERT_OK(w->AddNode("in", "source"));
    LIPSTICK_ASSERT_OK(w->AddNode("a", "doubler"));
    LIPSTICK_ASSERT_OK(w->AddNode("b", "doubler"));
    LIPSTICK_ASSERT_OK(w->AddEdge("in", "a", {EdgeRelation{"Out", "In"}}));
    LIPSTICK_ASSERT_OK(w->AddEdge("a", "b", {EdgeRelation{"Out", "In"}}));
  }
};

TEST_F(WorkflowFixture, ValidateAndTopologicalOrder) {
  Workflow w;
  BuildChain(&w);
  LIPSTICK_EXPECT_OK(w.Validate(nullptr));
  auto order = w.TopologicalOrder();
  LIPSTICK_ASSERT_OK(order.status());
  EXPECT_EQ(*order, (std::vector<std::string>{"in", "a", "b"}));
  EXPECT_EQ(w.InputNodes(), std::vector<std::string>{"in"});
  EXPECT_EQ(w.OutputNodes(), std::vector<std::string>{"b"});
}

TEST_F(WorkflowFixture, RejectsCycles) {
  Workflow w;
  BuildChain(&w);
  LIPSTICK_ASSERT_OK(w.AddEdge("b", "a", {EdgeRelation{"Out", "In"}}));
  EXPECT_FALSE(w.Validate(nullptr).ok());
  EXPECT_FALSE(w.TopologicalOrder().ok());
}

TEST_F(WorkflowFixture, RejectsUnknownModulesAndBadEdges) {
  Workflow w;
  BuildChain(&w);
  LIPSTICK_ASSERT_OK(w.AddNode("ghost", "nonexistent"));
  EXPECT_FALSE(w.Validate(nullptr).ok());

  Workflow w2;
  BuildChain(&w2);
  LIPSTICK_ASSERT_OK(
      w2.AddEdge("a", "b", {EdgeRelation{"Nope", "In"}}));
  EXPECT_FALSE(w2.Validate(nullptr).ok());

  Workflow w3;
  BuildChain(&w3);
  LIPSTICK_ASSERT_OK(
      w3.AddEdge("a", "b", {EdgeRelation{"Out", "Nope"}}));
  EXPECT_FALSE(w3.Validate(nullptr).ok());
}

TEST_F(WorkflowFixture, RejectsUncoveredInputs) {
  Workflow w;
  BuildChain(&w);
  // c has an incoming edge carrying nothing for In? No: c has no incoming
  // edge at all -> it becomes an In node, which is fine. Instead, add an
  // edge to c that covers nothing.
  LIPSTICK_ASSERT_OK(w.AddNode("c", "doubler"));
  LIPSTICK_ASSERT_OK(w.AddEdge("b", "c", {EdgeRelation{"Out", "In"}}));
  LIPSTICK_EXPECT_OK(w.Validate(nullptr));

  // A second doubler whose input is not fed: give it an incoming edge that
  // feeds the wrong relation -> caught by edge validation; instead build a
  // module with two inputs and feed only one.
  Workflow w2;
  auto two_in = MakeModule(
      "two_in", {{"A", NumSchema()}, {"B", NumSchema()}}, {},
      {{"Out", NumSchema()}}, "", "Out = UNION A, B;");
  LIPSTICK_ASSERT_OK(two_in.status());
  auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                           {{"Out", NumSchema()}}, "",
                           "Out = FOREACH Ext GENERATE x;");
  LIPSTICK_ASSERT_OK(w2.AddModule(std::move(*source)));
  LIPSTICK_ASSERT_OK(w2.AddModule(std::move(*two_in)));
  LIPSTICK_ASSERT_OK(w2.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w2.AddNode("t", "two_in"));
  LIPSTICK_ASSERT_OK(w2.AddEdge("in", "t", {EdgeRelation{"Out", "A"}}));
  Status st = w2.Validate(nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not fed"), std::string::npos);
}

TEST_F(WorkflowFixture, RejectsDisconnectedGraph) {
  Workflow w;
  BuildChain(&w);
  LIPSTICK_ASSERT_OK(w.AddNode("island", "source"));
  EXPECT_FALSE(w.Validate(nullptr).ok());
}

TEST_F(WorkflowFixture, RejectsInstanceBoundToTwoModules) {
  Workflow w;
  BuildChain(&w);
  LIPSTICK_ASSERT_OK(w.AddNode("x", "source", "a"));  // instance "a" taken
  EXPECT_FALSE(w.Validate(nullptr).ok());
}

TEST_F(WorkflowFixture, ExecutesChain) {
  Workflow w;
  BuildChain(&w);
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());
  WorkflowInputs inputs;
  Bag ext;
  ext.Add(T({I(5)}));
  ext.Add(T({I(7)}));
  inputs["in"]["Ext"] = std::move(ext);
  auto outputs = exec.Execute(inputs, nullptr);
  LIPSTICK_ASSERT_OK(outputs.status());
  const Relation& out = outputs->at("b").at("Out");
  EXPECT_EQ(out.bag.ToString(), "{(20),(28)}");  // doubled twice
}

TEST(WorkflowStateTest, StateThreadsAcrossExecutions) {
  Workflow w;
  auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                           {{"Out", NumSchema()}}, "",
                           "Out = FOREACH Ext GENERATE x;");
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*source)));
  auto acc = AccumulatorModule();
  LIPSTICK_ASSERT_OK(acc.status());
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*acc)));
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w.AddNode("acc", "accumulator"));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "acc", {EdgeRelation{"Out", "In"}}));
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  // Execution sequence per Definition 2.3: each execution sees the state
  // produced by the previous one.
  for (int e = 1; e <= 3; ++e) {
    WorkflowInputs inputs;
    Bag ext;
    ext.Add(T({I(10 * e)}));
    inputs["in"]["Ext"] = std::move(ext);
    auto outputs = exec.Execute(inputs, nullptr);
    LIPSTICK_ASSERT_OK(outputs.status());
    int64_t expected = e == 1 ? 10 : (e == 2 ? 30 : 60);
    EXPECT_EQ(outputs->at("acc").at("Total").bag.at(0).tuple.at(0).int_value(),
              expected);
  }
  EXPECT_EQ(exec.executions_run(), 3u);
  auto state = exec.GetState("acc", "Seen");
  LIPSTICK_ASSERT_OK(state.status());
  EXPECT_EQ((*state)->bag.size(), 3u);
  EXPECT_FALSE(exec.GetState("acc", "Nope").ok());
  EXPECT_FALSE(exec.GetState("ghost", "Seen").ok());
}

TEST(WorkflowStateTest, SharedInstanceStateWithinOneExecution) {
  // Two nodes bound to the same instance: the second sees the state the
  // first wrote during the same execution (the dealership bid/purchase
  // pattern).
  Workflow w;
  auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                           {{"Out", NumSchema()}}, "",
                           "Out = FOREACH Ext GENERATE x;");
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*source)));
  auto acc = AccumulatorModule();
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*acc)));
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w.AddNode("first", "accumulator", "shared"));
  LIPSTICK_ASSERT_OK(w.AddNode("second", "accumulator", "shared"));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "first", {EdgeRelation{"Out", "In"}}));
  // Wire first->second so the DAG orders the shared instance; the Total
  // output cannot feed In (schema mismatch is fine: use a fresh relation).
  auto relay = MakeModule("relay", {{"T", MakeSchema({{"t", FieldType::Int()}})}},
                          {}, {{"Out", NumSchema()}}, "",
                          "Out = FOREACH T GENERATE t AS x;");
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*relay)));
  LIPSTICK_ASSERT_OK(w.AddNode("mid", "relay"));
  LIPSTICK_ASSERT_OK(w.AddEdge("first", "mid", {EdgeRelation{"Total", "T"}}));
  LIPSTICK_ASSERT_OK(w.AddEdge("mid", "second", {EdgeRelation{"Out", "In"}}));

  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());
  WorkflowInputs inputs;
  Bag ext;
  ext.Add(T({I(4)}));
  inputs["in"]["Ext"] = std::move(ext);
  auto outputs = exec.Execute(inputs, nullptr);
  LIPSTICK_ASSERT_OK(outputs.status());
  // first: Seen={4}, Total=4; mid relays 4; second: Seen={4,4}, Total=8.
  EXPECT_EQ(
      outputs->at("second").at("Total").bag.at(0).tuple.at(0).int_value(), 8);
}

TEST(WorkflowStateTest, UnorderedSharedInstanceRejected) {
  Workflow w;
  auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                           {{"Out", NumSchema()}}, "",
                           "Out = FOREACH Ext GENERATE x;");
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*source)));
  auto acc = AccumulatorModule();
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*acc)));
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w.AddNode("p", "accumulator", "shared"));
  LIPSTICK_ASSERT_OK(w.AddNode("q", "accumulator", "shared"));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "p", {EdgeRelation{"Out", "In"}}));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "q", {EdgeRelation{"Out", "In"}}));
  WorkflowExecutor exec(&w, nullptr);
  Status st = exec.Initialize();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not ordered"), std::string::npos);
}

TEST(WorkflowProvenanceTest, StructuralNodesAreCreated) {
  Workflow w;
  auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                           {{"Out", NumSchema()}}, "",
                           "Out = FOREACH Ext GENERATE x;");
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*source)));
  auto acc = AccumulatorModule();
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*acc)));
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w.AddNode("acc", "accumulator"));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "acc", {EdgeRelation{"Out", "In"}}));
  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());

  ProvenanceGraph graph;
  for (int e = 0; e < 2; ++e) {
    WorkflowInputs inputs;
    Bag ext;
    ext.Add(T({I(e)}));
    inputs["in"]["Ext"] = std::move(ext);
    LIPSTICK_ASSERT_OK(exec.Execute(inputs, &graph).status());
  }
  // Two executions x two nodes = four invocations.
  EXPECT_EQ(graph.invocations().size(), 4u);
  for (const InvocationInfo& inv : graph.invocations()) {
    EXPECT_FALSE(inv.input_nodes.empty());
    EXPECT_FALSE(inv.output_nodes.empty());
  }
  // Workflow-input tokens exist and are labeled by execution.
  size_t wf_inputs = 0;
  for (NodeId id : graph.AllNodeIds()) {
    if (graph.node(id).role() == NodeRole::kWorkflowInput) ++wf_inputs;
  }
  EXPECT_EQ(wf_inputs, 2u);
  // State flows from execution 0 to execution 1: the accumulator's second
  // invocation must consume a state ("s") node.
  bool second_exec_state = false;
  for (const InvocationInfo& inv : graph.invocations()) {
    if (graph.str(inv.module_name) == "accumulator" &&
        inv.execution == 1) {
      second_exec_state = !inv.state_nodes.empty();
    }
  }
  EXPECT_TRUE(second_exec_state);
}

TEST(WorkflowLoopTest, UnrolledLoopExecutes) {
  // A bounded loop unfolded into a DAG (Definition 2.2's remark): five
  // iterations of the doubler applied to the source's output.
  Workflow w;
  auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                           {{"Out", NumSchema()}}, "",
                           "Out = FOREACH Ext GENERATE x;");
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*source)));
  auto doubler = DoublerModule();
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*doubler)));
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  auto chain =
      w.AddUnrolledLoop("doubler", "iter", 5, {EdgeRelation{"Out", "In"}});
  LIPSTICK_ASSERT_OK(chain.status());
  ASSERT_EQ(chain->size(), 5u);
  LIPSTICK_ASSERT_OK(
      w.AddEdge("in", chain->front(), {EdgeRelation{"Out", "In"}}));
  LIPSTICK_EXPECT_OK(w.Validate(nullptr));

  WorkflowExecutor exec(&w, nullptr);
  LIPSTICK_ASSERT_OK(exec.Initialize());
  WorkflowInputs inputs;
  Bag ext;
  ext.Add(T({I(1)}));
  inputs["in"]["Ext"] = std::move(ext);
  ProvenanceGraph graph;
  auto outputs = exec.Execute(inputs, &graph);
  LIPSTICK_ASSERT_OK(outputs.status());
  EXPECT_EQ(outputs->at(chain->back())
                .at("Out")
                .bag.at(0)
                .tuple.at(0)
                .int_value(),
            32);  // 1 * 2^5
  // Six invocations (source + 5 iterations) in the provenance graph.
  EXPECT_EQ(graph.invocations().size(), 6u);
  // Zero iterations rejected.
  EXPECT_FALSE(w.AddUnrolledLoop("doubler", "bad", 0, {}).ok());
}

TEST(ParallelExecutorTest, MatchesSerialResults) {
  // A diamond: in -> a, b -> join. Parallel execution with 4 workers must
  // produce identical outputs to serial execution.
  Workflow w;
  auto source = MakeModule("source", {{"Ext", NumSchema()}}, {},
                           {{"Out", NumSchema()}}, "",
                           "Out = FOREACH Ext GENERATE x;");
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*source)));
  auto doubler = DoublerModule();
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*doubler)));
  auto merge = MakeModule("merge", {{"A", NumSchema()}, {"B", NumSchema()}},
                          {}, {{"Out", NumSchema()}}, "",
                          "Out = UNION A, B;");
  LIPSTICK_ASSERT_OK(w.AddModule(std::move(*merge)));
  LIPSTICK_ASSERT_OK(w.AddNode("in", "source"));
  LIPSTICK_ASSERT_OK(w.AddNode("a", "doubler"));
  LIPSTICK_ASSERT_OK(w.AddNode("b", "doubler"));
  LIPSTICK_ASSERT_OK(w.AddNode("m", "merge"));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "a", {EdgeRelation{"Out", "In"}}));
  LIPSTICK_ASSERT_OK(w.AddEdge("in", "b", {EdgeRelation{"Out", "In"}}));
  LIPSTICK_ASSERT_OK(w.AddEdge("a", "m", {EdgeRelation{"Out", "A"}}));
  LIPSTICK_ASSERT_OK(w.AddEdge("b", "m", {EdgeRelation{"Out", "B"}}));

  auto run = [&](int workers, ProvenanceGraph* graph) -> std::string {
    WorkflowExecutor exec(&w, nullptr);
    EXPECT_TRUE(exec.Initialize().ok());
    WorkflowInputs inputs;
    Bag ext;
    for (int i = 0; i < 10; ++i) ext.Add(T({I(i)}));
    inputs["in"]["Ext"] = std::move(ext);
    auto outputs = exec.Execute(inputs, graph, workers);
    EXPECT_TRUE(outputs.ok()) << outputs.status().ToString();
    if (!outputs.ok()) return "<failed>";
    return outputs->at("m").at("Out").bag.ToString();
  };
  std::string serial = run(1, nullptr);
  std::string parallel = run(4, nullptr);
  EXPECT_EQ(serial, parallel);

  // With provenance: same data results, and a well-formed sharded graph.
  ProvenanceGraph graph;
  std::string tracked = run(4, &graph);
  EXPECT_EQ(tracked, serial);
  graph.Seal();
  EXPECT_EQ(graph.invocations().size(), 4u);
  EXPECT_GT(graph.num_edges(), 0u);
  // Every recorded parent resolves to a live node across shards.
  for (NodeId id : graph.AllNodeIds()) {
    for (NodeId p : graph.ParentsOf(id)) {
      EXPECT_TRUE(graph.Contains(p));
    }
  }
}

}  // namespace
}  // namespace lipstick

#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/timer.h"

namespace lipstick {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("field x").WithContext("module dealer");
  EXPECT_EQ(s.ToString(), "NotFound: module dealer: field x");
  // WithContext on OK is a no-op.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kExecutionError,
        StatusCode::kIOError, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Doubler(Result<int> in) {
  LIPSTICK_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_EQ(Doubler(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(StrUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("FOREACH"), "foreach");
  EXPECT_EQ(ToUpper("count"), "COUNT");
  EXPECT_TRUE(StartsWith("Lipstick", "Lip"));
  EXPECT_FALSE(StartsWith("Lip", "Lipstick"));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, PickCoversAllElements) {
  Rng rng(13);
  std::vector<int> items{1, 2, 3, 4};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Pick(items));
  EXPECT_EQ(seen.size(), items.size());
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(1);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // scaled views agree
}

}  // namespace
}  // namespace lipstick

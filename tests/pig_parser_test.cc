#include <gtest/gtest.h>

#include "pig/lexer.h"
#include "pig/parser.h"
#include "test_util.h"

namespace lipstick::pig {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("A = FILTER B BY x >= 3.5;");
  LIPSTICK_ASSERT_OK(tokens.status());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kEquals,
                       TokenKind::kIdent, TokenKind::kIdent,
                       TokenKind::kIdent, TokenKind::kIdent,
                       TokenKind::kGe, TokenKind::kDouble,
                       TokenKind::kSemicolon, TokenKind::kEof}));
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("foreach FOREACH ForEach");
  LIPSTICK_ASSERT_OK(tokens.status());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE((*tokens)[i].IsKeyword("foreach"));
    EXPECT_TRUE((*tokens)[i].IsKeyword("FOREACH"));
    EXPECT_FALSE((*tokens)[i].IsKeyword("filter"));
  }
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize(R"('it\'s' 'a\\b')");
  LIPSTICK_ASSERT_OK(tokens.status());
  EXPECT_EQ((*tokens)[0].text, "it's");
  EXPECT_EQ((*tokens)[1].text, "a\\b");
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("A -- line comment\n/* block\ncomment */ = B;");
  LIPSTICK_ASSERT_OK(tokens.status());
  EXPECT_EQ((*tokens)[0].text, "A");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kEquals);
}

TEST(LexerTest, PositionalReference) {
  auto tokens = Tokenize("$12");
  LIPSTICK_ASSERT_OK(tokens.status());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kDollar);
  EXPECT_EQ((*tokens)[0].int_value, 12);
}

TEST(LexerTest, NumberForms) {
  auto tokens = Tokenize("1 2.5 1e3 7e");
  LIPSTICK_ASSERT_OK(tokens.status());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDouble);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 1000.0);
  // "7e" is the int 7 followed by identifier e (e belongs to next token).
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kIdent);
}

TEST(LexerTest, ErrorsCarryLocation) {
  auto tokens = Tokenize("A = B ? C;");
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 1:"), std::string::npos);
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
}

TEST(ParserTest, ForEachWithAliases) {
  auto program = ParseProgram(
      "B = FOREACH A GENERATE Model, COUNT(Inv) AS n, FLATTEN(F(x)) ;");
  LIPSTICK_ASSERT_OK(program.status());
  ASSERT_EQ(program->statements.size(), 1u);
  const Statement& s = program->statements[0];
  EXPECT_EQ(s.kind, StatementKind::kForEach);
  EXPECT_EQ(s.target, "B");
  ASSERT_EQ(s.gen_items.size(), 3u);
  EXPECT_EQ(s.gen_items[1].alias, "n");
  EXPECT_TRUE(s.gen_items[2].flatten);
}

TEST(ParserTest, FilterConditionPrecedence) {
  auto program =
      ParseProgram("B = FILTER A BY x + 1 * 2 == 3 AND NOT y < 4 OR z > 5;");
  LIPSTICK_ASSERT_OK(program.status());
  // OR binds loosest: ((x + (1*2) == 3) AND (NOT (y<4))) OR (z>5).
  EXPECT_EQ(program->statements[0].condition->ToString(),
            "((((x + (1 * 2)) == 3) AND NOT (y < 4)) OR (z > 5))");
}

TEST(ParserTest, GroupCogroupJoin) {
  auto program = ParseProgram(
      "G = GROUP A BY f;\n"
      "C = COGROUP A BY f, B BY g;\n"
      "J = JOIN A BY (f, h), B BY (g, k);\n");
  LIPSTICK_ASSERT_OK(program.status());
  EXPECT_EQ(program->statements[0].kind, StatementKind::kGroup);
  EXPECT_EQ(program->statements[1].kind, StatementKind::kCogroup);
  EXPECT_EQ(program->statements[2].kind, StatementKind::kJoin);
  EXPECT_EQ(program->statements[2].by_clauses[0].keys.size(), 2u);
}

TEST(ParserTest, GroupAll) {
  auto program = ParseProgram("G = GROUP A ALL;");
  LIPSTICK_ASSERT_OK(program.status());
  EXPECT_EQ(program->statements[0].kind, StatementKind::kGroup);
  EXPECT_TRUE(program->statements[0].by_clauses[0].keys.empty());
}

TEST(ParserTest, ParenthesizedKeyExpressionBacktracking) {
  // "(Month - 1) / 3" must parse as ONE key, not a parenthesized list.
  auto program =
      ParseProgram("J = JOIN A BY (Month - 1) / 3, B BY (Month - 1) / 3;");
  LIPSTICK_ASSERT_OK(program.status());
  const Statement& s = program->statements[0];
  ASSERT_EQ(s.by_clauses[0].keys.size(), 1u);
  EXPECT_EQ(s.by_clauses[0].keys[0]->ToString(), "((Month - 1) / 3)");
}

TEST(ParserTest, UnionCrossDistinctOrderLimitAlias) {
  auto program = ParseProgram(
      "U = UNION A, B, C;\n"
      "X = CROSS A, B;\n"
      "D = DISTINCT A;\n"
      "O = ORDER A BY f DESC, g;\n"
      "L = LIMIT A 10;\n"
      "Z = A;\n");
  LIPSTICK_ASSERT_OK(program.status());
  EXPECT_EQ(program->statements[0].inputs.size(), 3u);
  EXPECT_EQ(program->statements[3].order_keys[0].ascending, false);
  EXPECT_EQ(program->statements[3].order_keys[1].ascending, true);
  EXPECT_EQ(program->statements[4].limit, 10);
  EXPECT_EQ(program->statements[5].kind, StatementKind::kAlias);
}

TEST(ParserTest, QualifiedNamesAndBagProjection) {
  auto expr = ParseExpression("Winners.AllBids::DealerId");
  LIPSTICK_ASSERT_OK(expr.status());
  EXPECT_EQ((*expr)->kind, ExprKind::kBagProject);
  EXPECT_EQ((*expr)->name, "Winners");
  EXPECT_EQ((*expr)->sub_name, "AllBids::DealerId");

  auto ref = ParseExpression("Cars::Model");
  LIPSTICK_ASSERT_OK(ref.status());
  EXPECT_EQ((*ref)->kind, ExprKind::kFieldRef);
  EXPECT_EQ((*ref)->name, "Cars::Model");
}

TEST(ParserTest, Literals) {
  EXPECT_EQ((*ParseExpression("true"))->literal.bool_value(), true);
  EXPECT_EQ((*ParseExpression("null"))->literal.is_null(), true);
  EXPECT_EQ((*ParseExpression("'str'"))->literal.string_value(), "str");
  EXPECT_EQ((*ParseExpression("$3"))->position, 3);
  EXPECT_EQ((*ParseExpression("-2"))->kind, ExprKind::kUnaryOp);
}

TEST(ParserTest, ErrorsAreDescriptive) {
  auto missing_semi = ParseProgram("B = FILTER A BY x");
  EXPECT_FALSE(missing_semi.ok());
  EXPECT_NE(missing_semi.status().message().find("';'"), std::string::npos);

  EXPECT_FALSE(ParseProgram("B = FILTER A x > 1;").ok());   // missing BY
  EXPECT_FALSE(ParseProgram("B = GROUP A BY f, B BY g;").ok());  // GROUP 2 rel
  EXPECT_FALSE(ParseProgram("B = JOIN A BY f;").ok());      // JOIN 1 rel
  EXPECT_FALSE(ParseProgram("B = UNION A;").ok());          // UNION 1 rel
  EXPECT_FALSE(ParseProgram("= FILTER A BY x;").ok());      // no target
  EXPECT_FALSE(ParseProgram("B = FOREACH A GENERATE ;").ok());
}

TEST(ParserTest, ProgramToStringRoundTrips) {
  const char* source =
      "B = FOREACH A GENERATE Model, COUNT(Inv) AS n;\n"
      "C = FILTER B BY (n > 2) AND true;\n"
      "G = COGROUP B BY Model, C BY Model;\n"
      "J = JOIN B BY Model, C BY Model;\n"
      "U = UNION B, C;\n"
      "O = ORDER U BY Model DESC;\n"
      "L = LIMIT O 5;";
  auto program = ParseProgram(source);
  LIPSTICK_ASSERT_OK(program.status());
  // Re-parsing the printed form yields the same printed form (fixpoint).
  auto reparsed = ParseProgram(program->ToString());
  LIPSTICK_ASSERT_OK(reparsed.status());
  EXPECT_EQ(program->ToString(), reparsed->ToString());
}

TEST(ParserTest, KeywordsNotReservedAsFieldNames) {
  // "group" is routinely used as a field name after GROUP BY.
  auto program = ParseProgram("B = FOREACH G GENERATE group AS Model;");
  LIPSTICK_ASSERT_OK(program.status());
  EXPECT_EQ(program->statements[0].gen_items[0].expr->name, "group");
}

}  // namespace
}  // namespace lipstick::pig

#include <gtest/gtest.h>

#include <sstream>

#include "provenance/graph.h"
#include "provenance/provio.h"
#include "provenance/semiring.h"
#include "test_util.h"

namespace lipstick {
namespace {

TEST(GraphTest, NodeIdPacking) {
  NodeId id = MakeNodeId(3, 12345);
  EXPECT_EQ(NodeShard(id), 3u);
  EXPECT_EQ(NodeIndex(id), 12345u);
  EXPECT_NE(MakeNodeId(0, 0), kInvalidNode);  // shard 0 index 0 is valid
}

TEST(GraphTest, BasicConstruction) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId y = w.Token("y");
  NodeId sum = w.Plus({x, y});
  NodeId prod = w.Times({x, y});
  NodeId delta = w.Delta({sum});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.node(sum).label(), NodeLabel::kPlus);
  EXPECT_EQ(g.node(prod).label(), NodeLabel::kTimes);
  EXPECT_EQ(g.node(delta).parents().size(), 1u);
  EXPECT_EQ(g.node(x).payload(), "x");
  EXPECT_TRUE(g.Contains(x));
  EXPECT_FALSE(g.Contains(kInvalidNode));
  EXPECT_FALSE(g.Contains(MakeNodeId(7, 0)));  // unknown shard
}

TEST(GraphTest, SealBuildsChildren) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId a = w.Plus({x});
  NodeId b = w.Times({x, a});
  g.Seal();
  ASSERT_TRUE(g.sealed());
  std::span<const NodeId> children = g.ChildrenOf(x);
  EXPECT_EQ(children.size(), 2u);
  EXPECT_EQ(testing::ToVec(g.ChildrenOf(a)), std::vector<NodeId>{b});
  EXPECT_TRUE(g.ChildrenOf(b).empty());
}

TEST(GraphTest, DeadNodesAreExcluded) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId a = w.Plus({x});
  g.SetAlive(a, false);
  g.Seal();
  EXPECT_EQ(g.num_alive(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.ChildrenOf(x).empty());
}

TEST(GraphTest, ShardsAllocateIndependently) {
  ProvenanceGraph g;
  auto w0 = g.writer();
  auto w1 = g.AddShard();
  NodeId a = w0.Token("a");
  NodeId b = w1.Token("b");
  NodeId joint = w1.Times({a, b});
  EXPECT_EQ(NodeShard(a), 0u);
  EXPECT_EQ(NodeShard(b), 1u);
  g.Seal();
  EXPECT_EQ(testing::ToVec(g.ChildrenOf(a)), std::vector<NodeId>{joint});
}

TEST(GraphTest, InvocationRegistration) {
  ProvenanceGraph g;
  auto w = g.writer();
  uint32_t inv = w.BeginInvocation("dealer", "dealer1", 0);
  NodeId tok = w.WorkflowInput("I0");
  NodeId in = w.ModuleInput(inv, tok);
  NodeId out = w.ModuleOutput(inv, in);
  NodeId st = w.ModuleState(inv, tok);
  const InvocationInfo& info = g.invocations()[inv];
  EXPECT_EQ(g.str(info.module_name), "dealer");
  EXPECT_EQ(g.str(info.instance_name), "dealer1");
  EXPECT_EQ(info.input_nodes, std::vector<NodeId>{in});
  EXPECT_EQ(info.output_nodes, std::vector<NodeId>{out});
  EXPECT_EQ(info.state_nodes, std::vector<NodeId>{st});
  // i/o/s nodes are · of (tuple, m).
  EXPECT_EQ(g.node(in).label(), NodeLabel::kTimes);
  EXPECT_EQ(g.node(in).role(), NodeRole::kModuleInput);
  ASSERT_EQ(g.node(in).parents().size(), 2u);
  EXPECT_EQ(g.node(in).parents()[1], info.m_node);
}

TEST(GraphTest, LazyStateScopeWrapsOnFirstUse) {
  ProvenanceGraph g;
  auto w = g.writer();
  uint32_t inv = w.BeginInvocation("m", "m", 0);
  NodeId base1 = w.Token("s1", NodeRole::kStateBase);
  NodeId base2 = w.Token("s2", NodeRole::kStateBase);
  std::unordered_set<NodeId> eligible{base1, base2};
  w.BeginStateScope(inv, &eligible);
  size_t before = g.num_nodes();
  NodeId wrapped = w.ResolveParent(base1);
  EXPECT_NE(wrapped, base1);
  EXPECT_EQ(g.node(wrapped).role(), NodeRole::kModuleState);
  // Second use returns the cached wrapper; base2 is never wrapped.
  EXPECT_EQ(w.ResolveParent(base1), wrapped);
  EXPECT_EQ(g.num_nodes(), before + 1);
  // Non-eligible nodes pass through.
  NodeId other = w.Token("t");
  EXPECT_EQ(w.ResolveParent(other), other);
  w.EndStateScope();
  EXPECT_EQ(w.ResolveParent(base2), base2);  // scope closed
}

TEST(GraphTest, StateScopeCacheClearedBetweenInvocations) {
  // Regression: ShardWriter's state-wrap cache must not leak across
  // invocations that share the writer — a stale entry would alias the
  // reads of execution 2 onto execution 1's "s" node.
  ProvenanceGraph g;
  auto w = g.writer();
  uint32_t inv1 = w.BeginInvocation("m", "m", 0);
  uint32_t inv2 = w.BeginInvocation("m", "m", 1);
  NodeId base = w.Token("s", NodeRole::kStateBase);
  std::unordered_set<NodeId> eligible{base};

  w.BeginStateScope(inv1, &eligible);
  NodeId s1 = w.ResolveParent(base);
  w.EndStateScope();

  w.BeginStateScope(inv2, &eligible);
  NodeId s2 = w.ResolveParent(base);
  w.EndStateScope();

  EXPECT_NE(s1, s2);
  EXPECT_EQ(g.node(s1).invocation(), inv1);
  EXPECT_EQ(g.node(s2).invocation(), inv2);
  EXPECT_EQ(g.invocations()[inv1].state_nodes, std::vector<NodeId>{s1});
  EXPECT_EQ(g.invocations()[inv2].state_nodes, std::vector<NodeId>{s2});
}

TEST(GraphTest, SavepointRollbackPreservesArenaBackedParents) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId a = w.Token("a");
  NodeId b = w.Token("b");
  NodeId c = w.Token("c");
  NodeId wide = w.Plus({a, b, c});  // 3 parents: spills to the edge arena
  auto sp = g.TakeSavepoint();

  uint32_t inv = w.BeginInvocation("mod", "mod1", 9);
  NodeId in = w.ModuleInput(inv, a);
  NodeId wide2 = w.Times({a, b, c, in});  // arena traffic post-savepoint
  w.Token("post-savepoint payload");
  EXPECT_EQ(g.num_nodes(), 8u);

  g.RollbackTo(sp);
  // Pre-savepoint nodes keep their (arena-backed) parents...
  EXPECT_TRUE(g.Contains(wide));
  EXPECT_EQ(testing::ToVec(g.node(wide).parents()),
            (std::vector<NodeId>{a, b, c}));
  // ...post-savepoint nodes are dead and the invocation record is gone.
  EXPECT_FALSE(g.Contains(in));
  EXPECT_FALSE(g.Contains(wide2));
  EXPECT_EQ(g.invocations().size(), 0u);
  // The interner is append-only by design; writing resumes cleanly.
  NodeId d = w.Token("resumed");
  EXPECT_EQ(g.node(d).payload(), "resumed");
  g.Seal();
  EXPECT_EQ(testing::ToVec(g.ChildrenOf(a)), std::vector<NodeId>{wide});
}

TEST(GraphTest, LabelHistogram) {
  ProvenanceGraph g;
  auto w = g.writer();
  w.Token("x");
  w.Token("y");
  w.Plus({});
  auto hist = g.LabelHistogram();
  bool found = false;
  for (const auto& [label, count] : hist) {
    if (label == "token") {
      EXPECT_EQ(count, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

/// ----------------------------- semiring --------------------------------

TEST(PolynomialTest, Arithmetic) {
  Polynomial x = Polynomial::Var("x");
  Polynomial y = Polynomial::Var("y");
  Polynomial p = x.Plus(y).Times(x);  // x^2 + xy
  EXPECT_EQ(p.ToString(), "x*y + x^2");
  EXPECT_EQ(p.Plus(p).ToString(), "2*x*y + 2*x^2");
  EXPECT_TRUE(Polynomial::Zero().IsZero());
  EXPECT_EQ(Polynomial::One().Times(x), x);
  EXPECT_EQ(Polynomial::Zero().Plus(x), x);
}

TEST(PolynomialTest, Evaluation) {
  Polynomial x = Polynomial::Var("x");
  Polynomial y = Polynomial::Var("y");
  Polynomial p = x.Times(x).Plus(y);  // x^2 + y
  EXPECT_EQ(p.Eval({{"x", 3}, {"y", 4}}), 13u);
  EXPECT_EQ(p.Eval({}), 2u);          // absent tokens default to 1
  EXPECT_EQ(p.Eval({{"x", 0}}), 1u);  // y defaults to 1
}

TEST(GraphEvaluatorTest, CountingSemantics) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId y = w.Token("y");
  NodeId sum = w.Plus({x, y});
  NodeId prod = w.Times({x, y});
  NodeId delta = w.Delta({sum});

  GraphEvaluator<CountingSemiring> eval(g, {{x, 2}, {y, 3}});
  EXPECT_EQ(eval.Eval(sum), 5u);
  EXPECT_EQ(eval.Eval(prod), 6u);
  EXPECT_EQ(eval.Eval(delta), 1u);  // duplicate elimination

  GraphEvaluator<CountingSemiring> zeroed(g, {{x, 0}, {y, 0}});
  EXPECT_EQ(zeroed.Eval(delta), 0u);
}

TEST(GraphEvaluatorTest, BooleanSemantics) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId y = w.Token("y");
  NodeId prod = w.Times({x, y});
  GraphEvaluator<BooleanSemiring> eval(g, {{x, false}});
  EXPECT_FALSE(eval.Eval(prod));  // joint derivation needs both
  GraphEvaluator<BooleanSemiring> eval2(g, {{y, true}});
  EXPECT_TRUE(eval2.Eval(prod));
}

TEST(GraphEvaluatorTest, TrustPropagation) {
  // bid = delta(joint(request, car2) + joint(request, car3)): its trust is
  // the best alternative, each limited by its least trusted input.
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId request = w.Token("request");
  NodeId car2 = w.Token("car2");
  NodeId car3 = w.Token("car3");
  NodeId j2 = w.Times({request, car2});
  NodeId j3 = w.Times({request, car3});
  NodeId bid = w.Delta({j2, j3});
  GraphEvaluator<TrustSemiring> eval(
      g, {{request, 0.9}, {car2, 0.5}, {car3, 0.8}});
  EXPECT_DOUBLE_EQ(eval.Eval(j2), 0.5);
  EXPECT_DOUBLE_EQ(eval.Eval(j3), 0.8);
  EXPECT_DOUBLE_EQ(eval.Eval(bid), 0.8);  // best witness wins
}

TEST(GraphEvaluatorTest, SecurityClearance) {
  using S = SecuritySemiring;
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId pub = w.Token("public_record");
  NodeId secret = w.Token("informant_tip");
  NodeId joint = w.Times({pub, secret});
  NodeId either = w.Plus({pub, secret});
  GraphEvaluator<S> eval(g, {{secret, S::kSecret}});
  // Joint derivation needs the most restrictive clearance; an alternative
  // derivation through the public record stays public.
  EXPECT_EQ(eval.Eval(joint), S::kSecret);
  EXPECT_EQ(eval.Eval(either), S::kPublic);
}

TEST(GraphEvaluatorTest, WhyProvenance) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId y = w.Token("y");
  NodeId sum = w.Plus({x, y});
  GraphEvaluator<WhySemiring> eval(
      g, {{x, {{"x"}}}, {y, {{"y"}}}});
  WhySemiring::ValueType why = eval.Eval(sum);
  // Two alternative witnesses: {x} and {y}.
  EXPECT_EQ(why.size(), 2u);
}

TEST(GraphEvaluatorTest, StructuralNodes) {
  ProvenanceGraph g;
  auto w = g.writer();
  uint32_t inv = w.BeginInvocation("m", "m", 0);
  NodeId m = g.invocations()[inv].m_node;
  NodeId x = w.Token("x");
  NodeId in = w.ModuleInput(inv, x);
  NodeId bb = w.BlackBox("f", {in});
  GraphEvaluator<CountingSemiring> eval(g, {{x, 0}});
  EXPECT_EQ(eval.Eval(m), 1u);   // invocations never data-dependent
  EXPECT_EQ(eval.Eval(in), 0u);  // · with a zero factor
  EXPECT_EQ(eval.Eval(bb), 0u);  // all inputs gone
}

TEST(ExpressionStringTest, RendersOperators) {
  ProvenanceGraph g;
  auto w = g.writer();
  NodeId x = w.Token("x");
  NodeId y = w.Token("y");
  NodeId d = w.Delta({x, y});
  NodeId t = w.Times({d, x});
  EXPECT_EQ(ProvExpressionString(g, t), "(delta(x + y) * x)");
  EXPECT_EQ(ProvExpressionString(g, kInvalidNode), "0");
  // Depth limiting.
  EXPECT_EQ(ProvExpressionString(g, t, 1), "(... * ...)");
}

/// --------------------------- serialization -----------------------------

TEST(ProvIoTest, RoundTripPreservesEverything) {
  ProvenanceGraph g;
  auto w0 = g.writer();
  auto w1 = g.AddShard();
  uint32_t inv = w0.BeginInvocation("dealer", "dealer1", 3);
  NodeId x = w0.Token("state tuple [0]", NodeRole::kStateBase);
  NodeId in = w0.ModuleInput(inv, x);
  NodeId agg = w1.Aggregate("COUNT", {in}, Value::Int(7));
  NodeId cv = w1.ConstValue(Value::Double(2.5));
  NodeId tens = w1.Tensor(cv, in);
  NodeId bb = w0.BlackBox("calcbid", {tens, agg});
  g.SetAlive(bb, false);  // dead nodes round-trip too

  std::ostringstream os;
  LIPSTICK_ASSERT_OK(SaveGraph(g, os));
  std::istringstream is(os.str());
  Result<ProvenanceGraph> loaded = LoadGraph(is);
  LIPSTICK_ASSERT_OK(loaded.status());

  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_alive(), g.num_alive());
  EXPECT_EQ(loaded->node(x).payload(), "state tuple [0]");
  EXPECT_EQ(loaded->node(x).role(), NodeRole::kStateBase);
  EXPECT_EQ(loaded->node(agg).payload(), "COUNT");
  EXPECT_EQ(loaded->node(agg).value().int_value(), 7);
  EXPECT_DOUBLE_EQ(loaded->node(cv).value().double_value(), 2.5);
  EXPECT_EQ(testing::ToVec(loaded->node(tens).parents()),
            testing::ToVec(g.node(tens).parents()));
  EXPECT_FALSE(loaded->Contains(bb));
  ASSERT_EQ(loaded->invocations().size(), 1u);
  EXPECT_EQ(loaded->str(loaded->invocations()[0].module_name), "dealer");
  EXPECT_EQ(loaded->invocations()[0].execution, 3u);
  EXPECT_EQ(loaded->invocations()[0].input_nodes,
            g.invocations()[0].input_nodes);

  // A second round trip is byte-identical (canonical form).
  std::ostringstream os2;
  LIPSTICK_ASSERT_OK(SaveGraph(*loaded, os2));
  EXPECT_EQ(os.str(), os2.str());
}

TEST(ProvIoTest, RoundTripAbortedInvocationsAndDeadNodes) {
  ProvenanceGraph g;
  auto w = g.writer();
  uint32_t ok_inv = w.BeginInvocation("keep", "keep1", 1);
  NodeId x = w.Token("x");
  w.ModuleInput(ok_inv, x);

  uint32_t doomed = w.BeginInvocation("doomed", "doomed1", 2);
  w.ModuleInput(doomed, x);
  g.AbortInvocation(doomed);

  auto sp = g.TakeSavepoint();
  NodeId wide = w.Plus({x, x, x});  // arena-backed, then rolled back
  g.RollbackTo(sp);

  std::ostringstream os;
  LIPSTICK_ASSERT_OK(SaveGraph(g, os));
  std::istringstream is(os.str());
  Result<ProvenanceGraph> loaded = LoadGraph(is);
  LIPSTICK_ASSERT_OK(loaded.status());

  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_alive(), g.num_alive());
  EXPECT_TRUE(loaded->InGraph(wide));    // the row survives...
  EXPECT_FALSE(loaded->Contains(wide));  // ...but stays dead
  ASSERT_EQ(loaded->invocations().size(), 2u);
  EXPECT_FALSE(loaded->invocations()[ok_inv].aborted());
  EXPECT_TRUE(loaded->invocations()[doomed].aborted());
  EXPECT_EQ(loaded->str(loaded->invocations()[doomed].module_name),
            "doomed");
  loaded->Seal();
  EXPECT_FALSE(loaded->ChildrenOf(x).empty());

  // Canonical form: a second save is byte-identical, interner ids and all.
  std::ostringstream os2;
  LIPSTICK_ASSERT_OK(SaveGraph(*loaded, os2));
  EXPECT_EQ(os.str(), os2.str());
}

TEST(ProvIoTest, RejectsCorruptInput) {
  std::istringstream bad_header("NOTAGRAPH\n");
  EXPECT_FALSE(LoadGraph(bad_header).ok());
  std::istringstream bad_record(
      "LIPSTICKGRAPH v1\nshards 1\nq wat\n");
  EXPECT_FALSE(LoadGraph(bad_record).ok());
  std::istringstream bad_shard("LIPSTICKGRAPH v1\nshards 0\n");
  EXPECT_FALSE(LoadGraph(bad_shard).ok());
}

TEST(ProvIoTest, FileRoundTrip) {
  ProvenanceGraph g;
  auto w = g.writer();
  w.Token("payload with spaces\nand newline");
  std::string path = ::testing::TempDir() + "/lipstick_graph_test.txt";
  LIPSTICK_ASSERT_OK(SaveGraphToFile(g, path));
  Result<ProvenanceGraph> loaded = LoadGraphFromFile(path);
  LIPSTICK_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->node(MakeNodeId(0, 0)).payload(),
            "payload with spaces\nand newline");
  EXPECT_FALSE(LoadGraphFromFile("/nonexistent/path").ok());
}

}  // namespace
}  // namespace lipstick

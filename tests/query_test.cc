#include <gtest/gtest.h>

#include <sstream>

#include "common/str_util.h"
#include "provenance/dot.h"
#include "provenance/opm.h"
#include "provenance/query.h"
#include "test_util.h"
#include "workflowgen/dealership.h"

namespace lipstick {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto w = graph_.writer();
    inv_ = w.BeginInvocation("dealer", "dealer1", 0);
    x_ = w.Token("request");
    in_ = w.ModuleInput(inv_, x_);
    car_ = w.Token("car C2", NodeRole::kStateBase);
    s_ = w.ModuleState(inv_, car_);
    join_ = w.Times({in_, s_});
    group_ = w.Delta({join_});
    agg_ = w.Aggregate("COUNT", {join_}, Value::Int(1));
    out_ = w.ModuleOutput(inv_, group_);
    graph_.Seal();
  }

  ProvenanceGraph graph_;
  uint32_t inv_ = 0;
  NodeId x_, in_, car_, s_, join_, group_, agg_, out_;
};

TEST_F(QueryTest, FindNodesByLabel) {
  auto tokens = FindNodes(graph_, ByLabel(NodeLabel::kToken));
  EXPECT_EQ(tokens, (std::vector<NodeId>{x_, car_}));
  auto deltas = FindNodes(graph_, ByLabel(NodeLabel::kDelta));
  EXPECT_EQ(deltas, std::vector<NodeId>{group_});
}

TEST_F(QueryTest, FindNodesByRoleAndPayload) {
  auto state = FindNodes(graph_, ByRole(NodeRole::kModuleState));
  EXPECT_EQ(state, std::vector<NodeId>{s_});
  auto c2 = FindNodes(graph_, ByPayload("C2"));
  EXPECT_EQ(c2, std::vector<NodeId>{car_});
}

TEST_F(QueryTest, FindNodesByModule) {
  auto dealer_nodes = FindNodes(graph_, ByModule(graph_, "dealer"));
  EXPECT_FALSE(dealer_nodes.empty());
  auto none = FindNodes(graph_, ByModule(graph_, "aggregate"));
  EXPECT_TRUE(none.empty());
}

TEST_F(QueryTest, PredicateCombinators) {
  auto both = FindNodes(
      graph_, And(ByLabel(NodeLabel::kToken), ByPayload("request")));
  EXPECT_EQ(both, std::vector<NodeId>{x_});
  auto either = FindNodes(
      graph_, Or(ByLabel(NodeLabel::kDelta), ByLabel(NodeLabel::kAggregate)));
  EXPECT_EQ(either.size(), 2u);
  auto not_tokens = FindNodes(graph_, Not(ByLabel(NodeLabel::kToken)));
  EXPECT_EQ(not_tokens.size(), graph_.num_alive() - 2);
}

TEST_F(QueryTest, PathQueries) {
  EXPECT_TRUE(*PathExists(graph_, x_, out_));
  EXPECT_TRUE(*PathExists(graph_, car_, agg_));
  EXPECT_FALSE(*PathExists(graph_, out_, x_));  // direction matters
  EXPECT_FALSE(*PathExists(graph_, agg_, out_));

  auto path = *ShortestDerivationPath(graph_, x_, out_);
  // x -> in -> join -> group -> out: five nodes, four edges.
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), x_);
  EXPECT_EQ(path.back(), out_);
  EXPECT_TRUE(ShortestDerivationPath(graph_, out_, x_)->empty());
  EXPECT_EQ(*ShortestDerivationPath(graph_, x_, x_),
            std::vector<NodeId>{x_});
}

TEST_F(QueryTest, DependsOnSet) {
  // The join needs both the request and the state tuple; either alone
  // kills it (· semantics), and so does the pair.
  EXPECT_TRUE(*DependsOnSet(graph_, join_, {x_}));
  EXPECT_TRUE(*DependsOnSet(graph_, join_, {car_}));
  EXPECT_TRUE(*DependsOnSet(graph_, join_, {x_, car_}));
  // The invocation node depends on nothing.
  NodeId m = graph_.invocations()[inv_].m_node;
  EXPECT_FALSE(*DependsOnSet(graph_, m, {x_, car_}));
}

TEST_F(QueryTest, GraphStats) {
  GraphStats stats = *ComputeGraphStats(graph_);
  EXPECT_EQ(stats.nodes, graph_.num_alive());
  EXPECT_EQ(stats.edges, graph_.num_edges());
  EXPECT_EQ(stats.tokens, 2u);
  EXPECT_EQ(stats.invocations, 1u);
  EXPECT_GE(stats.max_fan_in, 2u);   // · nodes have two parents
  EXPECT_GE(stats.max_fan_out, 2u);  // join feeds group and agg
  // Longest chain: token -> i/s -> join -> group -> out = 4 edges.
  EXPECT_EQ(stats.depth, 4u);
}

TEST_F(QueryTest, DotOutputIsWellFormed) {
  std::ostringstream os;
  LIPSTICK_ASSERT_OK(WriteDot(graph_, os));
  std::string dot = os.str();
  EXPECT_NE(dot.find("digraph provenance"), std::string::npos);
  EXPECT_NE(dot.find("cluster_inv0"), std::string::npos);
  EXPECT_NE(dot.find("house"), std::string::npos);  // invocation node
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Every alive node appears.
  for (NodeId id : graph_.AllNodeIds()) {
    if (!graph_.Contains(id)) continue;
    EXPECT_NE(dot.find(StrCat("n", id, " [")), std::string::npos);
  }
}

TEST_F(QueryTest, DotSubsetRestriction) {
  DotOptions options;
  options.subset = {x_, in_};
  std::ostringstream os;
  LIPSTICK_ASSERT_OK(WriteDot(graph_, os, options));
  std::string dot = os.str();
  EXPECT_NE(dot.find(StrCat("n", x_, " [")), std::string::npos);
  EXPECT_EQ(dot.find(StrCat("n", out_, " [")), std::string::npos);
}

TEST_F(QueryTest, OpmExportIsWellFormed) {
  std::ostringstream os;
  LIPSTICK_ASSERT_OK(WriteOpmXml(graph_, os));
  std::string xml = os.str();
  EXPECT_NE(xml.find("<opmGraph"), std::string::npos);
  EXPECT_NE(xml.find("<process id=\"p0\">"), std::string::npos);
  // The input and output tuples are artifacts linked to the process.
  EXPECT_NE(xml.find(StrCat("<artifact id=\"a", in_)), std::string::npos);
  EXPECT_NE(xml.find(StrCat("<used><effect ref=\"p0\"/><cause ref=\"a", in_)),
            std::string::npos);
  EXPECT_NE(xml.find(StrCat("<wasGeneratedBy><effect ref=\"a", out_)),
            std::string::npos);
  // Fine-grained internals (the join, the aggregate) are NOT exported —
  // the information loss the paper's model repairs.
  EXPECT_EQ(xml.find(StrCat("a", join_, "\"")), std::string::npos);
}

TEST(OpmWorkflowTest, CrossModuleDependenciesExported) {
  workflowgen::DealershipConfig cfg;
  cfg.num_cars = 120;
  cfg.num_executions = 1;
  cfg.seed = 5;
  auto wf = workflowgen::DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  ProvenanceGraph graph;
  LIPSTICK_ASSERT_OK((*wf)->Run(&graph).status());
  graph.Seal();
  std::ostringstream os;
  LIPSTICK_ASSERT_OK(WriteOpmXml(graph, os));
  std::string xml = os.str();
  // Data flowing dealer -> aggregator shows up as derivations and
  // triggered-by relations between processes.
  EXPECT_NE(xml.find("<wasDerivedFrom>"), std::string::npos);
  EXPECT_NE(xml.find("<wasTriggeredBy>"), std::string::npos);
  // Every invocation became a process.
  size_t count = 0;
  for (size_t pos = 0; (pos = xml.find("<process id=", pos)) !=
                       std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, graph.invocations().size());
}

TEST(QueryWorkflowTest, ProQLStyleAnalysisOnDealershipRun) {
  workflowgen::DealershipConfig cfg;
  cfg.num_cars = 240;
  cfg.num_executions = 3;
  cfg.seed = 11;
  cfg.accept_probability = 0;
  auto wf = workflowgen::DealershipWorkflow::Create(cfg);
  LIPSTICK_ASSERT_OK(wf.status());
  ProvenanceGraph graph;
  LIPSTICK_ASSERT_OK((*wf)->Run(&graph).status());
  graph.Seal();

  // "All COUNT aggregations inside dealer modules."
  auto counts = FindNodes(
      graph, And(ByLabel(NodeLabel::kAggregate), ByPayload("COUNT")));
  EXPECT_FALSE(counts.empty());
  for (NodeId id : counts) {
    uint32_t inv = graph.node(id).invocation();
    ASSERT_NE(inv, kNoInvocation);
    EXPECT_EQ(graph.str(graph.invocations()[inv].module_name), "dealer");
  }
  // Every black box in this workflow is calcbid.
  auto bbs = FindNodes(graph, ByLabel(NodeLabel::kBlackBox));
  for (NodeId id : bbs) EXPECT_EQ(graph.node(id).payload(), "calcbid");
  // There is a derivation path from some workflow input to some module
  // output of the aggregate module.
  auto inputs = FindNodes(graph, ByRole(NodeRole::kWorkflowInput));
  auto agg_outs = FindNodes(
      graph, And(ByRole(NodeRole::kModuleOutput),
                 ByModule(graph, "aggregate")));
  ASSERT_FALSE(inputs.empty());
  ASSERT_FALSE(agg_outs.empty());
  bool found = false;
  for (NodeId in : inputs) {
    if (*PathExists(graph, in, agg_outs.front())) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(QueryWorkflowTest, StatsScaleWithExecutions) {
  GraphStats small, large;
  for (auto* out : {&small, &large}) {
    workflowgen::DealershipConfig cfg;
    cfg.num_cars = 120;
    cfg.num_executions = out == &small ? 1 : 4;
    cfg.seed = 2;
    cfg.accept_probability = 0;
    auto wf = workflowgen::DealershipWorkflow::Create(cfg);
    LIPSTICK_ASSERT_OK(wf.status());
    ProvenanceGraph graph;
    LIPSTICK_ASSERT_OK((*wf)->Run(&graph).status());
    graph.Seal();
    *out = *ComputeGraphStats(graph);
  }
  EXPECT_GT(large.nodes, small.nodes);
  EXPECT_GT(large.invocations, small.invocations);
  EXPECT_GE(large.depth, small.depth);  // later bids derive from history
}

}  // namespace
}  // namespace lipstick
